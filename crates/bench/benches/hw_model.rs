//! Criterion benchmarks of the hardware models: the analytic frame
//! simulator (Tables 4–5, Fig. 6 generator), the design-space sweeps, and
//! the functional tile-level accelerator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sslic_hw::accel::{Accelerator, AcceleratorConfig};
use sslic_hw::cluster::ClusterUnitConfig;
use sslic_hw::dse::{buffer_size_sweep, cluster_unit_sweep};
use sslic_hw::pipeline::ClusterPipeline;
use sslic_hw::sim::{FrameSimulator, Resolution};
use sslic_hw::tb::Testbench;
use sslic_image::synthetic::SyntheticImage;

fn bench_hw(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_model");
    group.sample_size(20);

    group.bench_function("frame_simulator_full_hd", |b| {
        let sim = FrameSimulator::paper_default(Resolution::FULL_HD);
        b.iter(|| black_box(sim.simulate()))
    });
    group.bench_function("fig6_buffer_sweep", |b| {
        b.iter(|| black_box(buffer_size_sweep(&[1, 2, 4, 8, 16, 32, 64, 128])))
    });
    group.bench_function("table3_cluster_sweep", |b| {
        b.iter(|| black_box(cluster_unit_sweep(1920 * 1080)))
    });
    group.finish();

    let img = SyntheticImage::builder(128, 96).seed(5).regions(6).build().rgb;
    let mut group = c.benchmark_group("functional_accelerator");
    group.sample_size(10);
    group.bench_function("process_128x96", |b| {
        let accel = Accelerator::new(AcceleratorConfig {
            superpixels: 48,
            iterations: 4,
            buffer_bytes_per_channel: 1024,
            ..AcceleratorConfig::new(48)
        });
        b.iter(|| black_box(accel.process(black_box(&img))))
    });
    group.finish();

    let mut group = c.benchmark_group("cycle_pipeline");
    group.sample_size(20);
    group.bench_function("issue_4096_pixels_9_9_6", |b| {
        b.iter(|| {
            let mut pipe = ClusterPipeline::new(ClusterUnitConfig::c9_9_6());
            for i in 0..4096u32 {
                let mut d = [100u32; 9];
                d[(i % 9) as usize] = i % 97;
                pipe.issue(d);
            }
            black_box(pipe.flush())
        })
    });
    group.bench_function("verification_campaign", |b| {
        b.iter(|| black_box(Testbench::new(0xBEEF).run(2, 64)))
    });
    group.finish();
}

criterion_group!(benches, bench_hw);
criterion_main!(benches);
