//! Criterion benchmarks of the segmentation kernels: SLIC vs S-SLIC at
//! both perspectives, float vs 8-bit quantized datapath.
//!
//! The per-frame timings here are the raw material of Figure 2's x-axis;
//! run `cargo run -p sslic-bench --release --bin fig2` for the full
//! quality-vs-time reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sslic_core::{Algorithm, DistanceMode, RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_image::synthetic::SyntheticImage;

fn bench_image() -> sslic_image::RgbImage {
    SyntheticImage::builder(240, 160)
        .seed(2016)
        .regions(9)
        .noise_sigma(5.0)
        .texture_amplitude(8.0)
        .color_separation(35.0)
        .build()
        .rgb
}

fn params(iterations: u32) -> SlicParams {
    SlicParams::builder(224)
        .compactness(30.0)
        .iterations(iterations)
        .build()
}

fn bench_algorithms(c: &mut Criterion) {
    let img = bench_image();
    let mut group = c.benchmark_group("segmentation");
    group.sample_size(10);

    group.bench_function("slic_cpa_4it", |b| {
        let seg = Segmenter::new(params(4), Algorithm::SlicCpa);
        b.iter(|| black_box(seg.run(SegmentRequest::Rgb(black_box(&img)), &RunOptions::new())))
    });
    group.bench_function("slic_ppa_4it", |b| {
        let seg = Segmenter::slic_ppa(params(4));
        b.iter(|| black_box(seg.run(SegmentRequest::Rgb(black_box(&img)), &RunOptions::new())))
    });
    group.bench_function("sslic_ppa_p2_4steps", |b| {
        let seg = Segmenter::sslic_ppa(params(4), 2);
        b.iter(|| black_box(seg.run(SegmentRequest::Rgb(black_box(&img)), &RunOptions::new())))
    });
    group.bench_function("sslic_ppa_p4_4steps", |b| {
        let seg = Segmenter::sslic_ppa(params(4), 4);
        b.iter(|| black_box(seg.run(SegmentRequest::Rgb(black_box(&img)), &RunOptions::new())))
    });
    group.bench_function("sslic_cpa_p2_4steps", |b| {
        let seg = Segmenter::sslic_cpa(params(4), 2);
        b.iter(|| black_box(seg.run(SegmentRequest::Rgb(black_box(&img)), &RunOptions::new())))
    });
    group.bench_function("sslic_ppa_p2_8bit_4steps", |b| {
        let seg =
            Segmenter::sslic_ppa(params(4), 2).with_distance_mode(DistanceMode::quantized(8));
        b.iter(|| black_box(seg.run(SegmentRequest::Rgb(black_box(&img)), &RunOptions::new())))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
