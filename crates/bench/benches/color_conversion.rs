//! Criterion benchmarks of the two RGB→CIELAB paths: the exact
//! floating-point pipeline (Eqs. 1–4) and the accelerator's LUT
//! fixed-point pipeline — quantifying why the hardware chose tables over
//! `powf`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sslic_color::{float, hw::HwColorConverter};
use sslic_image::synthetic::SyntheticImage;

fn bench_color(c: &mut Criterion) {
    let img = SyntheticImage::builder(240, 160).seed(3).regions(8).build().rgb;
    let conv = HwColorConverter::paper_default();

    let mut group = c.benchmark_group("color_conversion");
    group.sample_size(20);
    group.bench_function("float_exact", |b| {
        b.iter(|| black_box(float::convert_image(black_box(&img))))
    });
    group.bench_function("hw_lut_8bit", |b| {
        b.iter(|| black_box(conv.convert_image(black_box(&img))))
    });
    group.bench_function("hw_lut_build_tables", |b| {
        b.iter(|| black_box(HwColorConverter::paper_default()))
    });
    group.finish();
}

criterion_group!(benches, bench_color);
criterion_main!(benches);
