//! Criterion benchmarks of the quality metrics: evaluation throughput
//! matters because Figure 2 and §6.1 score hundreds of segmentations per
//! sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_image::synthetic::SyntheticImage;
use sslic_metrics::{
    achievable_segmentation_accuracy, boundary_recall, compactness, undersegmentation_error,
};

fn bench_metrics(c: &mut Criterion) {
    let img = SyntheticImage::builder(240, 160)
        .seed(2016)
        .regions(9)
        .build();
    let params = SlicParams::builder(224).iterations(3).build();
    let seg = Segmenter::slic_ppa(params).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
    let labels = seg.labels();
    let gt = &img.ground_truth;

    let mut group = c.benchmark_group("metrics");
    group.sample_size(30);
    group.bench_function("undersegmentation_error", |b| {
        b.iter(|| black_box(undersegmentation_error(black_box(labels), black_box(gt))))
    });
    group.bench_function("boundary_recall_tol2", |b| {
        b.iter(|| black_box(boundary_recall(black_box(labels), black_box(gt), 2)))
    });
    group.bench_function("boundary_recall_tol0", |b| {
        b.iter(|| black_box(boundary_recall(black_box(labels), black_box(gt), 0)))
    });
    group.bench_function("asa", |b| {
        b.iter(|| {
            black_box(achievable_segmentation_accuracy(
                black_box(labels),
                black_box(gt),
            ))
        })
    });
    group.bench_function("compactness", |b| {
        b.iter(|| black_box(compactness(black_box(labels))))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
