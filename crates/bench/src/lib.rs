//! Shared infrastructure for the experiment harness: the evaluation
//! corpus, quality measurement over a corpus, and table formatting.
//!
//! Each table and figure of the paper has a dedicated binary
//! (`cargo run -p sslic-bench --release --bin <name>`) that prints the
//! reproduced rows/series next to the paper's published values; Criterion
//! benches (`cargo bench -p sslic-bench`) time the underlying kernels per
//! subsystem.
//!
//! By default the harness runs a scaled-down corpus so the full suite
//! completes in minutes; set `SSLIC_FULL=1` for the paper-scale corpus
//! (100 Berkeley-sized images).

#![forbid(unsafe_code)]

use std::time::Instant;

use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_image::synthetic::SyntheticDataset;
use sslic_metrics::{boundary_recall, undersegmentation_error};

/// Evaluation corpus scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down default: 12 images at 240×160.
    Quick,
    /// Paper scale: 100 images at 481×321.
    Full,
}

impl Scale {
    /// Reads the scale from the `SSLIC_FULL` environment variable.
    pub fn from_env() -> Self {
        if std::env::var("SSLIC_FULL").map(|v| v == "1").unwrap_or(false) {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Number of corpus images.
    pub fn image_count(&self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 100,
        }
    }

    /// Corpus image geometry.
    pub fn geometry(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (240, 160),
            Scale::Full => (481, 321),
        }
    }

    /// Superpixel count scaled so superpixels keep the paper's size
    /// (K = 900 on 481×321 → same pixels-per-superpixel elsewhere).
    pub fn superpixels(&self, paper_k: usize) -> usize {
        let (w, h) = self.geometry();
        let paper_pixels = 481 * 321;
        ((paper_k * w * h) as f64 / paper_pixels as f64)
            .round()
            .max(4.0) as usize
    }
}

/// Boundary-recall tolerance used throughout the harness.
///
/// The conventional 2-pixel tolerance saturates at SLIC superpixel density
/// (a random grid already recalls ~0.98), and our synthetic ground-truth
/// boundaries are exact rather than human-placed, so the harness uses
/// tolerance 0 — which puts recall in the paper's discriminative 0.6–0.9
/// range. See `EXPERIMENTS.md`.
pub const BR_TOLERANCE: usize = 0;

/// Compactness used by the quality experiments. The paper says `m` is
/// "generally set between 1 and 40"; on the synthetic corpus `m = 30`
/// reproduces the paper's converging Figure 2 dynamic (quality improves
/// monotonically with iterations), while small `m` chases the synthetic
/// texture. See `EXPERIMENTS.md`.
pub const COMPACTNESS: f32 = 30.0;

/// The deterministic evaluation corpus for a scale.
///
/// Images use moderate region contrast (separation 35), noise σ = 5, and
/// texture amplitude 8 — hard enough that SLIC needs several iterations to
/// converge, as on Berkeley.
pub fn corpus(scale: Scale) -> SyntheticDataset {
    let (w, h) = scale.geometry();
    let images = (0..scale.image_count())
        .map(|i| {
            sslic_image::synthetic::SyntheticImage::builder(w, h)
                .seed(2016 + i as u64)
                .regions(9 + (i % 8))
                .noise_sigma(5.0)
                .texture_amplitude(8.0)
                .color_separation(35.0)
                .build()
        })
        .collect();
    SyntheticDataset { images }
}

/// Quality/time measurement of one segmenter configuration over a corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusResult {
    /// Mean undersegmentation error.
    pub use_err: f64,
    /// Mean boundary recall (tolerance [`BR_TOLERANCE`]).
    pub boundary_recall: f64,
    /// Mean wall-clock per image, milliseconds.
    pub time_ms: f64,
}

/// Runs `segmenter` over every corpus image and averages the metrics.
pub fn evaluate(segmenter: &Segmenter, corpus: &SyntheticDataset) -> CorpusResult {
    let mut use_sum = 0.0;
    let mut br_sum = 0.0;
    let mut time_sum = 0.0;
    for img in corpus.iter() {
        let start = Instant::now();
        let seg = segmenter.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        time_sum += start.elapsed().as_secs_f64() * 1e3;
        use_sum += undersegmentation_error(seg.labels(), &img.ground_truth);
        br_sum += boundary_recall(seg.labels(), &img.ground_truth, BR_TOLERANCE);
    }
    let n = corpus.len() as f64;
    CorpusResult {
        use_err: use_sum / n,
        boundary_recall: br_sum / n,
        time_ms: time_sum / n,
    }
}

/// Convenience: the Figure 2 parameter set (K = 900 scaled, m = [`COMPACTNESS`]) at a
/// given iteration count, scaled to the corpus geometry.
pub fn fig2_params(scale: Scale, iterations: u32) -> SlicParams {
    SlicParams::builder(scale.superpixels(900))
        .compactness(COMPACTNESS)
        .iterations(iterations)
        .build()
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints a table header line and its rule.
pub fn header(title: &str) {
    println!();
    rule(title.len().max(60));
    println!("{title}");
    rule(title.len().max(60));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superpixel_scaling_preserves_density() {
        let quick_k = Scale::Quick.superpixels(900);
        let (w, h) = Scale::Quick.geometry();
        let density_quick = (w * h) as f64 / quick_k as f64;
        let density_paper = (481.0 * 321.0) / 900.0;
        assert!((density_quick / density_paper - 1.0).abs() < 0.05);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(Scale::Quick);
        let b = corpus(Scale::Quick);
        assert_eq!(a.len(), 12);
        assert_eq!(a.images[0].rgb, b.images[0].rgb);
    }

    #[test]
    fn evaluate_produces_sane_metrics() {
        let small = SyntheticDataset::with_geometry(2, 7, 96, 64);
        let params = SlicParams::builder(60).iterations(3).build();
        let r = evaluate(&Segmenter::sslic_ppa(params, 2), &small);
        assert!(r.use_err >= 0.0);
        assert!((0.0..=1.0).contains(&r.boundary_recall));
        assert!(r.time_ms > 0.0);
    }

    #[test]
    fn fig2_params_use_harness_compactness() {
        let p = fig2_params(Scale::Quick, 5);
        assert_eq!(p.compactness(), COMPACTNESS);
        assert_eq!(p.iterations(), 5);
    }
}
