//! Hardware-model ablations:
//!
//! 1. **Core count** (a §5 DSE axis Table 4 resolves to 1): Amdahl-bound
//!    speedup because center update and the DRAM channel stay serial.
//! 2. **Clock scaling** (§6.3: "ultimately reducing the clock rate"): the
//!    minimum real-time clock per resolution and its power saving.
//! 3. **Energy-model sensitivity** (§4.2): how cheap would DRAM have to be
//!    for the CPA to beat the PPA — stress-testing the paper's
//!    2500×-an-add assumption behind the PPA choice.

use sslic_bench::{header, rule};
use sslic_hw::sim::{FrameSimulator, Resolution};

fn main() {
    // --- 1. core-count sweep --------------------------------------------
    header("Core-count sweep @ 1080p (Table 4 uses 1 core)");
    println!(
        "{:<7} {:>10} {:>8} {:>11} {:>11} {:>10}",
        "cores", "time (ms)", "fps", "area (mm2)", "power (mW)", "speedup"
    );
    rule(62);
    let base = FrameSimulator::paper_default(Resolution::FULL_HD).simulate();
    for cores in [1u32, 2, 4, 8] {
        let r = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_cores(cores)
            .simulate();
        println!(
            "{:<7} {:>10.2} {:>8.1} {:>11.3} {:>11.1} {:>9.2}x",
            cores,
            r.total_ms(),
            r.fps(),
            r.area_mm2,
            r.avg_power_mw,
            base.total_ms() / r.total_ms()
        );
    }
    println!(
        "Amdahl bound: the K = 5000 center update (~{:.1} ms) and the shared DRAM\n\
         channel (~{:.1} ms) do not parallelize, capping multi-core gains — one\n\
         core is the right Table 4 answer.",
        base.center_ms, base.memory_ms
    );

    // --- 2. clock scaling -------------------------------------------------
    header("Minimum real-time clock per resolution (§6.3 graceful scale-down)");
    println!(
        "{:<12} {:>11} {:>10} {:>11} {:>12}",
        "resolution", "clock (GHz)", "fps", "power (mW)", "mJ/frame"
    );
    rule(60);
    for res in Resolution::TABLE4 {
        // Binary-search the slowest clock that still makes 30 fps.
        let (mut lo, mut hi) = (0.05f64, 1.6f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let r = FrameSimulator::paper_default(res)
                .with_clock_ghz(mid)
                .simulate();
            if r.is_real_time() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let r = FrameSimulator::paper_default(res).with_clock_ghz(hi).simulate();
        println!(
            "{:<12} {:>11.2} {:>10.1} {:>11.1} {:>12.2}",
            res.name,
            hi,
            r.fps(),
            r.avg_power_mw,
            r.energy_mj_per_frame()
        );
    }
    println!(
        "Lower resolutions sustain 30 fps at a fraction of the design clock and\n\
         commensurately lower power — the paper's graceful-scale-down claim."
    );

    // --- 3. energy-model sensitivity --------------------------------------
    header("CPA-vs-PPA decision sensitivity to the DRAM/add energy ratio (§4.2)");
    // Paper Table 2 workload: traffic and operation counts per iteration.
    let (cpa_mb, cpa_mops) = (318.0f64, 58.0f64);
    let (ppa_mb, ppa_mops) = (100.0f64, 130.0f64);
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "E_dram/E_add", "CPA energy", "PPA energy", "winner"
    );
    rule(56);
    for ratio in [0.1f64, 0.25, 1.0, 10.0, 100.0, 2500.0] {
        // Energy in add-equivalents: bytes × ratio + ops × 1.
        let cpa = cpa_mb * 1e6 * ratio + cpa_mops * 1e6;
        let ppa = ppa_mb * 1e6 * ratio + ppa_mops * 1e6;
        println!(
            "{:>12} {:>13.2}G {:>13.2}G {:>10}",
            ratio,
            cpa / 1e9,
            ppa / 1e9,
            if ppa < cpa { "PPA" } else { "CPA" }
        );
    }
    let crossover = (ppa_mops - cpa_mops) / (cpa_mb - ppa_mb);
    println!(
        "Crossover at E_dram/E_add = {crossover:.2}: DRAM would have to cost *less\n\
         than an 8-bit add per byte* for the CPA to win. At the paper's 2500x the\n\
         PPA choice is robust by 3+ orders of magnitude."
    );
}
