//! Ablation: superpixel count `K`. The paper fixes K = 900 (quality) and
//! K = 5000 (hardware); this sweep charts the standard quality-vs-K
//! curves — more superpixels buy boundary recall at the cost of time and
//! compactness — and how the accelerator's frame time reacts (only the
//! center-update term scales with K).

use sslic_bench::{corpus, evaluate, header, rule, Scale, COMPACTNESS};
use sslic_core::{Segmenter, SlicParams};
use sslic_hw::sim::{FrameSimulator, Resolution};

fn main() {
    let scale = Scale::from_env();
    let data = corpus(scale);
    let (w, h) = scale.geometry();
    println!(
        "Superpixel-count sweep over {} images at {w}x{h} — S-SLIC (0.5), 16 sub-iterations",
        data.len()
    );

    header("Quality vs K (software)");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12}",
        "K", "time(ms)", "USE", "BR", "px/superpx"
    );
    rule(54);
    for paper_k in [225usize, 450, 900, 1800, 3600] {
        let k = scale.superpixels(paper_k);
        let params = SlicParams::builder(k)
            .compactness(COMPACTNESS)
            .iterations(16)
            .build();
        let r = evaluate(&Segmenter::sslic_ppa(params, 2), &data);
        println!(
            "{:<8} {:>10.2} {:>10.4} {:>10.4} {:>12.0}",
            k,
            r.time_ms,
            r.use_err,
            r.boundary_recall,
            (w * h) as f64 / k as f64
        );
    }

    header("Accelerator frame time vs K (1080p; only the center update scales)");
    println!("{:<8} {:>12} {:>10} {:>14}", "K", "total (ms)", "fps", "center (ms)");
    rule(48);
    for k in [1000usize, 2500, 5000, 10000, 20000] {
        let r = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_superpixels(k)
            .simulate();
        println!(
            "{:<8} {:>12.2} {:>10.1} {:>14.2}",
            k,
            r.total_ms(),
            r.fps(),
            r.center_ms
        );
    }
    println!();
    println!(
        "Software quality peaks when the superpixel scale matches the scene\n\
         (here a few hundred pixels per superpixel): coarser superpixels must\n\
         straddle ground-truth regions, while much finer ones start tracing the\n\
         corpus noise and lose exact-tolerance boundary recall. On the\n\
         accelerator only the K-proportional center update grows — at K = 20000\n\
         it alone breaks the 30 fps budget, which is why the paper's\n\
         center-update divider matters as much as the headline cluster\n\
         datapath."
    );
}
