//! Table 4 reproduction: the best accelerator configuration per
//! resolution — area, power, latency, throughput, energy/frame, and
//! fps/mm².

use sslic_bench::{header, rule};
use sslic_hw::dse::table4_reports;

fn main() {
    println!("Table 4 — performance summary of best S-SLIC configurations (K = 5000)");
    let reports = table4_reports();

    header("Table 4: best configurations");
    println!(
        "{:<12} {:>8} {:>11} {:>11} {:>12} {:>10} {:>12} {:>12}",
        "resolution", "buffer", "area (mm2)", "power (mW)", "latency (ms)", "fps", "mJ/frame", "fps/mm2"
    );
    rule(96);
    for r in &reports {
        println!(
            "{:<12} {:>8} {:>11.3} {:>11.1} {:>12.1} {:>10.1} {:>12.2} {:>12.0}",
            r.resolution.name,
            format!("{} kB", r.buffer_bytes / 1024),
            r.area_mm2,
            r.avg_power_mw,
            r.total_ms(),
            r.fps(),
            r.energy_mj_per_frame(),
            r.fps_per_mm2()
        );
    }
    rule(96);
    println!("paper rows, same order:");
    for (name, buf, area, power, lat, fps, mj, fpa) in [
        ("1920x1080", "4 kB", 0.066, 49.0, 32.8, 30.5, 1.6, 461.0),
        ("1280x768", "1 kB", 0.053, 46.0, 25.4, 39.0, 1.17, 747.0),
        ("640x480", "1 kB", 0.053, 50.0, 19.7, 50.3, 0.98, 963.0),
    ] {
        println!(
            "{:<12} {:>8} {:>11.3} {:>11.1} {:>12.1} {:>10.1} {:>12.2} {:>12.0}",
            name, buf, area, power, lat, fps, mj, fpa
        );
    }
    println!();
    println!(
        "Shape checks: every resolution is real-time (>30 fps); smaller frames are\n\
         faster but sublinearly (the K = 5000 center update does not shrink); area\n\
         drops with the 1 kB buffers; fps/mm2 rises monotonically toward VGA."
    );
}
