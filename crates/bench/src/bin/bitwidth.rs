//! §6.1 reproduction: the bit-width exploration. Runs S-SLIC with the
//! quantized distance datapath at widths from 4 to 12 bits plus the
//! floating-point reference, reporting undersegmentation error and
//! boundary recall deltas.
//!
//! Paper finding: at 8-bit fixed point, USE grows by only 0.003 and BR
//! shrinks by only 0.001 versus 64-bit floating point; below 8 bits the
//! error becomes noticeable.

use sslic_bench::{corpus, evaluate, fig2_params, header, rule, Scale};
use sslic_core::{DistanceMode, Segmenter};

fn main() {
    let scale = Scale::from_env();
    let data = corpus(scale);
    let (w, h) = scale.geometry();
    println!(
        "Section 6.1 — bit-width exploration, S-SLIC (0.5) over {} images at {w}x{h}",
        data.len()
    );

    let params = fig2_params(scale, 10);
    let float_ref = evaluate(&Segmenter::sslic_ppa(params, 2), &data);

    header("Bit-width sweep (deltas vs floating-point S-SLIC)");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "precision", "USE", "BR", "dUSE", "dBR"
    );
    rule(60);
    println!(
        "{:<12} {:>10.4} {:>10.4} {:>12} {:>12}",
        "float", float_ref.use_err, float_ref.boundary_recall, "-", "-"
    );
    let mut rows = Vec::new();
    for bits in [12u8, 10, 9, 8, 7, 6, 5, 4] {
        let seg = Segmenter::sslic_ppa(params, 2)
            .with_distance_mode(DistanceMode::quantized(bits));
        let r = evaluate(&seg, &data);
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>+12.4} {:>+12.4}",
            format!("{bits}-bit fixed"),
            r.use_err,
            r.boundary_recall,
            r.use_err - float_ref.use_err,
            r.boundary_recall - float_ref.boundary_recall
        );
        rows.push((bits, r));
    }
    rule(60);
    println!(
        "paper: 8-bit fixed point costs only +0.003 USE and -0.001 BR vs 64-bit\n\
         float; \"at 7-bit precision and below, the increase in error begins to\n\
         be noticeable\". The driver of the robustness: assignments depend on\n\
         *relative* distance comparisons, not absolute distance values."
    );

    // All fixed-point rows share the LUT color-conversion path; comparing
    // against the widest fixed row isolates the distance-width effect.
    let wide = rows[0].1;
    let r8 = rows.iter().find(|(b, _)| *b == 8).expect("8-bit row").1;
    let r6 = rows.iter().find(|(b, _)| *b == 6).expect("6-bit row").1;
    header("Distance-width effect in isolation (vs 12-bit fixed, same LUT color path)");
    println!(
        "8-bit: dUSE {:+.4}, dBR {:+.4}   |   6-bit: dUSE {:+.4}, dBR {:+.4}",
        r8.use_err - wide.use_err,
        r8.boundary_recall - wide.boundary_recall,
        r6.use_err - wide.use_err,
        r6.boundary_recall - wide.boundary_recall,
    );
    println!("8 bits is the knee: nearly free above, rapidly degrading below.");
}
