//! Ablation: the subsampling ratio itself. The paper evaluates S-SLIC at
//! ratios 0.5 and 0.25; this experiment sweeps `P = 1..8` at a matched
//! full-pass budget to chart where the returns diminish — the data a
//! designer would want before hard-wiring the ratio into silicon.

use sslic_bench::{corpus, evaluate, fig2_params, header, rule, Scale};
use sslic_core::Segmenter;
use sslic_hw::sim::{FrameSimulator, Resolution};

fn main() {
    let scale = Scale::from_env();
    let data = corpus(scale);
    println!(
        "Subsampling-ratio sweep over {} images (8 full passes of work each)",
        data.len()
    );

    header("Quality and software runtime vs ratio 1/P");
    println!(
        "{:<8} {:>7} {:>10} {:>10} {:>10} {:>16}",
        "P", "ratio", "time(ms)", "USE", "BR", "ctr updates/pass"
    );
    rule(66);
    for p in [1u32, 2, 3, 4, 6, 8] {
        // Matched work: P sub-iterations per full pass.
        let params = fig2_params(scale, 8 * p);
        let seg = if p == 1 {
            Segmenter::slic_ppa(params)
        } else {
            Segmenter::sslic_ppa(params, p)
        };
        let r = evaluate(&seg, &data);
        println!(
            "{:<8} {:>7.3} {:>10.2} {:>10.4} {:>10.4} {:>16}",
            p,
            1.0 / p as f64,
            r.time_ms,
            r.use_err,
            r.boundary_recall,
            p
        );
    }

    header("Accelerator DRAM traffic vs ratio (full HD, 9 steps)");
    println!("{:<8} {:>16} {:>18}", "P", "traffic (MB)", "reduction vs P=1");
    rule(46);
    let base = FrameSimulator::paper_default(Resolution::FULL_HD)
        .dram_traffic()
        .total_bytes() as f64;
    for p in [1u32, 2, 3, 4, 6, 8] {
        let t = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_subsets(p)
            .dram_traffic()
            .total_bytes() as f64;
        println!("{:<8} {:>16.1} {:>17.2}x", p, t / 1e6, base / t);
    }
    println!();
    println!(
        "The paper's choices sit where the curves bend: P = 2 delivers the\n\
         abstract's 1.8x bandwidth saving at the *best* measured quality, and\n\
         P = 4 still matches full SLIC. Beyond that the per-step subsets get\n\
         sparse enough that center estimates noise up and quality falls off a\n\
         cliff — more bandwidth saving exists (5x at P = 8) but not for free."
    );
}
