//! Table 1 reproduction: execution-time breakdown of SLIC and S-SLIC by
//! pipeline phase (color conversion / distance+min / center update /
//! other).

use sslic_bench::{corpus, header, rule, Scale};
use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};

fn main() {
    let scale = Scale::from_env();
    let data = corpus(scale);
    let (w, h) = scale.geometry();
    println!(
        "Table 1 — phase time breakdown over {} images at {w}x{h} (paper: Intel i7-4600M on Berkeley)",
        data.len()
    );

    let params = SlicParams::builder(scale.superpixels(900))
        .iterations(10)
        .build();

    let mut rows = Vec::new();
    for (name, seg) in [
        ("SLIC", Segmenter::slic_ppa(params)),
        ("S-SLIC", Segmenter::sslic_ppa(params, 2)),
    ] {
        let mut total = sslic_core::profile::PhaseBreakdown::new();
        for img in data.iter() {
            total.merge(
                seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new())
                    .breakdown(),
            );
        }
        rows.push((name, total.table1_percents()));
    }

    header("Table 1: time breakdown (%)");
    println!(
        "{:<14} {:>12} {:>16} {:>15} {:>8}",
        "", "color conv", "distance + min", "center update", "other"
    );
    rule(64);
    for (name, (cc, dm, cu, other)) in &rows {
        println!(
            "{:<14} {:>11.1}% {:>15.1}% {:>14.1}% {:>7.1}%",
            name, cc, dm, cu, other
        );
    }
    rule(64);
    println!(
        "{:<14} {:>11}% {:>15}% {:>14}% {:>7}%",
        "paper SLIC", 23.4, 65.9, 10.2, 0.5
    );
    println!(
        "{:<14} {:>11}% {:>15}% {:>14}% {:>7}%",
        "paper S-SLIC", 18.7, 59.7, 17.9, 3.7
    );
    println!();
    println!(
        "Shape checks: distance+min dominates both; S-SLIC shifts share from\n\
         distance+min toward center update (it updates centers more often per\n\
         full pass)."
    );
}
