//! Ablation: S-SLIC subset *layout*. The paper stresses that "choosing the
//! proper subsampling strategy is fundamental to guaranteeing the
//! convergence of the iterative algorithm" (§3) but only evaluates its
//! chosen one. This experiment compares three layouts at identical work:
//!
//! * `Interleaved` — raster-interleaved pixels (the OS-EM-style choice);
//! * `Checkerboard` — 2-D interleave;
//! * `Bands` — contiguous horizontal bands (the DMA-friendly strawman:
//!   clusters outside the active band see no members in a sub-iteration).

use sslic_bench::{corpus, evaluate, fig2_params, header, rule, Scale};
use sslic_core::subsample::SubsetStrategy;
use sslic_core::Segmenter;

fn main() {
    let scale = Scale::from_env();
    let data = corpus(scale);
    println!(
        "Subset-strategy ablation — S-SLIC over {} images, equal sub-iteration counts",
        data.len()
    );

    for subsets in [2u32, 4] {
        header(&format!(
            "S-SLIC (1/{subsets}) after {} sub-iterations",
            8 * subsets
        ));
        println!(
            "{:<14} {:>10} {:>10} {:>10}",
            "strategy", "time(ms)", "USE", "BR"
        );
        rule(48);
        for (name, strategy) in [
            ("interleaved", SubsetStrategy::Interleaved),
            ("checkerboard", SubsetStrategy::Checkerboard),
            ("bands", SubsetStrategy::Bands),
        ] {
            let params = fig2_params(scale, 8 * subsets);
            let seg = Segmenter::sslic_ppa(params, subsets).with_subset_strategy(strategy);
            let r = evaluate(&seg, &data);
            println!(
                "{:<14} {:>10.2} {:>10.4} {:>10.4}",
                name, r.time_ms, r.use_err, r.boundary_recall
            );
        }
    }
    println!();
    println!(
        "Expected shape: interleaved and checkerboard are equivalent (every\n\
         cluster sees members each sub-iteration); bands degrade because a\n\
         cluster's members arrive only once per round, starving its updates —\n\
         the failure mode the paper's round-robin pixel subsets avoid."
    );
}
