//! Table 2 reproduction: memory bandwidth and operation count per
//! iteration of the center-perspective (CPA) and pixel-perspective (PPA)
//! architectures at 1080p, K = 5000.
//!
//! Counters come from instrumented runs of one real iteration on a
//! synthetic 1920×1080 image; bytes use the double-precision software
//! layout the paper's CPU measurements reflect (`TrafficModel::sw_double`).

use sslic_bench::{header, rule};
use sslic_core::instrument::TrafficModel;
use sslic_core::{Algorithm, RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_image::synthetic::SyntheticImage;

fn main() {
    println!("Table 2 — CPA vs PPA, one iteration at 1920x1080, K = 5000");
    let img = SyntheticImage::builder(1920, 1080)
        .seed(42)
        .regions(24)
        .build();

    let params = SlicParams::builder(5000)
        .iterations(1)
        .perturb_seeds(false)
        .enforce_connectivity(false)
        .build();

    let model = TrafficModel::sw_double();
    let mut rows = Vec::new();
    for (name, algorithm) in [("CPA", Algorithm::SlicCpa), ("PPA", Algorithm::SlicPpa)] {
        let seg = Segmenter::new(params, algorithm).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let c = *seg.counters();
        let bytes = model.bytes(&c);
        rows.push((name, c, bytes));
    }

    header("Table 2: analysis of CPA and PPA implementations");
    println!(
        "{:<6} {:>22} {:>22} {:>18}",
        "", "memory traffic (MB/it)", "distance OPs (M/it)", "dist calcs (M/it)"
    );
    rule(72);
    for (name, c, bytes) in &rows {
        println!(
            "{:<6} {:>22.1} {:>22.1} {:>18.1}",
            name,
            bytes.total_mb(),
            c.distance_ops() as f64 / 1e6,
            c.distance_calcs as f64 / 1e6
        );
    }
    rule(72);
    println!("{:<6} {:>22} {:>22}", "paper CPA", "318 MB", "58M OPs");
    println!("{:<6} {:>22} {:>22}", "paper PPA", "100 MB", "130M OPs");

    let (_, cpa_c, cpa_b) = &rows[0];
    let (_, ppa_c, ppa_b) = &rows[1];
    println!();
    println!(
        "Measured ratios: CPA/PPA memory = {:.2}x (paper 3.18x), PPA/CPA ops = {:.2}x (paper 2.25x)",
        cpa_b.total_mb() / ppa_b.total_mb(),
        ppa_c.distance_ops() as f64 / cpa_c.distance_ops() as f64
    );
    println!(
        "Energy argument (paper §4.2): at 2500x DRAM-to-add energy, traffic dominates;\n\
         the PPA's {:.1} MB beats the CPA's {:.1} MB despite 2.25x more arithmetic —\n\
         hence the accelerator adopts the PPA.",
        ppa_b.total_mb(),
        cpa_b.total_mb()
    );
}
