//! Ablation: the color-conversion LUT design (§6.1's second half). Sweeps
//! the PWL segment count and intermediate precision of the hardware
//! RGB→CIELAB path, reporting worst-case channel error versus the float
//! reference and the resulting segmentation-quality impact — the analysis
//! behind the paper's choice of a 256-entry gamma LUT and an 8-segment
//! PWL cube root.

use sslic_bench::{corpus, header, rule, Scale};
use sslic_color::hw::{HwColorConfig, HwColorConverter};
use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_fixed::PwlLut;
use sslic_metrics::undersegmentation_error;

fn main() {
    // --- PWL segment sweep ------------------------------------------------
    header("PWL cube-root approximation error vs segment count");
    println!(
        "{:<10} {:>18} {:>18}",
        "segments", "max |err| uniform", "max |err| geometric"
    );
    rule(50);
    let f = |t: f64| t.cbrt();
    for segments in [2usize, 4, 8, 16, 32] {
        let uni = PwlLut::from_fn(segments, 0.008856, 1.0, f).max_abs_error(f, 20_000);
        let geo =
            PwlLut::from_fn_geometric(segments, 0.008856, 1.0, f).max_abs_error(f, 20_000);
        println!("{:<10} {:>18.5} {:>18.5}", segments, uni, geo);
    }
    println!(
        "The paper's 8 segments with geometric knots sit at the knee: doubling\n\
         to 16 buys little, halving to 4 triples the error."
    );

    // --- end-to-end channel error -----------------------------------------
    header("Worst-case 8-bit channel error vs float reference (sampled RGB cube)");
    println!(
        "{:<28} {:>8} {:>8} {:>8}",
        "configuration", "dL", "da", "db"
    );
    rule(56);
    let configs = [
        ("paper (12-bit, 8 segments)", HwColorConfig::default()),
        (
            "coarse (8-bit, 8 segments)",
            HwColorConfig {
                gamma_frac_bits: 8,
                matrix_frac_bits: 8,
                pwl_frac_bits: 8,
                ..HwColorConfig::default()
            },
        ),
        (
            "4 segments",
            HwColorConfig {
                pwl_segments: 4,
                ..HwColorConfig::default()
            },
        ),
        (
            "2 segments",
            HwColorConfig {
                pwl_segments: 2,
                ..HwColorConfig::default()
            },
        ),
        (
            "16 segments",
            HwColorConfig {
                pwl_segments: 16,
                ..HwColorConfig::default()
            },
        ),
    ];
    for (name, config) in &configs {
        let err = HwColorConverter::new(*config).max_code_error_vs_float(17);
        println!(
            "{:<28} {:>8} {:>8} {:>8}",
            name, err[0], err[1], err[2]
        );
    }

    // --- segmentation impact ------------------------------------------------
    header("Segmentation impact of the LUT path (USE deltas, small corpus)");
    let scale = Scale::Quick;
    let data = corpus(scale);
    let params = SlicParams::builder(scale.superpixels(900))
        .compactness(sslic_bench::COMPACTNESS)
        .iterations(8)
        .build();
    let float_ref: f64 = data
        .iter()
        .map(|img| {
            let seg = Segmenter::sslic_ppa(params, 2).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            undersegmentation_error(seg.labels(), &img.ground_truth)
        })
        .sum::<f64>()
        / data.len() as f64;
    let lut: f64 = data
        .iter()
        .map(|img| {
            let seg = Segmenter::sslic_ppa(params, 2)
                .with_distance_mode(sslic_core::DistanceMode::quantized(12))
                .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            undersegmentation_error(seg.labels(), &img.ground_truth)
        })
        .sum::<f64>()
        / data.len() as f64;
    println!(
        "float conversion: USE {float_ref:.4}   LUT conversion (12-bit distances): USE {lut:.4}   delta {:+.4}",
        lut - float_ref
    );
    println!(
        "The LUT color path costs a few thousandths of USE — consistent with the\n\
         paper's claim that the 8-bit LUT design does not visibly hurt quality."
    );
}
