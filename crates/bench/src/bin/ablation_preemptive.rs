//! Ablation: Preemptive SLIC × S-SLIC — "While the two techniques could be
//! combined, the analysis of this combined algorithm is beyond the scope
//! of this work" (paper §8). This experiment runs that analysis: all four
//! quadrants at equal center-update budgets, reporting quality, wall
//! time, and distance-computation counts (the quantity both techniques
//! try to cut).

use sslic_bench::{corpus, header, rule, Scale};
use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_metrics::{boundary_recall, undersegmentation_error};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let data = corpus(scale);
    println!(
        "Preemptive × Subsampled ablation over {} images (preemption threshold 0.5 px)",
        data.len()
    );

    let base = |iterations: u32| {
        SlicParams::builder(scale.superpixels(900))
            .compactness(sslic_bench::COMPACTNESS)
            .iterations(iterations)
            .build()
    };
    // Equal full-pass budgets: 10 full passes for SLIC, 20 half passes for
    // S-SLIC (0.5).
    let candidates: Vec<(&str, Segmenter)> = vec![
        ("SLIC", Segmenter::slic_ppa(base(10))),
        ("Preemptive SLIC", Segmenter::slic_ppa(base(10)).with_preemption(0.5)),
        ("S-SLIC (0.5)", Segmenter::sslic_ppa(base(20), 2)),
        (
            "Preemptive S-SLIC",
            Segmenter::sslic_ppa(base(20), 2).with_preemption(0.5),
        ),
    ];

    header("Combined-technique analysis (equal full-pass budgets)");
    println!(
        "{:<18} {:>10} {:>12} {:>9} {:>9} {:>8}",
        "algorithm", "time(ms)", "dist calcs", "USE", "BR", "frozen"
    );
    rule(72);
    let mut dist_counts = Vec::new();
    for (name, seg) in &candidates {
        let (mut t, mut u, mut br, mut dc, mut frozen) = (0.0f64, 0.0, 0.0, 0u64, 0usize);
        for img in data.iter() {
            let start = Instant::now();
            let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            t += start.elapsed().as_secs_f64() * 1e3;
            u += undersegmentation_error(out.labels(), &img.ground_truth);
            br += boundary_recall(out.labels(), &img.ground_truth, sslic_bench::BR_TOLERANCE);
            dc += out.counters().distance_calcs;
            frozen += out.frozen_clusters();
        }
        let n = data.len() as f64;
        println!(
            "{:<18} {:>10.2} {:>11.1}M {:>9.4} {:>9.4} {:>8.0}",
            name,
            t / n,
            dc as f64 / n / 1e6,
            u / n,
            br / n,
            frozen as f64 / n
        );
        dist_counts.push(dc);
    }
    rule(72);
    println!(
        "Distance-work savings: preemption alone {:.0}%, subsampling alone {:.0}%\n\
         (vs same-budget SLIC it is work-neutral but converges per half-pass),\n\
         combined {:.0}% — the techniques compose because they cut different\n\
         axes: preemption skips converged *clusters*, subsampling skips\n\
         *pixels* per step.",
        100.0 * (1.0 - dist_counts[1] as f64 / dist_counts[0] as f64),
        100.0 * (1.0 - dist_counts[2] as f64 / dist_counts[0] as f64),
        100.0 * (1.0 - dist_counts[3] as f64 / dist_counts[0] as f64),
    );
}
