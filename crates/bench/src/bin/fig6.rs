//! Figure 6 reproduction: full-HD frame time versus per-channel scratchpad
//! size, with the 30 fps real-time threshold.

use sslic_bench::{header, rule};
use sslic_hw::dse::buffer_size_sweep;

fn main() {
    println!(
        "Figure 6 — frame time vs channel buffer size; 1920x1080, K = 5000,\n\
         9-9-6 cluster unit, 256 b/cycle peak DRAM bandwidth, 50-cycle latency"
    );
    let sweep = buffer_size_sweep(&[1, 2, 4, 8, 16, 32, 64, 128]);

    header("Fig 6: processing time vs scratchpad size per channel");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>14}",
        "buffer", "time (ms)", "fps", "mem (ms)", "real-time?"
    );
    rule(64);
    for (kb, report) in &sweep {
        println!(
            "{:<10} {:>12.2} {:>10.1} {:>12.2} {:>14}",
            format!("{kb} kB"),
            report.total_ms(),
            report.fps(),
            report.memory_ms,
            if report.is_real_time() { "yes (>30fps)" } else { "no" }
        );
    }
    rule(64);
    println!(
        "paper: time falls from ~34.3 ms at 1 kB to 32.8 ms at 4 kB (the chosen\n\
         point, 30.5 fps) and flattens beyond; 4 kB is the smallest real-time\n\
         buffer, with memory access ~35% of execution time."
    );

    let four_kb = sweep.iter().find(|(kb, _)| *kb == 4).expect("4 kB in sweep");
    println!();
    println!(
        "At 4 kB: memory share = {:.0}% of total ({:.2} of {:.2} ms)",
        100.0 * four_kb.1.memory_ms / four_kb.1.total_ms(),
        four_kb.1.memory_ms,
        four_kb.1.total_ms()
    );
}
