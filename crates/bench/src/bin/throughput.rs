//! Thread-scaling throughput sweep of the banded parallel engine.
//!
//! Sweeps thread count × image size over the paper's primary
//! configuration (S-SLIC PPA, 2 subsets, quantized 8-bit datapath) and
//! reports frames/sec and speedup vs 1 thread as markdown. The JSON
//! report carries only the *deterministic* outputs — the configuration
//! and one label checksum per image size — so two invocations with
//! different `--threads` lists produce byte-identical JSON (CI diffs a
//! 1-thread run against a 4-thread run to enforce the engine's
//! thread-count-invariance contract). The binary additionally verifies
//! in-process that every swept thread count reproduces the same checksum.
//!
//! Usage:
//!
//! ```text
//! throughput [--threads 1,2,4,8] [--sizes 320x240,1280x720]
//!            [--frames N] [--superpixels K] [--iterations N]
//!            [--mode oneshot|session|fleet] [--kernel auto|scalar|swar]
//!            [--json PATH] [--md PATH] [--report PATH]
//! ```
//!
//! `--kernel` pins the assign backend for the timed sweep (the labels —
//! and hence the JSON checksums — are bit-identical either way; only the
//! wall-clock changes), which is how EXPERIMENTS.md measures the
//! scalar-vs-SWAR assign-phase speedup.
//!
//! `--mode session` drives every frame through a persistent
//! [`sslic_core::SegmenterSession`] via `run_into` (cold per frame, zero
//! steady-state allocations) instead of the one-shot `Segmenter::run`.
//! `--mode fleet` drives every frame through a one-slot
//! [`sslic_core::SessionFleet`] — the warm-up frame seeds the stream
//! cold, the timed frames then run the fleet's steady state (per-stream
//! warm starts, zero allocations). The warm-up frame of every mode is
//! bit-identical by contract, so the JSON report is byte-identical
//! across modes as well as thread lists — CI diffs the modes against
//! each other to enforce it.
//!
//! `--report` additionally writes a structured [`sslic_obs::RunReport`]
//! from one traced deterministic 1-thread run of the first size —
//! wall-clock phase timings are zeroed, so the report bytes, like the
//! JSON report, depend only on the workload.
//!
//! `--bench-json` writes the *performance-trajectory seed*: per-size
//! label checksums, operation counters, and modeled DRAM traffic — every
//! field a pure function of the workload, no wall-clock anywhere. The
//! repo commits one (`BENCH_7.json`) and CI regenerates and byte-diffs
//! it, so any change to the engine's workload shape (more distance
//! calculations, more traffic) must be committed deliberately.

use std::env;
use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use sslic_core::{
    build_run_report, label_checksum, DistanceMode, FleetConfig, Kernel, RunOptions,
    SegmentRequest, Segmenter, SessionFleet, SlicParams, StreamId,
};
use sslic_image::synthetic::SyntheticImage;
use sslic_image::Plane;
use sslic_obs::Recorder;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Oneshot,
    Session,
    Fleet,
}

impl Mode {
    fn as_str(self) -> &'static str {
        match self {
            Mode::Oneshot => "oneshot",
            Mode::Session => "session",
            Mode::Fleet => "fleet",
        }
    }
}

struct Cell {
    threads: usize,
    ms_per_frame: f64,
    fps: f64,
    speedup: f64,
}

struct SizeResult {
    width: usize,
    height: usize,
    checksum: u64,
    cells: Vec<Cell>,
}

fn parse_threads(spec: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        match part.trim().parse::<usize>() {
            Ok(n) if n > 0 => out.push(n),
            _ => return None,
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn parse_sizes(spec: &str) -> Option<Vec<(usize, usize)>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let (w, h) = part.trim().split_once('x')?;
        match (w.parse::<usize>(), h.parse::<usize>()) {
            (Ok(w), Ok(h)) if w > 0 && h > 0 => out.push((w, h)),
            _ => return None,
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn main() -> ExitCode {
    let mut threads = vec![1usize, 2, 4, 8];
    let mut sizes = vec![(320usize, 240usize), (1280, 720)];
    let mut frames = 3usize;
    let mut superpixels = 600usize;
    let mut iterations = 5u32;
    let mut mode = Mode::Oneshot;
    let mut kernel = Kernel::Auto;
    let mut json_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut bench_json_path: Option<String> = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => match args.next().as_deref().and_then(parse_threads) {
                Some(t) => threads = t,
                None => return usage("--threads needs a comma list of positive integers"),
            },
            "--sizes" => match args.next().as_deref().and_then(parse_sizes) {
                Some(s) => sizes = s,
                None => return usage("--sizes needs a comma list like 320x240,1280x720"),
            },
            "--frames" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => frames = n,
                _ => return usage("--frames needs a positive integer"),
            },
            "--superpixels" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => superpixels = n,
                _ => return usage("--superpixels needs a positive integer"),
            },
            "--iterations" => match args.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n > 0 => iterations = n,
                _ => return usage("--iterations needs a positive integer"),
            },
            "--mode" => match args.next().as_deref() {
                Some("oneshot") => mode = Mode::Oneshot,
                Some("session") => mode = Mode::Session,
                Some("fleet") => mode = Mode::Fleet,
                _ => return usage("--mode needs `oneshot`, `session`, or `fleet`"),
            },
            "--kernel" => match args.next().as_deref().map(str::parse::<Kernel>) {
                Some(Ok(k)) => kernel = k,
                _ => return usage("--kernel needs `auto`, `scalar`, or `swar`"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => return usage("--json needs a path"),
            },
            "--md" => match args.next() {
                Some(p) => md_path = Some(p),
                None => return usage("--md needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => return usage("--report needs a path"),
            },
            "--bench-json" => match args.next() {
                Some(p) => bench_json_path = Some(p),
                None => return usage("--bench-json needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // 1 thread must always be present: it is the speedup baseline.
    if !threads.contains(&1) {
        threads.insert(0, 1);
    }
    eprintln!(
        "throughput: {} sizes × {} thread counts, {frames} frames each, K={superpixels}, \
         {iterations} iters, {} mode, {} kernel",
        sizes.len(),
        threads.len(),
        mode.as_str(),
        kernel.as_str(),
    );

    let mut results = Vec::new();
    for &(w, h) in &sizes {
        let img = SyntheticImage::builder(w, h).seed(2024).regions(12).build();
        let mut cells: Vec<Cell> = Vec::new();
        let mut checksum: Option<u64> = None;
        for &t in &threads {
            let params = SlicParams::builder(superpixels)
                .iterations(iterations)
                .threads(t)
                .kernel(kernel)
                .build();
            let seg = Segmenter::sslic_ppa(params, 2)
                .with_distance_mode(DistanceMode::quantized(8));
            let mut session = (mode == Mode::Session).then(|| {
                (seg.session(w, h), Plane::filled(w, h, 0u32))
            });
            let mut fleet =
                (mode == Mode::Fleet).then(|| SessionFleet::new(&seg, w, h, FleetConfig::default()));
            // One untimed warm-up run (page-in, allocator steady state);
            // its labels also feed the cross-thread-count equality check.
            // In fleet mode this is the stream's cold frame — bit-identical
            // to the other modes' cold run by contract.
            let sum = match (session.as_mut(), fleet.as_mut()) {
                (Some((sess, out)), _) => {
                    sess.run_into(SegmentRequest::Rgb(&img.rgb), &RunOptions::new(), out);
                    label_checksum(out)
                }
                (_, Some(fl)) => {
                    fl.run(StreamId(0), SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                    label_checksum(fl.stream_labels(StreamId(0)).expect("stream just ran"))
                }
                _ => {
                    let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                    label_checksum(out.labels())
                }
            };
            match checksum {
                None => checksum = Some(sum),
                Some(expect) if expect != sum => {
                    eprintln!(
                        "throughput: {w}x{h}: labels at {t} threads diverge from baseline \
                         ({sum:#018x} vs {expect:#018x}) — determinism contract broken"
                    );
                    return ExitCode::FAILURE;
                }
                Some(_) => {}
            }
            let start = Instant::now();
            for _ in 0..frames {
                match (session.as_mut(), fleet.as_mut()) {
                    (Some((sess, out)), _) => {
                        sess.run_into(SegmentRequest::Rgb(&img.rgb), &RunOptions::new(), out);
                    }
                    (_, Some(fl)) => {
                        fl.run(StreamId(0), SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                    }
                    _ => {
                        let _ = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                    }
                }
            }
            let ms_per_frame = start.elapsed().as_secs_f64() * 1e3 / frames as f64;
            let fps = 1e3 / ms_per_frame;
            let speedup = match cells.first() {
                Some(base) => base.ms_per_frame / ms_per_frame,
                None => 1.0,
            };
            cells.push(Cell {
                threads: t,
                ms_per_frame,
                fps,
                speedup,
            });
        }
        results.push(SizeResult {
            width: w,
            height: h,
            checksum: checksum.unwrap_or(0),
            cells,
        });
    }

    let json = to_json(superpixels, iterations, &results);
    let md = to_markdown(superpixels, iterations, frames, &results);

    if let Some(path) = &json_path {
        if let Err(e) = fs::write(path, &json) {
            eprintln!("throughput: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &md_path {
        if let Err(e) = fs::write(path, &md) {
            eprintln!("throughput: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &report_path {
        // Pinned to 1 thread regardless of the swept list, so the report
        // bytes are invariant across invocations (CI byte-diffs them).
        let (w, h) = sizes[0];
        let img = SyntheticImage::builder(w, h).seed(2024).regions(12).build();
        let params = SlicParams::builder(superpixels)
            .iterations(iterations)
            .threads(1)
            .build();
        let seg = Segmenter::sslic_ppa(params, 2).with_distance_mode(DistanceMode::quantized(8));
        let rec = Recorder::deterministic();
        let out = seg.run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_recorder(&rec),
        );
        let report = build_run_report(&seg, &out, true, Some(&rec), 0);
        if let Err(e) = fs::write(path, report.to_json()) {
            eprintln!("throughput: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &bench_json_path {
        // The perf-trajectory seed: 1-thread runs so the counters (already
        // thread-invariant by the determinism contract) come off the
        // simplest schedule. No timings — the seed is byte-reproducible.
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"sslic-bench-seed-v1\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"algorithm\": \"sslic_ppa\", \"subsets\": 2, \
             \"distance\": \"quantized8\", \"superpixels\": {superpixels}, \
             \"iterations\": {iterations}, \"seed\": 2024}},\n"
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, &(w, h)) in sizes.iter().enumerate() {
            let img = SyntheticImage::builder(w, h).seed(2024).regions(12).build();
            let params = SlicParams::builder(superpixels)
                .iterations(iterations)
                .threads(1)
                .kernel(kernel)
                .build();
            let seg =
                Segmenter::sslic_ppa(params, 2).with_distance_mode(DistanceMode::quantized(8));
            // The seed frame is cold in every mode, so the counters and
            // checksum below are mode-invariant — the committed seeds stay
            // byte-identical whether regenerated via oneshot or fleet. The
            // kernel flag is honored too: the SWAR path's bit-identity
            // contract means a `--kernel swar` regeneration must reproduce
            // the scalar seed exactly (CI pins this).
            let (sum, c) = match mode {
                Mode::Fleet => {
                    let mut fl = SessionFleet::new(&seg, w, h, FleetConfig::default());
                    let report =
                        fl.run(StreamId(0), SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                    let c = *report.counters();
                    (
                        label_checksum(fl.stream_labels(StreamId(0)).expect("stream just ran")),
                        c,
                    )
                }
                _ => {
                    let res = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                    (label_checksum(res.labels()), *res.counters())
                }
            };
            let hw = sslic_core::instrument::TrafficModel::hw_8bit().bytes(&c);
            out.push_str(&format!(
                concat!(
                    "    {{\"width\": {}, \"height\": {}, \"label_checksum\": \"{:#018x}\", ",
                    "\"distance_calcs\": {}, \"pixel_color_reads\": {}, ",
                    "\"label_writes\": {}, \"center_updates\": {}, ",
                    "\"sub_iterations\": {}, \"hw8_read_bytes\": {}, ",
                    "\"hw8_written_bytes\": {}}}{}\n"
                ),
                w,
                h,
                sum,
                c.distance_calcs,
                c.pixel_color_reads,
                c.label_writes,
                c.center_updates,
                c.sub_iterations,
                hw.read,
                hw.written,
                if i + 1 < sizes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = fs::write(path, out) {
            eprintln!("throughput: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if json_path.is_none() && md_path.is_none() {
        print!("{md}");
    } else {
        for r in &results {
            for c in &r.cells {
                println!(
                    "{}x{} threads={} {:.2} ms/frame {:.1} fps speedup={:.2}",
                    r.width, r.height, c.threads, c.ms_per_frame, c.fps, c.speedup
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// Deterministic report: configuration + per-size label checksums only.
/// Timings and the swept thread list are deliberately excluded so the
/// bytes depend on nothing but the engine's output.
fn to_json(superpixels: usize, iterations: u32, results: &[SizeResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"algorithm\": \"sslic_ppa\", \"subsets\": 2, \"distance\": \"quantized8\", \
         \"superpixels\": {superpixels}, \"iterations\": {iterations}, \"seed\": 2024}},\n"
    ));
    s.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"width\": {}, \"height\": {}, \"label_checksum\": \"{:#018x}\"}}{}\n",
            r.width,
            r.height,
            r.checksum,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn to_markdown(
    superpixels: usize,
    iterations: u32,
    frames: usize,
    results: &[SizeResult],
) -> String {
    let mut s = String::new();
    s.push_str("# Thread-scaling throughput\n\n");
    s.push_str(&format!(
        "S-SLIC PPA (2 subsets, quantized 8-bit), K = {superpixels}, {iterations} iterations, \
         {frames} timed frames per cell. Labels are bit-identical across all thread counts \
         (verified per size, checksum below).\n\n"
    ));
    for r in results {
        s.push_str(&format!(
            "## {}x{} — label checksum {:#018x}\n\n",
            r.width, r.height, r.checksum
        ));
        s.push_str("| threads | ms/frame | frames/sec | speedup vs 1 thread |\n");
        s.push_str("|--------:|---------:|-----------:|--------------------:|\n");
        for c in &r.cells {
            s.push_str(&format!(
                "| {} | {:.2} | {:.1} | {:.2}x |\n",
                c.threads, c.ms_per_frame, c.fps, c.speedup
            ));
        }
        s.push('\n');
    }
    s
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("throughput: {err}");
    }
    eprintln!(
        "usage: throughput [--threads 1,2,4,8] [--sizes 320x240,1280x720] [--frames N] \
         [--superpixels K] [--iterations N] [--mode oneshot|session|fleet] \
         [--kernel auto|scalar|swar] [--json PATH] [--md PATH] [--report PATH] \
         [--bench-json PATH]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
