//! Quality-vs-fault-rate sweep over protection schemes.
//!
//! Runs the deterministic fault sweep of `sslic-fault` on a synthetic
//! scene — the engine with LUT/pixel/center corruption, the functional
//! accelerator with scratchpad/DRAM corruption under unprotected, parity,
//! and SECDED memories — and writes JSON and markdown reports.
//!
//! Usage:
//!
//! ```text
//! fault_sweep [--seed N] [--small | --full] [--json PATH] [--md PATH]
//!             [--report PATH] [--threads N] [--recovery N]
//! ```
//!
//! Two invocations with the same seed and scale produce byte-identical
//! reports (CI diffs them to enforce the determinism contract).
//! `--report` additionally writes a structured [`sslic_obs::RunReport`]
//! from one traced deterministic engine run under pixel-feature and
//! sigma-register fault injection at the sweep's seed — its
//! `injected_words` field carries the number of corrupted words, and
//! timings are zeroed, so the report bytes are deterministic too.
//! `--threads` sets the traced run's worker count and `--recovery` arms a
//! bounded retry policy for it: CI diffs the report across thread counts
//! to prove guards, retries, and checksums are thread-invariant.

use std::env;
use std::fs;
use std::process::ExitCode;

use sslic_core::{
    build_run_report, DistanceMode, RecoveryPolicy, RunOptions, SegmentRequest, Segmenter,
    SlicParams,
};
use sslic_fault::{
    run_sweep, to_json, to_markdown, EngineFaults, FaultKind, FaultPlan, FaultSite, SweepConfig,
};
use sslic_image::synthetic::SyntheticImage;
use sslic_obs::Recorder;

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut full = false;
    let mut json_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut threads = 1usize;
    let mut recovery: Option<u32> = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => seed = v,
                _ => return usage("--seed needs an unsigned integer"),
            },
            "--small" => full = false,
            "--full" => full = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => return usage("--json needs a path"),
            },
            "--md" => match args.next() {
                Some(p) => md_path = Some(p),
                None => return usage("--md needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => return usage("--report needs a path"),
            },
            "--threads" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => threads = v,
                _ => return usage("--threads needs a positive integer"),
            },
            "--recovery" => match args.next().map(|v| v.parse::<u32>()) {
                Some(Ok(v)) => recovery = Some(v),
                _ => return usage("--recovery needs an unsigned retry budget"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config = if full {
        SweepConfig::full(seed)
    } else {
        SweepConfig::smoke(seed)
    };
    let points = config.rates_ppm.len() * (config.protections.len() + 1);
    eprintln!(
        "fault_sweep: seed {seed}, {} scale, {} points",
        if full { "full" } else { "small" },
        points,
    );

    let result = run_sweep(&config);

    if let Some(path) = &json_path {
        if let Err(e) = fs::write(path, to_json(&result)) {
            eprintln!("fault_sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &md_path {
        if let Err(e) = fs::write(path, to_markdown(&result)) {
            eprintln!("fault_sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &report_path {
        // One traced engine run under pixel-feature corruption: the
        // RunReport carries the run's counters, the trace's histograms,
        // and the injected-word tally from the fault adapter.
        let img = SyntheticImage::builder(160, 120).seed(seed).regions(8).build();
        let plan = FaultPlan::new(seed)
            .with(FaultSite::PixelFeature, FaultKind::SingleBitFlip, 10_000)
            .with(FaultSite::SigmaRegister, FaultKind::SingleBitFlip, 4_000);
        let rec = Recorder::deterministic();
        let hooks = EngineFaults::new(&plan).with_recorder(&rec);
        let params = SlicParams::builder(150)
            .iterations(5)
            .threads(threads)
            .build();
        // Quantized datapath: pixel-feature corruption strikes the 8-bit
        // Lab codes, which only exist on the accelerator's LUT path.
        let seg = Segmenter::sslic_ppa(params, 2)
            .with_distance_mode(DistanceMode::quantized(8));
        let policy = recovery.map(RecoveryPolicy::new);
        let mut opts = RunOptions::new().with_faults(&hooks).with_recorder(&rec);
        if let Some(p) = &policy {
            opts = opts.with_recovery(p);
        }
        let out = seg.run(SegmentRequest::Rgb(&img.rgb), &opts);
        let report = build_run_report(&seg, &out, true, Some(&rec), hooks.injected_words());
        if let Err(e) = fs::write(path, report.to_json()) {
            eprintln!("fault_sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if json_path.is_none() && md_path.is_none() {
        print!("{}", to_markdown(&result));
    } else {
        // A short stdout summary so CI logs show the shape of the curves.
        for p in &result.hw {
            println!(
                "hw rate={} prot={} use={:.4} br={:.4} corrupted={} retries={}",
                p.rate_ppm,
                p.protection.name(),
                p.undersegmentation_error,
                p.boundary_recall,
                p.stats.corrupted_reads(),
                p.retry_bursts,
            );
        }
        for p in &result.engine {
            println!(
                "engine rate={} use={:.4} br={:.4} status={} repairs={}",
                p.rate_ppm,
                p.undersegmentation_error,
                p.boundary_recall,
                if p.degraded { "degraded" } else { "ok" },
                p.repairs,
            );
        }
        for p in &result.recovered {
            println!(
                "recovered rate={} use={:.4} br={:.4} outcome={} guards={} retries={}",
                p.rate_ppm,
                p.undersegmentation_error,
                p.boundary_recall,
                p.outcome,
                p.guards_fired,
                p.retries,
            );
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("fault_sweep: {err}");
    }
    eprintln!(
        "usage: fault_sweep [--seed N] [--small | --full] [--json PATH] [--md PATH] \
         [--report PATH] [--threads N] [--recovery N]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
