//! Figure 2 reproduction: quality-versus-runtime curves for SLIC,
//! S-SLIC (0.5), and S-SLIC (0.25) at K = 900 superpixels.
//!
//! Prints the (time, undersegmentation error) series of Fig. 2a and the
//! (time, boundary recall) series of Fig. 2b, then the paper's headline
//! crossing analysis: how much sooner S-SLIC reaches the quality SLIC
//! converges to.

use sslic_bench::{corpus, evaluate, fig2_params, header, rule, CorpusResult, Scale};
use sslic_core::Segmenter;

struct Series {
    name: &'static str,
    points: Vec<(u32, CorpusResult)>, // (center-update steps, result)
}

fn main() {
    let scale = Scale::from_env();
    let data = corpus(scale);
    let (w, h) = scale.geometry();
    println!(
        "Figure 2 — SLIC vs pixel-perspective S-SLIC, {} images at {w}x{h}, K = {} (paper: 100 Berkeley images, K = 900)",
        data.len(),
        scale.superpixels(900),
    );

    // SLIC full iterations t cost ~1 pass each; S-SLIC(1/P) sub-iterations
    // cost ~1/P pass each, so sweep P× as many steps to cover the same
    // time range.
    let sweeps: [(&'static str, u32, Vec<u32>); 3] = [
        ("SLIC", 1, vec![1, 2, 3, 4, 6, 8, 10]),
        ("S-SLIC (0.5)", 2, vec![2, 3, 4, 6, 8, 12, 16, 20]),
        ("S-SLIC (0.25)", 4, vec![4, 6, 8, 12, 16, 24, 32, 40]),
    ];

    let mut series = Vec::new();
    for (name, subsets, steps) in sweeps {
        let points = steps
            .iter()
            .map(|&t| {
                let params = fig2_params(scale, t);
                let seg = if subsets == 1 {
                    Segmenter::slic_ppa(params)
                } else {
                    Segmenter::sslic_ppa(params, subsets)
                };
                (t, evaluate(&seg, &data))
            })
            .collect();
        series.push(Series { name, points });
    }

    header("Fig 2a: undersegmentation error vs runtime");
    println!("{:<16} {:>6} {:>10} {:>10}", "algorithm", "steps", "time(ms)", "USE");
    rule(60);
    for s in &series {
        for (t, r) in &s.points {
            println!(
                "{:<16} {:>6} {:>10.2} {:>10.4}",
                s.name, t, r.time_ms, r.use_err
            );
        }
    }

    header("Fig 2b: boundary recall vs runtime");
    println!("{:<16} {:>6} {:>10} {:>10}", "algorithm", "steps", "time(ms)", "BR");
    rule(60);
    for s in &series {
        for (t, r) in &s.points {
            println!(
                "{:<16} {:>6} {:>10.2} {:>10.4}",
                s.name, t, r.time_ms, r.boundary_recall
            );
        }
    }

    // Headline analysis: time for each algorithm to reach the USE/BR that
    // SLIC attains at convergence (its last sweep point).
    let slic_final = series[0].points.last().expect("nonempty sweep").1;
    header("Crossing analysis (paper: S-SLIC reaches SLIC quality ~25% sooner in USE, ~15% in BR)");
    let t_slic_use = time_to_reach_use(&series[0], slic_final.use_err);
    let t_slic_br = time_to_reach_br(&series[0], slic_final.boundary_recall);
    for s in &series {
        let t_use = time_to_reach_use(s, slic_final.use_err);
        let t_br = time_to_reach_br(s, slic_final.boundary_recall);
        println!(
            "{:<16} time-to-SLIC-USE: {} | time-to-SLIC-BR: {}",
            s.name,
            fmt_saving(t_use, t_slic_use),
            fmt_saving(t_br, t_slic_br),
        );
    }
}

fn time_to_reach_use(s: &Series, target: f64) -> Option<f64> {
    s.points
        .iter()
        .find(|(_, r)| r.use_err <= target * 1.002)
        .map(|(_, r)| r.time_ms)
}

fn time_to_reach_br(s: &Series, target: f64) -> Option<f64> {
    s.points
        .iter()
        .find(|(_, r)| r.boundary_recall >= target * 0.998)
        .map(|(_, r)| r.time_ms)
}

fn fmt_saving(t: Option<f64>, baseline: Option<f64>) -> String {
    match (t, baseline) {
        (Some(t), Some(b)) if b > 0.0 => {
            format!("{t:.1} ms ({:+.0}% vs SLIC)", (t / b - 1.0) * 100.0)
        }
        (Some(t), _) => format!("{t:.1} ms"),
        (None, _) => "not reached in sweep".to_string(),
    }
}
