//! Table 5 reproduction: Tesla K20 and Tegra K1 GPU baselines versus the
//! S-SLIC accelerator — power, latency, normalized energy per frame, and
//! the headline efficiency ratios.

use sslic_bench::{header, rule};
use sslic_hw::gpu::{efficiency_ratio, GpuBaseline, TECH_NORMALIZATION};
use sslic_hw::sim::{FrameSimulator, Resolution};

fn main() {
    println!("Table 5 — GPU, mobile GPU, and S-SLIC accelerator (1920x1080, K = 5000)");
    let accel = FrameSimulator::paper_default(Resolution::FULL_HD).simulate();
    let gpus = GpuBaseline::table5();

    header("Table 5: performance comparison");
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "", "Tesla K20", "TK1", "This work"
    );
    rule(72);
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "algorithm", gpus[0].algorithm, gpus[1].algorithm, "S-SLIC"
    );
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "technology",
        format!("{}nm ({}V)", gpus[0].technology_nm, gpus[0].vdd),
        format!("{}nm ({}V)", gpus[1].technology_nm, gpus[1].vdd),
        "16nm (0.72V)"
    );
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "on-chip memory",
        format!("{} kB", gpus[0].on_chip_kb),
        format!("{} kB", gpus[1].on_chip_kb),
        "20 kB"
    );
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "core count", gpus[0].cores, gpus[1].cores, 1
    );
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "average power",
        format!("{:.0} W", gpus[0].avg_power_w),
        format!("{:.0} mW", gpus[1].avg_power_w * 1e3),
        format!("{:.0} mW", accel.avg_power_mw)
    );
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        format!("power (normalized /{TECH_NORMALIZATION:.2})"),
        format!("{:.0} W", gpus[0].normalized_power_w()),
        format!("{:.0} mW", gpus[1].normalized_power_w() * 1e3),
        format!("{:.0} mW", accel.avg_power_mw)
    );
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "latency",
        format!("{:.1} ms", gpus[0].latency_ms),
        format!("{:.0} ms", gpus[1].latency_ms),
        format!("{:.1} ms", accel.total_ms())
    );
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "energy/frame (normalized)",
        format!("{:.0} mJ", gpus[0].normalized_energy_mj()),
        format!("{:.0} mJ", gpus[1].normalized_energy_mj()),
        format!("{:.2} mJ", accel.energy_mj_per_frame())
    );
    rule(72);
    println!(
        "paper: 86W/39W, 22.3 ms, 867 mJ (K20); 332/150 mW, 2713 ms, 407 mJ (TK1);\n\
         49 mW, 32.8 ms, 1.6 mJ (this work)."
    );
    println!();
    println!(
        "Headline ratios: {:.0}x more energy-efficient than K20 (paper: >500x),\n\
         {:.0}x more than TK1 (paper: >250x). TK1 misses real time by {:.0}x\n\
         (paper: 80x); the accelerator runs {:.1} fps in {:.3} mm2.",
        efficiency_ratio(&gpus[0], &accel),
        efficiency_ratio(&gpus[1], &accel),
        gpus[1].latency_ms / (1000.0 / 30.0),
        accel.fps(),
        accel.area_mm2,
    );
}
