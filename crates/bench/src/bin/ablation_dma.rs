//! Ablation: double-buffered DMA. The paper's Figure 6 charges memory time
//! in series with compute; this experiment asks what a second scratchpad
//! bank per channel would buy — overlapping tile `i+1`'s prefetch with
//! tile `i`'s compute — and what it would cost in SRAM area.

use sslic_bench::{header, rule};
use sslic_hw::dma::TileSchedule;
use sslic_hw::model;
use sslic_hw::scratchpad::ScratchpadSet;

fn main() {
    println!(
        "Double-buffering study — full-HD cluster-update streaming, 9 iterations,\n\
         1 cycle/pixel compute, 7 B/pixel payload at 8.64 B/cycle effective DRAM"
    );

    header("Per-iteration streaming time: serial (paper) vs double-buffered");
    println!(
        "{:<10} {:>14} {:>16} {:>10} {:>14}",
        "buffer", "serial (ms)", "overlap (ms)", "speedup", "extra SRAM mm2"
    );
    rule(70);
    for kb in [1usize, 2, 4, 8, 16, 32] {
        let s = TileSchedule::new(
            1920 * 1080,
            (kb * 1024) as u64,
            1.0,
            7.0,
            8.64,
            5.0,
            50.0,
        );
        let serial = model::cycles_to_ms(s.serial_cycles());
        let overlap = model::cycles_to_ms(s.double_buffered_cycles());
        // Doubling the four channel buffers costs one extra ScratchpadSet.
        let extra_area = ScratchpadSet::new(kb * 1024).area_mm2();
        println!(
            "{:<10} {:>14.2} {:>16.2} {:>9.2}x {:>14.4}",
            format!("{kb} kB"),
            serial,
            overlap,
            s.overlap_speedup(),
            extra_area
        );
    }
    rule(70);
    println!(
        "Double buffering hides most of the streaming time behind compute —\n\
         the per-iteration cluster-update stream drops toward its compute bound\n\
         — at the price of doubling the channel SRAMs (e.g. +0.017 mm2 at 4 kB,\n\
         ~26% of the 0.066 mm2 die). The paper's serial design is the right call\n\
         at its 30 fps target, which it already meets; double buffering is the\n\
         lever to pull for 60 fps or 4K."
    );
}
