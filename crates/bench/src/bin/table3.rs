//! Table 3 reproduction: the five Cluster Update Unit configurations —
//! area, power, latency, throughput, and time/energy for one 1080p
//! iteration.

use sslic_bench::{header, rule};
use sslic_hw::cluster::FULL_HD_PIXELS;
use sslic_hw::dse::cluster_unit_sweep;

fn main() {
    println!("Table 3 — Cluster Update Unit configurations (1 iteration of 1920x1080)");
    let rows = cluster_unit_sweep(FULL_HD_PIXELS);

    header("Table 3: cluster update unit configurations");
    println!(
        "{:<8} {:>12} {:>11} {:>16} {:>20} {:>10} {:>12}",
        "config", "area (mm2)", "power (mW)", "latency (cycles)", "throughput (px/cy)", "time (ms)", "energy (uJ)"
    );
    rule(96);
    for r in &rows {
        println!(
            "{:<8} {:>12.4} {:>11.2} {:>16} {:>20} {:>10.2} {:>12.1}",
            r.name,
            r.area_mm2,
            r.power_mw,
            r.latency_cycles,
            if r.throughput >= 1.0 { "1".to_string() } else { "1/9".to_string() },
            r.time_ms,
            r.energy_uj
        );
    }
    rule(96);
    println!("paper rows, same order:");
    let paper = [
        ("1-1-1", 0.0020, 3.3, 27, "1/9", 11.8, 38.9),
        ("9-1-1", 0.0149, 3.6, 19, "1/9", 11.8, 42.5),
        ("1-9-1", 0.0023, 3.2, 20, "1/9", 11.8, 37.5),
        ("1-1-6", 0.0025, 3.25, 22, "1/9", 11.8, 38.3),
        ("9-9-6", 0.0156, 30.9, 7, "1", 1.3, 40.6),
    ];
    for (name, area, power, lat, tp, time, energy) in paper {
        println!(
            "{:<8} {:>12.4} {:>11.2} {:>16} {:>20} {:>10.2} {:>12.1}",
            name, area, power, lat, tp, time, energy
        );
    }

    let full = &rows[4];
    let base = &rows[0];
    println!();
    println!(
        "Trade-off check (paper: 9-9-6 is 7.8x area, 9.4x power, 9x throughput of 1-1-1):\n\
         measured {:.1}x area, {:.1}x power, {:.0}x throughput — chosen for its energy\n\
         efficiency ({:.1} uJ vs {:.1} uJ, within {:.0}%) at 9x the speed.",
        full.area_mm2 / base.area_mm2,
        full.power_mw / base.power_mw,
        full.throughput / base.throughput,
        full.energy_uj,
        base.energy_uj,
        (full.energy_uj / base.energy_uj - 1.0) * 100.0,
    );
}
