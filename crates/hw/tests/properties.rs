//! Property-based contracts of the hardware models.

use proptest::prelude::*;

use sslic_hw::cluster::ClusterUnitConfig;
use sslic_hw::dma::TileSchedule;
use sslic_hw::dram::DramModel;
use sslic_hw::pipeline::ClusterPipeline;
use sslic_hw::sim::{FrameSimulator, Resolution};

fn arb_config() -> impl Strategy<Value = ClusterUnitConfig> {
    prop_oneof![
        Just(ClusterUnitConfig::c1_1_1()),
        Just(ClusterUnitConfig::c9_1_1()),
        Just(ClusterUnitConfig::c1_9_1()),
        Just(ClusterUnitConfig::c1_1_6()),
        Just(ClusterUnitConfig::c9_9_6()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_timing_contract_holds_for_any_burst(
        config in arb_config(),
        n in 1u64..300,
        seed in 0u64..1000,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pipe = ClusterPipeline::new(config);
        for _ in 0..n {
            let mut d = [0u32; 9];
            for v in &mut d {
                *v = (next() % 256) as u32;
            }
            pipe.issue(d);
        }
        let total = pipe.flush();
        let expected = (n - 1) * config.initiation_interval() as u64
            + config.latency_cycles() as u64;
        prop_assert_eq!(total, expected);
        prop_assert_eq!(pipe.retired().len() as u64, n);
    }

    #[test]
    fn dram_transfer_time_is_monotone_in_bytes_and_bursts(
        bytes_a in 0u64..100_000_000,
        bytes_b in 0u64..100_000_000,
        bursts in 0u64..10_000,
    ) {
        let d = DramModel::default();
        if bytes_a <= bytes_b {
            prop_assert!(d.transfer_cycles(bytes_a, bursts) <= d.transfer_cycles(bytes_b, bursts));
        }
        prop_assert!(d.transfer_cycles(bytes_a, bursts) <= d.transfer_cycles(bytes_a, bursts + 1));
    }

    #[test]
    fn frame_time_is_monotone_in_iterations(iters in 1u32..20) {
        let a = FrameSimulator::paper_default(Resolution::VGA)
            .with_iterations(iters)
            .simulate();
        let b = FrameSimulator::paper_default(Resolution::VGA)
            .with_iterations(iters + 1)
            .simulate();
        prop_assert!(b.total_ms() > a.total_ms());
    }

    #[test]
    fn subsampling_never_increases_traffic(p in 1u32..9) {
        let base = FrameSimulator::paper_default(Resolution::FULL_HD)
            .dram_traffic()
            .total_bytes();
        let sub = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_subsets(p)
            .dram_traffic()
            .total_bytes();
        prop_assert!(sub <= base);
    }

    #[test]
    fn double_buffering_bounded_between_1x_and_2x(
        tile_kb in 1u64..64,
        compute in 1u64..4,
    ) {
        let s = TileSchedule::new(
            1920 * 1080,
            tile_kb * 1024,
            compute as f64,
            7.0,
            8.64,
            5.0,
            50.0,
        );
        let sp = s.overlap_speedup();
        prop_assert!((1.0..=2.0 + 1e-9).contains(&sp), "speedup {sp}");
    }

    #[test]
    fn dvfs_power_factor_is_monotone(f1 in 0.1f64..1.6, f2 in 0.1f64..1.6) {
        let a = FrameSimulator::paper_default(Resolution::VGA).with_clock_ghz(f1);
        let b = FrameSimulator::paper_default(Resolution::VGA).with_clock_ghz(f2);
        if f1 <= f2 {
            prop_assert!(a.dvfs_power_factor() <= b.dvfs_power_factor());
        }
    }

    #[test]
    fn energy_per_frame_is_positive_and_finite(
        kb in 1usize..128,
        iters in 1u32..15,
    ) {
        let r = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_buffer_bytes(kb * 1024)
            .with_iterations(iters)
            .simulate();
        let e = r.energy_mj_per_frame();
        prop_assert!(e.is_finite() && e > 0.0);
        prop_assert!(r.power.total_mw() > 0.0);
    }
}
