//! On-chip scratchpad SRAM model.
//!
//! The accelerator has four scratchpads — three channel memories (L, a, b)
//! and one index memory — "realized using synchronous RAMs with separate
//! read-write ports" (paper §5). The buffer size per channel is the
//! Figure 6 design knob (1 kB–128 kB); the paper selects 4 kB.

use crate::model;

/// Per-word memory-protection scheme of a scratchpad (8 data bits per
/// word). The check bits widen every physical word, scaling the macro's
/// area and per-access energy; the detection/correction semantics are
/// applied by the fault model (`sslic-fault`) on each protected read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Raw SRAM cells: every upset is silent data corruption.
    Unprotected,
    /// One parity bit per word: any odd number of flipped bits is detected
    /// and the word is re-fetched from DRAM; even flip counts escape.
    Parity,
    /// SECDED Hamming code: single-bit errors are corrected in place,
    /// double-bit errors are detected (re-fetch), triple and beyond escape.
    Secded,
}

impl Protection {
    /// Check bits appended to a `data_bits`-wide word: 0 (none), 1
    /// (parity), or the Hamming `p` with `2^p >= data_bits + p + 1` plus
    /// one extra double-error-detect bit (SECDED) — 5 for 8 data bits.
    pub fn check_bits(self, data_bits: u32) -> u32 {
        match self {
            Protection::Unprotected => 0,
            Protection::Parity => 1,
            Protection::Secded => {
                let mut p = 0u32;
                while (1u64 << p) < data_bits as u64 + p as u64 + 1 {
                    p += 1;
                }
                p + 1
            }
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Protection::Unprotected => "unprotected",
            Protection::Parity => "parity",
            Protection::Secded => "secded",
        }
    }
}

/// One synchronous SRAM with separate read and write ports, with access
/// accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scratchpad {
    name: &'static str,
    capacity_bytes: usize,
    reads: u64,
    writes: u64,
    protection: Protection,
    retries: u64,
}

impl Scratchpad {
    /// Creates an unprotected scratchpad of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(name: &'static str, capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "scratchpad capacity must be nonzero");
        Scratchpad {
            name,
            capacity_bytes,
            reads: 0,
            writes: 0,
            protection: Protection::Unprotected,
            retries: 0,
        }
    }

    /// Selects the word-protection scheme (affects area and energy via
    /// [`Self::physical_bits_per_word`]).
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }

    /// The active protection scheme.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Physical bits stored per 8-bit data word, including check bits.
    pub fn physical_bits_per_word(&self) -> u32 {
        8 + self.protection.check_bits(8)
    }

    /// Records `n` detected-error retries; each is charged one extra read
    /// plus one corrective write at full physical word width.
    pub fn record_retries(&mut self, n: u64) {
        self.retries += n;
    }

    /// Detected-error retries so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The scratchpad's name (e.g. `"ch1"`, `"index"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Capacity in pixels for a 1-byte-per-pixel channel.
    pub fn capacity_pixels(&self) -> usize {
        self.capacity_bytes
    }

    /// Records `n` byte reads.
    pub fn record_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Records `n` byte writes.
    pub fn record_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Byte reads so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Byte writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Access energy so far, in microjoules. Every access moves the full
    /// physical word (data + check bits), and each retry adds one read
    /// plus one corrective write.
    pub fn energy_uj(&self) -> f64 {
        let accesses = self.reads + self.writes + 2 * self.retries;
        let width_factor = self.physical_bits_per_word() as f64 / 8.0;
        accesses as f64 * width_factor * model::E_SRAM_BYTE_PJ * 1e-6
    }

    /// Macro area in mm² (calibrated per-kB constant, see
    /// [`model::SRAM_MM2_PER_KB`]), widened by the protection check bits.
    pub fn area_mm2(&self) -> f64 {
        self.capacity_bytes as f64 / 1024.0
            * model::SRAM_MM2_PER_KB
            * (self.physical_bits_per_word() as f64 / 8.0)
    }
}

/// The accelerator's four scratchpads: channel memories 1–3 and the index
/// memory (paper §4.3 / Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScratchpadSet {
    /// Channel memory 1 (R, then L after color conversion).
    pub ch1: Scratchpad,
    /// Channel memory 2 (G, then a).
    pub ch2: Scratchpad,
    /// Channel memory 3 (B, then b).
    pub ch3: Scratchpad,
    /// Superpixel index memory.
    pub index: Scratchpad,
}

impl ScratchpadSet {
    /// Builds the set with `bytes_per_channel` in each of the four
    /// memories (the Figure 6 knob applies to all of them).
    pub fn new(bytes_per_channel: usize) -> Self {
        ScratchpadSet {
            ch1: Scratchpad::new("ch1", bytes_per_channel),
            ch2: Scratchpad::new("ch2", bytes_per_channel),
            ch3: Scratchpad::new("ch3", bytes_per_channel),
            index: Scratchpad::new("index", bytes_per_channel),
        }
    }

    /// Total on-chip capacity in bytes (the paper's Table 5 reports 20 kB
    /// including the register files; the four SRAMs are 16 kB at the 4 kB
    /// design point).
    pub fn total_bytes(&self) -> usize {
        self.ch1.capacity_bytes
            + self.ch2.capacity_bytes
            + self.ch3.capacity_bytes
            + self.index.capacity_bytes
    }

    /// Total SRAM area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.ch1.area_mm2() + self.ch2.area_mm2() + self.ch3.area_mm2() + self.index.area_mm2()
    }

    /// Total access energy so far in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.ch1.energy_uj() + self.ch2.energy_uj() + self.ch3.energy_uj() + self.index.energy_uj()
    }

    /// SRAM leakage/active power at full utilization, in milliwatts
    /// (paper §6.3 assumes full utilization), including the check-bit
    /// columns of protected members.
    pub fn power_mw(&self) -> f64 {
        [&self.ch1, &self.ch2, &self.ch3, &self.index]
            .iter()
            .map(|sp| {
                sp.capacity_bytes as f64 / 1024.0
                    * model::power::SRAM_MW_PER_KB
                    * (sp.physical_bits_per_word() as f64 / 8.0)
            })
            .sum()
    }

    /// Applies one protection scheme to all four memories.
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.ch1 = self.ch1.with_protection(protection);
        self.ch2 = self.ch2.with_protection(protection);
        self.ch3 = self.ch3.with_protection(protection);
        self.index = self.index.with_protection(protection);
        self
    }

    /// Total detected-error retries across the four memories.
    pub fn total_retries(&self) -> u64 {
        self.ch1.retries + self.ch2.retries + self.ch3.retries + self.index.retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_is_16kb_of_sram() {
        let set = ScratchpadSet::new(4 * 1024);
        assert_eq!(set.total_bytes(), 16 * 1024);
    }

    #[test]
    fn access_accounting() {
        let mut sp = Scratchpad::new("ch1", 4096);
        sp.record_reads(100);
        sp.record_writes(50);
        assert_eq!(sp.reads(), 100);
        assert_eq!(sp.writes(), 50);
        assert!(sp.energy_uj() > 0.0);
    }

    #[test]
    fn area_scales_linearly_with_capacity() {
        let a1 = Scratchpad::new("a", 1024).area_mm2();
        let a4 = Scratchpad::new("b", 4096).area_mm2();
        assert!((a4 / a1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn set_energy_sums_members() {
        let mut set = ScratchpadSet::new(1024);
        set.ch1.record_reads(10);
        set.index.record_writes(10);
        let expect = 20.0 * model::E_SRAM_BYTE_PJ * 1e-6;
        assert!((set.energy_uj() - expect).abs() < 1e-12);
    }

    #[test]
    fn power_at_full_utilization_scales_with_capacity() {
        let small = ScratchpadSet::new(1024).power_mw();
        let big = ScratchpadSet::new(4096).power_mw();
        assert!((big / small - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Scratchpad::new("x", 0);
    }

    #[test]
    fn check_bits_match_coding_theory() {
        assert_eq!(Protection::Unprotected.check_bits(8), 0);
        assert_eq!(Protection::Parity.check_bits(8), 1);
        // Hamming needs p=4 for 8 data bits (2^4 = 16 ≥ 8+4+1), plus the
        // double-error-detect bit.
        assert_eq!(Protection::Secded.check_bits(8), 5);
        assert_eq!(Protection::Secded.check_bits(16), 6);
        assert_eq!(Protection::Secded.check_bits(32), 7);
    }

    #[test]
    fn protection_widens_area_and_energy() {
        let mk = |p| {
            let mut sp = Scratchpad::new("x", 4096).with_protection(p);
            sp.record_reads(100);
            sp
        };
        let raw = mk(Protection::Unprotected);
        let par = mk(Protection::Parity);
        let ecc = mk(Protection::Secded);
        assert_eq!(raw.physical_bits_per_word(), 8);
        assert_eq!(par.physical_bits_per_word(), 9);
        assert_eq!(ecc.physical_bits_per_word(), 13);
        assert!(raw.area_mm2() < par.area_mm2());
        assert!(par.area_mm2() < ecc.area_mm2());
        assert!((ecc.area_mm2() / raw.area_mm2() - 13.0 / 8.0).abs() < 1e-9);
        assert!(raw.energy_uj() < par.energy_uj());
        assert!(par.energy_uj() < ecc.energy_uj());
    }

    #[test]
    fn retries_charge_extra_accesses() {
        let mut clean = Scratchpad::new("x", 1024).with_protection(Protection::Parity);
        clean.record_reads(100);
        let mut retried = clean.clone();
        retried.record_retries(10);
        assert_eq!(retried.retries(), 10);
        // 10 retries = 20 extra accesses on 100 reads.
        assert!((retried.energy_uj() / clean.energy_uj() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn set_protection_applies_to_all_members_and_scales_power() {
        let raw = ScratchpadSet::new(1024);
        let ecc = ScratchpadSet::new(1024).with_protection(Protection::Secded);
        assert_eq!(ecc.ch2.protection(), Protection::Secded);
        assert_eq!(ecc.index.protection(), Protection::Secded);
        assert!((ecc.power_mw() / raw.power_mw() - 13.0 / 8.0).abs() < 1e-9);
        assert!((ecc.area_mm2() / raw.area_mm2() - 13.0 / 8.0).abs() < 1e-9);
        assert_eq!(ecc.total_retries(), 0);
    }
}
