//! On-chip scratchpad SRAM model.
//!
//! The accelerator has four scratchpads — three channel memories (L, a, b)
//! and one index memory — "realized using synchronous RAMs with separate
//! read-write ports" (paper §5). The buffer size per channel is the
//! Figure 6 design knob (1 kB–128 kB); the paper selects 4 kB.

use crate::model;

/// One synchronous SRAM with separate read and write ports, with access
/// accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scratchpad {
    name: &'static str,
    capacity_bytes: usize,
    reads: u64,
    writes: u64,
}

impl Scratchpad {
    /// Creates a scratchpad of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(name: &'static str, capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "scratchpad capacity must be nonzero");
        Scratchpad {
            name,
            capacity_bytes,
            reads: 0,
            writes: 0,
        }
    }

    /// The scratchpad's name (e.g. `"ch1"`, `"index"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Capacity in pixels for a 1-byte-per-pixel channel.
    pub fn capacity_pixels(&self) -> usize {
        self.capacity_bytes
    }

    /// Records `n` byte reads.
    pub fn record_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Records `n` byte writes.
    pub fn record_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Byte reads so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Byte writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Access energy so far, in microjoules.
    pub fn energy_uj(&self) -> f64 {
        (self.reads + self.writes) as f64 * model::E_SRAM_BYTE_PJ * 1e-6
    }

    /// Macro area in mm² (calibrated per-kB constant, see
    /// [`model::SRAM_MM2_PER_KB`]).
    pub fn area_mm2(&self) -> f64 {
        self.capacity_bytes as f64 / 1024.0 * model::SRAM_MM2_PER_KB
    }
}

/// The accelerator's four scratchpads: channel memories 1–3 and the index
/// memory (paper §4.3 / Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScratchpadSet {
    /// Channel memory 1 (R, then L after color conversion).
    pub ch1: Scratchpad,
    /// Channel memory 2 (G, then a).
    pub ch2: Scratchpad,
    /// Channel memory 3 (B, then b).
    pub ch3: Scratchpad,
    /// Superpixel index memory.
    pub index: Scratchpad,
}

impl ScratchpadSet {
    /// Builds the set with `bytes_per_channel` in each of the four
    /// memories (the Figure 6 knob applies to all of them).
    pub fn new(bytes_per_channel: usize) -> Self {
        ScratchpadSet {
            ch1: Scratchpad::new("ch1", bytes_per_channel),
            ch2: Scratchpad::new("ch2", bytes_per_channel),
            ch3: Scratchpad::new("ch3", bytes_per_channel),
            index: Scratchpad::new("index", bytes_per_channel),
        }
    }

    /// Total on-chip capacity in bytes (the paper's Table 5 reports 20 kB
    /// including the register files; the four SRAMs are 16 kB at the 4 kB
    /// design point).
    pub fn total_bytes(&self) -> usize {
        self.ch1.capacity_bytes
            + self.ch2.capacity_bytes
            + self.ch3.capacity_bytes
            + self.index.capacity_bytes
    }

    /// Total SRAM area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.ch1.area_mm2() + self.ch2.area_mm2() + self.ch3.area_mm2() + self.index.area_mm2()
    }

    /// Total access energy so far in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.ch1.energy_uj() + self.ch2.energy_uj() + self.ch3.energy_uj() + self.index.energy_uj()
    }

    /// SRAM leakage/active power at full utilization, in milliwatts
    /// (paper §6.3 assumes full utilization).
    pub fn power_mw(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0 * model::power::SRAM_MW_PER_KB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_is_16kb_of_sram() {
        let set = ScratchpadSet::new(4 * 1024);
        assert_eq!(set.total_bytes(), 16 * 1024);
    }

    #[test]
    fn access_accounting() {
        let mut sp = Scratchpad::new("ch1", 4096);
        sp.record_reads(100);
        sp.record_writes(50);
        assert_eq!(sp.reads(), 100);
        assert_eq!(sp.writes(), 50);
        assert!(sp.energy_uj() > 0.0);
    }

    #[test]
    fn area_scales_linearly_with_capacity() {
        let a1 = Scratchpad::new("a", 1024).area_mm2();
        let a4 = Scratchpad::new("b", 4096).area_mm2();
        assert!((a4 / a1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn set_energy_sums_members() {
        let mut set = ScratchpadSet::new(1024);
        set.ch1.record_reads(10);
        set.index.record_writes(10);
        let expect = 20.0 * model::E_SRAM_BYTE_PJ * 1e-6;
        assert!((set.energy_uj() - expect).abs() < 1e-12);
    }

    #[test]
    fn power_at_full_utilization_scales_with_capacity() {
        let small = ScratchpadSet::new(1024).power_mw();
        let big = ScratchpadSet::new(4096).power_mw();
        assert!((big / small - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Scratchpad::new("x", 0);
    }
}
