//! The GPU baselines of Table 5 and the technology-normalization
//! arithmetic.
//!
//! The paper compares the accelerator against measured SLIC runs on a
//! server GPU (Tesla K20) and a mobile SoC GPU (Tegra K1), both 28 nm
//! parts. To compare energy fairly against the 16 nm accelerator, GPU
//! power is divided by a 28→16 nm scaling factor of 2.2 (×1.25 for
//! voltage², ×1.75 for capacitance — §7).

use crate::sim::FrameReport;

/// 28 nm → 16 nm power normalization: ×1.25 (voltage²) × 1.75
/// (capacitance) = 2.1875, which the paper rounds to 2.2.
pub const TECH_NORMALIZATION: f64 = 1.25 * 1.75;

/// One measured GPU baseline (a column of Table 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuBaseline {
    /// Device name.
    pub name: &'static str,
    /// Algorithm run on it.
    pub algorithm: &'static str,
    /// Process node in nanometres.
    pub technology_nm: u32,
    /// Supply voltage.
    pub vdd: f64,
    /// On-chip storage in kilobytes (register files + scratchpad + L1 +
    /// L2).
    pub on_chip_kb: u32,
    /// CUDA core count.
    pub cores: u32,
    /// Measured average power in watts.
    pub avg_power_w: f64,
    /// Measured frame latency in milliseconds (1080p, K = 5000).
    pub latency_ms: f64,
}

impl GpuBaseline {
    /// The NVIDIA Tesla K20 column of Table 5.
    pub fn tesla_k20() -> Self {
        GpuBaseline {
            name: "Tesla K20",
            algorithm: "SLIC",
            technology_nm: 28,
            vdd: 0.81,
            on_chip_kb: 6320,
            cores: 2496,
            avg_power_w: 86.0,
            latency_ms: 22.3,
        }
    }

    /// The NVIDIA Tegra K1 (mobile) column of Table 5.
    pub fn tegra_k1() -> Self {
        GpuBaseline {
            name: "TK1",
            algorithm: "SLIC",
            technology_nm: 28,
            vdd: 0.81,
            on_chip_kb: 368,
            cores: 192,
            avg_power_w: 0.332,
            latency_ms: 2713.0,
        }
    }

    /// Both baselines, in Table 5 column order.
    pub fn table5() -> [GpuBaseline; 2] {
        [Self::tesla_k20(), Self::tegra_k1()]
    }

    /// Power normalized to the accelerator's 16 nm node, in watts.
    pub fn normalized_power_w(&self) -> f64 {
        self.avg_power_w / TECH_NORMALIZATION
    }

    /// Technology-normalized energy per frame in millijoules (Table 5's
    /// bottom row).
    pub fn normalized_energy_mj(&self) -> f64 {
        self.normalized_power_w() * self.latency_ms
    }

    /// Whether the device sustains 30 fps on 1080p SLIC.
    pub fn is_real_time(&self) -> bool {
        self.latency_ms <= 1000.0 / 30.0
    }
}

/// Energy-efficiency advantage of the accelerator over `gpu`, both
/// technology-normalized (the paper's headline ratios: >500× vs K20,
/// >250× vs TK1).
pub fn efficiency_ratio(gpu: &GpuBaseline, accel: &FrameReport) -> f64 {
    gpu.normalized_energy_mj() / accel.energy_mj_per_frame()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FrameSimulator, Resolution};

    #[test]
    fn normalization_factor_is_2_2() {
        assert!((TECH_NORMALIZATION - 2.1875).abs() < 1e-12);
    }

    #[test]
    fn k20_normalized_energy_matches_table5() {
        // Paper: 867 mJ/frame normalized.
        let e = GpuBaseline::tesla_k20().normalized_energy_mj();
        assert!((e - 867.0).abs() < 15.0, "K20 normalized energy {e} mJ");
    }

    #[test]
    fn tk1_normalized_energy_matches_table5() {
        // Paper: 407 mJ/frame normalized.
        let e = GpuBaseline::tegra_k1().normalized_energy_mj();
        assert!((e - 407.0).abs() < 8.0, "TK1 normalized energy {e} mJ");
    }

    #[test]
    fn normalized_power_rows_match_table5() {
        // Paper: 39 W and 150 mW.
        let k20 = GpuBaseline::tesla_k20().normalized_power_w();
        let tk1 = GpuBaseline::tegra_k1().normalized_power_w();
        assert!((k20 - 39.0).abs() < 1.0, "K20 normalized {k20} W");
        assert!((tk1 * 1000.0 - 150.0).abs() < 5.0, "TK1 normalized {tk1} W");
    }

    #[test]
    fn k20_is_real_time_but_tk1_misses_by_80x() {
        assert!(GpuBaseline::tesla_k20().is_real_time());
        let tk1 = GpuBaseline::tegra_k1();
        assert!(!tk1.is_real_time());
        // "misses the real-time frame rate by a factor of 80"
        let factor = tk1.latency_ms / (1000.0 / 30.0);
        assert!((factor - 81.0).abs() < 2.0, "TK1 misses by {factor}×");
    }

    #[test]
    fn headline_efficiency_ratios() {
        let accel = FrameSimulator::paper_default(Resolution::FULL_HD).simulate();
        let vs_k20 = efficiency_ratio(&GpuBaseline::tesla_k20(), &accel);
        let vs_tk1 = efficiency_ratio(&GpuBaseline::tegra_k1(), &accel);
        assert!(vs_k20 > 500.0, "vs K20: {vs_k20}× (paper: over 500×)");
        assert!(vs_tk1 > 250.0, "vs TK1: {vs_tk1}× (paper: over 250×)");
        // Sanity ceiling: within ~25% of the paper's exact ratios.
        assert!((vs_k20 - 542.0).abs() / 542.0 < 0.25);
        assert!((vs_tk1 - 254.0).abs() / 254.0 < 0.25);
    }

    #[test]
    fn accelerator_on_chip_storage_is_hundreds_of_times_smaller() {
        // Table 5: 6320 kB (K20) and 368 kB (TK1) vs 20 kB.
        let accel_kb = 20;
        assert!(GpuBaseline::tesla_k20().on_chip_kb / accel_kb >= 300);
        assert!(GpuBaseline::tegra_k1().on_chip_kb / accel_kb >= 18);
    }
}
