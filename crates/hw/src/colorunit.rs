//! Cycle-stepped model of the color-conversion unit (Fig. 4, left): the
//! LUT → matrix → PWL → encode pipeline that fills the channel
//! scratchpads with 8-bit CIELAB.
//!
//! Functionally it wraps [`sslic_color::hw::HwColorConverter`] — the same
//! tables the rest of the repository uses — and adds the timing contract:
//! one pixel accepted per cycle, a fixed pipeline latency, and per-tile
//! drain. Its §7 share of the frame (≈1.3 ms at full HD) is what the
//! frame simulator charges; this model lets tests pin that number to an
//! actual cycle walk instead of a formula.

use sslic_color::hw::HwColorConverter;
use sslic_image::{Rgb, RgbImage};

/// Pipeline latency in cycles: gamma ROM read (1), three matrix MAC
/// stages (3·2), PWL segment select + interpolate (2), Lab encode (1).
pub const COLOR_PIPE_LATENCY: u64 = 10;

/// One converted pixel with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColorTransaction {
    /// Issue order.
    pub id: u64,
    /// Cycle the RGB entered the unit.
    pub issued_at: u64,
    /// Cycle the Lab bytes were written to the scratchpads.
    pub retired_at: u64,
    /// The converted `[l8, a8, b8]`.
    pub lab8: [u8; 3],
}

/// The cycle-stepped color-conversion unit.
#[derive(Debug, Clone)]
pub struct ColorUnit {
    converter: HwColorConverter,
    cycle: u64,
    issued: u64,
    retired: Vec<ColorTransaction>,
}

impl ColorUnit {
    /// Creates the unit with the paper's LUT configuration.
    pub fn new() -> Self {
        ColorUnit {
            converter: HwColorConverter::paper_default(),
            cycle: 0,
            issued: 0,
            retired: Vec::new(),
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Issues one RGB pixel; the unit is fully pipelined (initiation
    /// interval 1), so time advances exactly one cycle per issue.
    pub fn issue(&mut self, px: Rgb) -> u64 {
        let id = self.issued;
        self.issued += 1;
        let issued_at = self.cycle;
        self.retired.push(ColorTransaction {
            id,
            issued_at,
            retired_at: issued_at + COLOR_PIPE_LATENCY,
            lab8: self.converter.convert(px),
        });
        self.cycle += 1;
        id
    }

    /// Drains the pipeline, returning the total cycle count.
    pub fn flush(&mut self) -> u64 {
        if let Some(last) = self.retired.last() {
            self.cycle = self.cycle.max(last.retired_at);
        }
        self.cycle
    }

    /// Converted transactions in issue order.
    pub fn retired(&self) -> &[ColorTransaction] {
        &self.retired
    }

    /// Streams an entire image through the unit, returning the total
    /// cycles and the per-pixel results (convenience for tests and
    /// examples).
    pub fn convert_image(&mut self, img: &RgbImage) -> u64 {
        for y in 0..img.height() {
            for x in 0..img.width() {
                self.issue(img.pixel(x, y));
            }
        }
        self.flush()
    }
}

impl Default for ColorUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslic_image::synthetic::SyntheticImage;

    #[test]
    fn one_pixel_takes_the_pipeline_latency() {
        let mut unit = ColorUnit::new();
        unit.issue(Rgb::new(10, 20, 30));
        assert_eq!(unit.flush(), COLOR_PIPE_LATENCY);
    }

    #[test]
    fn n_pixels_take_n_minus_1_plus_latency() {
        let mut unit = ColorUnit::new();
        for i in 0..100u32 {
            unit.issue(Rgb::new(i as u8, 0, 0));
        }
        assert_eq!(unit.flush(), 99 + COLOR_PIPE_LATENCY);
    }

    #[test]
    fn results_match_the_software_converter_exactly() {
        let img = SyntheticImage::builder(24, 16).seed(3).regions(4).build().rgb;
        let mut unit = ColorUnit::new();
        unit.convert_image(&img);
        let sw = HwColorConverter::paper_default().convert_image(&img);
        for tx in unit.retired() {
            let (x, y) = ((tx.id % 24) as usize, (tx.id / 24) as usize);
            assert_eq!(tx.lab8, sw.pixel(x, y), "pixel ({x},{y})");
        }
    }

    #[test]
    fn full_hd_conversion_lands_near_the_paper_share() {
        // 2 073 600 cycles at 1.6 GHz ≈ 1.30 ms; the paper reports 1.4 ms.
        let cycles = (1920u64 * 1080 - 1) + COLOR_PIPE_LATENCY;
        let ms = crate::model::cycles_to_ms(cycles as f64 + 1.0);
        assert!((1.25..1.45).contains(&ms), "color conversion {ms} ms");
    }

    #[test]
    fn transactions_retire_in_order_with_unit_spacing() {
        let mut unit = ColorUnit::new();
        for _ in 0..10 {
            unit.issue(Rgb::new(1, 2, 3));
        }
        unit.flush();
        for pair in unit.retired().windows(2) {
            assert_eq!(pair[1].issued_at - pair[0].issued_at, 1);
            assert_eq!(pair[1].retired_at - pair[0].retired_at, 1);
        }
    }
}
