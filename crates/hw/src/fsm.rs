//! The FSM host controller (Fig. 4): the state machine that sequences the
//! accelerator through color conversion, tile streaming, cluster updates,
//! and center updates (paper §4.3).
//!
//! [`FsmController`] generates and validates the full per-frame schedule —
//! the ordered list of states with their tile indices — so the functional
//! simulator's implicit control flow has an explicit, testable
//! specification. Illegal transitions are unrepresentable: the schedule is
//! produced by the controller itself and checked against
//! [`FsmState::may_follow`].

/// The controller's states, in the §4.3 processing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmState {
    /// Waiting for a frame.
    Idle,
    /// DMA-in of one RGB tile into the channel memories.
    LoadRgbTile,
    /// LUT color conversion of the loaded tile.
    ColorConvert,
    /// DMA-out of the converted Lab tile.
    StoreLabTile,
    /// DMA-in of one Lab+index tile for cluster update.
    LoadClusterTile,
    /// Cluster Update Unit processing of the tile.
    ClusterUpdate,
    /// DMA-out of the tile's updated indices.
    StoreIndexTile,
    /// Center Update Unit pass over the sigma registers.
    CenterUpdate,
    /// Frame complete; final labels reside in external memory.
    Done,
}

impl FsmState {
    /// Whether `next` is a legal successor of `self` in the §4.3 schedule.
    pub fn may_follow(self, next: FsmState) -> bool {
        use FsmState::*;
        matches!(
            (self, next),
            (Idle, LoadRgbTile)
                | (LoadRgbTile, ColorConvert)
                | (ColorConvert, StoreLabTile)
                | (StoreLabTile, LoadRgbTile)      // next color tile
                | (StoreLabTile, LoadClusterTile)  // conversion finished
                | (LoadClusterTile, ClusterUpdate)
                | (ClusterUpdate, StoreIndexTile)
                | (StoreIndexTile, LoadClusterTile) // next cluster tile
                | (StoreIndexTile, CenterUpdate)    // iteration finished
                | (CenterUpdate, LoadClusterTile)   // next iteration
                | (CenterUpdate, Done)              // all iterations done
        )
    }
}

/// One step of the schedule: a state plus the tile (or iteration) it
/// operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmStep {
    /// The state entered.
    pub state: FsmState,
    /// Tile index within the phase, or iteration index for
    /// [`FsmState::CenterUpdate`]; 0 when not meaningful.
    pub index: u32,
}

/// Generates the frame schedule of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmController {
    /// Tiles per full-image pass.
    pub tiles: u32,
    /// Cluster-update iterations.
    pub iterations: u32,
}

impl FsmController {
    /// Creates a controller for `tiles` tiles per pass and `iterations`
    /// center-update steps.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(tiles: u32, iterations: u32) -> Self {
        assert!(tiles > 0, "at least one tile required");
        assert!(iterations > 0, "at least one iteration required");
        FsmController { tiles, iterations }
    }

    /// The complete, ordered frame schedule.
    pub fn schedule(&self) -> Vec<FsmStep> {
        let mut steps = vec![FsmStep {
            state: FsmState::Idle,
            index: 0,
        }];
        // Phase 1: color conversion, tile by tile.
        for t in 0..self.tiles {
            steps.push(FsmStep {
                state: FsmState::LoadRgbTile,
                index: t,
            });
            steps.push(FsmStep {
                state: FsmState::ColorConvert,
                index: t,
            });
            steps.push(FsmStep {
                state: FsmState::StoreLabTile,
                index: t,
            });
        }
        // Phase 2: iterations of cluster update + center update.
        for it in 0..self.iterations {
            for t in 0..self.tiles {
                steps.push(FsmStep {
                    state: FsmState::LoadClusterTile,
                    index: t,
                });
                steps.push(FsmStep {
                    state: FsmState::ClusterUpdate,
                    index: t,
                });
                steps.push(FsmStep {
                    state: FsmState::StoreIndexTile,
                    index: t,
                });
            }
            steps.push(FsmStep {
                state: FsmState::CenterUpdate,
                index: it,
            });
        }
        steps.push(FsmStep {
            state: FsmState::Done,
            index: 0,
        });
        steps
    }

    /// Validates an arbitrary step sequence against the transition
    /// relation, returning the index of the first illegal transition if
    /// any.
    pub fn validate(steps: &[FsmStep]) -> Result<(), usize> {
        for (i, pair) in steps.windows(2).enumerate() {
            if !pair[0].state.may_follow(pair[1].state) {
                return Err(i + 1);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schedule_is_always_legal() {
        for (tiles, iters) in [(1u32, 1u32), (3, 2), (506, 9), (16, 1)] {
            let fsm = FsmController::new(tiles, iters);
            let schedule = fsm.schedule();
            assert_eq!(
                FsmController::validate(&schedule),
                Ok(()),
                "tiles={tiles} iters={iters}"
            );
        }
    }

    #[test]
    fn schedule_has_the_expected_length() {
        let fsm = FsmController::new(4, 3);
        // idle + 3 steps × 4 color tiles + 3 iters × (3 steps × 4 tiles +
        // 1 center update) + done.
        let expect = 1 + 3 * 4 + 3 * (3 * 4 + 1) + 1;
        assert_eq!(fsm.schedule().len(), expect);
    }

    #[test]
    fn schedule_starts_idle_and_ends_done() {
        let s = FsmController::new(2, 2).schedule();
        assert_eq!(s.first().map(|s| s.state), Some(FsmState::Idle));
        assert_eq!(s.last().map(|s| s.state), Some(FsmState::Done));
    }

    #[test]
    fn color_conversion_strictly_precedes_cluster_updates() {
        let s = FsmController::new(3, 2).schedule();
        let last_color = s
            .iter()
            .rposition(|st| st.state == FsmState::StoreLabTile)
            .expect("color phase exists");
        let first_cluster = s
            .iter()
            .position(|st| st.state == FsmState::LoadClusterTile)
            .expect("cluster phase exists");
        assert!(last_color < first_cluster, "§4.3 phase ordering");
    }

    #[test]
    fn center_update_runs_once_per_iteration_after_all_tiles() {
        let s = FsmController::new(5, 4).schedule();
        let centers: Vec<usize> = s
            .iter()
            .enumerate()
            .filter(|(_, st)| st.state == FsmState::CenterUpdate)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(centers.len(), 4);
        // Exactly 5 tiles × 3 steps between consecutive center updates.
        for pair in centers.windows(2) {
            assert_eq!(pair[1] - pair[0], 5 * 3 + 1);
        }
    }

    #[test]
    fn illegal_transitions_are_caught() {
        let bad = vec![
            FsmStep {
                state: FsmState::Idle,
                index: 0,
            },
            FsmStep {
                state: FsmState::ClusterUpdate,
                index: 0,
            },
        ];
        assert_eq!(FsmController::validate(&bad), Err(1));
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn zero_tiles_panics() {
        let _ = FsmController::new(0, 1);
    }
}
