//! The Cluster Update Unit and its parallelism design space (paper §6.2,
//! Table 3).
//!
//! The unit performs three functions per pixel: the 9 color-distance
//! calculations, the 9:1 minimum, and the 6-field sigma accumulation. Each
//! function is built either *iterative* (one ALU time-multiplexed over the
//! 9/6 elements) or *parallel* (fully unrolled and pipelined). The paper
//! names configurations by their ways, e.g. `9-9-6` = all three parallel.
//!
//! The latency model below reproduces Table 3's latency column exactly:
//!
//! | stage    | iterative | parallel |
//! |----------|-----------|----------|
//! | distance | 10        | 2        |
//! | minimum  | 10        | 3 (tree) |
//! | adder    | 6         | 1        |
//!
//! plus one issue cycle. Initiation interval (pixels/cycle) is set by the
//! slowest iterative stage: any 9-way-iterated stage limits the unit to
//! 1/9 pixel per cycle; an iterative adder alone would limit it to 1/6.

use crate::model;

/// Parallelism of one function of the Cluster Update Unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ways {
    /// One ALU iterated over the elements.
    Iterative,
    /// Fully unrolled, single-cycle initiation.
    Parallel,
}

/// A Cluster Update Unit configuration (one column of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterUnitConfig {
    /// Distance-calculator function: iterative (1 way) or parallel
    /// (9 ways).
    pub distance: Ways,
    /// Minimum function: iterative (1 way) or a 9:1 comparator tree.
    pub minimum: Ways,
    /// Sigma adder bank: iterative (1 way) or 6 parallel adders.
    pub adder: Ways,
}

impl ClusterUnitConfig {
    /// The `1-1-1` all-iterative configuration.
    pub fn c1_1_1() -> Self {
        Self {
            distance: Ways::Iterative,
            minimum: Ways::Iterative,
            adder: Ways::Iterative,
        }
    }

    /// The `9-1-1` configuration (parallel distance only).
    pub fn c9_1_1() -> Self {
        Self {
            distance: Ways::Parallel,
            minimum: Ways::Iterative,
            adder: Ways::Iterative,
        }
    }

    /// The `1-9-1` configuration (parallel minimum tree only).
    pub fn c1_9_1() -> Self {
        Self {
            distance: Ways::Iterative,
            minimum: Ways::Parallel,
            adder: Ways::Iterative,
        }
    }

    /// The `1-1-6` configuration (parallel adder bank only).
    pub fn c1_1_6() -> Self {
        Self {
            distance: Ways::Iterative,
            minimum: Ways::Iterative,
            adder: Ways::Parallel,
        }
    }

    /// The `9-9-6` fully parallel configuration — the paper's choice.
    pub fn c9_9_6() -> Self {
        Self {
            distance: Ways::Parallel,
            minimum: Ways::Parallel,
            adder: Ways::Parallel,
        }
    }

    /// The five configurations of Table 3, in column order.
    pub fn table3() -> [ClusterUnitConfig; 5] {
        [
            Self::c1_1_1(),
            Self::c9_1_1(),
            Self::c1_9_1(),
            Self::c1_1_6(),
            Self::c9_9_6(),
        ]
    }

    /// The configuration's conventional name, e.g. `"9-9-6"`.
    pub fn name(&self) -> String {
        let d = if self.distance == Ways::Parallel { 9 } else { 1 };
        let m = if self.minimum == Ways::Parallel { 9 } else { 1 };
        let a = if self.adder == Ways::Parallel { 6 } else { 1 };
        format!("{d}-{m}-{a}")
    }

    /// Pipeline latency in cycles for one pixel (Table 3's latency row).
    pub fn latency_cycles(&self) -> u32 {
        let d = if self.distance == Ways::Parallel { 2 } else { 10 };
        let m = if self.minimum == Ways::Parallel { 3 } else { 10 };
        let a = if self.adder == Ways::Parallel { 1 } else { 6 };
        d + m + a + 1
    }

    /// Initiation interval in cycles per pixel: the slowest iterative
    /// stage bounds how often a new pixel can enter.
    pub fn initiation_interval(&self) -> u32 {
        let mut ii = 1;
        if self.distance == Ways::Iterative || self.minimum == Ways::Iterative {
            ii = ii.max(9);
        }
        if self.adder == Ways::Iterative {
            ii = ii.max(6);
        }
        ii
    }

    /// Sustained throughput in pixels per cycle (Table 3's throughput
    /// row).
    pub fn throughput_pixels_per_cycle(&self) -> f64 {
        1.0 / self.initiation_interval() as f64
    }

    /// Unit area in mm² (Table 3's area row). Component areas are fitted
    /// from the published rows: 0.0020 base; +0.0129 for 9 parallel
    /// distance calculators; +0.0003 for the comparator tree; +0.0005 for
    /// the adder bank.
    pub fn area_mm2(&self) -> f64 {
        let mut a = 0.0020;
        if self.distance == Ways::Parallel {
            a += 0.0129;
        }
        if self.minimum == Ways::Parallel {
            a += 0.0003;
        }
        if self.adder == Ways::Parallel {
            a += 0.0005;
        }
        a
    }

    /// Energy markup of this configuration relative to the all-iterative
    /// baseline: parallel distance calculators pay register/fanout energy
    /// (+9.2%), the comparator tree saves control energy (−3.6%), the
    /// adder bank saves a little (−1.5%). Fitted from Table 3's energy
    /// row.
    pub fn energy_factor(&self) -> f64 {
        let mut f = 1.0;
        if self.distance == Ways::Parallel {
            f *= 1.092;
        }
        if self.minimum == Ways::Parallel {
            f *= 0.964;
        }
        if self.adder == Ways::Parallel {
            f *= 0.985;
        }
        f
    }

    /// Per-stage occupancy in cycles `(distance, minimum, adder)` — the
    /// stage durations the latency model sums (used by the cycle-stepped
    /// pipeline trace).
    pub fn stage_cycles_for_trace(&self) -> (u64, u64, u64) {
        let d = if self.distance == Ways::Parallel { 2 } else { 10 };
        let m = if self.minimum == Ways::Parallel { 3 } else { 10 };
        let a = if self.adder == Ways::Parallel { 1 } else { 6 };
        (d, m, a)
    }

    /// Cycles to process one cluster-update iteration over `pixels`
    /// pixels, including per-tile pipeline fill (tiles of `tile_pixels`
    /// pixels each drain the pipeline and exchange sigma registers).
    pub fn iteration_cycles(&self, pixels: u64, tile_pixels: u64) -> f64 {
        let tiles = pixels.div_ceil(tile_pixels.max(1));
        pixels as f64 * self.initiation_interval() as f64
            + tiles as f64 * (self.latency_cycles() as f64 + SIGMA_EXCHANGE_CYCLES)
    }

    /// Time in milliseconds for one iteration over `pixels` pixels
    /// (Table 3's time row; the paper uses 4 kB channel buffers, i.e.
    /// 4096-pixel tiles).
    pub fn iteration_time_ms(&self, pixels: u64) -> f64 {
        model::cycles_to_ms(self.iteration_cycles(pixels, 4096))
    }

    /// Energy in microjoules for one iteration over `pixels` pixels
    /// (Table 3's energy row).
    pub fn iteration_energy_uj(&self, pixels: u64) -> f64 {
        pixels as f64 * model::OPS_PER_PIXEL_ITER * model::E_OP_AVG_PJ * self.energy_factor()
            * 1e-6
    }

    /// Average power in milliwatts while processing (Table 3's power row:
    /// energy over time).
    pub fn power_mw(&self, pixels: u64) -> f64 {
        self.iteration_energy_uj(pixels) / self.iteration_time_ms(pixels)
    }
}

/// Cycles to exchange the 9 sigma registers (6 fields each) with the
/// center-update unit at each tile boundary.
pub const SIGMA_EXCHANGE_CYCLES: f64 = 54.0;

/// The paper's evaluation pixel count (one 1920×1080 frame).
pub const FULL_HD_PIXELS: u64 = 1920 * 1080;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_columns() {
        let names: Vec<String> = ClusterUnitConfig::table3()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(names, ["1-1-1", "9-1-1", "1-9-1", "1-1-6", "9-9-6"]);
    }

    #[test]
    fn latency_matches_table3_exactly() {
        let lat: Vec<u32> = ClusterUnitConfig::table3()
            .iter()
            .map(|c| c.latency_cycles())
            .collect();
        assert_eq!(lat, [27, 19, 20, 22, 7]);
    }

    #[test]
    fn throughput_matches_table3() {
        let tp: Vec<f64> = ClusterUnitConfig::table3()
            .iter()
            .map(|c| c.throughput_pixels_per_cycle())
            .collect();
        assert_eq!(tp, [1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0, 1.0]);
    }

    #[test]
    fn area_matches_table3_within_rounding() {
        let paper = [0.0020, 0.0149, 0.0023, 0.0025, 0.0156];
        for (cfg, &expect) in ClusterUnitConfig::table3().iter().zip(&paper) {
            let got = cfg.area_mm2();
            assert!(
                (got - expect).abs() <= 0.0002,
                "{}: {got} vs paper {expect}",
                cfg.name()
            );
        }
    }

    #[test]
    fn iteration_time_matches_table3() {
        // Paper: 11.8 ms iterative, 1.3 ms fully parallel at 1080p.
        let t111 = ClusterUnitConfig::c1_1_1().iteration_time_ms(FULL_HD_PIXELS);
        let t996 = ClusterUnitConfig::c9_9_6().iteration_time_ms(FULL_HD_PIXELS);
        assert!((t111 - 11.8).abs() < 0.2, "1-1-1 time {t111} ms");
        assert!((t996 - 1.3).abs() < 0.1, "9-9-6 time {t996} ms");
    }

    #[test]
    fn iteration_energy_matches_table3() {
        let paper = [38.9, 42.5, 37.5, 38.3, 40.6];
        for (cfg, &expect) in ClusterUnitConfig::table3().iter().zip(&paper) {
            let got = cfg.iteration_energy_uj(FULL_HD_PIXELS);
            assert!(
                (got - expect).abs() / expect < 0.02,
                "{}: {got} µJ vs paper {expect}",
                cfg.name()
            );
        }
    }

    #[test]
    fn power_matches_table3() {
        let paper = [3.3, 3.6, 3.2, 3.25, 30.9];
        for (cfg, &expect) in ClusterUnitConfig::table3().iter().zip(&paper) {
            let got = cfg.power_mw(FULL_HD_PIXELS);
            assert!(
                (got - expect).abs() / expect < 0.06,
                "{}: {got} mW vs paper {expect}",
                cfg.name()
            );
        }
    }

    #[test]
    fn paper_tradeoff_9_9_6_vs_1_1_1() {
        // "The 9-9-6 way design is 7.8× higher area and 9.4× higher power
        // … However it offers 9× increase in throughput."
        let base = ClusterUnitConfig::c1_1_1();
        let full = ClusterUnitConfig::c9_9_6();
        let area_ratio = full.area_mm2() / base.area_mm2();
        let power_ratio = full.power_mw(FULL_HD_PIXELS) / base.power_mw(FULL_HD_PIXELS);
        let tp_ratio =
            full.throughput_pixels_per_cycle() / base.throughput_pixels_per_cycle();
        assert!((area_ratio - 7.8).abs() < 0.3, "area ratio {area_ratio}");
        assert!((power_ratio - 9.4).abs() < 0.6, "power ratio {power_ratio}");
        assert_eq!(tp_ratio, 9.0);
    }

    #[test]
    fn imbalanced_designs_gain_no_throughput() {
        // 9-1-1, 1-9-1, 1-1-6 pay area without throughput: the paper's
        // reason to exclude them.
        for cfg in [
            ClusterUnitConfig::c9_1_1(),
            ClusterUnitConfig::c1_9_1(),
            ClusterUnitConfig::c1_1_6(),
        ] {
            assert_eq!(
                cfg.throughput_pixels_per_cycle(),
                ClusterUnitConfig::c1_1_1().throughput_pixels_per_cycle(),
                "{} should not beat 1-1-1 throughput",
                cfg.name()
            );
            assert!(cfg.area_mm2() > ClusterUnitConfig::c1_1_1().area_mm2());
        }
    }

    #[test]
    fn energy_is_nearly_flat_across_configs() {
        // The paper's observation: parallelism changes time and power but
        // energy "only marginally" — within ±10% of the baseline.
        let base = ClusterUnitConfig::c1_1_1().iteration_energy_uj(FULL_HD_PIXELS);
        for cfg in ClusterUnitConfig::table3() {
            let e = cfg.iteration_energy_uj(FULL_HD_PIXELS);
            assert!(
                (e - base).abs() / base < 0.10,
                "{} energy {e} deviates from {base}",
                cfg.name()
            );
        }
    }

    #[test]
    fn tile_fill_overhead_is_small_but_positive() {
        let cfg = ClusterUnitConfig::c9_9_6();
        let no_tiles = FULL_HD_PIXELS as f64; // ideal: 1 px/cycle
        let with_tiles = cfg.iteration_cycles(FULL_HD_PIXELS, 4096);
        assert!(with_tiles > no_tiles);
        assert!(with_tiles < no_tiles * 1.05, "fill overhead under 5%");
    }
}
