//! Tile DMA scheduling: serial versus double-buffered transfer/compute
//! overlap.
//!
//! The paper's frame model (and Figure 6) charges memory time *in series*
//! with compute — consistent with its "memory access takes 35% of total
//! execution time" accounting. A natural microarchitectural extension is
//! **double buffering**: while the Cluster Update Unit processes tile `i`
//! from one scratchpad bank, the DMA prefetches tile `i+1` into the other.
//! Per-tile time then becomes `max(compute, transfer)` instead of
//! `compute + transfer`, hiding memory behind compute whenever the
//! buffers are large enough to amortize the 50-cycle burst latency.
//!
//! [`TileSchedule`] computes both timelines for a frame; the
//! `ablation_dma` bench charts how the Figure 6 curve would shift — the
//! area cost being a second set of channel buffers.

/// Per-frame tile-streaming timing under a given schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileSchedule {
    /// Number of tiles streamed.
    pub tiles: u64,
    /// Compute cycles per tile.
    pub compute_per_tile: f64,
    /// Transfer cycles per tile (streaming + burst latency).
    pub transfer_per_tile: f64,
}

impl TileSchedule {
    /// Builds the schedule for a frame of `pixels` pixels processed in
    /// `tile_pixels`-pixel tiles, with the compute and DRAM rates given in
    /// cycles.
    ///
    /// * `compute_cycles_per_pixel` — the Cluster Update Unit initiation
    ///   interval (1 for `9-9-6`).
    /// * `bytes_per_pixel` — tile payload (Lab in + index in/out ≈ 7 B at
    ///   8-bit channels).
    /// * `effective_bytes_per_cycle` — sustained DRAM bandwidth.
    /// * `bursts_per_tile × latency` — fixed per-tile latency charge.
    ///
    /// # Panics
    ///
    /// Panics if `tile_pixels` or rates are zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pixels: u64,
        tile_pixels: u64,
        compute_cycles_per_pixel: f64,
        bytes_per_pixel: f64,
        effective_bytes_per_cycle: f64,
        bursts_per_tile: f64,
        burst_latency: f64,
    ) -> Self {
        assert!(tile_pixels > 0, "tile size must be nonzero");
        assert!(
            compute_cycles_per_pixel > 0.0 && effective_bytes_per_cycle > 0.0,
            "rates must be positive"
        );
        let tiles = pixels.div_ceil(tile_pixels);
        let compute_per_tile = tile_pixels as f64 * compute_cycles_per_pixel;
        let transfer_per_tile = tile_pixels as f64 * bytes_per_pixel / effective_bytes_per_cycle
            + bursts_per_tile * burst_latency;
        TileSchedule {
            tiles,
            compute_per_tile,
            transfer_per_tile,
        }
    }

    /// Total cycles with serial transfer-then-compute per tile (the
    /// paper's accounting).
    pub fn serial_cycles(&self) -> f64 {
        self.tiles as f64 * (self.compute_per_tile + self.transfer_per_tile)
    }

    /// Total cycles with double buffering: the first tile's transfer is
    /// exposed, every later tile costs `max(compute, transfer)`.
    pub fn double_buffered_cycles(&self) -> f64 {
        if self.tiles == 0 {
            return 0.0;
        }
        self.transfer_per_tile
            + self.tiles as f64 * self.compute_per_tile.max(self.transfer_per_tile)
    }

    /// Speedup of double buffering over the serial schedule.
    pub fn overlap_speedup(&self) -> f64 {
        self.serial_cycles() / self.double_buffered_cycles()
    }

    /// Whether the stream is memory-bound under overlap (transfers longer
    /// than compute per tile).
    pub fn is_memory_bound(&self) -> bool {
        self.transfer_per_tile > self.compute_per_tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tile(tile_pixels: u64) -> TileSchedule {
        // Full-HD cluster-update pass: 1 cy/px compute, 7 B/px payload,
        // 8.64 B/cy effective bandwidth, 5 bursts × 50 cy per tile.
        TileSchedule::new(
            1920 * 1080,
            tile_pixels,
            1.0,
            7.0,
            8.64,
            5.0,
            50.0,
        )
    }

    #[test]
    fn serial_equals_sum_of_parts() {
        let s = paper_tile(4096);
        let expect = s.tiles as f64 * (s.compute_per_tile + s.transfer_per_tile);
        assert_eq!(s.serial_cycles(), expect);
    }

    #[test]
    fn double_buffering_never_loses() {
        for tile in [512u64, 1024, 4096, 16384, 131072] {
            let s = paper_tile(tile);
            assert!(
                s.double_buffered_cycles() <= s.serial_cycles(),
                "tile {tile}"
            );
            assert!(s.overlap_speedup() >= 1.0);
        }
    }

    #[test]
    fn cluster_update_stream_is_memory_bound_at_paper_rates() {
        // 7 B/px at 8.64 B/cy = 0.81 cy/px of streaming plus latency vs
        // 1 cy/px compute: transfer per tile exceeds compute once the
        // burst latency is added for small tiles, and stays close above.
        let s = paper_tile(1024);
        assert!(s.is_memory_bound(), "small tiles pay the latency");
        // Large tiles amortize latency: compute and transfer are near par.
        let big = paper_tile(131072);
        let ratio = big.transfer_per_tile / big.compute_per_tile;
        assert!((0.7..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn overlap_hides_at_most_the_smaller_phase() {
        let s = paper_tile(4096);
        // Speedup is bounded by 2 (perfect overlap of equal phases).
        let sp = s.overlap_speedup();
        assert!((1.0..2.0).contains(&sp), "speedup {sp}");
    }

    #[test]
    fn overlap_reduces_the_buffer_knee() {
        // With double buffering, the 1 kB tile stream is far less penalized
        // relative to 4 kB than in the serial schedule.
        let serial_gap = paper_tile(1024).serial_cycles() / paper_tile(4096).serial_cycles();
        let overlap_gap =
            paper_tile(1024).double_buffered_cycles() / paper_tile(4096).double_buffered_cycles();
        assert!(
            overlap_gap < serial_gap,
            "overlap {overlap_gap} vs serial {serial_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "tile size")]
    fn zero_tile_panics() {
        let _ = TileSchedule::new(100, 0, 1.0, 7.0, 8.0, 5.0, 50.0);
    }
}
