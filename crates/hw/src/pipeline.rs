//! Cycle-stepped model of the Cluster Update Unit pipeline.
//!
//! [`crate::cluster::ClusterUnitConfig`] captures the unit's *aggregate*
//! timing (initiation interval, latency). This module actually steps the
//! Figure 4 datapath cycle by cycle: a pixel transaction is issued into
//! the distance stage, flows through the 9:1 minimum and the sigma-adder
//! bank, and retires — with structural hazards enforced (an iterative
//! stage is busy for its full iteration count; the sigma bank accepts one
//! update per adder pass).
//!
//! The model is validated two ways:
//!
//! * against the closed-form [`ClusterUnitConfig`] numbers — the simulated
//!   cycle count of an `n`-pixel tile must equal `n·II + latency`-ish
//!   (tests pin the exact relation), and
//! * functionally — transactions carry real distance codes through the
//!   same [`sslic_core::QuantKernel`] the rest of the repository uses, so
//!   the winning cluster per pixel matches the functional simulator.
//!
//! [`PipelineTrace`] records per-cycle stage occupancy and renders an
//! ASCII waveform, the quickest way to *see* why `9-9-6` sustains one
//! pixel per cycle while `1-1-1` stalls 9 cycles per pixel.

use std::collections::VecDeque;

use crate::cluster::ClusterUnitConfig;

/// The three pipeline stages of the Cluster Update Unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Color/spatial distance calculation (1 or 9 calculators).
    Distance,
    /// 9:1 minimum selection (iterative compare or tree).
    Minimum,
    /// Six-field sigma-register update (1 or 6 adders).
    SigmaUpdate,
}

/// One pixel's journey through the unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelTransaction {
    /// Issue order (0-based).
    pub id: u64,
    /// Cycle the transaction entered the distance stage.
    pub issued_at: u64,
    /// Cycle the sigma update completed.
    pub retired_at: u64,
    /// Winning cluster slot (0–8) selected by the minimum stage.
    pub winner: u8,
}

/// A per-cycle record of which transaction occupied which stage.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    /// `(cycle, stage, transaction id)` tuples in issue order.
    pub events: Vec<(u64, Stage, u64)>,
}

impl PipelineTrace {
    /// Renders the first `max_cycles` cycles as an ASCII waveform, one row
    /// per stage, one column per cycle; cells show the transaction id (mod
    /// 10) or `.` when idle.
    pub fn waveform(&self, max_cycles: u64) -> String {
        let mut rows = [
            ("distance ", vec![b'.'; max_cycles as usize]),
            ("minimum  ", vec![b'.'; max_cycles as usize]),
            ("sigma    ", vec![b'.'; max_cycles as usize]),
        ];
        for &(cycle, stage, id) in &self.events {
            if cycle >= max_cycles {
                continue;
            }
            let row = match stage {
                Stage::Distance => 0,
                Stage::Minimum => 1,
                Stage::SigmaUpdate => 2,
            };
            rows[row].1[cycle as usize] = b'0' + u8::try_from(id % 10).unwrap_or(0);
        }
        let mut out = String::new();
        out.push_str("cycle    ");
        for c in 0..max_cycles {
            out.push(char::from(b'0' + u8::try_from(c % 10).unwrap_or(0)));
        }
        out.push('\n');
        for (name, cells) in rows {
            out.push_str(name);
            out.push_str(&String::from_utf8_lossy(&cells));
            out.push('\n');
        }
        out
    }
}

/// Cycle-stepped simulator of one Cluster Update Unit.
#[derive(Debug)]
pub struct ClusterPipeline {
    config: ClusterUnitConfig,
    cycle: u64,
    /// Cycle at which the distance stage can accept the next transaction.
    distance_free_at: u64,
    /// In-flight transactions: (stage-entry cycles, distance codes).
    in_flight: VecDeque<InFlight>,
    retired: Vec<PixelTransaction>,
    trace: Option<PipelineTrace>,
    issued: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    id: u64,
    issued_at: u64,
    distances: [u32; 9],
}

impl ClusterPipeline {
    /// Creates an idle pipeline for `config`.
    pub fn new(config: ClusterUnitConfig) -> Self {
        ClusterPipeline {
            config,
            cycle: 0,
            distance_free_at: 0,
            in_flight: VecDeque::new(),
            retired: Vec::new(),
            trace: None,
            issued: 0,
        }
    }

    /// Enables per-cycle tracing (costs memory proportional to cycles).
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(PipelineTrace::default());
        self
    }

    /// The configuration being simulated.
    pub fn config(&self) -> ClusterUnitConfig {
        self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Issues one pixel's 9 distance codes into the unit, advancing time
    /// to the issue cycle if the distance stage is still busy (the FSM
    /// stalls the scratchpad read). Returns the transaction id.
    pub fn issue(&mut self, distances: [u32; 9]) -> u64 {
        // Respect the initiation interval: the distance stage frees
        // `II` cycles after the previous issue.
        if self.cycle < self.distance_free_at {
            self.cycle = self.distance_free_at;
        }
        let id = self.issued;
        self.issued += 1;
        let issued_at = self.cycle;
        let ii = self.config.initiation_interval() as u64;
        self.distance_free_at = issued_at + ii;

        // Record stage occupancy for the trace.
        if let Some(trace) = &mut self.trace {
            let (d, m, a) = self.config.stage_cycles_for_trace();
            for c in 0..d {
                trace.events.push((issued_at + c, Stage::Distance, id));
            }
            for c in 0..m {
                trace.events.push((issued_at + d + c, Stage::Minimum, id));
            }
            for c in 0..a {
                trace.events.push((issued_at + d + m + c, Stage::SigmaUpdate, id));
            }
        }

        self.in_flight.push_back(InFlight {
            id,
            issued_at,
            distances,
        });
        // Advance by one issue cycle (the +1 in the latency model).
        self.cycle += 1;
        self.drain_ready();
        id
    }

    /// Retires every transaction whose pipeline latency has elapsed.
    fn drain_ready(&mut self) {
        let latency = self.config.latency_cycles() as u64;
        while let Some(front) = self.in_flight.front() {
            let retire_at = front.issued_at + latency;
            if retire_at > self.cycle {
                break;
            }
            let Some(tx) = self.in_flight.pop_front() else {
                break;
            };
            let winner = argmin9(&tx.distances);
            self.retired.push(PixelTransaction {
                id: tx.id,
                issued_at: tx.issued_at,
                retired_at: retire_at,
                winner,
            });
        }
    }

    /// Runs the pipeline dry: advances time until every in-flight
    /// transaction has retired, returning the final cycle count.
    pub fn flush(&mut self) -> u64 {
        let latency = self.config.latency_cycles() as u64;
        if let Some(last) = self.in_flight.back() {
            self.cycle = self.cycle.max(last.issued_at + latency);
        }
        self.drain_ready();
        debug_assert!(self.in_flight.is_empty());
        self.cycle
    }

    /// Retired transactions in issue order.
    pub fn retired(&self) -> &[PixelTransaction] {
        &self.retired
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&PipelineTrace> {
        self.trace.as_ref()
    }
}

/// Index of the smallest of 9 codes; ties resolve to the lowest index,
/// matching the software engine's scan order and the hardware's priority
/// encoder.
fn argmin9(d: &[u32; 9]) -> u8 {
    let mut best = 0u8;
    for i in 1u8..9 {
        if d[usize::from(i)] < d[usize::from(best)] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pixel_latency_matches_closed_form() {
        for cfg in ClusterUnitConfig::table3() {
            let mut pipe = ClusterPipeline::new(cfg);
            pipe.issue([5, 4, 3, 2, 1, 2, 3, 4, 5]);
            let total = pipe.flush();
            assert_eq!(
                total,
                cfg.latency_cycles() as u64,
                "{}: one pixel takes exactly the pipeline latency",
                cfg.name()
            );
        }
    }

    #[test]
    fn tile_cycles_match_closed_form_for_all_configs() {
        // n pixels through the unit: (n-1)·II + latency cycles.
        let n = 257u64;
        for cfg in ClusterUnitConfig::table3() {
            let mut pipe = ClusterPipeline::new(cfg);
            for _ in 0..n {
                pipe.issue([9, 8, 7, 6, 5, 6, 7, 8, 9]);
            }
            let total = pipe.flush();
            let expected =
                (n - 1) * cfg.initiation_interval() as u64 + cfg.latency_cycles() as u64;
            assert_eq!(total, expected, "{}", cfg.name());
        }
    }

    #[test]
    fn fully_parallel_unit_sustains_one_pixel_per_cycle() {
        let mut pipe = ClusterPipeline::new(ClusterUnitConfig::c9_9_6());
        for _ in 0..1000u64 {
            pipe.issue([1; 9]);
        }
        let total = pipe.flush();
        assert!(total < 1000 + 10, "≈1 px/cycle: {total} cycles for 1000 px");
    }

    #[test]
    fn iterative_unit_is_nine_cycles_per_pixel() {
        let mut pipe = ClusterPipeline::new(ClusterUnitConfig::c1_1_1());
        for _ in 0..100u64 {
            pipe.issue([1; 9]);
        }
        let total = pipe.flush();
        assert!(
            (900..950).contains(&total),
            "≈9 px/cycle: {total} cycles for 100 px"
        );
    }

    #[test]
    fn winners_match_a_software_argmin() {
        let mut pipe = ClusterPipeline::new(ClusterUnitConfig::c9_9_6());
        let cases: [[u32; 9]; 4] = [
            [5, 4, 3, 2, 1, 2, 3, 4, 5],
            [1, 1, 1, 1, 1, 1, 1, 1, 1], // tie → slot 0 (priority encoder)
            [9, 9, 9, 9, 9, 9, 9, 9, 0],
            [2, 1, 2, 1, 2, 1, 2, 1, 2], // tie between 1,3,5,7 → slot 1
        ];
        for d in &cases {
            pipe.issue(*d);
        }
        pipe.flush();
        let winners: Vec<u8> = pipe.retired().iter().map(|t| t.winner).collect();
        assert_eq!(winners, vec![4, 0, 8, 1]);
    }

    #[test]
    fn transactions_retire_in_issue_order() {
        let mut pipe = ClusterPipeline::new(ClusterUnitConfig::c9_1_1());
        for _ in 0..20u64 {
            pipe.issue([3; 9]);
        }
        pipe.flush();
        let ids: Vec<u64> = pipe.retired().iter().map(|t| t.id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        for t in pipe.retired() {
            assert!(t.retired_at > t.issued_at);
        }
    }

    #[test]
    fn trace_waveform_shows_stage_occupancy() {
        let mut pipe = ClusterPipeline::new(ClusterUnitConfig::c9_9_6()).with_trace();
        for _ in 0..3u64 {
            pipe.issue([1; 9]);
        }
        pipe.flush();
        let wave = pipe.trace().expect("tracing enabled").waveform(12);
        // Three rows plus the cycle ruler.
        assert_eq!(wave.lines().count(), 4);
        // All three transactions appear in the distance stage (cells show
        // the most recent occupant when pipelined transactions overlap).
        let distance_row = wave.lines().nth(1).expect("distance row");
        for id in ['0', '1', '2'] {
            assert!(distance_row.contains(id), "row: {distance_row}");
        }
        // Pipelining: sigma retires 0,1,2 on consecutive cycles.
        let sigma_row = wave.lines().nth(3).expect("sigma row");
        assert!(sigma_row.contains("012"), "row: {sigma_row}");
    }

    #[test]
    fn trace_is_off_by_default() {
        let mut pipe = ClusterPipeline::new(ClusterUnitConfig::c9_9_6());
        pipe.issue([1; 9]);
        assert!(pipe.trace().is_none());
    }

    #[test]
    fn throughput_ratio_between_configs_is_nine() {
        let run = |cfg: ClusterUnitConfig| {
            let mut pipe = ClusterPipeline::new(cfg);
            for _ in 0..500u64 {
                pipe.issue([1; 9]);
            }
            pipe.flush()
        };
        let fast = run(ClusterUnitConfig::c9_9_6());
        let slow = run(ClusterUnitConfig::c1_1_1());
        let ratio = slow as f64 / fast as f64;
        assert!((8.5..9.5).contains(&ratio), "ratio {ratio}");
    }
}
