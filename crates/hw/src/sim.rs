//! The frame-level analytic performance/energy model behind Figure 6 and
//! Tables 4–5.
//!
//! A frame is processed in four sequential components (the paper's §7
//! decomposition):
//!
//! 1. **Color conversion** — one pixel per cycle through the LUT unit.
//! 2. **Cluster-update compute** — `iterations` passes of the Cluster
//!    Update Unit at its configuration's initiation interval, with
//!    per-tile pipeline fill and sigma exchange.
//! 3. **Center update** — the iterative divider walking all `K` sigma
//!    registers per iteration (resolution-independent; this is why the
//!    paper's VGA latency is nowhere near 6.7× faster than full HD).
//! 4. **Memory** — all DRAM traffic at effective bandwidth plus a 50-cycle
//!    latency per tile burst; shrinking the channel buffers multiplies the
//!    bursts, which is the Figure 6 effect.
//!
//! At the paper's design point (full HD, K = 5000, 9 iterations, 9-9-6
//! unit, 4 kB buffers) the model reproduces §7's numbers: ≈1.3 ms color
//! conversion, ≈20.5 ms cluster compute, ≈11.1 ms memory, ≈33 ms total —
//! just over 30 frames per second.

use crate::cluster::ClusterUnitConfig;
use crate::dram::{DramModel, DramTraffic};
use crate::model;
use crate::scratchpad::ScratchpadSet;

/// An image geometry with a display name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Display name ("1920×1080", …).
    pub name: &'static str,
}

impl Resolution {
    /// Full HD, the paper's primary evaluation point.
    pub const FULL_HD: Resolution = Resolution {
        width: 1920,
        height: 1080,
        name: "1920x1080",
    };
    /// The paper's 720p-class geometry (Table 4 uses 1280×768).
    pub const HD720: Resolution = Resolution {
        width: 1280,
        height: 768,
        name: "1280x768",
    };
    /// VGA.
    pub const VGA: Resolution = Resolution {
        width: 640,
        height: 480,
        name: "640x480",
    };

    /// The three Table 4 resolutions.
    pub const TABLE4: [Resolution; 3] = [Self::FULL_HD, Self::HD720, Self::VGA];

    /// Pixel count.
    pub fn pixels(&self) -> u64 {
        (self.width * self.height) as u64
    }
}

/// Pipeline latency of the color-conversion unit in cycles (LUT read,
/// matrix MACs, PWL evaluate, encode).
const COLOR_CONV_LATENCY: f64 = 10.0;

/// The frame-level analytic simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSimulator {
    resolution: Resolution,
    superpixels: usize,
    iterations: u32,
    subsets: u32,
    cluster_config: ClusterUnitConfig,
    buffer_bytes_per_channel: usize,
    dram: DramModel,
    cores: u32,
    clock_hz: f64,
}

impl FrameSimulator {
    /// The paper's configuration for `resolution`: K = 5000, 9 iterations,
    /// the 9-9-6 Cluster Update Unit, and the Table 4 buffer size (4 kB at
    /// full HD, 1 kB below).
    pub fn paper_default(resolution: Resolution) -> Self {
        let buffer = if resolution.pixels() >= Resolution::FULL_HD.pixels() {
            4 * 1024
        } else {
            1024
        };
        FrameSimulator {
            resolution,
            superpixels: 5000,
            iterations: 9,
            subsets: 1,
            cluster_config: ClusterUnitConfig::c9_9_6(),
            buffer_bytes_per_channel: buffer,
            dram: DramModel::default(),
            cores: 1,
            clock_hz: model::CLOCK_HZ,
        }
    }

    /// Overrides the superpixel count `K`.
    ///
    /// # Panics
    ///
    /// [`FrameSimulator::simulate`] panics if the value is zero.
    pub fn with_superpixels(mut self, k: usize) -> Self {
        self.superpixels = k;
        self
    }

    /// Overrides the iteration count.
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the S-SLIC subsampling factor `P`: each center-update step
    /// touches `1/P` of the pixels (and their memory traffic). `1` models
    /// full-image SLIC iterations, the assumption behind the paper's
    /// Table 4/§7 latency numbers; `2` is the S-SLIC (0.5) configuration
    /// whose 1.8× bandwidth saving the abstract quotes.
    pub fn with_subsets(mut self, subsets: u32) -> Self {
        self.subsets = subsets.max(1);
        self
    }

    /// Selects the Cluster Update Unit configuration.
    pub fn with_cluster_config(mut self, config: ClusterUnitConfig) -> Self {
        self.cluster_config = config;
        self
    }

    /// Sets the per-channel scratchpad size in bytes (the Fig. 6 knob).
    pub fn with_buffer_bytes(mut self, bytes: usize) -> Self {
        self.buffer_bytes_per_channel = bytes;
        self
    }

    /// Overrides the DRAM model.
    pub fn with_dram(mut self, dram: DramModel) -> Self {
        self.dram = dram;
        self
    }

    /// Sets the core count — the "number of cores" axis of the paper's §5
    /// design-space exploration (Table 4 selects 1). Cores tile-parallelize
    /// color conversion and cluster-update assignment; each core carries
    /// its own Cluster Update Unit and scratchpad set. The center update
    /// and the shared DRAM channel stay serial, so scaling is Amdahl-bound.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Sets the core clock in GHz — §6.3: the architecture "can scale
    /// gracefully down to lower resolution image streams by reducing the
    /// buffer sizes and ultimately reducing the clock rate". DVFS is
    /// modeled with a linear voltage curve `V(f) = VDD·(0.55 + 0.45·f/f₀)`
    /// so dynamic power scales as `(f/f₀)·(V/V₀)²`. DRAM timing is set by
    /// the memory device, not the core clock, so memory time is unchanged.
    pub fn with_clock_ghz(mut self, ghz: f64) -> Self {
        assert!(ghz > 0.0, "clock must be positive");
        self.clock_hz = ghz * 1e9;
        self
    }

    /// The configured core clock in GHz.
    pub fn clock_ghz(&self) -> f64 {
        self.clock_hz / 1e9
    }

    /// The DVFS power-scaling factor relative to the 1.6 GHz / 0.72 V
    /// design point: `(f/f₀)·(V(f)/V₀)²`.
    pub fn dvfs_power_factor(&self) -> f64 {
        let f_ratio = self.clock_hz / model::CLOCK_HZ;
        let v_ratio = 0.55 + 0.45 * f_ratio;
        f_ratio * v_ratio * v_ratio
    }

    /// The configured per-channel buffer size in bytes.
    pub fn buffer_bytes(&self) -> usize {
        self.buffer_bytes_per_channel
    }

    /// Realized superpixel count after grid rounding (matches
    /// `sslic_core::SeedGrid`).
    pub fn realized_superpixels(&self) -> usize {
        let n = self.resolution.pixels() as f64;
        let spacing = (n / self.superpixels as f64).sqrt();
        let cols = ((self.resolution.width as f64 / spacing).round() as usize).max(1);
        let rows = ((self.resolution.height as f64 / spacing).round() as usize).max(1);
        cols * rows
    }

    /// DRAM traffic for one frame: the RGB load and Lab store of color
    /// conversion, then per center-update step the subset's Lab reads and
    /// index read/write (2-byte indices for up to 64k superpixels).
    pub fn dram_traffic(&self) -> DramTraffic {
        let n = self.resolution.pixels();
        let tile = self.buffer_bytes_per_channel as u64;
        let mut t = DramTraffic::default();
        // Color conversion: interleaved RGB in, 3 Lab planes out, tile by
        // tile.
        let cc_tiles = n.div_ceil(tile);
        t.bytes_read += 3 * n;
        t.bytes_written += 3 * n;
        t.bursts += cc_tiles * 4; // 1 RGB read + 3 Lab writes per tile
        // Cluster update: per step, 1/P of the pixels stream through.
        let step_pixels = n / self.subsets as u64;
        let step_tiles = step_pixels.div_ceil(tile);
        for _ in 0..self.iterations {
            t.bytes_read += 3 * step_pixels; // L, a, b
            t.bytes_read += 2 * step_pixels; // index read
            t.bytes_written += 2 * step_pixels; // index write-back
            t.bursts += step_tiles * 5;
        }
        t
    }

    /// Runs the analytic model.
    ///
    /// # Panics
    ///
    /// Panics if the superpixel or iteration count is zero.
    pub fn simulate(&self) -> FrameReport {
        assert!(self.superpixels > 0, "superpixel count must be nonzero");
        assert!(self.iterations > 0, "iteration count must be nonzero");
        let n = self.resolution.pixels();
        let tile_pixels = self.buffer_bytes_per_channel as u64;
        let k = self.realized_superpixels() as u64;
        let cores = self.cores as u64;
        let to_ms = |cycles: f64| cycles / self.clock_hz * 1e3;

        // 1. Color conversion: 1 px/cycle per core + per-tile pipeline
        //    fill (tiles are distributed across cores).
        let cc_tiles = n.div_ceil(tile_pixels);
        let color_ms = to_ms(
            (n.div_ceil(cores)) as f64
                + cc_tiles.div_ceil(cores) as f64 * COLOR_CONV_LATENCY,
        );

        // 2. Cluster-update compute, tile-parallel across cores.
        let step_pixels = n / self.subsets as u64;
        let assign_ms = to_ms(
            self.cluster_config
                .iteration_cycles(step_pixels.div_ceil(cores), tile_pixels)
                * self.iterations as f64,
        );

        // 3. Center update (resolution independent, serial).
        let center_ms =
            to_ms(k as f64 * self.iterations as f64 * model::CENTER_UPDATE_CYCLES_PER_SP);

        // 4. Memory: the DRAM channel is shared and its timing is set by
        //    the device, not the core clock, so this term uses the design
        //    clock regardless of DVFS.
        let traffic = self.dram_traffic();
        let memory_ms = self.dram.transfer_ms(traffic.total_bytes(), traffic.bursts);

        // Area: one Cluster Update Unit and scratchpad set per core.
        let scratchpads = ScratchpadSet::new(self.buffer_bytes_per_channel);
        let area_mm2 = (self.cluster_config.area_mm2() + scratchpads.area_mm2())
            * self.cores as f64
            + model::area::FIXED_TOTAL_MM2;

        // Power: per-unit peak × utilization (the paper's method), scaled
        // by the DVFS factor; compute units replicate per core.
        let total_ms = color_ms + assign_ms + center_ms + memory_ms;
        let cluster_peak = self.cluster_config.power_mw(step_pixels.max(1));
        let dvfs = self.dvfs_power_factor();
        let cores_f = self.cores as f64;
        let power = PowerBreakdown {
            cluster_mw: dvfs * cores_f * cluster_peak * (assign_ms / total_ms),
            color_conv_mw: dvfs * cores_f * model::power::COLOR_CONV_MW * (color_ms / total_ms),
            center_update_mw: dvfs
                * model::power::CENTER_UPDATE_MW
                * (center_ms / total_ms),
            sram_mw: dvfs * cores_f * scratchpads.power_mw(),
            fsm_mw: dvfs * model::power::FSM_MW,
            mem_interface_mw: model::power::MEM_INTERFACE_MW,
        };
        let avg_power_mw = power.total_mw();

        // External DRAM energy, reported separately (the paper's 49 mW /
        // 1.6 mJ budget is accelerator-side; DRAM device energy is the
        // §4.2 argument for choosing the PPA).
        let dram_energy_uj = self.dram.transfer_energy_uj(traffic.total_bytes());

        FrameReport {
            resolution: self.resolution,
            superpixels: k as usize,
            buffer_bytes: self.buffer_bytes_per_channel,
            color_ms,
            assign_ms,
            center_ms,
            memory_ms,
            traffic,
            area_mm2,
            avg_power_mw,
            power,
            dram_energy_uj,
        }
    }
}

/// Average power per unit over a frame — the paper's "peak active power
/// × utilization" accounting (§6.3), itemized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Cluster Update Unit(s).
    pub cluster_mw: f64,
    /// Color-conversion unit(s).
    pub color_conv_mw: f64,
    /// Center-update unit.
    pub center_update_mw: f64,
    /// Scratchpad SRAMs (full utilization, per the paper).
    pub sram_mw: f64,
    /// FSM host controller.
    pub fsm_mw: f64,
    /// External-memory interface logic.
    pub mem_interface_mw: f64,
}

impl PowerBreakdown {
    /// Sum of all units.
    pub fn total_mw(&self) -> f64 {
        self.cluster_mw
            + self.color_conv_mw
            + self.center_update_mw
            + self.sram_mw
            + self.fsm_mw
            + self.mem_interface_mw
    }
}

/// The output of [`FrameSimulator::simulate`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// Geometry simulated.
    pub resolution: Resolution,
    /// Realized superpixel count.
    pub superpixels: usize,
    /// Per-channel buffer size in bytes.
    pub buffer_bytes: usize,
    /// Color-conversion time.
    pub color_ms: f64,
    /// Cluster-update assignment compute time.
    pub assign_ms: f64,
    /// Center-update time.
    pub center_ms: f64,
    /// DRAM transfer time.
    pub memory_ms: f64,
    /// DRAM traffic summary.
    pub traffic: DramTraffic,
    /// Total accelerator area.
    pub area_mm2: f64,
    /// Average accelerator power over the frame.
    pub avg_power_mw: f64,
    /// Per-unit power itemization.
    pub power: PowerBreakdown,
    /// External DRAM device energy (not part of the accelerator budget).
    pub dram_energy_uj: f64,
}

impl FrameReport {
    /// End-to-end frame latency in milliseconds (Table 4's latency row).
    pub fn total_ms(&self) -> f64 {
        self.color_ms + self.assign_ms + self.center_ms + self.memory_ms
    }

    /// The paper's "cluster update" aggregate: everything but color
    /// conversion (§7 reports it as compute + memory).
    pub fn cluster_update_ms(&self) -> f64 {
        self.assign_ms + self.center_ms + self.memory_ms
    }

    /// Compute part of the cluster update (assignment + center update).
    pub fn cluster_compute_ms(&self) -> f64 {
        self.assign_ms + self.center_ms
    }

    /// Sustained frame rate (Table 4's throughput row).
    pub fn fps(&self) -> f64 {
        1000.0 / self.total_ms()
    }

    /// Whether the 30 fps real-time bar is met.
    pub fn is_real_time(&self) -> bool {
        self.fps() >= 30.0
    }

    /// Accelerator energy per frame in millijoules (Table 4's energy row:
    /// average power × latency).
    pub fn energy_mj_per_frame(&self) -> f64 {
        self.avg_power_mw * self.total_ms() * 1e-6 * 1e3
    }

    /// Throughput density in fps/mm² (Table 4's last row).
    pub fn fps_per_mm2(&self) -> f64 {
        self.fps() / self.area_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_hd() -> FrameReport {
        FrameSimulator::paper_default(Resolution::FULL_HD).simulate()
    }

    #[test]
    fn full_hd_latency_matches_table4() {
        let r = full_hd();
        // Paper: 32.8 ms, 30.5 fps.
        assert!(
            (r.total_ms() - 32.8).abs() < 1.0,
            "total {} ms vs paper 32.8",
            r.total_ms()
        );
        assert!(r.is_real_time(), "fps = {}", r.fps());
    }

    #[test]
    fn full_hd_decomposition_matches_section7() {
        let r = full_hd();
        // Paper §7: color conversion 1.4 ms, cluster update 31.4 ms of
        // which memory 11.1 ms and compute 20.3 ms.
        assert!((r.color_ms - 1.4).abs() < 0.2, "color {}", r.color_ms);
        assert!(
            (r.memory_ms - 11.1).abs() < 0.5,
            "memory {} vs 11.1",
            r.memory_ms
        );
        assert!(
            (r.cluster_compute_ms() - 20.3).abs() < 1.0,
            "compute {} vs 20.3",
            r.cluster_compute_ms()
        );
    }

    #[test]
    fn full_hd_memory_share_is_about_a_third() {
        // §6.3: "In the case of the 4kB buffer size, memory access takes
        // 35% of total execution time."
        let r = full_hd();
        let share = r.memory_ms / r.total_ms();
        assert!((0.28..=0.40).contains(&share), "memory share {share}");
    }

    #[test]
    fn full_hd_area_matches_table4() {
        let r = full_hd();
        assert!(
            (r.area_mm2 - 0.066).abs() < 0.003,
            "area {} vs 0.066",
            r.area_mm2
        );
    }

    #[test]
    fn full_hd_power_and_energy_match_table4() {
        let r = full_hd();
        assert!(
            (r.avg_power_mw - 49.0).abs() < 4.0,
            "power {} mW vs 49",
            r.avg_power_mw
        );
        assert!(
            (r.energy_mj_per_frame() - 1.6).abs() < 0.2,
            "energy {} mJ vs 1.6",
            r.energy_mj_per_frame()
        );
    }

    #[test]
    fn all_table4_resolutions_are_real_time() {
        for res in Resolution::TABLE4 {
            let r = FrameSimulator::paper_default(res).simulate();
            assert!(r.is_real_time(), "{}: {} fps", res.name, r.fps());
        }
    }

    #[test]
    fn smaller_resolutions_are_faster_but_sublinearly() {
        // Table 4's striking shape: VGA has 6.75× fewer pixels than full
        // HD but is nowhere near 6.75× faster, because the K = 5000 center
        // update does not shrink with resolution.
        let hd = full_hd();
        let vga = FrameSimulator::paper_default(Resolution::VGA).simulate();
        let speedup = hd.total_ms() / vga.total_ms();
        assert!(speedup > 1.3, "VGA should be faster: {speedup}");
        assert!(speedup < 4.0, "but far below the 6.75× pixel ratio: {speedup}");
    }

    #[test]
    fn perf_per_area_improves_at_lower_resolution() {
        // Table 4: 461 → 747 → 963 fps/mm².
        let reports: Vec<FrameReport> = Resolution::TABLE4
            .iter()
            .map(|&r| FrameSimulator::paper_default(r).simulate())
            .collect();
        assert!(reports[0].fps_per_mm2() < reports[1].fps_per_mm2());
        assert!(reports[1].fps_per_mm2() < reports[2].fps_per_mm2());
    }

    #[test]
    fn buffer_sweep_reproduces_fig6_shape() {
        // Fig. 6: time falls steeply from 1 kB, crosses the 33.3 ms
        // real-time line at 4 kB, then flattens.
        let times: Vec<f64> = [1, 2, 4, 8, 16, 32, 64, 128]
            .iter()
            .map(|&kb| {
                FrameSimulator::paper_default(Resolution::FULL_HD)
                    .with_buffer_bytes(kb * 1024)
                    .simulate()
                    .total_ms()
            })
            .collect();
        // Monotone decreasing.
        for w in times.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "time must not grow with buffer size");
        }
        // 1-2 kB miss real time, 4 kB+ make it.
        assert!(times[0] > 33.4, "1 kB misses real-time: {}", times[0]);
        assert!(times[1] > 33.3, "2 kB just misses: {}", times[1]);
        assert!(times[2] < 33.3, "4 kB achieves real-time: {}", times[2]);
        // Diminishing returns beyond 4 kB (paper: "larger buffers provide
        // only slightly better frame time").
        assert!(times[2] - times[7] < 1.5);
    }

    #[test]
    fn subsampling_halves_cluster_traffic_by_about_1_8x() {
        // The abstract's claim: S-SLIC's pixel subsampling reduces memory
        // bandwidth by 1.8× (color conversion is not subsampled, so the
        // ratio is below 2).
        let slic = FrameSimulator::paper_default(Resolution::FULL_HD)
            .dram_traffic()
            .total_bytes();
        let sslic = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_subsets(2)
            .dram_traffic()
            .total_bytes();
        let ratio = slic as f64 / sslic as f64;
        assert!((ratio - 1.8).abs() < 0.1, "bandwidth reduction {ratio}×");
    }

    #[test]
    fn dram_energy_is_reported_separately_and_dominates() {
        // §4.2's argument: DRAM reference energy dwarfs compute energy —
        // the reason the low-bandwidth PPA wins.
        let r = full_hd();
        let compute_uj = r.avg_power_mw * r.cluster_compute_ms();
        assert!(r.dram_energy_uj > compute_uj, "DRAM energy must dominate");
    }

    #[test]
    fn realized_superpixels_near_target() {
        let sim = FrameSimulator::paper_default(Resolution::FULL_HD);
        let k = sim.realized_superpixels();
        assert!((4500..=5500).contains(&k), "realized K = {k}");
    }

    #[test]
    #[should_panic(expected = "superpixel")]
    fn zero_superpixels_panics() {
        let _ = FrameSimulator::paper_default(Resolution::VGA)
            .with_superpixels(0)
            .simulate();
    }

    #[test]
    fn power_breakdown_sums_to_average_power() {
        let r = full_hd();
        assert!((r.power.total_mw() - r.avg_power_mw).abs() < 1e-9);
        // SRAMs at full utilization and the cluster unit are the two big
        // consumers at the full-HD design point.
        assert!(r.power.sram_mw > 10.0);
        assert!(r.power.cluster_mw > 5.0);
        assert!(r.power.color_conv_mw < r.power.cluster_mw);
    }

    #[test]
    fn multi_core_speedup_is_amdahl_bound() {
        let one = FrameSimulator::paper_default(Resolution::FULL_HD).simulate();
        let four = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_cores(4)
            .simulate();
        let speedup = one.total_ms() / four.total_ms();
        assert!(speedup > 1.2, "4 cores must help: {speedup}");
        // Center update and memory are serial: nowhere near 4×.
        assert!(speedup < 2.0, "Amdahl bound: {speedup}");
        // Cluster units and scratchpads replicate; the fixed logic
        // (color conversion, center update, FSM) is shared.
        assert!(four.area_mm2 > 2.0 * one.area_mm2, "cores replicate area");
        assert!(four.area_mm2 < 4.0 * one.area_mm2, "fixed logic is shared");
    }

    #[test]
    fn single_core_defaults_are_unchanged_by_the_extension() {
        let a = FrameSimulator::paper_default(Resolution::FULL_HD).simulate();
        let b = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_cores(1)
            .with_clock_ghz(1.6)
            .simulate();
        assert!((a.total_ms() - b.total_ms()).abs() < 1e-9);
        assert!((a.avg_power_mw - b.avg_power_mw).abs() < 1e-6);
    }

    #[test]
    fn downclocking_saves_power_at_the_cost_of_latency() {
        let fast = FrameSimulator::paper_default(Resolution::VGA).simulate();
        let slow = FrameSimulator::paper_default(Resolution::VGA)
            .with_clock_ghz(0.8)
            .simulate();
        assert!(slow.total_ms() > fast.total_ms());
        assert!(slow.avg_power_mw < fast.avg_power_mw);
        // §6.3's "scale gracefully down": VGA stays real-time at half
        // clock.
        assert!(slow.is_real_time(), "{} fps", slow.fps());
    }

    #[test]
    fn dvfs_factor_is_cubic_ish_in_frequency() {
        let sim = FrameSimulator::paper_default(Resolution::VGA);
        assert!((sim.dvfs_power_factor() - 1.0).abs() < 1e-12);
        let half = sim.clone().with_clock_ghz(0.8);
        let f = half.dvfs_power_factor();
        assert!(f < 0.5, "half clock well below half power: {f}");
        assert!(f > 0.2, "but not absurdly low: {f}");
    }
}
