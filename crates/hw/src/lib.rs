//! Cycle-approximate performance, energy, area, and power models of the
//! DAC'16 S-SLIC superpixel accelerator, plus a functional tile-level
//! simulator of the datapath.
//!
//! The paper prototyped the accelerator with Catapult HLS, Design Compiler,
//! and PrimeTime-PX on a 16 nm FinFET library — a flow we cannot run here.
//! This crate substitutes an analytical model whose primitive latencies and
//! per-unit constants are derived from, and calibrated against, the
//! numbers the paper publishes (see `DESIGN.md` §3 and `EXPERIMENTS.md`):
//!
//! * [`cluster`] — the Cluster Update Unit and its five Table 3
//!   configurations (`1-1-1` … `9-9-6`): latency, throughput, area, power,
//!   energy.
//! * [`dram`] / [`scratchpad`] — the external-memory model (256 b/cycle
//!   peak, 50-cycle latency) and the four on-chip channel/index buffers.
//! * [`model`] — clock (1.6 GHz @ 0.72 V), Horowitz-style operation
//!   energies (8-bit DRAM reference ≈ 2500× an 8-bit add), and the
//!   component area/power tables.
//! * [`sim`] — [`sim::FrameSimulator`], the frame-level analytic model
//!   behind Figure 6 and Tables 4–5.
//! * [`accel`] — [`accel::Accelerator`], a functional simulator that
//!   actually pushes pixels through the FSM → color conversion →
//!   cluster-update → center-update pipeline, tile by tile, producing a
//!   label map plus cycle and traffic accounting.
//! * [`gpu`] — the published Tesla K20 / Tegra K1 baselines of Table 5 and
//!   the 28→16 nm normalization arithmetic.
//!
//! # Example
//!
//! ```
//! use sslic_hw::cluster::ClusterUnitConfig;
//! use sslic_hw::sim::{FrameSimulator, Resolution};
//!
//! let sim = FrameSimulator::paper_default(Resolution::FULL_HD);
//! let report = sim.simulate();
//! // The paper's headline: real-time full-HD segmentation.
//! assert!(report.fps() > 30.0);
//! assert!(report.total_ms() < 33.4);
//! // And the fully parallel cluster unit is what makes it possible.
//! assert_eq!(ClusterUnitConfig::c9_9_6().throughput_pixels_per_cycle(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod batch;
pub mod centerunit;
pub mod cluster;
pub mod colorunit;
pub mod dma;
pub mod dram;
pub mod dse;
pub mod export;
pub mod faults;
pub mod floorplan;
pub mod fsm;
pub mod gpu;
pub mod model;
pub mod pipeline;
pub mod scratchpad;
pub mod sim;
pub mod tb;
pub mod vcd;
