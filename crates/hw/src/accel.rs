//! Functional tile-level simulator of the S-SLIC accelerator.
//!
//! Unlike the analytic [`crate::sim::FrameSimulator`], this module pushes
//! actual pixels through the architecture of Figure 4, reproducing the FSM
//! schedule of §4.3:
//!
//! 1. **Color conversion** — tiles of RGB stream from external memory into
//!    the channel scratchpads, through the LUT conversion unit, and back
//!    as 8-bit L, a, b.
//! 2. **Static initialization** — the pixel → 9-closest-centers tiling is
//!    precomputed (the paper stores it in external memory; here it is the
//!    [`sslic_core::SeedGrid`]), and the initial centers sample the seed
//!    pixels.
//! 3. **Cluster update** — per iteration, tiles stream through the Cluster
//!    Update Unit: 9 distance codes per pixel, the 9:1 minimum, the
//!    6-field sigma accumulation, and the index write-back.
//! 4. **Center update** — the sigma registers are averaged with rounded
//!    integer division into new center codes.
//!
//! The datapath is shared with the software model
//! ([`sslic_core::QuantKernel`]), so the simulator's label map agrees with
//! `Segmenter::sslic_ppa(...).with_distance_mode(DistanceMode::quantized(8))`
//! (seed perturbation and connectivity disabled) on ≥ 99.5 % of pixels —
//! exact up to half-LSB ties in center-mean rounding, where the software
//! engine's f32 centers and this simulator's integer sigma division can
//! land one code apart. The cross-check lives in the workspace
//! integration tests.

use sslic_color::hw::HwColorConverter;
use sslic_core::subsample::{SubsetPartition, SubsetStrategy};
use sslic_core::{ClusterCodes, QuantKernel, SeedGrid};
use sslic_image::{Plane, RgbImage};
use sslic_obs::{LogicalClock, Recorder, Value};

use crate::cluster::ClusterUnitConfig;
use crate::dram::{DramModel, DramTraffic};
use crate::faults::MemFaults;
use crate::model;
use crate::scratchpad::{Protection, ScratchpadSet};

/// DRAM burst charged per detected-error re-fetch (one minimum-size
/// transfer of the memory model).
const RETRY_BURST_BYTES: u64 = 32;

/// Configuration of the functional accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Target superpixel count `K`.
    pub superpixels: usize,
    /// Compactness weight `m` of Eq. 5.
    pub compactness: f32,
    /// Number of center-update steps (sub-iterations when `subsets > 1`).
    pub iterations: u32,
    /// S-SLIC pixel-subset count `P` (1 = plain pixel-perspective SLIC).
    pub subsets: u32,
    /// Per-channel scratchpad bytes (= pixels per tile).
    pub buffer_bytes_per_channel: usize,
    /// Cluster Update Unit parallelism.
    pub cluster_config: ClusterUnitConfig,
    /// Width of the distance codes compared by the minimum unit.
    pub distance_bits: u8,
    /// Word-protection scheme of the four scratchpads (area/energy
    /// overheads fold into the PPA accounting; detection/correction
    /// semantics apply under [`Accelerator::process_with_faults`]).
    pub protection: Protection,
}

impl AcceleratorConfig {
    /// The paper's design point for `superpixels` target superpixels:
    /// m = 10, 9 iterations, subsampling ratio 0.5, 4 kB buffers, the
    /// 9-9-6 unit, 8-bit distances.
    pub fn new(superpixels: usize) -> Self {
        AcceleratorConfig {
            superpixels,
            compactness: 10.0,
            iterations: 9,
            subsets: 2,
            buffer_bytes_per_channel: 4 * 1024,
            cluster_config: ClusterUnitConfig::c9_9_6(),
            distance_bits: 8,
            protection: Protection::Unprotected,
        }
    }
}

/// The functional accelerator simulator.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AcceleratorConfig,
    dram: DramModel,
}

impl Accelerator {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the superpixel, iteration, or subset count is zero.
    pub fn new(config: AcceleratorConfig) -> Self {
        assert!(config.superpixels > 0, "superpixel count must be nonzero");
        assert!(config.iterations > 0, "iteration count must be nonzero");
        assert!(config.subsets > 0, "subset count must be nonzero");
        Accelerator {
            config,
            dram: DramModel::default(),
        }
    }

    /// Replaces the DRAM model.
    pub fn with_dram(mut self, dram: DramModel) -> Self {
        self.dram = dram;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Processes one frame, producing the label map and the full cycle,
    /// traffic, and energy accounting.
    pub fn process(&self, img: &RgbImage) -> AcceleratorRun {
        self.process_impl(img, None, None)
    }

    /// [`Self::process`] with an observability recorder attached: the FSM
    /// phases emit spans stamped with the modeled cycle counter, each
    /// streaming step emits a `hw.dma.stream` traffic event and a
    /// `hw.stall` estimate (DMA cycles not hidden behind compute), and the
    /// scratchpads report occupancy counters. The simulator is serial, so
    /// the emission schedule — and a deterministic-mode trace — is a pure
    /// function of the frame. Recording never changes the run output.
    pub fn process_traced(&self, img: &RgbImage, recorder: &Recorder) -> AcceleratorRun {
        self.process_impl(img, None, Some(recorder))
    }

    /// [`Self::process`] with memory fault-injection hooks active: every
    /// channel-memory read and the final index readout route through
    /// `faults`. Detected errors are charged one DRAM retry burst plus a
    /// scratchpad retry; out-of-range labels surviving the readout are
    /// repaired to the pixel's home cluster (counted in
    /// [`AcceleratorRun::label_repairs`]). With default (no-op) hooks the
    /// label map and centers are bit-identical to [`Self::process`]; the
    /// accounting additionally charges the modeled index readout pass.
    pub fn process_with_faults(&self, img: &RgbImage, faults: &mut dyn MemFaults) -> AcceleratorRun {
        self.process_impl(img, Some(faults), None)
    }

    /// [`Self::process_with_faults`] with an observability recorder (see
    /// [`Self::process_traced`]).
    pub fn process_traced_with_faults(
        &self,
        img: &RgbImage,
        faults: &mut dyn MemFaults,
        recorder: &Recorder,
    ) -> AcceleratorRun {
        self.process_impl(img, Some(faults), Some(recorder))
    }

    fn process_impl(
        &self,
        img: &RgbImage,
        mut faults: Option<&mut dyn MemFaults>,
        recorder: Option<&Recorder>,
    ) -> AcceleratorRun {
        let cfg = &self.config;
        let (w, h) = (img.width(), img.height());
        let n = (w * h) as u64;
        let tile_pixels = cfg.buffer_bytes_per_channel as u64;
        let tiles = n.div_ceil(tile_pixels);

        let mut traffic = DramTraffic::default();
        let mut scratchpads =
            ScratchpadSet::new(cfg.buffer_bytes_per_channel).with_protection(cfg.protection);
        let mut retry_bursts = 0u64;
        let mut label_repairs = 0u64;

        // The simulator is serial, so every emission below happens at a
        // fixed point of the FSM schedule; clocks carry the modeled cycle
        // counter (truncated to whole cycles), never wall time.
        if let Some(rec) = recorder {
            rec.span_begin(
                "hw.frame",
                LogicalClock::cycle(0),
                vec![
                    ("width", Value::U64(w as u64)),
                    ("height", Value::U64(h as u64)),
                    ("superpixels", Value::U64(cfg.superpixels as u64)),
                    ("tiles", Value::U64(tiles)),
                    ("tile_pixels", Value::U64(tile_pixels)),
                ],
            );
            rec.span_begin("hw.color", LogicalClock::cycle(0), Vec::new());
        }

        // --- Phase 1: color conversion -----------------------------------
        let lab8 = HwColorConverter::paper_default().convert_image(img);
        for _ in 0..tiles {
            traffic.read(3 * tile_pixels); // interleaved RGB in
        }
        // RGB lands in the channel memories, is read by the converter, and
        // the Lab result is written back (paper §4.3), then spilled out.
        scratchpads.ch1.record_writes(2 * n);
        scratchpads.ch1.record_reads(2 * n);
        scratchpads.ch2.record_writes(2 * n);
        scratchpads.ch2.record_reads(2 * n);
        scratchpads.ch3.record_writes(2 * n);
        scratchpads.ch3.record_reads(2 * n);
        for _ in 0..tiles {
            traffic.write(3 * tile_pixels); // planar Lab out
        }
        let color_cycles = n as f64 + tiles as f64 * 10.0;

        if let Some(rec) = recorder {
            let clock = LogicalClock::cycle(color_cycles as u64);
            rec.instant(
                "hw.dma.stream",
                clock,
                vec![
                    ("phase", Value::from("color")),
                    ("read_bytes", Value::U64(traffic.bytes_read)),
                    ("written_bytes", Value::U64(traffic.bytes_written)),
                    ("bursts", Value::U64(traffic.bursts)),
                ],
            );
            rec.span_end(
                "hw.color",
                clock,
                vec![("cycles", Value::U64(color_cycles as u64))],
            );
        }

        // --- Phase 2: static initialization ------------------------------
        let grid = SeedGrid::new(w, h, cfg.superpixels);
        let kernel = QuantKernel::new(8, cfg.distance_bits, cfg.compactness, grid.spacing());
        let mut centers: Vec<ClusterCodes> = (0..grid.cluster_count())
            .map(|k| {
                let (fx, fy) = grid.seed_position(k);
                let x = (fx as usize).min(w - 1);
                let y = (fy as usize).min(h - 1);
                let [l, a, b] = lab8.pixel(x, y);
                ClusterCodes {
                    l: kernel.truncate_channel(l),
                    a: kernel.truncate_channel(a),
                    b: kernel.truncate_channel(b),
                    x: x as i32,
                    y: y as i32,
                }
            })
            .collect();
        let mut labels: Plane<u32> =
            Plane::from_fn(w, h, |x, y| grid.home_cluster_of_pixel(x, y) as u32);
        let partition = SubsetPartition::new(w, h, cfg.subsets, SubsetStrategy::Interleaved);

        // --- Phases 3 & 4: cluster + center updates ----------------------
        let mut assign_cycles = 0.0f64;
        let mut center_cycles = 0.0f64;
        let mut sigma = vec![[0i64; 6]; centers.len()];
        for step in 0..cfg.iterations {
            let subset = partition.subset_for_step(step);
            for s in sigma.iter_mut() {
                *s = [0; 6];
            }
            let step_pixels = partition.subset_len(subset) as u64;
            let step_start_cycles = color_cycles + assign_cycles + center_cycles;
            let step_traffic = traffic;
            if let Some(rec) = recorder {
                rec.span_begin(
                    "hw.step",
                    LogicalClock::step(step).with_cycle(step_start_cycles as u64),
                    vec![
                        ("subset", Value::U64(subset as u64)),
                        ("step_pixels", Value::U64(step_pixels)),
                    ],
                );
            }

            // Stream tiles: Lab + index in, index out.
            for _ in 0..tiles {
                traffic.read(3 * tile_pixels); // L, a, b
                traffic.read(2 * tile_pixels); // index in
                traffic.write(2 * tile_pixels); // index out
            }
            scratchpads.ch1.record_writes(n);
            scratchpads.ch2.record_writes(n);
            scratchpads.ch3.record_writes(n);
            scratchpads.index.record_writes(n * 2);

            for y in 0..h {
                for x in 0..w {
                    if partition.subset_of(x, y) != subset {
                        continue;
                    }
                    let mut px = lab8.pixel(x, y);
                    scratchpads.ch1.record_reads(1);
                    scratchpads.ch2.record_reads(1);
                    scratchpads.ch3.record_reads(1);
                    if let Some(f) = faults.as_deref_mut() {
                        let addr = (y * w + x) as u64;
                        let reads = [
                            f.channel_read(step, 0, addr, px[0]),
                            f.channel_read(step, 1, addr, px[1]),
                            f.channel_read(step, 2, addr, px[2]),
                        ];
                        px = [reads[0].value, reads[1].value, reads[2].value];
                        let pads = [
                            &mut scratchpads.ch1,
                            &mut scratchpads.ch2,
                            &mut scratchpads.ch3,
                        ];
                        for (pad, read) in pads.into_iter().zip(&reads) {
                            if read.retried {
                                pad.record_retries(1);
                                traffic.read(RETRY_BURST_BYTES);
                                retry_bursts += 1;
                            }
                        }
                    }
                    let nine = grid.nine_neighbors_of_pixel(x, y);
                    let mut best = nine[0];
                    let mut best_d = kernel.dist_code(px, (x as i32, y as i32), &centers[nine[0]]);
                    for &k in &nine[1..] {
                        let d = kernel.dist_code(px, (x as i32, y as i32), &centers[k]);
                        if d < best_d {
                            best_d = d;
                            best = k;
                        }
                    }
                    labels[(x, y)] = best as u32;
                    scratchpads.index.record_writes(2);
                    // Six-field sigma update: codes and coordinates.
                    let acc = &mut sigma[best];
                    acc[0] += px[0] as i64;
                    acc[1] += px[1] as i64;
                    acc[2] += px[2] as i64;
                    acc[3] += x as i64;
                    acc[4] += y as i64;
                    acc[5] += 1;
                }
            }
            assign_cycles += cfg.cluster_config.iteration_cycles(step_pixels, tile_pixels);

            // Center update: rounded integer division per field.
            let mut updated = 0u64;
            for (k, acc) in sigma.iter().enumerate() {
                let count = acc[5];
                if count == 0 {
                    continue; // keep the previous center
                }
                let div = |sum: i64| ((2 * sum + count) / (2 * count)) as i32;
                centers[k] = ClusterCodes {
                    l: kernel.truncate_channel(div(acc[0]).clamp(0, 255) as u8),
                    a: kernel.truncate_channel(div(acc[1]).clamp(0, 255) as u8),
                    b: kernel.truncate_channel(div(acc[2]).clamp(0, 255) as u8),
                    x: div(acc[3]),
                    y: div(acc[4]),
                };
                updated += 1;
            }
            center_cycles += updated as f64 * model::CENTER_UPDATE_CYCLES_PER_SP;

            if let Some(rec) = recorder {
                let end_cycles = color_cycles + assign_cycles + center_cycles;
                let clock = LogicalClock::step(step).with_cycle(end_cycles as u64);
                let read = traffic.bytes_read - step_traffic.bytes_read;
                let written = traffic.bytes_written - step_traffic.bytes_written;
                let bursts = traffic.bursts - step_traffic.bursts;
                rec.instant(
                    "hw.dma.stream",
                    clock,
                    vec![
                        ("phase", Value::from("cluster_update")),
                        ("read_bytes", Value::U64(read)),
                        ("written_bytes", Value::U64(written)),
                        ("bursts", Value::U64(bursts)),
                    ],
                );
                // Stall estimate: DMA cycles the double-buffered streaming
                // cannot hide behind this step's compute.
                let dma_cycles = self.dram.transfer_cycles(read + written, bursts);
                let compute_cycles = end_cycles - step_start_cycles;
                let stall_cycles = (dma_cycles - compute_cycles).max(0.0);
                rec.instant(
                    "hw.stall",
                    clock,
                    vec![
                        ("dma_cycles", Value::U64(dma_cycles as u64)),
                        ("compute_cycles", Value::U64(compute_cycles as u64)),
                        ("stall_cycles", Value::U64(stall_cycles as u64)),
                    ],
                );
                rec.span_end(
                    "hw.step",
                    clock,
                    vec![("updated_centers", Value::U64(updated))],
                );
            }
        }

        // Final index readout: the label map leaves through the index
        // memory, so each word passes the fault/protection filter once
        // more; any out-of-range survivor is repaired to the pixel's home
        // cluster so the returned map stays a valid index into `centers`.
        if let Some(f) = faults.as_deref_mut() {
            let k = centers.len() as u32;
            for y in 0..h {
                for x in 0..w {
                    let read = f.index_read((y * w + x) as u64, labels[(x, y)]);
                    scratchpads.index.record_reads(2);
                    if read.retried {
                        scratchpads.index.record_retries(1);
                        traffic.read(RETRY_BURST_BYTES);
                        retry_bursts += 1;
                    }
                    let mut label = read.value;
                    if label >= k {
                        label = grid.home_cluster_of_pixel(x, y) as u32;
                        label_repairs += 1;
                    }
                    labels[(x, y)] = label;
                }
            }
        }

        let memory_cycles = self.dram.transfer_cycles(traffic.total_bytes(), traffic.bursts);
        let dram_energy_uj = self.dram.transfer_energy_uj(traffic.total_bytes());

        if let Some(rec) = recorder {
            let total = color_cycles + assign_cycles + center_cycles + memory_cycles;
            let clock = LogicalClock::cycle(total as u64);
            for pad in [
                &scratchpads.ch1,
                &scratchpads.ch2,
                &scratchpads.ch3,
                &scratchpads.index,
            ] {
                rec.counter(
                    "hw.scratchpad",
                    clock,
                    vec![
                        ("pad", Value::from(pad.name())),
                        ("reads", Value::U64(pad.reads())),
                        ("writes", Value::U64(pad.writes())),
                        ("retries", Value::U64(pad.retries())),
                        ("capacity_bytes", Value::U64(pad.capacity_bytes() as u64)),
                    ],
                );
            }
            rec.counter_add("hw.dram.bytes_read", traffic.bytes_read);
            rec.counter_add("hw.dram.bytes_written", traffic.bytes_written);
            rec.counter_add("hw.dram.bursts", traffic.bursts);
            rec.counter_add("hw.retry_bursts", retry_bursts);
            rec.counter_add("hw.label_repairs", label_repairs);
            rec.span_end(
                "hw.frame",
                clock,
                vec![
                    ("memory_cycles", Value::U64(memory_cycles as u64)),
                    ("retry_bursts", Value::U64(retry_bursts)),
                    ("label_repairs", Value::U64(label_repairs)),
                ],
            );
        }

        AcceleratorRun {
            labels,
            centers,
            color_cycles,
            assign_cycles,
            center_cycles,
            memory_cycles,
            traffic,
            scratchpads,
            dram_energy_uj,
            retry_bursts,
            label_repairs,
        }
    }
}

/// The output of [`Accelerator::process`]: the label map plus full
/// accounting.
#[derive(Debug, Clone)]
pub struct AcceleratorRun {
    /// Final superpixel index per pixel.
    pub labels: Plane<u32>,
    /// Final center codes.
    pub centers: Vec<ClusterCodes>,
    /// Cycles spent in color conversion.
    pub color_cycles: f64,
    /// Cycles spent in cluster-update assignment.
    pub assign_cycles: f64,
    /// Cycles spent in center updates.
    pub center_cycles: f64,
    /// Cycles spent on DRAM transfers.
    pub memory_cycles: f64,
    /// DRAM traffic.
    pub traffic: DramTraffic,
    /// Scratchpads with access counts.
    pub scratchpads: ScratchpadSet,
    /// External DRAM energy in µJ.
    pub dram_energy_uj: f64,
    /// DRAM bursts charged to detected-error re-fetches (0 without fault
    /// hooks).
    pub retry_bursts: u64,
    /// Out-of-range labels repaired at final index readout (0 without
    /// fault hooks).
    pub label_repairs: u64,
}

impl AcceleratorRun {
    /// Total modeled cycles (phases serialized, as the FSM runs them).
    pub fn total_cycles(&self) -> f64 {
        self.color_cycles + self.assign_cycles + self.center_cycles + self.memory_cycles
    }

    /// Total modeled frame time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        model::cycles_to_ms(self.total_cycles())
    }

    /// Scratchpad access energy in µJ.
    pub fn sram_energy_uj(&self) -> f64 {
        self.scratchpads.energy_uj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslic_image::synthetic::SyntheticImage;

    fn small_cfg() -> AcceleratorConfig {
        AcceleratorConfig {
            superpixels: 60,
            iterations: 4,
            subsets: 2,
            buffer_bytes_per_channel: 512,
            ..AcceleratorConfig::new(60)
        }
    }

    fn test_image() -> RgbImage {
        SyntheticImage::builder(64, 48).seed(7).regions(5).build().rgb
    }

    #[test]
    fn produces_valid_labels() {
        let run = Accelerator::new(small_cfg()).process(&test_image());
        let k = run.centers.len() as u32;
        assert!(run.labels.iter().all(|&l| l < k));
    }

    #[test]
    fn is_deterministic() {
        let img = test_image();
        let a = Accelerator::new(small_cfg()).process(&img);
        let b = Accelerator::new(small_cfg()).process(&img);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn centers_stay_in_image_bounds() {
        let run = Accelerator::new(small_cfg()).process(&test_image());
        for c in &run.centers {
            assert!((0..64).contains(&c.x), "center x = {}", c.x);
            assert!((0..48).contains(&c.y), "center y = {}", c.y);
            assert!((0..=255).contains(&c.l));
        }
    }

    #[test]
    fn traffic_scales_with_iterations() {
        let img = test_image();
        let short = Accelerator::new(AcceleratorConfig {
            iterations: 2,
            ..small_cfg()
        })
        .process(&img);
        let long = Accelerator::new(AcceleratorConfig {
            iterations: 8,
            ..small_cfg()
        })
        .process(&img);
        assert!(long.traffic.total_bytes() > short.traffic.total_bytes());
        // Color conversion traffic (6 B/px) is iteration independent.
        let per_iter =
            (long.traffic.total_bytes() - short.traffic.total_bytes()) as f64 / 6.0;
        assert!(per_iter > 0.0);
    }

    #[test]
    fn smaller_buffers_issue_more_bursts() {
        let img = test_image();
        let small = Accelerator::new(AcceleratorConfig {
            buffer_bytes_per_channel: 256,
            ..small_cfg()
        })
        .process(&img);
        let large = Accelerator::new(AcceleratorConfig {
            buffer_bytes_per_channel: 2048,
            ..small_cfg()
        })
        .process(&img);
        assert!(small.traffic.bursts > large.traffic.bursts);
        assert!(small.memory_cycles > large.memory_cycles);
    }

    #[test]
    fn nine_nine_six_outruns_one_one_one() {
        let img = test_image();
        let fast = Accelerator::new(AcceleratorConfig {
            cluster_config: ClusterUnitConfig::c9_9_6(),
            ..small_cfg()
        })
        .process(&img);
        let slow = Accelerator::new(AcceleratorConfig {
            cluster_config: ClusterUnitConfig::c1_1_1(),
            ..small_cfg()
        })
        .process(&img);
        assert_eq!(fast.labels, slow.labels, "parallelism must not change results");
        assert!(slow.assign_cycles > 8.0 * fast.assign_cycles);
    }

    #[test]
    fn subsampling_halves_assignment_work() {
        let img = test_image();
        let full = Accelerator::new(AcceleratorConfig {
            subsets: 1,
            iterations: 4,
            ..small_cfg()
        })
        .process(&img);
        let half = Accelerator::new(AcceleratorConfig {
            subsets: 2,
            iterations: 4,
            ..small_cfg()
        })
        .process(&img);
        let ratio = full.assign_cycles / half.assign_cycles;
        assert!((1.6..=2.2).contains(&ratio), "assign ratio {ratio}");
    }

    #[test]
    fn sram_energy_is_positive_and_below_dram() {
        let run = Accelerator::new(small_cfg()).process(&test_image());
        assert!(run.sram_energy_uj() > 0.0);
        assert!(run.dram_energy_uj > run.sram_energy_uj());
    }

    #[test]
    #[should_panic(expected = "iteration count")]
    fn zero_iterations_panics() {
        let _ = Accelerator::new(AcceleratorConfig {
            iterations: 0,
            ..small_cfg()
        });
    }

    #[test]
    fn noop_mem_faults_leave_labels_bit_identical() {
        struct Noop;
        impl MemFaults for Noop {}
        let img = test_image();
        let clean = Accelerator::new(small_cfg()).process(&img);
        let hooked = Accelerator::new(small_cfg()).process_with_faults(&img, &mut Noop);
        assert_eq!(clean.labels, hooked.labels);
        assert_eq!(clean.centers, hooked.centers);
        assert_eq!(hooked.retry_bursts, 0);
        assert_eq!(hooked.label_repairs, 0);
    }

    #[test]
    fn corrupting_mem_faults_stay_valid_and_charge_retries() {
        use crate::faults::{FaultedByte, FaultedLabel};
        struct Nasty;
        impl MemFaults for Nasty {
            fn channel_read(&mut self, _s: u32, _c: u8, addr: u64, value: u8) -> FaultedByte {
                // Every 13th word: flip the MSB; every 31st: detected
                // error, value restored after a retry.
                if addr % 31 == 0 {
                    FaultedByte {
                        value,
                        retried: true,
                    }
                } else if addr % 13 == 0 {
                    FaultedByte {
                        value: value ^ 0x80,
                        retried: false,
                    }
                } else {
                    FaultedByte {
                        value,
                        retried: false,
                    }
                }
            }
            fn index_read(&mut self, addr: u64, label: u32) -> FaultedLabel {
                if addr % 97 == 0 {
                    // Stuck-high high byte: pushes labels out of range.
                    FaultedLabel {
                        value: label | 0xFF00,
                        retried: false,
                    }
                } else {
                    FaultedLabel {
                        value: label,
                        retried: false,
                    }
                }
            }
        }
        let img = test_image();
        let clean = Accelerator::new(small_cfg()).process(&img);
        let run = Accelerator::new(small_cfg()).process_with_faults(&img, &mut Nasty);
        let k = run.centers.len() as u32;
        assert!(run.labels.iter().all(|&l| l < k), "labels stay in range");
        assert_ne!(clean.labels, run.labels, "corruption must be visible");
        assert!(run.retry_bursts > 0);
        assert!(run.label_repairs > 0);
        assert!(run.scratchpads.total_retries() > 0);
        assert!(
            run.traffic.total_bytes() > clean.traffic.total_bytes(),
            "retries cost DRAM bursts"
        );
    }

    #[test]
    fn tracing_never_changes_the_run_and_is_deterministic() {
        let img = test_image();
        let plain = Accelerator::new(small_cfg()).process(&img);
        let rec = Recorder::deterministic();
        let traced = Accelerator::new(small_cfg()).process_traced(&img, &rec);
        assert_eq!(plain.labels, traced.labels);
        assert_eq!(plain.centers, traced.centers);
        assert_eq!(plain.traffic, traced.traffic);

        let rec2 = Recorder::deterministic();
        let _ = Accelerator::new(small_cfg()).process_traced(&img, &rec2);
        assert_eq!(rec.to_jsonl(), rec2.to_jsonl(), "repeat traces byte-identical");
        assert_eq!(rec.to_chrome_trace(), rec2.to_chrome_trace());
    }

    #[test]
    fn trace_covers_every_fsm_phase_and_step() {
        let img = test_image();
        let rec = Recorder::deterministic();
        let run = Accelerator::new(small_cfg()).process_traced(&img, &rec);
        let events = rec.events();
        assert_eq!(events.first().map(|e| e.name), Some("hw.frame"));
        assert_eq!(events.last().map(|e| e.name), Some("hw.frame"));
        let steps = events.iter().filter(|e| e.name == "hw.step").count();
        assert_eq!(steps, 2 * 4, "begin+end per iteration");
        // One DMA event for color plus one per step; their byte totals
        // reconstruct the run's DRAM traffic exactly.
        let dma: Vec<_> = events.iter().filter(|e| e.name == "hw.dma.stream").collect();
        assert_eq!(dma.len(), 1 + 4);
        let read: u64 = dma.iter().map(|e| e.attr_u64("read_bytes")).sum();
        let written: u64 = dma.iter().map(|e| e.attr_u64("written_bytes")).sum();
        assert_eq!(read, run.traffic.bytes_read);
        assert_eq!(written, run.traffic.bytes_written);
        assert_eq!(
            events.iter().filter(|e| e.name == "hw.stall").count(),
            4,
            "one stall estimate per step"
        );
        // Scratchpad counters mirror the run's access accounting.
        let pads: Vec<_> = events.iter().filter(|e| e.name == "hw.scratchpad").collect();
        assert_eq!(pads.len(), 4);
        let reads: u64 = pads.iter().map(|e| e.attr_u64("reads")).sum();
        assert_eq!(
            reads,
            run.scratchpads.ch1.reads()
                + run.scratchpads.ch2.reads()
                + run.scratchpads.ch3.reads()
                + run.scratchpads.index.reads()
        );
        let m = rec.metrics();
        assert_eq!(m.counter("hw.dram.bytes_read"), run.traffic.bytes_read);
        assert_eq!(m.counter("hw.dram.bursts"), run.traffic.bursts);
    }

    #[test]
    fn traced_fault_run_reports_retries_in_metrics() {
        struct Flaky;
        impl MemFaults for Flaky {
            fn channel_read(
                &mut self,
                _s: u32,
                _c: u8,
                addr: u64,
                value: u8,
            ) -> crate::faults::FaultedByte {
                crate::faults::FaultedByte {
                    value,
                    retried: addr % 61 == 0,
                }
            }
        }
        let img = test_image();
        let rec = Recorder::deterministic();
        let run =
            Accelerator::new(small_cfg()).process_traced_with_faults(&img, &mut Flaky, &rec);
        assert!(run.retry_bursts > 0);
        assert_eq!(rec.metrics().counter("hw.retry_bursts"), run.retry_bursts);
    }

    #[test]
    fn protection_config_folds_into_ppa_accounting() {
        let img = test_image();
        let raw = Accelerator::new(small_cfg()).process(&img);
        let ecc = Accelerator::new(AcceleratorConfig {
            protection: Protection::Secded,
            ..small_cfg()
        })
        .process(&img);
        assert_eq!(raw.labels, ecc.labels, "protection never changes results");
        assert!(ecc.scratchpads.area_mm2() > raw.scratchpads.area_mm2());
        assert!(ecc.sram_energy_uj() > raw.sram_energy_uj());
    }
}
