//! Memory fault-injection interface of the functional accelerator.
//!
//! [`crate::accel::Accelerator::process_with_faults`] consults a
//! [`MemFaults`] implementation on every scratchpad word it reads: the
//! three channel memories during cluster update and the index memory at
//! final readout. The hook returns the (possibly corrupted, possibly
//! protection-filtered) value plus whether a detected error forced a
//! re-fetch from DRAM — the simulator charges each retry one DRAM burst
//! and one scratchpad retry (see
//! [`crate::scratchpad::Scratchpad::record_retries`]).
//!
//! The canonical implementation lives in `sslic-fault`; every method
//! defaults to a clean pass-through, and a default implementation leaves
//! the simulation bit-identical to [`crate::accel::Accelerator::process`].

/// One hooked 8-bit channel-memory read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultedByte {
    /// The value the datapath consumes.
    pub value: u8,
    /// Whether a detected error forced a DRAM re-fetch.
    pub retried: bool,
}

/// One hooked 16-bit index-memory readout (labels are stored as two
/// bytes; the in-model type is `u32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultedLabel {
    /// The label value after corruption/filtering.
    pub value: u32,
    /// Whether a detected error forced a DRAM re-fetch.
    pub retried: bool,
}

/// Fault-injection hooks over the accelerator's scratchpad reads.
pub trait MemFaults {
    /// Hooks the read of channel `channel` (0 = L, 1 = a, 2 = b) at word
    /// address `addr` during center-update step `step`.
    fn channel_read(&mut self, _step: u32, _channel: u8, _addr: u64, value: u8) -> FaultedByte {
        FaultedByte {
            value,
            retried: false,
        }
    }

    /// Hooks the final index-memory readout of the label at word address
    /// `addr`.
    fn index_read(&mut self, _addr: u64, label: u32) -> FaultedLabel {
        FaultedLabel {
            value: label,
            retried: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_clean_pass_throughs() {
        struct Noop;
        impl MemFaults for Noop {}
        let mut f = Noop;
        assert_eq!(
            f.channel_read(3, 1, 42, 0xA5),
            FaultedByte {
                value: 0xA5,
                retried: false
            }
        );
        assert_eq!(
            f.index_read(7, 99),
            FaultedLabel {
                value: 99,
                retried: false
            }
        );
    }
}
