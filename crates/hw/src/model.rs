//! Global technology, clock, energy, and area constants of the 16 nm
//! FinFET design point, and how they were obtained.
//!
//! Every constant in this module is either (a) stated in the paper, (b) a
//! standard value from Horowitz's ISSCC'14 energy survey scaled to 16 nm,
//! or (c) **calibrated** — fitted so the model reproduces a number the
//! paper publishes. Calibrated constants are marked as such in their
//! documentation and revisited in `EXPERIMENTS.md`.

/// The design's clock frequency: 1.6 GHz (paper §5, "targeting 1.6GHz at
/// 0.72V").
pub const CLOCK_HZ: f64 = 1.6e9;

/// Supply voltage of the 16 nm design point (paper §5).
pub const VDD: f64 = 0.72;

/// Converts cycles at the design clock to milliseconds.
pub fn cycles_to_ms(cycles: f64) -> f64 {
    cycles / CLOCK_HZ * 1e3
}

/// Converts milliseconds to cycles at the design clock.
pub fn ms_to_cycles(ms: f64) -> f64 {
    ms * 1e-3 * CLOCK_HZ
}

/// Energy of one 8-bit integer add at 16 nm, in picojoules.
///
/// Horowitz (ISSCC'14) reports ~0.03 pJ at 45 nm; scaled by capacitance
/// and voltage to 16 nm this is ~0.01 pJ. All other operation energies are
/// expressed relative to this value, as the paper's §4.2 energy model does.
pub const E_ADD8_PJ: f64 = 0.010;

/// Energy per 8-bit DRAM reference relative to an 8-bit add: the paper's
/// §4.2 assumption, "the energy of an 8b DRAM reference is 2500x larger
/// \[than\] the energy of an 8b add".
pub const DRAM_REF_RELATIVE: f64 = 2500.0;

/// Energy per byte of DRAM traffic, in picojoules (`2500 × E_ADD8`).
pub const E_DRAM_BYTE_PJ: f64 = DRAM_REF_RELATIVE * E_ADD8_PJ;

/// Energy per byte of scratchpad SRAM access, in picojoules. Small SRAMs
/// run ~50× cheaper than DRAM per byte (Horowitz: 8 kB SRAM ≈ 10× an
/// 8-bit add per access).
pub const E_SRAM_BYTE_PJ: f64 = 10.0 * E_ADD8_PJ;

/// Average energy per datapath operation in the cluster-update pipeline,
/// in picojoules. **Calibrated**: Table 3's `1-1-1` row implies
/// 38.9 µJ / (2.07 Mpixel × 78 ops) ≈ 0.24 pJ per op including register
/// and wire overheads (a ~24× markup over a bare 8-bit add, typical for a
/// pipelined datapath with operand registers at 1.6 GHz).
pub const E_OP_AVG_PJ: f64 = 0.2406;

/// Datapath operations charged per pixel per cluster-update iteration:
/// 9 distances × 7 ops + 9 minimum compares + 6 sigma additions.
pub const OPS_PER_PIXEL_ITER: f64 = 9.0 * 7.0 + 9.0 + 6.0;

/// SRAM macro area at 16 nm in mm² per kilobyte. **Calibrated** from
/// Table 4: growing the four buffers from 1 kB to 4 kB each (+12 kB) adds
/// 0.066 − 0.053 = 0.013 mm², i.e. ≈ 0.00108 mm²/kB.
pub const SRAM_MM2_PER_KB: f64 = 0.00108;

/// Fixed (non-cluster, non-SRAM) logic area in mm²: color-conversion unit
/// (LUTs + multipliers), center-update unit (divider), FSM controller.
/// **Calibrated** so the full-HD configuration totals Table 4's 0.066 mm²:
/// `0.066 = 0.0157 (9-9-6 cluster) + 16 kB × SRAM_MM2_PER_KB + FIXED`.
pub mod area {
    /// Color-conversion unit (256-entry gamma LUT ×3, matrix multipliers,
    /// 8-segment PWL).
    pub const COLOR_CONV_MM2: f64 = 0.018;
    /// Center-update unit (sigma registers and iterative divider).
    pub const CENTER_UPDATE_MM2: f64 = 0.010;
    /// FSM host controller and glue.
    pub const FSM_MM2: f64 = 0.005;
    /// Sum of the fixed logic blocks.
    pub const FIXED_TOTAL_MM2: f64 = COLOR_CONV_MM2 + CENTER_UPDATE_MM2 + FSM_MM2;
}

/// Peak active power of the fixed-function units, in milliwatts, used with
/// per-unit utilizations to form average power (the paper's method:
/// "The power for each unit is computed using the peak active power … and
/// multiplying by the utilization"). **Calibrated** so the full-HD
/// configuration averages Table 4's 49 mW.
pub mod power {
    /// Color-conversion unit peak power.
    pub const COLOR_CONV_MW: f64 = 25.0;
    /// Center-update unit peak power.
    pub const CENTER_UPDATE_MW: f64 = 8.0;
    /// FSM controller (always on while a frame is in flight).
    pub const FSM_MW: f64 = 3.0;
    /// External-memory interface logic (PHY excluded, as the paper's 49 mW
    /// budget cannot contain DRAM device power — see `EXPERIMENTS.md`).
    pub const MEM_INTERFACE_MW: f64 = 10.0;
    /// Scratchpad power per kilobyte at full utilization
    /// ("We assume the external memory and scratch pads are at full
    /// utilization", §6.3).
    pub const SRAM_MW_PER_KB: f64 = 1.3;
}

/// Center-update latency per superpixel, in cycles: the center-update unit
/// iterates over its sigma registers computing five quotients with an
/// iterative divider, sequentially per field. **Calibrated** against
/// Table 4's cross-resolution latencies (the resolution-independent
/// component of frame time is ≈ 8.7 ms at K = 5000 × 9 iterations
/// → ≈ 310 cycles per superpixel update).
pub const CENTER_UPDATE_CYCLES_PER_SP: f64 = 310.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_round_trip() {
        let cycles = 1.6e6;
        assert!((cycles_to_ms(cycles) - 1.0).abs() < 1e-12);
        assert!((ms_to_cycles(1.0) - 1.6e6).abs() < 1.0);
    }

    #[test]
    fn dram_is_2500x_an_add() {
        assert_eq!(E_DRAM_BYTE_PJ / E_ADD8_PJ, 2500.0);
    }

    #[test]
    fn sram_is_far_cheaper_than_dram() {
        let ratio = E_DRAM_BYTE_PJ / E_SRAM_BYTE_PJ;
        assert!(ratio >= 50.0, "DRAM/SRAM energy ratio {ratio}");
    }

    #[test]
    fn calibrated_op_energy_reproduces_table3_energy() {
        // 1-1-1 configuration, one 1080p iteration: 38.9 µJ.
        let n = 1920.0 * 1080.0;
        let uj = n * OPS_PER_PIXEL_ITER * E_OP_AVG_PJ * 1e-6;
        assert!((uj - 38.9).abs() < 0.3, "got {uj} µJ");
    }

    #[test]
    fn fixed_area_calibration_closes_table4() {
        // 0.0157 (9-9-6) + 16 kB SRAM + fixed ≈ 0.066 mm².
        let total = 0.0157 + 16.0 * SRAM_MM2_PER_KB + area::FIXED_TOTAL_MM2;
        assert!((total - 0.066).abs() < 0.002, "got {total} mm²");
    }
}
