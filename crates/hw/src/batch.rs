//! Multi-frame streaming: sustained throughput under frame-level
//! pipelining.
//!
//! Table 4 reports single-frame latency; a camera pipeline cares about
//! *sustained* frames per second. Because the color-conversion unit and
//! the cluster-update machinery are separate blocks (Fig. 4), frame
//! `t+1`'s color conversion can run while frame `t` is still in cluster
//! update — bounded by whichever resource saturates first: the cluster
//! datapath, the center-update divider, or the shared DRAM channel.
//!
//! [`StreamModel`] turns a single-frame [`crate::sim::FrameReport`] into
//! sustained-throughput numbers: the steady-state initiation interval is
//! the *maximum* busy time over the resources, not their sum.

use crate::sim::FrameReport;

/// Sustained-throughput analysis of a frame pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamModel {
    /// Per-frame busy time of the color-conversion unit (ms).
    pub color_ms: f64,
    /// Per-frame busy time of the cluster-update + center-update path
    /// (ms).
    pub compute_ms: f64,
    /// Per-frame busy time of the DRAM channel (ms).
    pub memory_ms: f64,
    /// Single-frame latency (ms), unchanged by pipelining.
    pub latency_ms: f64,
}

impl StreamModel {
    /// Builds the stream model from a single-frame report.
    pub fn from_report(report: &FrameReport) -> Self {
        StreamModel {
            color_ms: report.color_ms,
            compute_ms: report.assign_ms + report.center_ms,
            memory_ms: report.memory_ms,
            latency_ms: report.total_ms(),
        }
    }

    /// Steady-state frame initiation interval: the bottleneck resource's
    /// busy time.
    pub fn initiation_interval_ms(&self) -> f64 {
        self.color_ms.max(self.compute_ms).max(self.memory_ms)
    }

    /// Sustained frame rate under pipelining.
    pub fn sustained_fps(&self) -> f64 {
        1000.0 / self.initiation_interval_ms()
    }

    /// Single-stream (unpipelined) frame rate, for comparison.
    pub fn single_stream_fps(&self) -> f64 {
        1000.0 / self.latency_ms
    }

    /// Which resource bounds the stream.
    pub fn bottleneck(&self) -> &'static str {
        let ii = self.initiation_interval_ms();
        if ii == self.compute_ms {
            "cluster/center compute"
        } else if ii == self.memory_ms {
            "DRAM channel"
        } else {
            "color conversion"
        }
    }

    /// Frames in flight at steady state (latency over initiation
    /// interval, rounded up).
    pub fn frames_in_flight(&self) -> u32 {
        (self.latency_ms / self.initiation_interval_ms()).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FrameSimulator, Resolution};

    fn model() -> StreamModel {
        let report = FrameSimulator::paper_default(Resolution::FULL_HD).simulate();
        StreamModel::from_report(&report)
    }

    #[test]
    fn pipelining_beats_single_stream() {
        let m = model();
        assert!(m.sustained_fps() > m.single_stream_fps());
        // The paper's single-stream 30 fps becomes ~45-50 fps sustained:
        // the compute path (~20.5 ms) is the bottleneck.
        assert!(m.sustained_fps() > 40.0, "{}", m.sustained_fps());
    }

    #[test]
    fn bottleneck_is_the_compute_path_at_full_hd() {
        let m = model();
        assert_eq!(m.bottleneck(), "cluster/center compute");
    }

    #[test]
    fn initiation_interval_is_the_max_busy_time() {
        let m = model();
        let ii = m.initiation_interval_ms();
        assert!(ii >= m.color_ms && ii >= m.compute_ms && ii >= m.memory_ms);
        assert!(ii <= m.latency_ms);
    }

    #[test]
    fn frames_in_flight_is_small_and_positive() {
        let m = model();
        let f = m.frames_in_flight();
        assert!((1..=4).contains(&f), "{f} frames in flight");
    }

    #[test]
    fn memory_becomes_the_bottleneck_with_tiny_buffers_and_many_cores() {
        // Scale compute down (8 cores) so the shared DRAM channel binds.
        let report = FrameSimulator::paper_default(Resolution::FULL_HD)
            .with_cores(8)
            .with_buffer_bytes(1024)
            .simulate();
        let m = StreamModel::from_report(&report);
        assert_eq!(m.bottleneck(), "DRAM channel");
    }
}
