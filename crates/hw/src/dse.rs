//! Design-space exploration drivers: the sweeps behind Table 3, Table 4,
//! and Figure 6, plus a generic Pareto-front utility for the
//! area/performance trade-off analysis.

use crate::cluster::ClusterUnitConfig;
use crate::sim::{FrameReport, FrameSimulator, Resolution};

/// One row of the Table 3 cluster-unit comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterUnitRow {
    /// Configuration name (`"9-9-6"`, …).
    pub name: String,
    /// The configuration itself.
    pub config: ClusterUnitConfig,
    /// Area in mm².
    pub area_mm2: f64,
    /// Average power in mW.
    pub power_mw: f64,
    /// Pipeline latency in cycles.
    pub latency_cycles: u32,
    /// Throughput in pixels per cycle.
    pub throughput: f64,
    /// Time for one 1080p iteration, in ms.
    pub time_ms: f64,
    /// Energy for one 1080p iteration, in µJ.
    pub energy_uj: f64,
}

/// Computes the Table 3 rows for `pixels` pixels per iteration.
pub fn cluster_unit_sweep(pixels: u64) -> Vec<ClusterUnitRow> {
    ClusterUnitConfig::table3()
        .into_iter()
        .map(|config| ClusterUnitRow {
            name: config.name(),
            config,
            area_mm2: config.area_mm2(),
            power_mw: config.power_mw(pixels),
            latency_cycles: config.latency_cycles(),
            throughput: config.throughput_pixels_per_cycle(),
            time_ms: config.iteration_time_ms(pixels),
            energy_uj: config.iteration_energy_uj(pixels),
        })
        .collect()
}

/// Sweeps per-channel buffer sizes (in kB) at full HD — the Figure 6
/// experiment. Returns `(kB, report)` pairs.
pub fn buffer_size_sweep(kbs: &[usize]) -> Vec<(usize, FrameReport)> {
    kbs.iter()
        .map(|&kb| {
            let report = FrameSimulator::paper_default(Resolution::FULL_HD)
                .with_buffer_bytes(kb * 1024)
                .simulate();
            (kb, report)
        })
        .collect()
}

/// The three Table 4 best-configuration rows.
pub fn table4_reports() -> Vec<FrameReport> {
    Resolution::TABLE4
        .iter()
        .map(|&r| FrameSimulator::paper_default(r).simulate())
        .collect()
}

/// Returns the indices of the Pareto-optimal points under *minimization*
/// of both objectives: point `i` survives iff no other point is at least
/// as good in both and strictly better in one.
pub fn pareto_front_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, &(ax, ay)) in points.iter().enumerate() {
        for (j, &(bx, by)) in points.iter().enumerate() {
            if i != j && bx <= ax && by <= ay && (bx < ax || by < ay) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_sweep_has_five_named_rows() {
        let rows = cluster_unit_sweep(1920 * 1080);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].name, "1-1-1");
        assert_eq!(rows[4].name, "9-9-6");
    }

    #[test]
    fn best_throughput_is_9_9_6() {
        let rows = cluster_unit_sweep(1920 * 1080);
        let best = rows
            .iter()
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
            .expect("five rows");
        assert_eq!(best.name, "9-9-6");
    }

    #[test]
    fn buffer_sweep_is_monotone() {
        let sweep = buffer_size_sweep(&[1, 4, 16, 128]);
        assert_eq!(sweep.len(), 4);
        for pair in sweep.windows(2) {
            assert!(pair[1].1.total_ms() <= pair[0].1.total_ms());
        }
    }

    #[test]
    fn table4_reports_cover_three_resolutions() {
        let reports = table4_reports();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].resolution.name, "1920x1080");
        assert_eq!(reports[2].resolution.name, "640x480");
    }

    #[test]
    fn pareto_front_of_cluster_sweep_excludes_imbalanced_designs() {
        // Minimize (area, initiation interval): the paper's observation
        // that 9-1-1, 1-9-1, 1-1-6 "have imbalanced throughput, so would
        // not be chosen for a practical design".
        let rows = cluster_unit_sweep(1920 * 1080);
        let points: Vec<(f64, f64)> = rows
            .iter()
            .map(|r| (r.area_mm2, 1.0 / r.throughput))
            .collect();
        let front = pareto_front_indices(&points);
        let names: Vec<&str> = front.iter().map(|&i| rows[i].name.as_str()).collect();
        assert_eq!(
            names,
            ["1-1-1", "9-9-6"],
            "only the balanced designs are Pareto-optimal"
        );
    }

    #[test]
    fn pareto_handles_duplicates_and_singletons() {
        assert_eq!(pareto_front_indices(&[(1.0, 1.0)]), vec![0]);
        let dup = pareto_front_indices(&[(1.0, 1.0), (1.0, 1.0)]);
        assert_eq!(dup.len(), 2, "equal points co-survive");
        let dominated = pareto_front_indices(&[(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(dominated, vec![0]);
    }
}
