//! External-memory model.
//!
//! The paper's buffer-size study (§6.3, Fig. 6) "assumed that peak external
//! bandwidth is 256b/cycle and memory latency is 50 cycle latency". Short
//! tile-sized bursts cannot sustain the peak, so the model separates:
//!
//! * a **streaming term** — bytes over the *effective* bandwidth
//!   (peak × utilization, with utilization calibrated to §7's 11.1 ms of
//!   memory time at full HD);
//! * a **latency term** — 50 cycles charged per burst (one burst per
//!   buffer-sized transfer per channel), which is what makes small buffers
//!   slow in Fig. 6.

use crate::model;

/// External-memory timing and energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Peak bandwidth in bytes per cycle (256 bits = 32 B, paper §6.3).
    pub peak_bytes_per_cycle: f64,
    /// Access latency in cycles charged once per burst (paper §6.3).
    pub latency_cycles: f64,
    /// Fraction of peak bandwidth sustained on streaming transfers.
    /// **Calibrated** to 0.27 so the full-HD frame's ≈143 MB of traffic
    /// takes the ≈10.4 ms of §7 (11.1 ms memory time minus the burst
    /// latency term at 4 kB buffers).
    pub bandwidth_utilization: f64,
    /// Energy per byte moved, in picojoules (Horowitz-style 2500× an
    /// 8-bit add — the paper's §4.2 model).
    pub energy_per_byte_pj: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            peak_bytes_per_cycle: 32.0,
            latency_cycles: 50.0,
            bandwidth_utilization: 0.27,
            energy_per_byte_pj: model::E_DRAM_BYTE_PJ,
        }
    }
}

impl DramModel {
    /// Effective sustained bandwidth in bytes per cycle.
    pub fn effective_bytes_per_cycle(&self) -> f64 {
        self.peak_bytes_per_cycle * self.bandwidth_utilization
    }

    /// Cycles to move `bytes` in `bursts` separate transfers.
    pub fn transfer_cycles(&self, bytes: u64, bursts: u64) -> f64 {
        bytes as f64 / self.effective_bytes_per_cycle()
            + bursts as f64 * self.latency_cycles
    }

    /// Time in milliseconds to move `bytes` in `bursts` transfers.
    pub fn transfer_ms(&self, bytes: u64, bursts: u64) -> f64 {
        model::cycles_to_ms(self.transfer_cycles(bytes, bursts))
    }

    /// Energy in microjoules to move `bytes`.
    pub fn transfer_energy_uj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_pj * 1e-6
    }
}

/// Accumulates DRAM traffic by category for a frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramTraffic {
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
    /// Number of bursts issued.
    pub bursts: u64,
}

impl DramTraffic {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Records a read of `bytes` in one burst.
    pub fn read(&mut self, bytes: u64) {
        self.bytes_read += bytes;
        self.bursts += 1;
    }

    /// Records a write of `bytes` in one burst.
    pub fn write(&mut self, bytes: u64) {
        self.bytes_written += bytes;
        self.bursts += 1;
    }
}

impl std::ops::AddAssign for DramTraffic {
    fn add_assign(&mut self, rhs: DramTraffic) {
        self.bytes_read += rhs.bytes_read;
        self.bytes_written += rhs.bytes_written;
        self.bursts += rhs.bursts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let d = DramModel::default();
        assert_eq!(d.peak_bytes_per_cycle, 32.0); // 256 bits
        assert_eq!(d.latency_cycles, 50.0);
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let d = DramModel::default();
        assert!(d.effective_bytes_per_cycle() < d.peak_bytes_per_cycle);
        assert!(d.effective_bytes_per_cycle() > 0.0);
    }

    #[test]
    fn more_bursts_cost_more_time_for_same_bytes() {
        let d = DramModel::default();
        let few = d.transfer_cycles(1 << 20, 10);
        let many = d.transfer_cycles(1 << 20, 10_000);
        assert!(many > few);
        assert!((many - few - 9990.0 * 50.0).abs() < 1e-6);
    }

    #[test]
    fn calibration_lands_full_hd_streaming_near_10_4_ms() {
        // ≈143 MB of frame traffic should stream in ≈10.4 ms.
        let d = DramModel::default();
        let ms = d.transfer_ms(143_000_000, 0);
        assert!((ms - 10.4).abs() < 0.5, "streaming time {ms} ms");
    }

    #[test]
    fn energy_uses_horowitz_ratio() {
        let d = DramModel::default();
        let uj = d.transfer_energy_uj(1_000_000);
        assert!((uj - 1e6 * model::E_DRAM_BYTE_PJ * 1e-6).abs() < 1e-9);
    }

    #[test]
    fn traffic_accumulates() {
        let mut t = DramTraffic::default();
        t.read(100);
        t.write(50);
        let mut u = DramTraffic::default();
        u.read(25);
        t += u;
        assert_eq!(t.bytes_read, 125);
        assert_eq!(t.bytes_written, 50);
        assert_eq!(t.bursts, 3);
        assert_eq!(t.total_bytes(), 175);
    }
}
