//! Constrained-random verification of the Cluster Update Unit pipeline —
//! the UVM-style testbench an RTL team would run against the HLS output.
//!
//! The testbench drives [`crate::pipeline::ClusterPipeline`] with seeded
//! random distance vectors across every Table 3 configuration, and two
//! independent checkers score each run:
//!
//! * a **functional scoreboard** — the retired winner of every transaction
//!   must equal an independently computed priority-encoded argmin;
//! * a **timing checker** — the cycle count of every burst must equal the
//!   closed-form `(n−1)·II + latency` contract, and retirement order must
//!   be issue order.
//!
//! The RNG is a self-contained xorshift so verification runs are
//! reproducible from the seed alone.

use crate::cluster::ClusterUnitConfig;
use crate::pipeline::ClusterPipeline;

/// Outcome of one verification campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerificationReport {
    /// Transactions driven across all configurations.
    pub transactions: u64,
    /// Functional mismatches (winner disagreed with the golden argmin).
    pub functional_mismatches: u64,
    /// Timing-contract violations (burst cycles or retirement order).
    pub timing_violations: u64,
    /// Configurations exercised.
    pub configs_checked: usize,
    /// Functional coverage collected during the campaign.
    pub coverage: Coverage,
}

impl VerificationReport {
    /// Whether the device under test passed every check.
    pub fn passed(&self) -> bool {
        self.functional_mismatches == 0 && self.timing_violations == 0
    }
}

/// Functional coverage bins — did the stimulus actually exercise the
/// interesting cases?
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Times each of the 9 minimum slots won.
    pub winner_slot_hits: [u64; 9],
    /// Transactions whose minimum value appeared in more than one slot
    /// (the priority-encoder tie case).
    pub tie_transactions: u64,
    /// Transactions where slot 0 won a tie (the encoder's default path).
    pub tie_won_by_priority: u64,
}

impl Coverage {
    /// Whether every winner slot was exercised at least once and ties
    /// occurred — the closure criterion for this testbench.
    pub fn is_closed(&self) -> bool {
        self.winner_slot_hits.iter().all(|&h| h > 0) && self.tie_transactions > 0
    }
}

/// The constrained-random testbench.
#[derive(Debug, Clone)]
pub struct Testbench {
    seed: u64,
}

impl Testbench {
    /// Creates a testbench with a reproducible seed.
    pub fn new(seed: u64) -> Self {
        Testbench { seed: seed | 1 }
    }

    /// Drives `bursts` bursts of `burst_len` random transactions through
    /// every Table 3 configuration and scores them.
    pub fn run(&self, bursts: u32, burst_len: u32) -> VerificationReport {
        let mut rng = XorShift64 { state: self.seed };
        let mut report = VerificationReport::default();
        for config in ClusterUnitConfig::table3() {
            report.configs_checked += 1;
            for _ in 0..bursts {
                self.run_burst(config, burst_len, &mut rng, &mut report);
            }
        }
        report
    }

    fn run_burst(
        &self,
        config: ClusterUnitConfig,
        burst_len: u32,
        rng: &mut XorShift64,
        report: &mut VerificationReport,
    ) {
        let mut pipe = ClusterPipeline::new(config);
        let mut expected: Vec<u8> = Vec::with_capacity(burst_len as usize);
        for _ in 0..burst_len {
            // Constrained randomization: bias toward near-tie vectors,
            // the hard case for a priority-encoded minimum.
            let base = rng.next_range(256) as u32;
            let mut d = [0u32; 9];
            for v in &mut d {
                *v = base.saturating_add(rng.next_range(4) as u32);
            }
            // One random slot dips below the crowd half the time.
            if rng.next_range(2) == 0 {
                d[rng.next_range(9) as usize] = base.saturating_sub(1);
            }
            let winner = golden_argmin(&d);
            expected.push(winner);
            // Coverage sampling.
            report.coverage.winner_slot_hits[winner as usize] += 1;
            let min = d.iter().copied().min().unwrap_or(u32::MAX);
            let min_count = d.iter().filter(|&&v| v == min).count();
            if min_count > 1 {
                report.coverage.tie_transactions += 1;
                if d[0] == min {
                    report.coverage.tie_won_by_priority += 1;
                }
            }
            pipe.issue(d);
            report.transactions += 1;
        }
        let total = pipe.flush();

        // Timing contract.
        let contract = (burst_len as u64 - 1) * config.initiation_interval() as u64
            + config.latency_cycles() as u64;
        if total != contract {
            report.timing_violations += 1;
        }
        // Retirement order and functional results.
        let retired = pipe.retired();
        if retired.len() != expected.len()
            || retired.windows(2).any(|w| w[0].id >= w[1].id)
        {
            report.timing_violations += 1;
        }
        for (tx, &want) in retired.iter().zip(&expected) {
            if tx.winner != want {
                report.functional_mismatches += 1;
            }
        }
    }
}

/// Golden reference: first index holding the minimum (priority encoder),
/// written as a fold so it shares no code with the DUT's scan loop.
fn golden_argmin(d: &[u32; 9]) -> u8 {
    d.iter()
        .enumerate()
        .fold((0usize, u32::MAX), |(bi, bv), (i, &v)| {
            if v < bv {
                (i, v)
            } else {
                (bi, bv)
            }
        })
        .0 as u8
}

/// Self-contained xorshift64 RNG (reproducible, dependency-free).
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    fn next_range(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_passes_on_all_configurations() {
        let report = Testbench::new(0xDEC0DE).run(20, 64);
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.configs_checked, 5);
        assert_eq!(report.transactions, 5 * 20 * 64);
    }

    #[test]
    fn coverage_closes_on_a_moderate_campaign() {
        let report = Testbench::new(0xC0FFEE).run(20, 64);
        assert!(
            report.coverage.is_closed(),
            "all slots hit + ties seen: {:?}",
            report.coverage
        );
        // The near-tie constraint makes ties common, not incidental.
        assert!(report.coverage.tie_transactions * 4 > report.transactions);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = Testbench::new(7).run(5, 32);
        let b = Testbench::new(7).run(5, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_different_stimulus() {
        // Indirect check: both pass, both drive the same volume.
        let a = Testbench::new(1).run(3, 16);
        let b = Testbench::new(2).run(3, 16);
        assert!(a.passed() && b.passed());
        assert_eq!(a.transactions, b.transactions);
    }

    #[test]
    fn golden_argmin_prefers_lowest_index_on_ties() {
        assert_eq!(golden_argmin(&[3, 1, 1, 5, 1, 9, 9, 9, 9]), 1);
        assert_eq!(golden_argmin(&[0; 9]), 0);
        assert_eq!(golden_argmin(&[9, 8, 7, 6, 5, 4, 3, 2, 1]), 8);
    }
}
