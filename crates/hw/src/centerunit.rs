//! Cycle-stepped model of the Center Update Unit (Fig. 4, right): the
//! sigma registers and the iterative divider that turns accumulated
//! `[ΣL, Σa, Σb, Σx, Σy, n]` into new center coordinates.
//!
//! The unit walks its superpixels sequentially, producing the five
//! quotients per superpixel with a non-restoring divider — the
//! resolution-independent ≈8.7 ms of the full-HD frame (see
//! [`crate::model::CENTER_UPDATE_CYCLES_PER_SP`]). Division here is the
//! same rounded integer division the functional accelerator
//! ([`crate::accel`]) uses, so the two models agree bit-for-bit.

use crate::model;

/// One superpixel's sigma register contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SigmaRegister {
    /// Accumulated L codes.
    pub sum_l: i64,
    /// Accumulated a codes.
    pub sum_a: i64,
    /// Accumulated b codes.
    pub sum_b: i64,
    /// Accumulated x coordinates.
    pub sum_x: i64,
    /// Accumulated y coordinates.
    pub sum_y: i64,
    /// Member pixel count.
    pub count: i64,
}

/// One updated center.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdatedCenter {
    /// Mean L code (rounded).
    pub l: i32,
    /// Mean a code.
    pub a: i32,
    /// Mean b code.
    pub b: i32,
    /// Mean x.
    pub x: i32,
    /// Mean y.
    pub y: i32,
}

/// Rounded integer division: `round(sum / count)` for non-negative sums
/// and positive counts — one pass of the unit's divider.
#[inline]
pub fn rounded_div(sum: i64, count: i64) -> i32 {
    debug_assert!(count > 0);
    ((2 * sum + count) / (2 * count)) as i32
}

/// The cycle-counted Center Update Unit.
#[derive(Debug, Clone, Default)]
pub struct CenterUpdateUnit {
    cycles: u64,
    updates: u64,
    skipped: u64,
}

impl CenterUpdateUnit {
    /// A fresh unit with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one sigma register: returns the new center (or `None`
    /// for an empty superpixel, which keeps its previous center and costs
    /// only the one-cycle skip check).
    pub fn update(&mut self, sigma: &SigmaRegister) -> Option<UpdatedCenter> {
        if sigma.count <= 0 {
            self.cycles += 1; // count==0 check
            self.skipped += 1;
            return None;
        }
        self.cycles += model::CENTER_UPDATE_CYCLES_PER_SP as u64;
        self.updates += 1;
        Some(UpdatedCenter {
            l: rounded_div(sigma.sum_l, sigma.count),
            a: rounded_div(sigma.sum_a, sigma.count),
            b: rounded_div(sigma.sum_b, sigma.count),
            x: rounded_div(sigma.sum_x, sigma.count),
            y: rounded_div(sigma.sum_y, sigma.count),
        })
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Centers actually recomputed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Empty superpixels skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounded_division_matches_f64_rounding() {
        for (sum, count) in [(10i64, 4i64), (13, 2), (99, 10), (5, 2), (0, 3), (7, 7)] {
            let expect = (sum as f64 / count as f64).round() as i32;
            assert_eq!(rounded_div(sum, count), expect, "{sum}/{count}");
        }
    }

    #[test]
    fn update_produces_componentwise_means() {
        let mut unit = CenterUpdateUnit::new();
        let sigma = SigmaRegister {
            sum_l: 1000,
            sum_a: 1280,
            sum_b: 640,
            sum_x: 55,
            sum_y: 33,
            count: 10,
        };
        let c = unit.update(&sigma).expect("nonempty superpixel");
        assert_eq!(c.l, 100);
        assert_eq!(c.a, 128);
        assert_eq!(c.b, 64);
        assert_eq!(c.x, 6); // 5.5 rounds up
        assert_eq!(c.y, 3);
        assert_eq!(unit.updates(), 1);
    }

    #[test]
    fn empty_superpixels_cost_one_cycle() {
        let mut unit = CenterUpdateUnit::new();
        assert!(unit.update(&SigmaRegister::default()).is_none());
        assert_eq!(unit.cycles(), 1);
        assert_eq!(unit.skipped(), 1);
    }

    #[test]
    fn full_frame_center_update_matches_the_calibrated_share() {
        // K ≈ 5000 superpixels × 9 iterations at the calibrated per-SP
        // latency ≈ 8.7 ms — the resolution-independent term of Table 4.
        let mut unit = CenterUpdateUnit::new();
        let sigma = SigmaRegister {
            sum_l: 100,
            sum_a: 100,
            sum_b: 100,
            sum_x: 100,
            sum_y: 100,
            count: 2,
        };
        for _ in 0..4982 * 9 {
            unit.update(&sigma);
        }
        let ms = model::cycles_to_ms(unit.cycles() as f64);
        assert!((8.0..9.5).contains(&ms), "center update {ms} ms");
    }

    #[test]
    fn agrees_with_the_functional_accelerator_division() {
        // The accel module divides as (2Σ + n) / (2n); this unit must be
        // bit-identical.
        for sum in 0..200i64 {
            for count in 1..20i64 {
                assert_eq!(
                    rounded_div(sum, count) as i64,
                    (2 * sum + count) / (2 * count)
                );
            }
        }
    }
}
