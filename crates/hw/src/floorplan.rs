//! A toy floorplan of the accelerator: block rectangles sized by the area
//! model, packed into a near-square die outline, rendered as SVG.
//!
//! Not a real placement — a visualization of where the 0.066 mm² goes
//! (the kind of figure a DAC camera-ready would include). Areas come from
//! the same calibrated model the rest of `sslic-hw` uses, so the picture
//! stays in sync with the numbers.

use crate::cluster::ClusterUnitConfig;
use crate::model;
use crate::scratchpad::ScratchpadSet;

/// One placed block of the floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name.
    pub name: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Placement: x, y, width, height in millimetres.
    pub rect: (f64, f64, f64, f64),
}

/// A packed floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Placed blocks.
    pub blocks: Vec<Block>,
    /// Die width in millimetres.
    pub die_w: f64,
    /// Die height in millimetres.
    pub die_h: f64,
}

impl Floorplan {
    /// Builds the floorplan for a cluster configuration and buffer size,
    /// using a simple shelf-packing heuristic (blocks sorted by area,
    /// placed left-to-right in rows of the die width).
    pub fn new(cluster: ClusterUnitConfig, buffer_bytes_per_channel: usize) -> Self {
        let sram = ScratchpadSet::new(buffer_bytes_per_channel);
        let sram_each = sram.area_mm2() / 4.0;
        let mut areas: Vec<(String, f64)> = vec![
            (format!("cluster update ({})", cluster.name()), cluster.area_mm2()),
            ("color conversion".into(), model::area::COLOR_CONV_MM2),
            ("center update".into(), model::area::CENTER_UPDATE_MM2),
            ("FSM".into(), model::area::FSM_MM2),
            ("ch1 SRAM".into(), sram_each),
            ("ch2 SRAM".into(), sram_each),
            ("ch3 SRAM".into(), sram_each),
            ("index SRAM".into(), sram_each),
        ];
        areas.sort_by(|a, b| b.1.total_cmp(&a.1));
        let total: f64 = areas.iter().map(|(_, a)| a).sum();
        // Near-square die with 10% whitespace.
        let die_w = (total * 1.1).sqrt();
        let mut blocks = Vec::new();
        let (mut x, mut y, mut row_h) = (0.0f64, 0.0f64, 0.0f64);
        for (name, area) in areas {
            // Aspect-constrained block: height = sqrt(area / 2) keeps
            // rectangles wider than tall.
            let h = (area / 2.0).sqrt();
            let w = area / h;
            if x + w > die_w + 1e-12 {
                x = 0.0;
                y += row_h;
                row_h = 0.0;
            }
            blocks.push(Block {
                name,
                area_mm2: area,
                rect: (x, y, w, h),
            });
            x += w;
            row_h = row_h.max(h);
        }
        let die_h = (y + row_h).max(die_w / 2.0);
        Floorplan {
            blocks,
            die_w,
            die_h,
        }
    }

    /// Total placed area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.blocks.iter().map(|b| b.area_mm2).sum()
    }

    /// Renders the floorplan as a standalone SVG document (1 mm = `scale`
    /// SVG units).
    pub fn to_svg(&self, scale: f64) -> String {
        let w = self.die_w * scale;
        let h = self.die_h * scale;
        let mut svg = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {w:.2} {h:.2}\">\n\
             <rect x=\"0\" y=\"0\" width=\"{w:.2}\" height=\"{h:.2}\" \
             fill=\"#f4f4f4\" stroke=\"#222\"/>\n",
            w.ceil(),
            h.ceil() + 14.0,
        );
        let palette = [
            "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1",
            "#9c755f",
        ];
        for (i, b) in self.blocks.iter().enumerate() {
            let (x, y, bw, bh) = b.rect;
            svg.push_str(&format!(
                "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
                 fill=\"{}\" fill-opacity=\"0.8\" stroke=\"#333\" stroke-width=\"0.3\"/>\n\
                 <title>{} — {:.4} mm2</title>\n",
                x * scale,
                y * scale,
                bw * scale,
                bh * scale,
                palette[i % palette.len()],
                b.name,
                b.area_mm2,
            ));
        }
        svg.push_str(&format!(
            "<text x=\"2\" y=\"{:.2}\" font-size=\"10\" font-family=\"monospace\">\
             S-SLIC accelerator — {:.3} mm2 total</text>\n</svg>\n",
            h + 11.0,
            self.total_area_mm2(),
        ));
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_plan() -> Floorplan {
        Floorplan::new(ClusterUnitConfig::c9_9_6(), 4 * 1024)
    }

    #[test]
    fn total_area_matches_the_model() {
        let plan = paper_plan();
        assert!(
            (plan.total_area_mm2() - 0.066).abs() < 0.003,
            "total {} mm²",
            plan.total_area_mm2()
        );
        assert_eq!(plan.blocks.len(), 8);
    }

    #[test]
    fn blocks_fit_inside_the_die() {
        let plan = paper_plan();
        for b in &plan.blocks {
            let (x, y, w, h) = b.rect;
            assert!(x >= 0.0 && y >= 0.0, "{}", b.name);
            assert!(x + w <= plan.die_w + 1e-9, "{} overflows width", b.name);
            assert!(y + h <= plan.die_h + 1e-9, "{} overflows height", b.name);
        }
    }

    #[test]
    fn blocks_do_not_overlap() {
        let plan = paper_plan();
        for (i, a) in plan.blocks.iter().enumerate() {
            for b in plan.blocks.iter().skip(i + 1) {
                let (ax, ay, aw, ah) = a.rect;
                let (bx, by, bw, bh) = b.rect;
                let disjoint = ax + aw <= bx + 1e-9
                    || bx + bw <= ax + 1e-9
                    || ay + ah <= by + 1e-9
                    || by + bh <= ay + 1e-9;
                assert!(disjoint, "{} overlaps {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn block_rects_preserve_their_areas() {
        let plan = paper_plan();
        for b in &plan.blocks {
            let (_, _, w, h) = b.rect;
            assert!(
                (w * h - b.area_mm2).abs() < 1e-9,
                "{}: rect {} vs area {}",
                b.name,
                w * h,
                b.area_mm2
            );
        }
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = paper_plan().to_svg(1000.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 9); // die + 8 blocks
        assert!(svg.contains("cluster update (9-9-6)"));
        assert!(svg.contains("index SRAM"));
    }

    #[test]
    fn smaller_buffers_shrink_the_die() {
        let big = Floorplan::new(ClusterUnitConfig::c9_9_6(), 4 * 1024);
        let small = Floorplan::new(ClusterUnitConfig::c9_9_6(), 1024);
        assert!(small.total_area_mm2() < big.total_area_mm2());
        assert!((small.total_area_mm2() - 0.053).abs() < 0.003);
    }
}
