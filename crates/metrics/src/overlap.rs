use std::collections::HashMap;

use sslic_image::Plane;

/// Builds the superpixel↔ground-truth overlap table: for each superpixel
/// `s`, a map from ground-truth label to `|s ∩ g|`, plus `|s|` itself.
fn overlap_table(
    labels: &Plane<u32>,
    ground_truth: &Plane<u32>,
) -> (HashMap<u32, HashMap<u32, u64>>, HashMap<u32, u64>) {
    assert!(
        labels.width() == ground_truth.width() && labels.height() == ground_truth.height(),
        "label maps must share geometry"
    );
    let mut overlaps: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
    let mut sizes: HashMap<u32, u64> = HashMap::new();
    for (s, g) in labels.iter().zip(ground_truth.iter()) {
        *overlaps.entry(*s).or_default().entry(*g).or_insert(0) += 1;
        *sizes.entry(*s).or_insert(0) += 1;
    }
    (overlaps, sizes)
}

/// Undersegmentation error, Achanta et al. (TPAMI 2012) formulation with
/// the conventional 5% overlap tolerance:
///
/// ```text
/// USE = (1/N) · [ Σ_g  Σ_{s : |s∩g| > 0.05·|s|} |s|  −  N ]
/// ```
///
/// A superpixel is charged to every ground-truth segment it meaningfully
/// overlaps; perfect boundary adherence yields 0, and bleeding across
/// ground-truth boundaries increases the value. Lower is better.
///
/// # Panics
///
/// Panics if the maps disagree on geometry.
///
/// # Example
///
/// ```
/// use sslic_image::Plane;
/// use sslic_metrics::undersegmentation_error;
///
/// let gt = Plane::from_fn(8, 8, |x, _| if x < 4 { 0u32 } else { 1 });
/// // A segmentation straddling the boundary has positive USE.
/// let bad = Plane::from_fn(8, 8, |_, y| (y / 4) as u32);
/// assert!(undersegmentation_error(&bad, &gt) > 0.0);
/// assert_eq!(undersegmentation_error(&gt, &gt), 0.0);
/// ```
pub fn undersegmentation_error(labels: &Plane<u32>, ground_truth: &Plane<u32>) -> f64 {
    let (overlaps, sizes) = overlap_table(labels, ground_truth);
    let n = labels.len() as f64;
    let mut charged = 0u64;
    for (s, per_gt) in &overlaps {
        let size = sizes[s];
        let threshold = 0.05 * size as f64;
        for &count in per_gt.values() {
            if count as f64 > threshold {
                charged += size;
            }
        }
    }
    ((charged as f64) - n).max(0.0) / n
}

/// Corrected undersegmentation error (Neubert & Protzel 2012):
///
/// ```text
/// USE_c = (1/N) · Σ_g Σ_{s ∩ g ≠ ∅} min(|s ∩ g|, |s \ g|)
/// ```
///
/// Free of the tolerance parameter and bounded by construction; each
/// superpixel is charged only its smaller "leak" per ground-truth segment.
/// Lower is better.
///
/// # Panics
///
/// Panics if the maps disagree on geometry.
pub fn corrected_undersegmentation_error(
    labels: &Plane<u32>,
    ground_truth: &Plane<u32>,
) -> f64 {
    let (overlaps, sizes) = overlap_table(labels, ground_truth);
    let n = labels.len() as f64;
    let mut total = 0u64;
    for (s, per_gt) in &overlaps {
        let size = sizes[s];
        for &inside in per_gt.values() {
            total += inside.min(size - inside);
        }
    }
    total as f64 / n
}

/// Achievable segmentation accuracy: the best pixel accuracy a downstream
/// segmenter could reach by assigning each superpixel to one ground-truth
/// segment:
///
/// ```text
/// ASA = (1/N) · Σ_s max_g |s ∩ g|
/// ```
///
/// Higher is better; 1.0 iff no superpixel straddles a boundary.
///
/// # Panics
///
/// Panics if the maps disagree on geometry.
pub fn achievable_segmentation_accuracy(
    labels: &Plane<u32>,
    ground_truth: &Plane<u32>,
) -> f64 {
    let (overlaps, _) = overlap_table(labels, ground_truth);
    let n = labels.len() as f64;
    let mut total = 0u64;
    for per_gt in overlaps.values() {
        total += per_gt.values().copied().max().unwrap_or(0);
    }
    total as f64 / n
}

/// Compactness (Schick et al. 2012): the size-weighted isoperimetric
/// quotient of the superpixels,
///
/// ```text
/// CO = Σ_s (|s|/N) · (4π·|s| / P_s²)
/// ```
///
/// where `P_s` is the boundary length of superpixel `s` (4-neighbour edge
/// count, image border included). 1.0 would be ideal circles; grid-like
/// SLIC superpixels score around 0.7–0.8.
pub fn compactness(labels: &Plane<u32>) -> f64 {
    let (w, h) = (labels.width(), labels.height());
    let mut sizes: HashMap<u32, u64> = HashMap::new();
    let mut perimeters: HashMap<u32, u64> = HashMap::new();
    for y in 0..h {
        for x in 0..w {
            let l = labels[(x, y)];
            *sizes.entry(l).or_insert(0) += 1;
            let mut p = 0u64;
            // Count exposed edges of this pixel (different label or image
            // border).
            if x == 0 || labels[(x - 1, y)] != l {
                p += 1;
            }
            if x + 1 == w || labels[(x + 1, y)] != l {
                p += 1;
            }
            if y == 0 || labels[(x, y - 1)] != l {
                p += 1;
            }
            if y + 1 == h || labels[(x, y + 1)] != l {
                p += 1;
            }
            *perimeters.entry(l).or_insert(0) += p;
        }
    }
    let n = labels.len() as f64;
    let mut co = 0.0;
    for (l, &size) in &sizes {
        let perim = perimeters[l] as f64;
        if perim > 0.0 {
            let q = 4.0 * std::f64::consts::PI * size as f64 / (perim * perim);
            co += (size as f64 / n) * q.min(1.0);
        }
    }
    co
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vsplit(w: usize, h: usize, at: usize) -> Plane<u32> {
        Plane::from_fn(w, h, |x, _| if x < at { 0 } else { 1 })
    }

    #[test]
    fn perfect_segmentation_scores_perfectly() {
        let gt = vsplit(16, 16, 8);
        assert_eq!(undersegmentation_error(&gt, &gt), 0.0);
        assert_eq!(corrected_undersegmentation_error(&gt, &gt), 0.0);
        assert_eq!(achievable_segmentation_accuracy(&gt, &gt), 1.0);
    }

    #[test]
    fn oversegmentation_respecting_boundaries_is_free() {
        // Superpixels nested inside GT regions: no bleeding.
        let gt = vsplit(16, 16, 8);
        let sp = Plane::from_fn(16, 16, |x, y| ((x / 4) + 4 * (y / 4)) as u32);
        assert_eq!(undersegmentation_error(&sp, &gt), 0.0);
        assert_eq!(corrected_undersegmentation_error(&sp, &gt), 0.0);
        assert_eq!(achievable_segmentation_accuracy(&sp, &gt), 1.0);
    }

    #[test]
    fn straddling_superpixels_are_charged() {
        let gt = vsplit(16, 16, 8);
        // Horizontal bands: every superpixel straddles the vertical GT edge.
        let sp = Plane::from_fn(16, 16, |_, y| (y / 4) as u32);
        let u = undersegmentation_error(&sp, &gt);
        let c = corrected_undersegmentation_error(&sp, &gt);
        let asa = achievable_segmentation_accuracy(&sp, &gt);
        assert!(u > 0.5, "each band is charged twice: USE={u}");
        // Every band splits 50/50 across the GT edge and is charged
        // min(32,32)=32 by *each* of the two segments: USE_c = 1.0, its
        // maximum (Σ_g min(x, |s|−x) ≤ Σ_g x = |s|).
        assert!((c - 1.0).abs() < 1e-9, "worst-case straddle: {c}");
        assert!((asa - 0.5).abs() < 1e-9, "half the pixels recoverable: {asa}");
    }

    #[test]
    fn use_is_monotone_in_misalignment() {
        let gt = vsplit(32, 32, 16);
        let slightly_off = vsplit(32, 32, 18);
        let badly_off = vsplit(32, 32, 26);
        let u1 = corrected_undersegmentation_error(&slightly_off, &gt);
        let u2 = corrected_undersegmentation_error(&badly_off, &gt);
        assert!(u1 < u2, "more misalignment, more error: {u1} vs {u2}");
    }

    #[test]
    fn compactness_prefers_squares_over_stripes() {
        let squares = Plane::from_fn(16, 16, |x, y| ((x / 4) + 4 * (y / 4)) as u32);
        let stripes = Plane::from_fn(16, 16, |x, _| x as u32 % 16);
        assert!(compactness(&squares) > compactness(&stripes));
    }

    #[test]
    fn compactness_bounded_by_one() {
        let labels = Plane::from_fn(12, 12, |x, y| ((x / 3) + 4 * (y / 3)) as u32);
        let co = compactness(&labels);
        assert!(co > 0.0 && co <= 1.0, "CO = {co}");
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn mismatched_geometry_panics() {
        let a = Plane::filled(4, 4, 0u32);
        let b = Plane::filled(4, 5, 0u32);
        let _ = undersegmentation_error(&a, &b);
    }

    proptest! {
        #[test]
        fn metric_bounds_hold_on_random_maps(seed in 0u64..200) {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let labels = Plane::from_fn(16, 16, |_, _| (next() % 6) as u32);
            let gt = Plane::from_fn(16, 16, |_, _| (next() % 3) as u32);
            let u = undersegmentation_error(&labels, &gt);
            let c = corrected_undersegmentation_error(&labels, &gt);
            let asa = achievable_segmentation_accuracy(&labels, &gt);
            prop_assert!(u >= 0.0);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c), "USE_c ≤ 1: {c}");
            prop_assert!((0.0..=1.0).contains(&asa));
        }

        #[test]
        fn asa_of_identity_is_one(seed in 0u64..50) {
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state
            };
            let gt = Plane::from_fn(12, 12, |_, _| (next() % 5) as u32);
            prop_assert_eq!(achievable_segmentation_accuracy(&gt, &gt), 1.0);
        }
    }
}
