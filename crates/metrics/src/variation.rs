//! Explained variation (Moore et al. 2008): how much of the image's color
//! variance the superpixel partition captures,
//!
//! ```text
//! EV = Σ_s |s|·‖μ_s − μ‖² / Σ_p ‖x_p − μ‖²
//! ```
//!
//! where `μ_s` is superpixel `s`'s mean color and `μ` the global mean.
//! 1.0 means superpixels explain all variance (perfectly homogeneous
//! regions); 0 means they explain none. A ground-truth-free complement to
//! USE/BR, useful on real photographs where no annotation exists.

use sslic_image::{Plane, RgbImage};

/// Computes explained variation of `labels` over `img`, in RGB space.
///
/// Returns 1.0 for a constant image (zero total variance — any partition
/// trivially explains it).
///
/// # Panics
///
/// Panics if the image and label map disagree on geometry.
///
/// # Example
///
/// ```
/// use sslic_image::{Plane, Rgb, RgbImage};
/// use sslic_metrics::explained_variation;
///
/// // Two flat halves, split exactly by the labels: EV = 1.
/// let img = RgbImage::from_fn(8, 4, |x, _| {
///     if x < 4 { Rgb::new(0, 0, 0) } else { Rgb::new(200, 200, 200) }
/// });
/// let labels = Plane::from_fn(8, 4, |x, _| (x / 4) as u32);
/// assert!((explained_variation(&img, &labels) - 1.0).abs() < 1e-9);
/// ```
pub fn explained_variation(img: &RgbImage, labels: &Plane<u32>) -> f64 {
    assert!(
        img.width() == labels.width() && img.height() == labels.height(),
        "image and label map must share geometry"
    );
    let n = img.pixel_count() as f64;
    // Global mean.
    let mut global = [0f64; 3];
    for px in img.as_raw().chunks_exact(3) {
        global[0] += px[0] as f64;
        global[1] += px[1] as f64;
        global[2] += px[2] as f64;
    }
    for g in &mut global {
        *g /= n;
    }
    // Per-superpixel sums.
    use std::collections::HashMap;
    let mut sums: HashMap<u32, ([f64; 3], u64)> = HashMap::new();
    let mut total_var = 0f64;
    for y in 0..img.height() {
        for x in 0..img.width() {
            let p = img.pixel(x, y);
            let c = [p.r as f64, p.g as f64, p.b as f64];
            total_var += (0..3).map(|i| (c[i] - global[i]).powi(2)).sum::<f64>();
            let e = sums.entry(labels[(x, y)]).or_insert(([0.0; 3], 0));
            for (acc, v) in e.0.iter_mut().zip(&c) {
                *acc += v;
            }
            e.1 += 1;
        }
    }
    if total_var == 0.0 {
        return 1.0;
    }
    let mut explained = 0f64;
    for (sum, count) in sums.values() {
        let cnt = *count as f64;
        explained += cnt
            * (0..3)
                .map(|i| (sum[i] / cnt - global[i]).powi(2))
                .sum::<f64>();
    }
    (explained / total_var).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslic_image::Rgb;

    fn halves() -> RgbImage {
        RgbImage::from_fn(8, 8, |x, _| {
            if x < 4 {
                Rgb::new(10, 10, 10)
            } else {
                Rgb::new(200, 200, 200)
            }
        })
    }

    #[test]
    fn perfect_partition_explains_everything() {
        let labels = Plane::from_fn(8, 8, |x, _| (x / 4) as u32);
        assert!((explained_variation(&halves(), &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn orthogonal_partition_explains_nothing() {
        // Horizontal bands over a vertical split: every band has the same
        // mean as the global mean.
        let labels = Plane::from_fn(8, 8, |_, y| (y / 4) as u32);
        assert!(explained_variation(&halves(), &labels) < 1e-9);
    }

    #[test]
    fn single_superpixel_explains_nothing_on_varied_images() {
        let labels = Plane::filled(8, 8, 0u32);
        assert!(explained_variation(&halves(), &labels) < 1e-9);
    }

    #[test]
    fn constant_image_is_fully_explained() {
        let img = RgbImage::filled(6, 6, Rgb::new(50, 60, 70));
        let labels = Plane::from_fn(6, 6, |x, _| x as u32);
        assert_eq!(explained_variation(&img, &labels), 1.0);
    }

    #[test]
    fn finer_aligned_partitions_explain_at_least_as_much() {
        let img = RgbImage::from_fn(8, 8, |x, y| Rgb::new((x * 30) as u8, (y * 30) as u8, 0));
        let coarse = Plane::from_fn(8, 8, |x, _| (x / 4) as u32);
        let fine = Plane::from_fn(8, 8, |x, y| ((x / 2) + 4 * (y / 2)) as u32);
        let ev_coarse = explained_variation(&img, &coarse);
        let ev_fine = explained_variation(&img, &fine);
        assert!(ev_fine >= ev_coarse - 1e-12);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn mismatched_geometry_panics() {
        let img = RgbImage::filled(4, 4, Rgb::default());
        let labels = Plane::filled(5, 4, 0u32);
        let _ = explained_variation(&img, &labels);
    }
}
