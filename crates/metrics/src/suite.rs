//! One-call evaluation: every metric in the crate against one
//! segmentation, with a formatted report.

use sslic_image::{Plane, RgbImage};

use crate::{
    achievable_segmentation_accuracy, boundary_precision, boundary_recall, compactness,
    corrected_undersegmentation_error, explained_variation, undersegmentation_error,
};

/// All segmentation-quality metrics for one label map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSuite {
    /// Undersegmentation error (Achanta, 5 % tolerance). Lower is better.
    pub undersegmentation_error: f64,
    /// Corrected undersegmentation error (Neubert–Protzel). Lower is
    /// better.
    pub corrected_use: f64,
    /// Boundary recall at the given tolerance. Higher is better.
    pub boundary_recall: f64,
    /// Boundary precision at the given tolerance. Higher is better.
    pub boundary_precision: f64,
    /// Achievable segmentation accuracy. Higher is better.
    pub asa: f64,
    /// Isoperimetric compactness. Higher is more regular.
    pub compactness: f64,
    /// Explained color variation (`None` when no image was supplied).
    pub explained_variation: Option<f64>,
    /// Boundary tolerance the recall/precision used.
    pub tolerance: usize,
}

impl MetricSuite {
    /// Evaluates every ground-truth metric, plus explained variation when
    /// the source image is provided.
    ///
    /// # Panics
    ///
    /// Panics if the maps (or image) disagree on geometry.
    pub fn evaluate(
        labels: &Plane<u32>,
        ground_truth: &Plane<u32>,
        image: Option<&RgbImage>,
        tolerance: usize,
    ) -> Self {
        MetricSuite {
            undersegmentation_error: undersegmentation_error(labels, ground_truth),
            corrected_use: corrected_undersegmentation_error(labels, ground_truth),
            boundary_recall: boundary_recall(labels, ground_truth, tolerance),
            boundary_precision: boundary_precision(labels, ground_truth, tolerance),
            asa: achievable_segmentation_accuracy(labels, ground_truth),
            compactness: compactness(labels),
            explained_variation: image.map(|img| explained_variation(img, labels)),
            tolerance,
        }
    }
}

impl std::fmt::Display for MetricSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "undersegmentation error  {:.4}", self.undersegmentation_error)?;
        writeln!(f, "corrected USE            {:.4}", self.corrected_use)?;
        writeln!(
            f,
            "boundary recall (tol {})  {:.4}",
            self.tolerance, self.boundary_recall
        )?;
        writeln!(
            f,
            "boundary precision       {:.4}",
            self.boundary_precision
        )?;
        writeln!(f, "ASA                      {:.4}", self.asa)?;
        write!(f, "compactness              {:.4}", self.compactness)?;
        if let Some(ev) = self.explained_variation {
            write!(f, "\nexplained variation      {ev:.4}")?;
        }
        Ok(())
    }
}

/// Mean and sample standard deviation of a metric over a corpus — what a
/// results table should report alongside the mean when the corpus is
/// small.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanStd {
    /// Computes mean ± std over the values.
    pub fn from_values(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)).sqrt()
        };
        MeanStd { mean, std, n }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslic_image::Rgb;

    #[test]
    fn perfect_segmentation_scores_perfectly_everywhere() {
        let gt = Plane::from_fn(16, 16, |x, _| (x / 8) as u32);
        let img = RgbImage::from_fn(16, 16, |x, _| {
            if x < 8 {
                Rgb::new(0, 0, 0)
            } else {
                Rgb::new(255, 255, 255)
            }
        });
        let suite = MetricSuite::evaluate(&gt, &gt, Some(&img), 2);
        assert_eq!(suite.undersegmentation_error, 0.0);
        assert_eq!(suite.corrected_use, 0.0);
        assert_eq!(suite.boundary_recall, 1.0);
        assert_eq!(suite.boundary_precision, 1.0);
        assert_eq!(suite.asa, 1.0);
        assert_eq!(suite.explained_variation, Some(1.0));
    }

    #[test]
    fn image_is_optional() {
        let gt = Plane::filled(8, 8, 0u32);
        let suite = MetricSuite::evaluate(&gt, &gt, None, 2);
        assert_eq!(suite.explained_variation, None);
    }

    #[test]
    fn mean_std_of_known_values() {
        let m = MeanStd::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.mean, 2.5);
        assert!((m.std - 1.2909944).abs() < 1e-6);
        assert_eq!(m.n, 4);
        assert!(m.to_string().contains("2.5000"));
    }

    #[test]
    fn mean_std_degenerate_cases() {
        assert_eq!(MeanStd::from_values(&[]).n, 0);
        let one = MeanStd::from_values(&[7.0]);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.std, 0.0);
    }

    #[test]
    fn display_is_multiline_and_complete() {
        let gt = Plane::from_fn(8, 8, |x, _| (x / 4) as u32);
        let suite = MetricSuite::evaluate(&gt, &gt, None, 1);
        let s = suite.to_string();
        assert!(s.contains("undersegmentation error"));
        assert!(s.contains("ASA"));
        assert!(s.lines().count() >= 6);
        assert!(!s.contains("explained variation"), "no image supplied");
    }
}
