use sslic_image::Plane;

/// Marks every boundary pixel of a label map: a pixel whose label differs
/// from its right or bottom 4-neighbour (1-pixel-wide internal contours).
pub fn boundary_map(labels: &Plane<u32>) -> Plane<bool> {
    let (w, h) = (labels.width(), labels.height());
    Plane::from_fn(w, h, |x, y| {
        let l = labels[(x, y)];
        (x + 1 < w && labels[(x + 1, y)] != l) || (y + 1 < h && labels[(x, y + 1)] != l)
    })
}

/// Boundary recall (Achanta et al.): the fraction of ground-truth boundary
/// pixels with a computed boundary pixel within Chebyshev distance
/// `tolerance` (the paper uses the conventional 2 pixels).
///
/// Returns 1.0 when the ground truth has no boundary at all (nothing to
/// recall).
///
/// # Panics
///
/// Panics if the maps disagree on geometry.
///
/// # Example
///
/// ```
/// use sslic_image::Plane;
/// use sslic_metrics::boundary_recall;
///
/// let gt = Plane::from_fn(12, 12, |x, _| if x < 6 { 0u32 } else { 1 });
/// // A segmentation whose boundary is 2 pixels off still recalls at tol 2…
/// let close = Plane::from_fn(12, 12, |x, _| if x < 8 { 0u32 } else { 1 });
/// assert_eq!(boundary_recall(&close, &gt, 2), 1.0);
/// // …but not at tolerance 1.
/// assert!(boundary_recall(&close, &gt, 1) < 1.0);
/// ```
pub fn boundary_recall(labels: &Plane<u32>, ground_truth: &Plane<u32>, tolerance: usize) -> f64 {
    matched_fraction(ground_truth, labels, tolerance)
}

/// Boundary precision: the fraction of *computed* boundary pixels within
/// `tolerance` of a ground-truth boundary pixel (the dual of
/// [`boundary_recall`]; useful to detect over-segmentation of flat areas).
///
/// Returns 1.0 when the computed map has no boundary.
///
/// # Panics
///
/// Panics if the maps disagree on geometry.
pub fn boundary_precision(
    labels: &Plane<u32>,
    ground_truth: &Plane<u32>,
    tolerance: usize,
) -> f64 {
    matched_fraction(labels, ground_truth, tolerance)
}

/// Fraction of `from`'s boundary pixels that have a boundary pixel of
/// `against` within Chebyshev distance `tolerance`.
fn matched_fraction(from: &Plane<u32>, against: &Plane<u32>, tolerance: usize) -> f64 {
    assert!(
        from.width() == against.width() && from.height() == against.height(),
        "label maps must share geometry"
    );
    let from_b = boundary_map(from);
    let against_b = boundary_map(against);
    let (w, h) = (from.width(), from.height());
    let t = tolerance as isize;
    let mut total = 0u64;
    let mut hit = 0u64;
    for y in 0..h {
        for x in 0..w {
            if !from_b[(x, y)] {
                continue;
            }
            total += 1;
            'search: for dy in -t..=t {
                for dx in -t..=t {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    if nx >= 0
                        && ny >= 0
                        && (nx as usize) < w
                        && (ny as usize) < h
                        && against_b[(nx as usize, ny as usize)]
                    {
                        hit += 1;
                        break 'search;
                    }
                }
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vsplit(w: usize, h: usize, at: usize) -> Plane<u32> {
        Plane::from_fn(w, h, |x, _| if x < at { 0 } else { 1 })
    }

    #[test]
    fn uniform_map_has_no_boundary() {
        let labels = Plane::filled(8, 8, 3u32);
        assert!(boundary_map(&labels).iter().all(|&b| !b));
    }

    #[test]
    fn split_map_boundary_is_single_column() {
        let labels = vsplit(8, 4, 4);
        let b = boundary_map(&labels);
        for y in 0..4 {
            for x in 0..8 {
                assert_eq!(b[(x, y)], x == 3, "boundary only at x=3");
            }
        }
    }

    #[test]
    fn perfect_segmentation_recall_is_one() {
        let gt = vsplit(16, 16, 8);
        assert_eq!(boundary_recall(&gt, &gt, 0), 1.0);
    }

    #[test]
    fn recall_degrades_with_distance_beyond_tolerance() {
        let gt = vsplit(16, 16, 8);
        let off4 = vsplit(16, 16, 12);
        assert_eq!(boundary_recall(&off4, &gt, 2), 0.0);
        assert_eq!(boundary_recall(&off4, &gt, 4), 1.0);
    }

    #[test]
    fn no_gt_boundary_yields_full_recall() {
        let gt = Plane::filled(8, 8, 0u32);
        let labels = vsplit(8, 8, 4);
        assert_eq!(boundary_recall(&labels, &gt, 2), 1.0);
    }

    #[test]
    fn precision_is_dual_of_recall() {
        let gt = vsplit(16, 16, 8);
        // Over-segmented map: many extra boundaries far from GT.
        let over = Plane::from_fn(16, 16, |x, _| (x / 2) as u32);
        let prec = boundary_precision(&over, &gt, 1);
        assert!(prec < 0.5, "most computed boundaries are spurious: {prec}");
        // But recall of the GT boundary is perfect (x=7 boundary exists).
        assert_eq!(boundary_recall(&over, &gt, 1), 1.0);
    }

    #[test]
    fn oversegmentation_keeps_recall_high() {
        // Superpixels nested inside GT regions: every GT boundary is also
        // a superpixel boundary.
        let gt = vsplit(16, 16, 8);
        let sp = Plane::from_fn(16, 16, |x, y| ((x / 4) + 4 * (y / 4)) as u32);
        assert_eq!(boundary_recall(&sp, &gt, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn mismatched_geometry_panics() {
        let a = Plane::filled(8, 8, 0u32);
        let b = Plane::filled(8, 9, 0u32);
        let _ = boundary_recall(&a, &b, 2);
    }
}
