//! Superpixel segmentation quality metrics.
//!
//! The paper evaluates SLIC/S-SLIC with the two standard superpixel metrics
//! of Achanta et al. (TPAMI 2012):
//!
//! * [`undersegmentation_error`] — how much computed superpixels "bleed"
//!   across ground-truth region boundaries (lower is better). The corrected
//!   Neubert–Protzel variant is available as
//!   [`corrected_undersegmentation_error`].
//! * [`boundary_recall`] — the fraction of ground-truth boundary pixels
//!   that lie within a small tolerance of a computed superpixel boundary
//!   (higher is better).
//!
//! Two more metrics round out the suite for the extended analyses:
//! [`achievable_segmentation_accuracy`] (the upper bound on downstream
//! segmentation accuracy) and [`compactness`] (isoperimetric shape
//! regularity).
//!
//! # Example
//!
//! ```
//! use sslic_image::Plane;
//! use sslic_metrics::{boundary_recall, undersegmentation_error};
//!
//! // A perfect segmentation has zero USE and full boundary recall.
//! let gt = Plane::from_fn(16, 16, |x, _| if x < 8 { 0u32 } else { 1 });
//! assert_eq!(undersegmentation_error(&gt, &gt), 0.0);
//! assert_eq!(boundary_recall(&gt, &gt, 2), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod overlap;
mod suite;
mod variation;

pub use boundary::{boundary_map, boundary_precision, boundary_recall};
pub use overlap::{
    achievable_segmentation_accuracy, compactness, corrected_undersegmentation_error,
    undersegmentation_error,
};
pub use suite::{MeanStd, MetricSuite};
pub use variation::explained_variation;
