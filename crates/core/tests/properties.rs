//! Property-based invariants of the segmentation engine: any valid
//! configuration on any image must yield a structurally sound result.

use proptest::prelude::*;

use sslic_core::{Algorithm, DistanceMode, RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_core::subsample::SubsetStrategy;
use sslic_image::synthetic::SyntheticImage;

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::SlicCpa),
        Just(Algorithm::SlicPpa),
        (1u32..4, arb_strategy())
            .prop_map(|(p, strategy)| Algorithm::SSlicPpa { subsets: p, strategy }),
        (1u32..4).prop_map(|p| Algorithm::SSlicCpa { subsets: p }),
    ]
}

fn arb_strategy() -> impl Strategy<Value = SubsetStrategy> {
    prop_oneof![
        Just(SubsetStrategy::Interleaved),
        Just(SubsetStrategy::Checkerboard),
        Just(SubsetStrategy::Bands),
    ]
}

fn arb_distance_mode() -> impl Strategy<Value = DistanceMode> {
    prop_oneof![
        Just(DistanceMode::Float),
        (4u8..13).prop_map(DistanceMode::quantized),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_configuration_yields_a_structurally_valid_segmentation(
        seed in 0u64..1000,
        k in 8usize..80,
        iterations in 1u32..6,
        algorithm in arb_algorithm(),
        mode in arb_distance_mode(),
        m in 1.0f32..40.0,
        connectivity in any::<bool>(),
    ) {
        let img = SyntheticImage::builder(48, 36).seed(seed).regions(5).build();
        let params = SlicParams::builder(k)
            .compactness(m)
            .iterations(iterations)
            .enforce_connectivity(connectivity)
            .build();
        let seg = Segmenter::new(params, algorithm)
            .with_distance_mode(mode)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());

        // Geometry is preserved.
        prop_assert_eq!(seg.labels().width(), 48);
        prop_assert_eq!(seg.labels().height(), 36);
        // Every label addresses a real cluster.
        let count = seg.cluster_count() as u32;
        prop_assert!(count > 0);
        prop_assert!(seg.labels().iter().all(|&l| l < count));
        // Centers stay inside the image.
        for c in seg.clusters() {
            prop_assert!((0.0..48.0).contains(&c.x), "x = {}", c.x);
            prop_assert!((0.0..36.0).contains(&c.y), "y = {}", c.y);
        }
        // The engine ran the requested number of steps (no threshold set).
        prop_assert_eq!(seg.iterations_run(), iterations);
        prop_assert_eq!(seg.counters().sub_iterations, iterations as u64);
        // Counters are self-consistent: PPA-style passes do 9 distance
        // calcs per assigned pixel, CPA visits are positive.
        prop_assert!(seg.counters().distance_calcs > 0);
    }

    #[test]
    fn determinism_across_repeated_runs(
        seed in 0u64..200,
        algorithm in arb_algorithm(),
    ) {
        let img = SyntheticImage::builder(40, 32).seed(seed).regions(4).build();
        let params = SlicParams::builder(24).iterations(3).build();
        let seg = Segmenter::new(params, algorithm);
        let a = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let b = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        prop_assert_eq!(a.labels(), b.labels());
        prop_assert_eq!(a.clusters(), b.clusters());
        prop_assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn preemption_never_breaks_validity(
        seed in 0u64..200,
        threshold in 0.0f32..3.0,
    ) {
        let img = SyntheticImage::builder(40, 32).seed(seed).regions(4).build();
        let params = SlicParams::builder(24).iterations(6).build();
        let seg = Segmenter::slic_ppa(params)
            .with_preemption(threshold)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let count = seg.cluster_count() as u32;
        prop_assert!(seg.labels().iter().all(|&l| l < count));
        prop_assert!(seg.frozen_clusters() <= seg.cluster_count());
    }

    #[test]
    fn warm_start_accepts_any_prior_result(
        seed_a in 0u64..100,
        seed_b in 0u64..100,
    ) {
        let frame_a = SyntheticImage::builder(40, 32).seed(seed_a).regions(4).build();
        let frame_b = SyntheticImage::builder(40, 32).seed(seed_b).regions(4).build();
        let params = SlicParams::builder(24).iterations(2).build();
        let seg = Segmenter::sslic_ppa(params, 2);
        let first = seg.run(SegmentRequest::Rgb(&frame_a.rgb), &RunOptions::new());
        let second = seg.run(
            SegmentRequest::Rgb(&frame_b.rgb),
            &RunOptions::new().with_warm_start(first.clusters()),
        );
        let count = second.cluster_count() as u32;
        prop_assert_eq!(second.cluster_count(), first.cluster_count());
        prop_assert!(second.labels().iter().all(|&l| l < count));
    }

    #[test]
    fn quantized_bits_never_panic_or_corrupt(
        bits in 1u8..16,
        seed in 0u64..100,
    ) {
        let img = SyntheticImage::builder(40, 32).seed(seed).regions(4).build();
        let params = SlicParams::builder(24).iterations(2).build();
        let seg = Segmenter::sslic_ppa(params, 2)
            .with_distance_mode(DistanceMode::quantized(bits))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let count = seg.cluster_count() as u32;
        prop_assert!(seg.labels().iter().all(|&l| l < count));
    }
}
