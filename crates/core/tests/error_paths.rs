//! Exhaustive error-path coverage: every [`ParamError`], [`SegmentError`],
//! and [`FleetError`] variant is reachable through the fallible entry
//! points, the panicking twins carry the same message, and a failed
//! `run_into` never writes a single word of partial output.

use sslic_core::{
    FleetConfig, FleetError, Kernel, ParamError, RunOptions, SegmentError, SegmentRequest,
    Segmenter, SegmenterSession, SessionFleet, SlicParams, StreamId,
};
use sslic_image::synthetic::SyntheticImage;
use sslic_image::Plane;

fn scene(w: usize, h: usize) -> SyntheticImage {
    SyntheticImage::builder(w, h).seed(3).regions(4).build()
}

#[test]
fn every_param_error_variant_is_reachable_via_try_build() {
    assert_eq!(
        SlicParams::builder(0).try_build().unwrap_err(),
        ParamError::ZeroSuperpixels
    );
    assert_eq!(
        SlicParams::builder(100).compactness(0.0).try_build().unwrap_err(),
        ParamError::InvalidCompactness
    );
    assert_eq!(
        SlicParams::builder(100).compactness(-3.0).try_build().unwrap_err(),
        ParamError::InvalidCompactness
    );
    assert_eq!(
        SlicParams::builder(100)
            .compactness(f32::NAN)
            .try_build()
            .unwrap_err(),
        ParamError::InvalidCompactness
    );
    assert_eq!(
        SlicParams::builder(100)
            .compactness(f32::INFINITY)
            .try_build()
            .unwrap_err(),
        ParamError::InvalidCompactness
    );
    assert_eq!(
        SlicParams::builder(100).iterations(0).try_build().unwrap_err(),
        ParamError::ZeroIterations
    );
    assert_eq!(
        SlicParams::builder(100)
            .min_region_divisor(0)
            .try_build()
            .unwrap_err(),
        ParamError::ZeroMinRegionDivisor
    );
    assert_eq!(
        SlicParams::builder(100).threads(0).try_build().unwrap_err(),
        ParamError::ZeroThreads
    );
    // The happy path still builds.
    assert!(SlicParams::builder(100).try_build().is_ok());
}

#[test]
fn unknown_kernel_is_reachable_via_from_str() {
    // `Kernel` parses only the canonical lowercase names — everything
    // else (the CLI's `--kernel bogus`, trailing whitespace, wrong case)
    // lands on the dedicated variant.
    for bad in ["bogus", "", "Swar", "SCALAR", "auto ", "simd"] {
        assert_eq!(
            bad.parse::<Kernel>().unwrap_err(),
            ParamError::UnknownKernel,
            "{bad:?} must be rejected"
        );
    }
    assert_eq!("swar".parse::<Kernel>().unwrap(), Kernel::Swar);
}

#[test]
fn param_errors_display_distinct_messages() {
    let variants = [
        ParamError::ZeroSuperpixels,
        ParamError::InvalidCompactness,
        ParamError::ZeroIterations,
        ParamError::ZeroMinRegionDivisor,
        ParamError::ZeroThreads,
        ParamError::UnknownKernel,
    ];
    let messages: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
    for (i, m) in messages.iter().enumerate() {
        assert!(!m.is_empty());
        for other in &messages[i + 1..] {
            assert_ne!(m, other, "messages must distinguish the variants");
        }
    }
}

#[test]
fn empty_frame_is_reported_by_try_new() {
    let seg = Segmenter::sslic_ppa(SlicParams::builder(60).iterations(2).build(), 2);
    for (w, h) in [(0usize, 32usize), (32, 0), (0, 0)] {
        let err = SegmenterSession::try_new(seg.clone(), w, h).unwrap_err();
        assert_eq!(err, SegmentError::EmptyFrame { width: w, height: h });
        assert!(err.to_string().contains("empty"));
    }
}

#[test]
fn geometry_mismatch_is_reported_for_request_and_output() {
    let seg = Segmenter::sslic_ppa(SlicParams::builder(60).iterations(2).build(), 2);
    let mut session = seg.session(64, 48);

    // A wrong-sized request, internal target.
    let wrong = scene(32, 24);
    let err = session
        .try_run(SegmentRequest::Rgb(&wrong.rgb), &RunOptions::new())
        .unwrap_err();
    assert_eq!(
        err,
        SegmentError::GeometryMismatch {
            expected: (64, 48),
            actual: (32, 24),
        }
    );

    // A right-sized request but a wrong-sized caller plane.
    let right = scene(64, 48);
    let mut small = Plane::filled(64, 47, 0u32);
    let err = session
        .try_run_into(SegmentRequest::Rgb(&right.rgb), &RunOptions::new(), &mut small)
        .unwrap_err();
    assert_eq!(
        err,
        SegmentError::GeometryMismatch {
            expected: (64, 48),
            actual: (64, 47),
        }
    );
}

#[test]
fn warm_start_length_is_validated() {
    let seg = Segmenter::sslic_ppa(SlicParams::builder(60).iterations(2).build(), 2);
    let mut session = seg.session(64, 48);
    let img = scene(64, 48);
    // Learn the true cluster count from a clean run.
    session.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
    let k = session.clusters().len();
    let mut out = Plane::filled(64, 48, 0u32);

    let bogus = vec![sslic_core::Cluster::default(); k + 1];
    let err = session
        .try_run_into(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_warm_start(&bogus),
            &mut out,
        )
        .unwrap_err();
    assert_eq!(
        err,
        SegmentError::WarmStartLen {
            expected: k,
            actual: k + 1,
        }
    );
}

#[test]
fn failed_run_into_writes_no_partial_output() {
    const SENTINEL: u32 = 0xDEAD_BEEF;
    let seg = Segmenter::sslic_ppa(SlicParams::builder(60).iterations(2).build(), 2);
    let mut session = seg.session(64, 48);
    let img = scene(64, 48);
    session.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
    let k = session.clusters().len();

    // Wrong-geometry request: the sentinel plane must stay untouched.
    let wrong = scene(32, 24);
    let mut out = Plane::filled(64, 48, SENTINEL);
    assert!(session
        .try_run_into(SegmentRequest::Rgb(&wrong.rgb), &RunOptions::new(), &mut out)
        .is_err());
    assert!(
        out.as_slice().iter().all(|&v| v == SENTINEL),
        "geometry mismatch must not touch the output plane"
    );

    // Wrong warm-start length: rejected before any pixel work too.
    let bogus = vec![sslic_core::Cluster::default(); k + 3];
    assert!(session
        .try_run_into(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_warm_start(&bogus),
            &mut out,
        )
        .is_err());
    assert!(
        out.as_slice().iter().all(|&v| v == SENTINEL),
        "warm-start rejection must not touch the output plane"
    );

    // The session itself stays serviceable after the failures.
    let report = session
        .try_run_into(SegmentRequest::Rgb(&img.rgb), &RunOptions::new(), &mut out)
        .expect("session must survive rejected requests");
    assert!(report.iterations_run() > 0);
    assert!(out.as_slice().iter().any(|&v| v != SENTINEL));
}

#[test]
fn every_fleet_error_variant_is_reachable() {
    let seg = Segmenter::sslic_ppa(SlicParams::builder(60).iterations(2).build(), 2);
    let img = scene(64, 48);

    // ZeroSlots / ZeroWorkers fall out of builder validation.
    assert_eq!(
        FleetConfig::builder().with_slots(0).try_build().unwrap_err(),
        FleetError::ZeroSlots
    );
    assert_eq!(
        FleetConfig::builder()
            .with_frame_workers(0)
            .try_build()
            .unwrap_err(),
        FleetError::ZeroWorkers
    );

    // Saturated: a 1-slot fleet refuses a second live stream.
    let cfg = FleetConfig::builder().with_slots(1).with_queue_depth(1).build();
    let mut fleet = SessionFleet::new(&seg, 64, 48, cfg);
    fleet.run(StreamId(0), SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
    let err = fleet
        .try_run(StreamId(1), SegmentRequest::Rgb(&img.rgb), &RunOptions::new())
        .unwrap_err();
    assert_eq!(
        err,
        SegmentError::Fleet(FleetError::Saturated { streams: 1, slots: 1 })
    );

    // QueueFull: the bounded queue rejects past its configured depth.
    assert!(fleet.try_enqueue(StreamId(1), img.rgb.clone()).is_ok());
    let err = fleet.try_enqueue(StreamId(2), img.rgb.clone()).unwrap_err();
    assert_eq!(err, SegmentError::Fleet(FleetError::QueueFull { depth: 1 }));

    // Both rejections are observable in the fleet stats.
    assert_eq!(fleet.stats().rejected, 2);

    // And the shared error hierarchy still reaches the non-fleet variants
    // through fleet entry points: bad geometry at construction and
    // per-frame.
    let err = SessionFleet::try_new(&seg, 0, 48, FleetConfig::default()).unwrap_err();
    assert_eq!(err, SegmentError::EmptyFrame { width: 0, height: 48 });
    let wrong = scene(32, 24);
    let err = fleet.try_enqueue(StreamId(9), wrong.rgb.clone()).unwrap_err();
    assert_eq!(
        err,
        SegmentError::GeometryMismatch {
            expected: (64, 48),
            actual: (32, 24),
        }
    );
}

#[test]
fn fleet_errors_display_distinct_messages() {
    let variants = [
        FleetError::Saturated { streams: 2, slots: 2 },
        FleetError::QueueFull { depth: 4 },
        FleetError::ZeroSlots,
        FleetError::ZeroWorkers,
    ];
    let messages: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
    for (i, m) in messages.iter().enumerate() {
        assert!(!m.is_empty());
        for other in &messages[i + 1..] {
            assert_ne!(m, other, "messages must distinguish the variants");
        }
    }
    // The unified hierarchy prefixes the fleet condition, so a
    // SegmentError::Fleet message is distinct from every other
    // SegmentError variant's text.
    let folded = SegmentError::Fleet(FleetError::ZeroSlots).to_string();
    assert!(folded.starts_with("fleet: "));
    assert!(folded.contains("at least one slot"));
}

#[test]
fn fleet_panicking_twin_carries_the_typed_message() {
    let seg = Segmenter::sslic_ppa(SlicParams::builder(60).iterations(2).build(), 2);
    let img = scene(64, 48);
    let result = std::panic::catch_unwind(|| {
        let mut fleet = SessionFleet::new(&seg, 64, 48, FleetConfig::default());
        fleet.run(StreamId(0), SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        fleet.run(StreamId(1), SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
    });
    let payload = result.unwrap_err();
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    let typed = SegmentError::Fleet(FleetError::Saturated { streams: 1, slots: 1 });
    assert!(
        msg.contains(&typed.to_string()),
        "panic message {msg:?} must carry the typed error text"
    );
}

#[test]
fn panicking_twins_carry_the_typed_message() {
    let seg = Segmenter::sslic_ppa(SlicParams::builder(60).iterations(2).build(), 2);
    let result = std::panic::catch_unwind(|| {
        let mut session = seg.session(64, 48);
        let wrong = scene(32, 24);
        session.run(SegmentRequest::Rgb(&wrong.rgb), &RunOptions::new());
    });
    let payload = result.unwrap_err();
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    let typed = SegmentError::GeometryMismatch {
        expected: (64, 48),
        actual: (32, 24),
    };
    assert!(
        msg.contains(&typed.to_string()),
        "panic message {msg:?} must carry the typed error text"
    );
}
