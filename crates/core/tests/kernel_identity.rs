//! Scalar-vs-SWAR bit-identity: the packed fixed-point assign kernel
//! must reproduce the scalar reference loop label-for-label (and
//! counter-for-counter) on every eligible configuration — any size, any
//! parameter set, any thread count, warm or cold, with or without
//! preemption and injected faults. The property runs both kernels
//! explicitly forced, so a silently wrong `Auto` resolution cannot hide
//! a divergence.

use proptest::prelude::*;

use sslic_core::subsample::SubsetStrategy;
use sslic_core::{
    Cluster, DistanceMode, Kernel, RunOptions, SegmentRequest, Segmentation, Segmenter,
    SlicParams, StepFaults,
};
use sslic_image::synthetic::SyntheticImage;

/// Deterministic center corruption at every serial sync point — the same
/// bytes hit both kernels' runs, so their outputs must still agree.
struct NudgeCenters;

impl StepFaults for NudgeCenters {
    fn corrupt_centers(&self, step: u32, clusters: &mut [Cluster]) {
        if let Some(c) = clusters.get_mut(step as usize % clusters.len().max(1)) {
            c.l += 7.5;
            c.x += 1.25;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_forced(
    kernel: Kernel,
    img: &SyntheticImage,
    k: usize,
    m: f32,
    iterations: u32,
    subsets: u32,
    strategy: SubsetStrategy,
    bits: u8,
    threads: usize,
    preempt: Option<f32>,
    warm: Option<&[Cluster]>,
    faults: bool,
) -> Segmentation {
    let params = SlicParams::builder(k)
        .compactness(m)
        .iterations(iterations)
        .threads(threads)
        .kernel(kernel)
        .build();
    let mut seg = Segmenter::sslic_ppa(params, subsets)
        .with_subset_strategy(strategy)
        .with_distance_mode(DistanceMode::quantized(bits));
    if let Some(t) = preempt {
        seg = seg.with_preemption(t);
    }
    let mut options = RunOptions::new();
    if let Some(clusters) = warm {
        options = options.with_warm_start(clusters);
    }
    if faults {
        options = options.with_faults(&NudgeCenters);
    }
    seg.run(SegmentRequest::Rgb(&img.rgb), &options)
}

fn arb_strategy() -> impl Strategy<Value = SubsetStrategy> {
    prop_oneof![
        Just(SubsetStrategy::Interleaved),
        Just(SubsetStrategy::Checkerboard),
        Just(SubsetStrategy::Bands),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn swar_is_bit_identical_to_scalar_on_any_eligible_config(
        seed in 0u64..1000,
        w in 17usize..97,
        h in 9usize..65,
        k in 8usize..80,
        m in 1.0f32..40.0,
        iterations in 1u32..6,
        subsets in 1u32..4,
        strategy in arb_strategy(),
        bits in 4u8..13,
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
        preempt in prop_oneof![Just(None), (0.1f32..2.0).prop_map(Some)],
        faults in any::<bool>(),
    ) {
        let img = SyntheticImage::builder(w, h).seed(seed).regions(5).build();
        let scalar = run_forced(
            Kernel::Scalar, &img, k, m, iterations, subsets, strategy, bits,
            threads, preempt, None, faults,
        );
        let swar = run_forced(
            Kernel::Swar, &img, k, m, iterations, subsets, strategy, bits,
            threads, preempt, None, faults,
        );
        // The forced requests resolved to the two distinct backends...
        prop_assert_eq!(scalar.kernel(), Kernel::Scalar);
        prop_assert_eq!(swar.kernel(), Kernel::Swar);
        // ...and every observable output is byte-equal.
        prop_assert_eq!(scalar.labels(), swar.labels());
        prop_assert_eq!(scalar.clusters(), swar.clusters());
        prop_assert_eq!(scalar.counters(), swar.counters());
        prop_assert_eq!(scalar.iterations_run(), swar.iterations_run());
    }

    #[test]
    fn warm_started_swar_matches_warm_started_scalar(
        seed_a in 0u64..200,
        seed_b in 0u64..200,
        k in 8usize..60,
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        // Warm starts change which centers the very first assign sees —
        // both kernels must track them identically.
        let frame_a = SyntheticImage::builder(56, 40).seed(seed_a).regions(4).build();
        let frame_b = SyntheticImage::builder(56, 40).seed(seed_b).regions(4).build();
        let cold = run_forced(
            Kernel::Scalar, &frame_a, k, 10.0, 3, 2,
            SubsetStrategy::Interleaved, 8, threads, None, None, false,
        );
        let scalar = run_forced(
            Kernel::Scalar, &frame_b, k, 10.0, 2, 2,
            SubsetStrategy::Interleaved, 8, threads, None, Some(cold.clusters()), false,
        );
        let swar = run_forced(
            Kernel::Swar, &frame_b, k, 10.0, 2, 2,
            SubsetStrategy::Interleaved, 8, threads, None, Some(cold.clusters()), false,
        );
        prop_assert_eq!(scalar.labels(), swar.labels());
        prop_assert_eq!(scalar.clusters(), swar.clusters());
        prop_assert_eq!(scalar.counters(), swar.counters());
    }

    #[test]
    fn auto_resolves_to_swar_and_matches_both_forced_kernels(
        seed in 0u64..300,
        k in 8usize..60,
        bits in 4u8..13,
    ) {
        let img = SyntheticImage::builder(48, 36).seed(seed).regions(5).build();
        let auto = run_forced(
            Kernel::Auto, &img, k, 10.0, 3, 2,
            SubsetStrategy::Interleaved, bits, 1, None, None, false,
        );
        let scalar = run_forced(
            Kernel::Scalar, &img, k, 10.0, 3, 2,
            SubsetStrategy::Interleaved, bits, 1, None, None, false,
        );
        // Auto prefers the SWAR backend on the eligible configuration —
        // and the report says so.
        prop_assert_eq!(auto.kernel(), Kernel::Swar);
        prop_assert_eq!(auto.labels(), scalar.labels());
        prop_assert_eq!(auto.clusters(), scalar.clusters());
    }

    #[test]
    fn float_mode_resolves_to_scalar_even_when_swar_is_forced(
        seed in 0u64..100,
        k in 8usize..60,
    ) {
        // No quantized datapath → no SWAR tables; the forced request
        // falls back gracefully and reports the backend that actually ran.
        let img = SyntheticImage::builder(48, 36).seed(seed).regions(5).build();
        let params = SlicParams::builder(k)
            .iterations(3)
            .kernel(Kernel::Swar)
            .build();
        let float_run = Segmenter::sslic_ppa(params, 2)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        prop_assert_eq!(float_run.kernel(), Kernel::Scalar);
    }
}
