//! Trace/counter consistency: the events a traced run emits must account
//! for the run's counters exactly — against the closed-form PPA oracle,
//! and by conservation (band + step events sum to the run totals). Also
//! pins the determinism contract on the rendered trace bytes and the
//! structural validity of the Chrome trace-event output.

use sslic_core::instrument::{predict_ppa_distance_calcs, RunCounters};
use sslic_core::obs::{json, Recorder};
use sslic_core::subsample::SubsetStrategy;
use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_image::synthetic::SyntheticImage;

fn scene() -> SyntheticImage {
    SyntheticImage::builder(96, 72).seed(11).regions(5).build()
}

fn traced_run(threads: usize, subsets: u32, iterations: u32) -> (Recorder, RunCounters) {
    let rec = Recorder::deterministic();
    let params = SlicParams::builder(80)
        .iterations(iterations)
        .threads(threads)
        .build();
    let out = Segmenter::sslic_ppa(params, subsets).run(
        SegmentRequest::Rgb(&scene().rgb),
        &RunOptions::new().with_recorder(&rec),
    );
    (rec, *out.counters())
}

#[test]
fn traced_distance_events_match_the_ppa_oracle_exactly() {
    let (rec, counters) = traced_run(2, 2, 6);
    let from_events: u64 = rec
        .events()
        .iter()
        .filter(|e| e.name == "core.assign.band")
        .map(|e| e.attr_u64("distance_calcs"))
        .sum();
    let oracle = predict_ppa_distance_calcs(96, 72, 6, 2, SubsetStrategy::default());
    assert_eq!(from_events, oracle, "band events vs closed form");
    assert_eq!(counters.distance_calcs, oracle, "run counters vs closed form");
}

#[test]
fn band_and_step_events_conserve_the_run_counters() {
    // Every counter field must be fully attributed: summing the per-band
    // and per-step counter events reconstructs the final RunCounters with
    // nothing lost and nothing double-counted.
    for (threads, subsets, iterations) in [(1usize, 2u32, 4u32), (3, 3, 5)] {
        let (rec, counters) = traced_run(threads, subsets, iterations);
        let mut from_events = RunCounters::default();
        for e in rec.events() {
            match e.name {
                "core.assign.band" | "core.assign.step" | "core.update.band"
                | "core.update.step" => {
                    from_events.distance_calcs += e.attr_u64("distance_calcs");
                    from_events.pixel_color_reads += e.attr_u64("pixel_color_reads");
                    from_events.dist_buffer_reads += e.attr_u64("dist_buffer_reads");
                    from_events.dist_buffer_writes += e.attr_u64("dist_buffer_writes");
                    from_events.label_reads += e.attr_u64("label_reads");
                    from_events.label_writes += e.attr_u64("label_writes");
                    from_events.center_reads += e.attr_u64("center_reads");
                    from_events.sigma_updates += e.attr_u64("sigma_updates");
                    from_events.center_updates += e.attr_u64("center_updates");
                }
                "core.step" => {
                    from_events.sub_iterations += e.attr_u64("sub_iterations");
                }
                _ => {}
            }
        }
        assert_eq!(
            from_events, counters,
            "event sum vs run counters at threads={threads} subsets={subsets}"
        );
    }
}

#[test]
fn deterministic_traces_are_byte_identical_across_threads_and_repeats() {
    let (rec1, _) = traced_run(1, 2, 5);
    let (rec1b, _) = traced_run(1, 2, 5);
    let (rec4, _) = traced_run(4, 2, 5);
    let (rec8, _) = traced_run(8, 2, 5);
    let jsonl = rec1.to_jsonl();
    assert_eq!(jsonl, rec1b.to_jsonl(), "repeat run");
    assert_eq!(jsonl, rec4.to_jsonl(), "4 threads");
    assert_eq!(jsonl, rec8.to_jsonl(), "8 threads");
    let chrome = rec1.to_chrome_trace();
    assert_eq!(chrome, rec4.to_chrome_trace(), "chrome, 4 threads");
    assert!(!jsonl.is_empty());
}

#[test]
fn recording_does_not_change_the_segmentation() {
    let params = SlicParams::builder(80).iterations(5).build();
    let seg = Segmenter::sslic_ppa(params, 2);
    let plain = seg.run(SegmentRequest::Rgb(&scene().rgb), &RunOptions::new());
    let rec = Recorder::deterministic();
    let traced = seg.run(
        SegmentRequest::Rgb(&scene().rgb),
        &RunOptions::new().with_recorder(&rec),
    );
    assert_eq!(plain.labels(), traced.labels());
    assert_eq!(plain.counters(), traced.counters());
}

#[test]
fn chrome_trace_is_structurally_valid_trace_event_json() {
    let (rec, _) = traced_run(2, 2, 4);
    let doc = json::parse(&rec.to_chrome_trace()).expect("chrome trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut begins = 0i64;
    let mut ends = 0i64;
    for e in events {
        let ph = e.get("ph").and_then(json::Json::as_str).expect("ph");
        assert!(
            matches!(ph, "B" | "E" | "i" | "C"),
            "unexpected phase {ph:?}"
        );
        assert!(e.get("name").and_then(json::Json::as_str).is_some());
        assert!(e.get("ts").and_then(json::Json::as_u64).is_some());
        assert!(e.get("pid").and_then(json::Json::as_u64).is_some());
        assert!(e.get("tid").and_then(json::Json::as_u64).is_some());
        match ph {
            "B" => begins += 1,
            "E" => ends += 1,
            "i" => assert_eq!(e.get("s").and_then(json::Json::as_str), Some("t")),
            _ => {}
        }
    }
    assert_eq!(begins, ends, "every span begin has a matching end");
    // ts values (recorder sequence numbers) are strictly increasing.
    let ts: Vec<u64> = events
        .iter()
        .map(|e| e.get("ts").and_then(json::Json::as_u64).unwrap_or(0))
        .collect();
    assert!(ts.windows(2).all(|w| w[0] < w[1]), "monotonic timestamps");
}

#[test]
fn run_span_wraps_the_whole_trace() {
    let (rec, _) = traced_run(1, 2, 3);
    let events = rec.events();
    assert_eq!(events.first().map(|e| e.name), Some("core.run"));
    // The last events are run-level (phases, then span end).
    assert_eq!(events.last().map(|e| e.name), Some("core.run"));
    let steps = events.iter().filter(|e| e.name == "core.step").count();
    assert_eq!(steps, 2 * 3, "begin+end per executed step");
}
