//! Session-vs-one-shot bit identity: `SegmenterSession::run_into` must
//! reproduce `Segmenter::run` exactly — same labels, same counters — for
//! every algorithm and thread count, pinned against the same checksums the
//! thread-determinism suite carries so a drift in either entry point fails
//! loudly against an absolute reference, not just against each other.

use sslic_core::{
    DistanceMode, RunOptions, SegmentError, SegmentRequest, Segmenter, SlicParams,
};
use sslic_image::synthetic::SyntheticImage;
use sslic_image::Plane;

const THREADS: [usize; 3] = [1, 2, 8];

/// FNV-1a over the label words (shared with the determinism suites).
fn label_checksum(labels: &Plane<u32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &l in labels.as_slice() {
        h ^= l as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fixed_scene() -> SyntheticImage {
    SyntheticImage::builder(64, 48).seed(2024).regions(5).build()
}

/// The checksums pinned by `thread_determinism.rs` for the fixed scene
/// (K=60, 5 iterations, 2 subsets): the session path must land on the
/// same values.
const PINNED_PPA_QUANTIZED: u64 = 0x8a1b_9b35_ba38_48cc;
const PINNED_PPA_FLOAT: u64 = 0xa416_4089_577b_ac01;
const PINNED_CPA_FLOAT: u64 = 0x1de9_c5e4_8cb9_bffb;
const PINNED_CPA_QUANTIZED: u64 = 0x1f96_3143_2ca2_8643;

fn segmenter(threads: usize, cpa: bool, quantized: bool) -> Segmenter {
    let params = SlicParams::builder(60)
        .iterations(5)
        .threads(threads)
        .build();
    let seg = if cpa {
        Segmenter::sslic_cpa(params, 2)
    } else {
        Segmenter::sslic_ppa(params, 2)
    };
    if quantized {
        seg.with_distance_mode(DistanceMode::quantized(8))
    } else {
        seg
    }
}

fn assert_session_matches_pin(cpa: bool, quantized: bool, pinned: u64) {
    let scene = fixed_scene();
    for t in THREADS {
        let seg = segmenter(t, cpa, quantized);
        let one_shot = seg.run(SegmentRequest::Rgb(&scene.rgb), &RunOptions::new());
        let mut session = seg.session(64, 48);
        let mut out = Plane::filled(64, 48, 0u32);
        // Several frames through the same scratch: reuse must not leak
        // state into a cold-started frame.
        for frame in 0..3 {
            let report =
                session.run_into(SegmentRequest::Rgb(&scene.rgb), &RunOptions::new(), &mut out);
            assert_eq!(
                label_checksum(&out),
                pinned,
                "session frame {frame} at {t} threads (cpa={cpa}, quantized={quantized}) \
                 drifted from the pinned labels"
            );
            assert_eq!(out.as_slice(), one_shot.labels().as_slice());
            assert_eq!(report.counters(), one_shot.counters());
        }
    }
}

#[test]
fn session_ppa_quantized_matches_the_pin_at_every_thread_count() {
    assert_session_matches_pin(false, true, PINNED_PPA_QUANTIZED);
}

#[test]
fn session_ppa_float_matches_the_pin_at_every_thread_count() {
    assert_session_matches_pin(false, false, PINNED_PPA_FLOAT);
}

#[test]
fn session_cpa_float_matches_the_pin_at_every_thread_count() {
    assert_session_matches_pin(true, false, PINNED_CPA_FLOAT);
}

#[test]
fn session_cpa_quantized_matches_the_pin_at_every_thread_count() {
    assert_session_matches_pin(true, true, PINNED_CPA_QUANTIZED);
}

#[test]
fn plain_slic_sessions_match_one_shot_at_every_thread_count() {
    // The non-subsampled variants have no standalone pin; pin them
    // relatively (session == one-shot) with counters included.
    let scene = fixed_scene();
    for cpa in [false, true] {
        for t in THREADS {
            let params = SlicParams::builder(60)
                .iterations(5)
                .threads(t)
                .build();
            let seg = if cpa {
                Segmenter::slic(params)
            } else {
                Segmenter::slic_ppa(params)
            };
            let one_shot = seg.run(SegmentRequest::Rgb(&scene.rgb), &RunOptions::new());
            let mut session = seg.session(64, 48);
            let mut out = Plane::filled(64, 48, 0u32);
            session.run_into(SegmentRequest::Rgb(&scene.rgb), &RunOptions::new(), &mut out);
            assert_eq!(out.as_slice(), one_shot.labels().as_slice(), "cpa={cpa} t={t}");
        }
    }
}

#[test]
fn geometry_change_is_a_typed_error() {
    let seg = segmenter(2, false, false);
    let mut session = seg.session(64, 48);
    let scene = fixed_scene();
    session.run(SegmentRequest::Rgb(&scene.rgb), &RunOptions::new());
    // The camera "switches resolution": the session refuses rather than
    // resegmenting through mis-sized scratch.
    let smaller = SyntheticImage::builder(32, 24).seed(7).regions(3).build();
    let err = session
        .try_run(SegmentRequest::Rgb(&smaller.rgb), &RunOptions::new())
        .unwrap_err();
    assert_eq!(
        err,
        SegmentError::GeometryMismatch {
            expected: (64, 48),
            actual: (32, 24),
        }
    );
    // The session stays usable for correctly-sized frames afterwards.
    let report = session
        .try_run(SegmentRequest::Rgb(&scene.rgb), &RunOptions::new())
        .expect("session survives a rejected frame");
    assert!(report.iterations_run() > 0);
}
