//! Thread-count invariance: the banded parallel engine must produce
//! bit-identical labels for every thread count, pinned by checksums on a
//! fixed scene so any drift (in the band layout, the reduction order, or
//! the accumulation itself) fails loudly. Runs under the workspace's
//! overflow-checked test profile.

use sslic_core::{DistanceMode, Kernel, RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_image::synthetic::SyntheticImage;
use sslic_image::Plane;

/// The thread counts the determinism contract is pinned over: serial, an
/// even band split, an uneven one, and more workers than most heights'
/// bands-per-worker.
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// FNV-1a over the label words (the digest the fault regression suite
/// also pins).
fn label_checksum(labels: &Plane<u32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &l in labels.as_slice() {
        h ^= l as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fixed_scene() -> SyntheticImage {
    SyntheticImage::builder(64, 48).seed(2024).regions(5).build()
}

fn checksum_at(threads: usize, cpa: bool, quantized: bool) -> u64 {
    checksum_with_kernel(threads, cpa, quantized, Kernel::Auto)
}

fn checksum_with_kernel(threads: usize, cpa: bool, quantized: bool, kernel: Kernel) -> u64 {
    let params = SlicParams::builder(60)
        .iterations(5)
        .threads(threads)
        .kernel(kernel)
        .build();
    let seg = if cpa {
        Segmenter::sslic_cpa(params, 2)
    } else {
        Segmenter::sslic_ppa(params, 2)
    };
    let seg = if quantized {
        seg.with_distance_mode(DistanceMode::quantized(8))
    } else {
        seg
    };
    let out = seg.run(SegmentRequest::Rgb(&fixed_scene().rgb), &RunOptions::new());
    label_checksum(out.labels())
}

/// Same scene and configuration as the fault crate's pinned regression —
/// the two suites deliberately share this value.
const PINNED_PPA_QUANTIZED: u64 = 0x8a1b_9b35_ba38_48cc;
const PINNED_PPA_FLOAT: u64 = 0xa416_4089_577b_ac01;
const PINNED_CPA_FLOAT: u64 = 0x1de9_c5e4_8cb9_bffb;
const PINNED_CPA_QUANTIZED: u64 = 0x1f96_3143_2ca2_8643;

#[test]
fn ppa_quantized_is_pinned_for_every_thread_count() {
    for t in THREADS {
        let sum = checksum_at(t, false, true);
        assert_eq!(
            sum, PINNED_PPA_QUANTIZED,
            "PPA quantized at {t} threads drifted: got {sum:#018x}"
        );
    }
}

#[test]
fn ppa_float_is_pinned_for_every_thread_count() {
    for t in THREADS {
        let sum = checksum_at(t, false, false);
        assert_eq!(
            sum, PINNED_PPA_FLOAT,
            "PPA float at {t} threads drifted: got {sum:#018x}"
        );
    }
}

#[test]
fn cpa_float_is_pinned_for_every_thread_count() {
    for t in THREADS {
        let sum = checksum_at(t, true, false);
        assert_eq!(
            sum, PINNED_CPA_FLOAT,
            "CPA float at {t} threads drifted: got {sum:#018x}"
        );
    }
}

#[test]
fn cpa_quantized_is_pinned_for_every_thread_count() {
    for t in THREADS {
        let sum = checksum_at(t, true, true);
        assert_eq!(
            sum, PINNED_CPA_QUANTIZED,
            "CPA quantized at {t} threads drifted: got {sum:#018x}"
        );
    }
}

#[test]
fn forced_kernels_match_the_quantized_pin_at_every_thread_count() {
    // The SWAR path's bit-identity contract, pinned from both sides:
    // forcing `Scalar` and forcing `Swar` on the eligible configuration
    // must both land on the pre-SWAR checksum, at serial and banded
    // thread counts alike.
    for t in [1usize, 2, 8] {
        for kernel in [Kernel::Scalar, Kernel::Swar] {
            let sum = checksum_with_kernel(t, false, true, kernel);
            assert_eq!(
                sum, PINNED_PPA_QUANTIZED,
                "PPA quantized with {kernel} forced at {t} threads drifted: got {sum:#018x}"
            );
        }
    }
}

#[test]
fn swar_request_falls_back_to_scalar_on_ineligible_configs() {
    // Float datapaths and the center-perspective traversal have no SWAR
    // tables; a forced `Swar` must resolve to the scalar loop and hit the
    // exact same pins, not error or drift.
    for (cpa, quantized, pin, name) in [
        (false, false, PINNED_PPA_FLOAT, "PPA float"),
        (true, false, PINNED_CPA_FLOAT, "CPA float"),
        (true, true, PINNED_CPA_QUANTIZED, "CPA quantized"),
    ] {
        for t in [1usize, 2, 8] {
            let sum = checksum_with_kernel(t, cpa, quantized, Kernel::Swar);
            assert_eq!(
                sum, pin,
                "{name} with Swar forced at {t} threads drifted: got {sum:#018x}"
            );
        }
    }
}

#[test]
fn run_counters_are_bit_identical_across_thread_counts() {
    // The op/traffic counters accumulate per band and fold in ascending
    // band order at the serial sync point, so every field must be exactly
    // equal — not approximately — at any worker count.
    for (cpa, quantized) in [(false, false), (false, true), (true, false)] {
        let baseline = {
            let params = SlicParams::builder(60).iterations(5).threads(1).build();
            let seg = if cpa {
                Segmenter::sslic_cpa(params, 2)
            } else {
                Segmenter::sslic_ppa(params, 2)
            };
            let seg = if quantized {
                seg.with_distance_mode(DistanceMode::quantized(8))
            } else {
                seg
            };
            *seg.run(SegmentRequest::Rgb(&fixed_scene().rgb), &RunOptions::new())
                .counters()
        };
        assert!(baseline.distance_calcs > 0);
        for t in [2usize, 8] {
            let params = SlicParams::builder(60).iterations(5).threads(t).build();
            let seg = if cpa {
                Segmenter::sslic_cpa(params, 2)
            } else {
                Segmenter::sslic_ppa(params, 2)
            };
            let seg = if quantized {
                seg.with_distance_mode(DistanceMode::quantized(8))
            } else {
                seg
            };
            let out = seg.run(SegmentRequest::Rgb(&fixed_scene().rgb), &RunOptions::new());
            assert_eq!(
                out.counters(),
                &baseline,
                "counters drifted at {t} threads (cpa={cpa}, quantized={quantized})"
            );
        }
    }
}

#[test]
fn warm_start_is_thread_count_invariant() {
    // Warm starts change the sigma state the banded reduction sees; pin
    // their invariance too (relative, not absolute: the cold result is
    // itself pinned above).
    let cold = Segmenter::sslic_ppa(
        SlicParams::builder(60).iterations(5).build(),
        2,
    )
    .run(SegmentRequest::Rgb(&fixed_scene().rgb), &RunOptions::new());
    let mut baseline = None;
    for t in THREADS {
        let params = SlicParams::builder(60).iterations(2).threads(t).build();
        let warm = Segmenter::sslic_ppa(params, 2).run(
            SegmentRequest::Rgb(&fixed_scene().rgb),
            &RunOptions::new().with_warm_start(cold.clusters()),
        );
        let sum = label_checksum(warm.labels());
        match baseline {
            None => baseline = Some(sum),
            Some(expect) => assert_eq!(sum, expect, "warm start at {t} threads"),
        }
    }
}
