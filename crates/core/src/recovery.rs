//! Self-healing recovery for streaming sessions: invariant-guard
//! verdicts, a bounded deterministic retry policy, and the per-frame
//! recovery report.
//!
//! Everything in this module is pure integer arithmetic over state the
//! session already folds at its serial sync points, so every recovery
//! decision is bit-identical across thread counts and re-runs:
//!
//! * [`GuardVerdict`] aggregates the end-of-frame invariant guards
//!   (center-coordinate repairs, out-of-range label repairs, sigma-fold
//!   count conservation, poisoned worker bands).
//! * [`RecoveryPolicy::action_for`] maps `(frame, verdict, attempt)` to
//!   the next rung of the escalation ladder — no wall clock, no
//!   randomness, no global state.
//! * [`center_checksum`] fingerprints the center table through the
//!   IEEE-754 bit patterns of its registers with a SplitMix64-style
//!   finalizer, so checkpoint integrity and cross-thread agreement can
//!   be asserted with a single `u64` compare.

use crate::cluster::Cluster;

/// SplitMix64 increment ("golden gamma"): the stream constant of the
/// checksum below.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One rung of the escalation ladder chosen after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Restore the last-known-good center checkpoint and re-run the
    /// iteration loop warm.
    Rollback,
    /// Discard all warm state and re-seed centers from the grid before
    /// re-running — the rung for failures that reproduce under rollback
    /// (or for poisoned bands, where re-running identical state would
    /// panic identically).
    ColdRestart,
    /// Give up on this frame: keep the repaired (degraded but valid)
    /// labels, restore the checkpoint so the *next* frame warm-starts
    /// from clean state, and report the failure.
    FailFrame,
}

impl RecoveryAction {
    /// Stable lowercase name used in traces and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryAction::Rollback => "rollback",
            RecoveryAction::ColdRestart => "cold_restart",
            RecoveryAction::FailFrame => "fail_frame",
        }
    }
}

/// Bounded deterministic retry policy for [`crate::SegmenterSession`].
///
/// `max_retries` bounds the number of *re-runs* of a frame (attempt 0 is
/// the ordinary run and is always free). Every decision is a pure
/// function of `(frame, verdict, attempt)` — see [`Self::action_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    max_retries: u32,
}

impl RecoveryPolicy {
    /// A policy allowing up to `max_retries` re-runs per frame.
    /// `max_retries == 0` means guards are evaluated and reported but a
    /// failed frame is immediately failed (checkpoint still restored).
    pub const fn new(max_retries: u32) -> Self {
        RecoveryPolicy { max_retries }
    }

    /// The retry budget per frame.
    pub const fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The escalation rung to take after attempt number `attempt`
    /// (0-based) of frame `frame` finished with the non-clean `verdict`.
    ///
    /// The ladder is `Rollback → ColdRestart → FailFrame`: retries
    /// before the last budgeted one roll back to the checkpoint, the
    /// final budgeted retry (when the budget allows at least two)
    /// escalates to a cold restart, and an exhausted budget fails the
    /// frame. Poisoned bands skip `Rollback` entirely — a deterministic
    /// kernel panic would reproduce bit-for-bit on the restored state.
    ///
    /// `frame` is part of the decision surface by contract (decisions
    /// may depend on nothing else); the default ladder is
    /// frame-independent.
    pub fn action_for(&self, frame: u64, verdict: &GuardVerdict, attempt: u32) -> RecoveryAction {
        let _ = frame;
        let next = attempt.saturating_add(1);
        if next > self.max_retries {
            return RecoveryAction::FailFrame;
        }
        if verdict.poisoned_bands > 0 {
            return RecoveryAction::ColdRestart;
        }
        if next == self.max_retries && self.max_retries >= 2 {
            return RecoveryAction::ColdRestart;
        }
        RecoveryAction::Rollback
    }
}

/// End-of-frame invariant-guard verdict, aggregated at serial sync
/// points so it is bit-identical across thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardVerdict {
    /// Center registers repaired (non-finite or out-of-plane
    /// coordinates clamped back) across the frame's iteration steps.
    pub center_repairs: u64,
    /// Labels outside `0..k` rewritten to the pixel's home cluster in
    /// the copy-out pass — the connectivity precondition.
    pub label_repairs: u64,
    /// Absolute difference between the pixels folded into the sigma
    /// accumulators and the pixels the update bands actually read —
    /// count conservation across the parallel fold.
    pub sigma_mismatch: u64,
    /// Worker bands whose kernel panicked and was contained by the
    /// pool's `catch_unwind` isolation.
    pub poisoned_bands: u64,
}

impl GuardVerdict {
    /// `true` when every guard passed.
    pub fn clean(&self) -> bool {
        self.guards_fired() == 0
    }

    /// Total guard firings (the sum of all counters).
    pub fn guards_fired(&self) -> u64 {
        self.center_repairs
            .wrapping_add(self.label_repairs)
            .wrapping_add(self.sigma_mismatch)
            .wrapping_add(self.poisoned_bands)
    }
}

/// How a frame left the recovery engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No guard fired on the first attempt.
    Clean,
    /// At least one retry ran and the final attempt was guard-clean.
    Recovered,
    /// The retry budget was exhausted (or recovery was off) with guards
    /// still firing; the frame's labels are repaired-but-degraded.
    Failed,
}

impl RecoveryOutcome {
    /// Stable lowercase name used in traces and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryOutcome::Clean => "clean",
            RecoveryOutcome::Recovered => "recovered",
            RecoveryOutcome::Failed => "failed",
        }
    }
}

/// Per-frame recovery record, carried on
/// [`crate::FrameReport::recovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Guard firings summed over every attempt of the frame.
    pub guards_fired: u64,
    /// Re-runs taken (0 for a clean frame).
    pub retries: u32,
    /// Cold restarts taken (the `ColdRestart` rungs among the retries).
    pub escalations: u32,
    /// Final disposition of the frame.
    pub outcome: RecoveryOutcome,
    /// [`center_checksum`] of the center table as the frame left it.
    pub center_checksum: u64,
}

impl Default for RecoveryReport {
    fn default() -> Self {
        RecoveryReport {
            guards_fired: 0,
            retries: 0,
            escalations: 0,
            outcome: RecoveryOutcome::Clean,
            center_checksum: 0,
        }
    }
}

/// SplitMix64-finalizer mixing step (Stafford's Mix13 variant).
fn mix64(value: u64) -> u64 {
    let mut z = value;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive checksum of the center table.
///
/// Each of the five registers per center contributes its exact IEEE-754
/// bit pattern, so two tables collide only if every register is
/// bit-identical (up to hash collision); the fold order is the table
/// order, which the engine fixes at serial sync points.
pub fn center_checksum(clusters: &[Cluster]) -> u64 {
    let mut state: u64 = GOLDEN_GAMMA;
    for cluster in clusters {
        let words = [
            cluster.l.to_bits(),
            cluster.a.to_bits(),
            cluster.b.to_bits(),
            cluster.x.to_bits(),
            cluster.y.to_bits(),
        ];
        for word in words {
            state = mix64(state.wrapping_add(GOLDEN_GAMMA).wrapping_add(u64::from(word)));
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(poisoned: u64) -> GuardVerdict {
        GuardVerdict {
            center_repairs: 1,
            poisoned_bands: poisoned,
            ..GuardVerdict::default()
        }
    }

    #[test]
    fn verdict_clean_iff_no_guard_fired() {
        assert!(GuardVerdict::default().clean());
        assert!(!fired(0).clean());
        assert_eq!(fired(2).guards_fired(), 3);
    }

    #[test]
    fn ladder_rolls_back_then_cold_restarts_then_fails() {
        let policy = RecoveryPolicy::new(3);
        let v = fired(0);
        assert_eq!(policy.action_for(0, &v, 0), RecoveryAction::Rollback);
        assert_eq!(policy.action_for(0, &v, 1), RecoveryAction::Rollback);
        assert_eq!(policy.action_for(0, &v, 2), RecoveryAction::ColdRestart);
        assert_eq!(policy.action_for(0, &v, 3), RecoveryAction::FailFrame);
        assert_eq!(policy.action_for(0, &v, 9), RecoveryAction::FailFrame);
    }

    #[test]
    fn single_retry_budget_rolls_back_once() {
        let policy = RecoveryPolicy::new(1);
        let v = fired(0);
        assert_eq!(policy.action_for(5, &v, 0), RecoveryAction::Rollback);
        assert_eq!(policy.action_for(5, &v, 1), RecoveryAction::FailFrame);
    }

    #[test]
    fn zero_budget_fails_immediately() {
        let policy = RecoveryPolicy::new(0);
        assert_eq!(policy.action_for(0, &fired(0), 0), RecoveryAction::FailFrame);
    }

    #[test]
    fn poisoned_bands_skip_rollback() {
        let policy = RecoveryPolicy::new(3);
        assert_eq!(
            policy.action_for(0, &fired(1), 0),
            RecoveryAction::ColdRestart,
            "a deterministic panic would repeat on rolled-back state"
        );
    }

    #[test]
    fn decisions_are_pure_and_frame_independent_by_default() {
        let policy = RecoveryPolicy::new(2);
        let v = fired(0);
        for frame in [0u64, 1, 77, u64::MAX] {
            assert_eq!(policy.action_for(frame, &v, 0), RecoveryAction::Rollback);
            assert_eq!(policy.action_for(frame, &v, 1), RecoveryAction::ColdRestart);
        }
    }

    #[test]
    fn checksum_is_order_and_bit_sensitive() {
        let a = [Cluster::new(1.0, 2.0, 3.0, 4.0, 5.0), Cluster::default()];
        let b = [Cluster::default(), Cluster::new(1.0, 2.0, 3.0, 4.0, 5.0)];
        assert_ne!(center_checksum(&a), center_checksum(&b));
        assert_eq!(center_checksum(&a), center_checksum(&a.clone()));
        let mut c = a;
        c[0].x = f32::from_bits(c[0].x.to_bits() ^ 1);
        assert_ne!(center_checksum(&a), center_checksum(&c));
        assert_ne!(center_checksum(&[]), 0, "empty table still has a tag");
    }
}
