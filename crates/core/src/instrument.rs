//! Operation and memory-traffic accounting, reproducing the paper's
//! Table 2 analysis of the center- vs pixel-perspective architectures.
//!
//! The segmentation engine records raw event counts ([`RunCounters`])
//! during execution — distance evaluations, buffer reads/writes, center
//! register loads. A [`TrafficModel`] then converts events into bytes for a
//! given element-width convention (the software double-precision layout the
//! paper's CPU numbers reflect, or the accelerator's 8-bit layout).
//!
//! Operation counting follows the paper's convention: Table 2's
//! "58M OPs/iteration" (CPA) and "130M OPs/iteration" (PPA) at 1080p imply
//! ≈7 arithmetic operations per color-space distance (5 multiply-
//! accumulates for the squared differences, one scale, one combine), with
//! the CPA averaging 4 distance evaluations per pixel and the PPA exactly
//! 9 — hence the paper's 2.25× operation ratio, which [`RunCounters`]
//! reproduces by construction.

/// Predicts the exact number of distance evaluations a pixel-perspective
/// run will record (9 per pixel per step, over the subset schedule) —
/// the closed form behind Table 2's PPA row and a consistency oracle for
/// the measured [`RunCounters`].
///
/// # Example
///
/// ```
/// use sslic_core::instrument::predict_ppa_distance_calcs;
/// use sslic_core::subsample::SubsetStrategy;
///
/// // Full SLIC PPA, 1080p, one iteration: exactly 9N (Table 2).
/// let calls = predict_ppa_distance_calcs(
///     1920, 1080, 1, 1, SubsetStrategy::Interleaved);
/// assert_eq!(calls, 9 * 1920 * 1080);
/// ```
pub fn predict_ppa_distance_calcs(
    width: usize,
    height: usize,
    iterations: u32,
    subsets: u32,
    strategy: crate::subsample::SubsetStrategy,
) -> u64 {
    let part = crate::subsample::SubsetPartition::new(width, height, subsets, strategy);
    (0..iterations)
        .map(|t| part.subset_len(part.subset_for_step(t)) as u64 * 9)
        .sum()
}

/// Arithmetic operations charged per color-space distance evaluation
/// (Eq. 5): 5 fused multiply-accumulates (3 color + 2 spatial), one
/// `m²/S²` scale, one combine.
pub const OPS_PER_DISTANCE: u64 = 7;

/// Additions per sigma-register update: 3 color + 2 position + 1 count
/// (paper §4.3: "requiring six additions").
pub const OPS_PER_SIGMA_UPDATE: u64 = 6;

/// Divisions per center recomputation: one per sigma field except the
/// count.
pub const OPS_PER_CENTER_UPDATE: u64 = 5;

/// Raw event counts recorded by the segmentation engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Color-space distance evaluations (Eq. 5).
    pub distance_calcs: u64,
    /// Pixel color fetches (one event = all three channels of one pixel).
    pub pixel_color_reads: u64,
    /// Reads of the minimum-distance buffer.
    pub dist_buffer_reads: u64,
    /// Writes to the minimum-distance buffer (on improvement).
    pub dist_buffer_writes: u64,
    /// Reads of the label (superpixel index) buffer.
    pub label_reads: u64,
    /// Writes to the label buffer.
    pub label_writes: u64,
    /// Cluster-center register loads (one event = one 5-field center).
    pub center_reads: u64,
    /// Sigma-register accumulations (one event = one 6-field update).
    pub sigma_updates: u64,
    /// Cluster centers recomputed from sigma registers.
    pub center_updates: u64,
    /// Center-update steps executed (sub-iterations for S-SLIC).
    pub sub_iterations: u64,
}

impl RunCounters {
    /// Operations in the distance datapath only (the paper's Table 2
    /// "operation count").
    pub fn distance_ops(&self) -> u64 {
        self.distance_calcs * OPS_PER_DISTANCE
    }

    /// All accounted arithmetic: distances, minimum compares, sigma
    /// additions, and center divisions.
    pub fn total_ops(&self) -> u64 {
        self.distance_ops()
            + self.distance_calcs // one compare per candidate in the min tree
            + self.sigma_updates * OPS_PER_SIGMA_UPDATE
            + self.center_updates * OPS_PER_CENTER_UPDATE
    }
}

impl std::ops::AddAssign for RunCounters {
    fn add_assign(&mut self, rhs: RunCounters) {
        self.distance_calcs += rhs.distance_calcs;
        self.pixel_color_reads += rhs.pixel_color_reads;
        self.dist_buffer_reads += rhs.dist_buffer_reads;
        self.dist_buffer_writes += rhs.dist_buffer_writes;
        self.label_reads += rhs.label_reads;
        self.label_writes += rhs.label_writes;
        self.center_reads += rhs.center_reads;
        self.sigma_updates += rhs.sigma_updates;
        self.center_updates += rhs.center_updates;
        self.sub_iterations += rhs.sub_iterations;
    }
}

/// Bytes moved, split by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficBytes {
    /// Bytes read from memory.
    pub read: u64,
    /// Bytes written to memory.
    pub written: u64,
}

impl TrafficBytes {
    /// Total bytes in both directions.
    pub fn total(&self) -> u64 {
        self.read + self.written
    }

    /// Total traffic in megabytes (10⁶ bytes, the paper's unit).
    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / 1e6
    }
}

/// Element widths used to convert [`RunCounters`] events into bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficModel {
    /// Bytes per color channel sample (×3 per pixel fetch).
    pub color_channel_bytes: u64,
    /// Bytes per minimum-distance buffer element.
    pub dist_bytes: u64,
    /// Bytes per label element.
    pub label_bytes: u64,
    /// Bytes per cluster-center field (×5 per center load).
    pub center_field_bytes: u64,
}

impl TrafficModel {
    /// The double-precision software layout of the paper's CPU baseline
    /// (Lab as `f64`, `f64` distances, `i32` labels).
    pub fn sw_double() -> Self {
        TrafficModel {
            color_channel_bytes: 8,
            dist_bytes: 8,
            label_bytes: 4,
            center_field_bytes: 8,
        }
    }

    /// A single-precision software layout (Lab as `f32`).
    pub fn sw_float() -> Self {
        TrafficModel {
            color_channel_bytes: 4,
            dist_bytes: 4,
            label_bytes: 4,
            center_field_bytes: 4,
        }
    }

    /// The accelerator's 8-bit layout (byte channels, byte distances,
    /// 16-bit labels for up to 64k superpixels).
    pub fn hw_8bit() -> Self {
        TrafficModel {
            color_channel_bytes: 1,
            dist_bytes: 1,
            label_bytes: 2,
            center_field_bytes: 1,
        }
    }

    /// Converts recorded events into bytes moved.
    pub fn bytes(&self, c: &RunCounters) -> TrafficBytes {
        TrafficBytes {
            read: c.pixel_color_reads * 3 * self.color_channel_bytes
                + c.dist_buffer_reads * self.dist_bytes
                + c.label_reads * self.label_bytes
                + c.center_reads * 5 * self.center_field_bytes,
            written: c.dist_buffer_writes * self.dist_bytes
                + c.label_writes * self.label_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_ops_match_paper_convention_at_1080p() {
        // CPA: 4 distance evaluations per pixel per iteration.
        let n = 1920u64 * 1080;
        let cpa = RunCounters {
            distance_calcs: 4 * n,
            ..RunCounters::default()
        };
        let mops = cpa.distance_ops() as f64 / 1e6;
        assert!((mops - 58.06).abs() < 0.1, "CPA ≈ 58M OPs, got {mops}M");

        // PPA: exactly 9 per pixel.
        let ppa = RunCounters {
            distance_calcs: 9 * n,
            ..RunCounters::default()
        };
        let mops = ppa.distance_ops() as f64 / 1e6;
        assert!((mops - 130.6).abs() < 0.2, "PPA ≈ 130M OPs, got {mops}M");
    }

    #[test]
    fn ppa_to_cpa_op_ratio_is_2_25() {
        let cpa = RunCounters {
            distance_calcs: 4,
            ..RunCounters::default()
        };
        let ppa = RunCounters {
            distance_calcs: 9,
            ..RunCounters::default()
        };
        let ratio = ppa.distance_ops() as f64 / cpa.distance_ops() as f64;
        assert_eq!(ratio, 2.25);
    }

    #[test]
    fn total_ops_include_min_sigma_and_divides() {
        let c = RunCounters {
            distance_calcs: 10,
            sigma_updates: 2,
            center_updates: 1,
            ..RunCounters::default()
        };
        assert_eq!(c.total_ops(), 10 * 7 + 10 + 2 * 6 + 5);
    }

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = RunCounters::default();
        let b = RunCounters {
            distance_calcs: 1,
            pixel_color_reads: 2,
            dist_buffer_reads: 3,
            dist_buffer_writes: 4,
            label_reads: 5,
            label_writes: 6,
            center_reads: 7,
            sigma_updates: 8,
            center_updates: 9,
            sub_iterations: 10,
        };
        a += b;
        a += b;
        assert_eq!(a.distance_calcs, 2);
        assert_eq!(a.sub_iterations, 20);
        assert_eq!(a.center_reads, 14);
    }

    #[test]
    fn traffic_model_converts_events_to_bytes() {
        let c = RunCounters {
            pixel_color_reads: 10, // 10 pixels × 3 channels
            dist_buffer_reads: 4,
            dist_buffer_writes: 2,
            label_reads: 1,
            label_writes: 3,
            center_reads: 2, // 2 centers × 5 fields
            ..RunCounters::default()
        };
        let m = TrafficModel::sw_float();
        let t = m.bytes(&c);
        assert_eq!(t.read, 10 * 3 * 4 + 4 * 4 + 4 + 2 * 5 * 4);
        assert_eq!(t.written, 2 * 4 + 3 * 4);
        assert_eq!(t.total(), t.read + t.written);
    }

    #[test]
    fn hw_model_is_an_order_of_magnitude_leaner_than_sw() {
        let c = RunCounters {
            pixel_color_reads: 1000,
            dist_buffer_reads: 1000,
            dist_buffer_writes: 500,
            label_writes: 1000,
            ..RunCounters::default()
        };
        let sw = TrafficModel::sw_double().bytes(&c).total();
        let hw = TrafficModel::hw_8bit().bytes(&c).total();
        assert!(sw > 5 * hw, "sw={sw} hw={hw}");
    }

    #[test]
    fn traffic_mb_uses_decimal_megabytes() {
        let t = TrafficBytes {
            read: 500_000,
            written: 500_000,
        };
        assert_eq!(t.total_mb(), 1.0);
    }
}
