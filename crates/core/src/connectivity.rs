//! Connectivity enforcement — SLIC's final post-processing step.
//!
//! k-means assignment does not guarantee each superpixel is a single
//! connected region: "a final step is performed to enforce the
//! connectivity, ensuring that any stray pixels that may still be disjoint
//! are assigned to the closest large SP" (paper §2).
//!
//! The standard SLIC post-pass is implemented: scan the label map in raster
//! order, flood-fill each 4-connected component, and absorb components
//! smaller than `min_size` into the previously visited adjacent component
//! (which, after processing, is always a surviving large one).

use sslic_image::Plane;

/// Reusable working memory of the connectivity pass: the component-id
/// plane, the flood-fill stack, and the member list. A streaming session
/// allocates one `ConnScratch` per geometry and reuses it every frame, so
/// steady-state connectivity enforcement is allocation-free: both queues
/// are pre-sized to their worst case (every pixel of one component is
/// pushed exactly once, so neither ever exceeds `width × height` entries).
#[derive(Debug)]
pub struct ConnScratch {
    component: Plane<i64>,
    stack: Vec<(usize, usize)>,
    members: Vec<(usize, usize)>,
}

impl ConnScratch {
    /// Allocates scratch for `width × height` label maps.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        ConnScratch {
            component: Plane::filled(width, height, -1),
            stack: Vec::with_capacity(width * height),
            members: Vec::with_capacity(width * height),
        }
    }

    /// Width the scratch was sized for.
    pub fn width(&self) -> usize {
        self.component.width()
    }

    /// Height the scratch was sized for.
    pub fn height(&self) -> usize {
        self.component.height()
    }
}

/// Rewrites `labels` in place so stray fragments smaller than `min_size`
/// pixels are absorbed by an adjacent region, and returns the number of
/// absorbed components.
///
/// After the pass every 4-connected component has at least `min_size`
/// pixels, with one possible exception: the component containing pixel
/// `(0, 0)`, whose flood-fill seed is the only one with no previously
/// visited neighbor to absorb into (the same property the reference SLIC
/// post-pass has).
///
/// `min_size` is typically `S²/4` — a quarter of the nominal superpixel
/// area.
///
/// # Panics
///
/// Panics if `min_size == 0`.
///
/// # Example
///
/// ```
/// use sslic_core::enforce_connectivity;
/// use sslic_image::Plane;
///
/// // A lone stray pixel of label 1 inside a sea of label 0.
/// let mut labels = Plane::filled(8, 8, 0u32);
/// labels[(4, 4)] = 1;
/// let absorbed = enforce_connectivity(&mut labels, 3);
/// assert_eq!(absorbed, 1);
/// assert_eq!(labels[(4, 4)], 0);
/// ```
pub fn enforce_connectivity(labels: &mut Plane<u32>, min_size: usize) -> usize {
    let mut scratch = ConnScratch::new(labels.width(), labels.height());
    enforce_connectivity_with(labels, min_size, &mut scratch)
}

/// [`enforce_connectivity`] operating through caller-owned scratch: the
/// pass allocates nothing, which is what lets a streaming session run its
/// connectivity post-pass every frame with zero heap traffic. The result
/// is identical to [`enforce_connectivity`].
///
/// # Panics
///
/// Panics if `min_size == 0` or `scratch` was sized for a different
/// geometry.
pub fn enforce_connectivity_with(
    labels: &mut Plane<u32>,
    min_size: usize,
    scratch: &mut ConnScratch,
) -> usize {
    assert!(min_size > 0, "min_size must be nonzero");
    let w = labels.width();
    let h = labels.height();
    assert!(
        scratch.width() == w && scratch.height() == h,
        "connectivity scratch sized for {}x{}, labels are {}x{}",
        scratch.width(),
        scratch.height(),
        w,
        h
    );
    // -1 = unvisited; otherwise the component id of the pixel.
    let component = &mut scratch.component;
    component.reset_to(-1);
    let stack = &mut scratch.stack;
    let members = &mut scratch.members;
    let mut absorbed = 0usize;
    let mut next_component: i64 = 0;

    for sy in 0..h {
        for sx in 0..w {
            if component[(sx, sy)] >= 0 {
                continue;
            }
            let label = labels[(sx, sy)];
            // The label of the component visited immediately before this
            // one in scan order, to absorb into if we turn out small.
            // Standard SLIC uses the left/top neighbor of the seed.
            let adjacent = adjacent_label(labels, &component, sx, sy);

            // Flood fill this component.
            let id = next_component;
            next_component += 1;
            members.clear();
            stack.clear();
            stack.push((sx, sy));
            component[(sx, sy)] = id;
            while let Some((x, y)) = stack.pop() {
                members.push((x, y));
                for (nx, ny) in neighbors4(x, y, w, h) {
                    if component[(nx, ny)] < 0 && labels[(nx, ny)] == label {
                        component[(nx, ny)] = id;
                        stack.push((nx, ny));
                    }
                }
            }

            if members.len() < min_size {
                if let Some(new_label) = adjacent {
                    for &(x, y) in members.iter() {
                        labels[(x, y)] = new_label;
                        // Merge into the neighbor's component so later
                        // fragments of the same original label are handled
                        // independently.
                        component[(x, y)] = i64::MAX;
                    }
                    absorbed += 1;
                }
                // No adjacent component exists only when the whole image is
                // a single small component; keep it as is.
            }
        }
    }
    absorbed
}

/// Label of an already-visited 4-neighbour of `(x, y)`, if any.
fn adjacent_label(
    labels: &Plane<u32>,
    component: &Plane<i64>,
    x: usize,
    y: usize,
) -> Option<u32> {
    // In raster order the left and top neighbors are always visited first.
    if x > 0 && component[(x - 1, y)] >= 0 {
        return Some(labels[(x - 1, y)]);
    }
    if y > 0 && component[(x, y - 1)] >= 0 {
        return Some(labels[(x, y - 1)]);
    }
    None
}

#[inline]
fn neighbors4(
    x: usize,
    y: usize,
    w: usize,
    h: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let mut out = [(usize::MAX, usize::MAX); 4];
    let mut n = 0;
    if x > 0 {
        out[n] = (x - 1, y);
        n += 1;
    }
    if x + 1 < w {
        out[n] = (x + 1, y);
        n += 1;
    }
    if y > 0 {
        out[n] = (x, y - 1);
        n += 1;
    }
    if y + 1 < h {
        out[n] = (x, y + 1);
        n += 1;
    }
    out.into_iter().take(n)
}

/// Renumbers a label map to dense labels `0..n` in first-appearance
/// (raster) order, returning the new map and `n`. Useful after
/// connectivity enforcement or region merging, both of which leave holes
/// in the label space.
///
/// # Example
///
/// ```
/// use sslic_core::compact_labels;
/// use sslic_image::Plane;
///
/// let sparse = Plane::from_fn(4, 1, |x, _| [7u32, 42, 7, 9][x]);
/// let (dense, n) = compact_labels(&sparse);
/// assert_eq!(n, 3);
/// assert_eq!(dense.as_slice(), &[0, 1, 0, 2]);
/// ```
pub fn compact_labels(labels: &Plane<u32>) -> (Plane<u32>, usize) {
    // BTreeMap, not HashMap: remap *insertion* follows scan order either
    // way, but the determinism contract bans hash-ordered containers from
    // result-producing code outright so audits never have to reason about
    // which iteration orders happen to be benign.
    let mut remap: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    let mut next = 0u32;
    let dense = labels.map(|l| {
        *remap.entry(l).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        })
    });
    (dense, next as usize)
}

/// Returns the size of every 4-connected component in `labels` (test and
/// metric helper; also used by the benches to verify post-conditions).
pub fn component_sizes(labels: &Plane<u32>) -> Vec<usize> {
    let w = labels.width();
    let h = labels.height();
    let mut visited = Plane::filled(w, h, false);
    let mut sizes = Vec::new();
    let mut stack = Vec::new();
    for sy in 0..h {
        for sx in 0..w {
            if visited[(sx, sy)] {
                continue;
            }
            let label = labels[(sx, sy)];
            let mut size = 0usize;
            stack.push((sx, sy));
            visited[(sx, sy)] = true;
            while let Some((x, y)) = stack.pop() {
                size += 1;
                for (nx, ny) in neighbors4(x, y, w, h) {
                    if !visited[(nx, ny)] && labels[(nx, ny)] == label {
                        visited[(nx, ny)] = true;
                        stack.push((nx, ny));
                    }
                }
            }
            sizes.push(size);
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn connected_map_is_untouched() {
        let mut labels = Plane::from_fn(8, 8, |x, _| if x < 4 { 0u32 } else { 1 });
        let before = labels.clone();
        let absorbed = enforce_connectivity(&mut labels, 4);
        assert_eq!(absorbed, 0);
        assert_eq!(labels, before);
    }

    #[test]
    fn stray_pixel_is_absorbed() {
        let mut labels = Plane::filled(6, 6, 7u32);
        labels[(3, 3)] = 9;
        let absorbed = enforce_connectivity(&mut labels, 2);
        assert_eq!(absorbed, 1);
        assert!(labels.iter().all(|&l| l == 7));
    }

    #[test]
    fn disjoint_fragment_of_same_label_is_absorbed() {
        // Label 1 appears as a large left block and a tiny far-right
        // fragment; the fragment must be relabeled even though label 1 as a
        // whole is large.
        let mut labels = Plane::from_fn(12, 4, |x, _| match x {
            0..=4 => 1u32,
            11 => 1,
            _ => 2,
        });
        enforce_connectivity(&mut labels, 5);
        assert_eq!(labels[(11, 0)], 2, "fragment absorbed into neighbor");
        assert_eq!(labels[(2, 2)], 1, "large component intact");
    }

    #[test]
    fn large_components_survive() {
        let mut labels = Plane::from_fn(10, 10, |x, y| ((x / 5) + 2 * (y / 5)) as u32);
        let before = labels.clone();
        enforce_connectivity(&mut labels, 10);
        assert_eq!(labels, before);
    }

    #[test]
    fn post_condition_no_component_below_min_size() {
        // A noisy map with many singletons.
        let mut labels = Plane::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 5) as u32);
        enforce_connectivity(&mut labels, 6);
        let sizes = component_sizes(&labels);
        assert!(
            sizes.iter().all(|&s| s >= 6),
            "all components at least min_size: {sizes:?}"
        );
    }

    #[test]
    fn whole_image_single_small_component_is_kept() {
        let mut labels = Plane::filled(2, 2, 5u32);
        let absorbed = enforce_connectivity(&mut labels, 100);
        assert_eq!(absorbed, 0);
        assert!(labels.iter().all(|&l| l == 5));
    }

    #[test]
    #[should_panic(expected = "min_size")]
    fn zero_min_size_panics() {
        let mut labels = Plane::filled(2, 2, 0u32);
        let _ = enforce_connectivity(&mut labels, 0);
    }

    #[test]
    fn scratch_variant_matches_and_is_reusable() {
        let mut scratch = ConnScratch::new(16, 16);
        for seed in 0..4u32 {
            let mut fresh = Plane::from_fn(16, 16, |x, y| ((x * 7 + y * 13 + seed as usize) % 5) as u32);
            let mut reused = fresh.clone();
            let a = enforce_connectivity(&mut fresh, 6);
            let b = enforce_connectivity_with(&mut reused, 6, &mut scratch);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(fresh, reused, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "connectivity scratch sized for")]
    fn scratch_geometry_mismatch_panics() {
        let mut labels = Plane::filled(4, 4, 0u32);
        let mut scratch = ConnScratch::new(5, 4);
        let _ = enforce_connectivity_with(&mut labels, 2, &mut scratch);
    }

    #[test]
    fn compact_labels_is_idempotent_and_order_preserving() {
        let sparse = Plane::from_fn(6, 2, |x, y| ((x + y * 13) * 100 % 7) as u32);
        let (dense, n) = compact_labels(&sparse);
        assert!(dense.iter().all(|&l| (l as usize) < n));
        // Same partition: pixels equal in sparse iff equal in dense.
        for i in 0..12 {
            for j in 0..12 {
                let a = sparse.as_slice()[i] == sparse.as_slice()[j];
                let b = dense.as_slice()[i] == dense.as_slice()[j];
                assert_eq!(a, b);
            }
        }
        let (again, m) = compact_labels(&dense);
        assert_eq!(again, dense);
        assert_eq!(m, n);
    }

    #[test]
    fn compact_labels_on_uniform_map() {
        let labels = Plane::filled(3, 3, 99u32);
        let (dense, n) = compact_labels(&labels);
        assert_eq!(n, 1);
        assert!(dense.iter().all(|&l| l == 0));
    }

    #[test]
    fn component_sizes_sums_to_pixel_count() {
        let labels = Plane::from_fn(9, 7, |x, y| ((x + y) % 3) as u32);
        let sizes = component_sizes(&labels);
        assert_eq!(sizes.iter().sum::<usize>(), 63);
    }

    #[test]
    fn all_one_label_map_terminates_untouched() {
        // The degenerate output of a fully collapsed segmentation: one
        // giant component covering the image. Must terminate (single
        // flood fill) and change nothing whatever min_size is.
        let mut labels = Plane::filled(64, 48, 3u32);
        let before = labels.clone();
        for min_size in [1usize, 16, 10_000] {
            let absorbed = enforce_connectivity(&mut labels, min_size);
            assert_eq!(absorbed, 0);
            assert_eq!(labels, before);
        }
    }

    #[test]
    fn checkerboard_collapses_to_contiguous_regions() {
        // Worst-case fragmentation: every pixel its own 4-connected
        // component. The pass must terminate and leave no undersized
        // fragment except possibly the scan-first one.
        let mut labels = Plane::from_fn(32, 32, |x, y| ((x + y) % 2) as u32);
        enforce_connectivity(&mut labels, 4);
        let sizes = component_sizes(&labels);
        assert_eq!(sizes.iter().sum::<usize>(), 32 * 32, "no pixel lost");
        let small = sizes.iter().filter(|&&s| s < 4).count();
        assert!(small <= 1, "sizes {sizes:?}");
        // And the surviving partition is contiguous by construction of
        // component_sizes; additionally each surviving label must form few
        // components, not the original 1024.
        assert!(sizes.len() < 1024 / 2);
    }

    #[test]
    fn out_of_range_labels_are_absorbed_like_any_other() {
        // Faulted label words (e.g. an undetected index-memory upset) can
        // carry values far beyond the cluster count. Connectivity
        // enforcement must treat them as ordinary stray fragments.
        let mut labels = Plane::filled(16, 16, 2u32);
        labels[(5, 5)] = u32::MAX;
        labels[(10, 3)] = 0xDEAD_BEEF;
        let absorbed = enforce_connectivity(&mut labels, 2);
        assert_eq!(absorbed, 2);
        assert!(labels.iter().all(|&l| l == 2));
    }

    #[test]
    fn adversarial_stripe_fragments_terminate_with_min_size_respected() {
        // One-pixel-wide vertical stripes of alternating labels: every
        // stripe is a legal (tall, thin) component of size h. With
        // min_size above h each stripe must be absorbed leftward in one
        // raster pass, not loop forever.
        let mut labels = Plane::from_fn(24, 8, |x, _| (x % 2) as u32);
        enforce_connectivity(&mut labels, 9);
        let sizes = component_sizes(&labels);
        assert_eq!(sizes.iter().sum::<usize>(), 24 * 8);
        let small = sizes.iter().filter(|&&s| s < 9).count();
        assert!(small <= 1, "sizes {sizes:?}");
    }

    proptest! {
        #[test]
        fn enforce_never_loses_pixels_and_min_size_holds(
            seed in 0u64..500,
            min_size in 1usize..8,
        ) {
            // Pseudo-random label maps.
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut labels = Plane::from_fn(12, 12, |_, _| (next() % 4) as u32);
            enforce_connectivity(&mut labels, min_size);
            let sizes = component_sizes(&labels);
            prop_assert_eq!(sizes.iter().sum::<usize>(), 144);
            // Every component respects min_size, except possibly the one
            // seeded at (0,0): it is the only one whose flood-fill seed has
            // no previously visited neighbor to absorb into.
            let small = sizes.iter().filter(|&&s| s < min_size).count();
            prop_assert!(small <= 1, "at most the scan-first component may stay small");
        }
    }
}
