//! Per-superpixel feature extraction — the representation downstream
//! vision stages (classification, depth estimation, region segmentation;
//! paper §1) consume instead of raw pixels.

use sslic_color::LabImage;
use sslic_image::Plane;

/// Summary statistics of one superpixel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperpixelFeatures {
    /// The superpixel's label.
    pub label: u32,
    /// Member pixel count.
    pub size: u64,
    /// Mean CIELAB color.
    pub mean_lab: [f32; 3],
    /// Per-channel CIELAB variance.
    pub var_lab: [f32; 3],
    /// Centroid `(x, y)`.
    pub centroid: (f32, f32),
    /// Inclusive bounding box `(x0, y0, x1, y1)`.
    pub bbox: (usize, usize, usize, usize),
}

impl SuperpixelFeatures {
    /// Bounding-box extent `(width, height)`.
    pub fn bbox_extent(&self) -> (usize, usize) {
        (self.bbox.2 - self.bbox.0 + 1, self.bbox.3 - self.bbox.1 + 1)
    }

    /// How much of the bounding box the superpixel fills (1.0 = a perfect
    /// rectangle; low values indicate ragged shapes).
    pub fn bbox_fill(&self) -> f64 {
        let (w, h) = self.bbox_extent();
        self.size as f64 / (w * h) as f64
    }
}

/// Extracts features for every label present in `labels`, sorted by label.
///
/// Labels absent from the map simply have no entry; the result is dense in
/// the *present* labels, not in the label space.
///
/// # Panics
///
/// Panics if `lab` and `labels` disagree on geometry.
///
/// # Example
///
/// ```
/// use sslic_core::features::extract_features;
/// use sslic_color::LabImage;
/// use sslic_image::Plane;
///
/// let lab = LabImage::from_fn(8, 4, |x, _| [x as f32 * 10.0, 0.0, 0.0]);
/// let labels = Plane::from_fn(8, 4, |x, _| (x / 4) as u32);
/// let feats = extract_features(&lab, &labels);
/// assert_eq!(feats.len(), 2);
/// assert_eq!(feats[0].size, 16);
/// assert!(feats[0].mean_lab[0] < feats[1].mean_lab[0]);
/// ```
pub fn extract_features(lab: &LabImage, labels: &Plane<u32>) -> Vec<SuperpixelFeatures> {
    assert!(
        lab.width() == labels.width() && lab.height() == labels.height(),
        "image and label map must share geometry"
    );
    use std::collections::BTreeMap;
    struct Acc {
        size: u64,
        sum: [f64; 3],
        sum_sq: [f64; 3],
        sum_x: f64,
        sum_y: f64,
        bbox: (usize, usize, usize, usize),
    }
    let mut accs: BTreeMap<u32, Acc> = BTreeMap::new();
    for y in 0..lab.height() {
        for x in 0..lab.width() {
            let l = labels[(x, y)];
            let px = lab.pixel(x, y);
            let acc = accs.entry(l).or_insert(Acc {
                size: 0,
                sum: [0.0; 3],
                sum_sq: [0.0; 3],
                sum_x: 0.0,
                sum_y: 0.0,
                bbox: (x, y, x, y),
            });
            acc.size += 1;
            for (c, &v) in px.iter().enumerate() {
                acc.sum[c] += v as f64;
                acc.sum_sq[c] += (v as f64) * (v as f64);
            }
            acc.sum_x += x as f64;
            acc.sum_y += y as f64;
            acc.bbox.0 = acc.bbox.0.min(x);
            acc.bbox.1 = acc.bbox.1.min(y);
            acc.bbox.2 = acc.bbox.2.max(x);
            acc.bbox.3 = acc.bbox.3.max(y);
        }
    }
    accs.into_iter()
        .map(|(label, a)| {
            let n = a.size as f64;
            let mut mean = [0f32; 3];
            let mut var = [0f32; 3];
            for c in 0..3 {
                let m = a.sum[c] / n;
                mean[c] = m as f32;
                var[c] = ((a.sum_sq[c] / n - m * m).max(0.0)) as f32;
            }
            SuperpixelFeatures {
                label,
                size: a.size,
                mean_lab: mean,
                var_lab: var,
                centroid: ((a.sum_x / n) as f32, (a.sum_y / n) as f32),
                bbox: a.bbox,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split_lab() -> (LabImage, Plane<u32>) {
        let lab = LabImage::from_fn(8, 4, |x, _| {
            if x < 4 {
                [20.0, 5.0, -5.0]
            } else {
                [80.0, -10.0, 10.0]
            }
        });
        let labels = Plane::from_fn(8, 4, |x, _| (x / 4) as u32);
        (lab, labels)
    }

    #[test]
    fn features_of_flat_regions() {
        let (lab, labels) = split_lab();
        let f = extract_features(&lab, &labels);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].label, 0);
        assert_eq!(f[0].size, 16);
        assert_eq!(f[0].mean_lab, [20.0, 5.0, -5.0]);
        assert_eq!(f[0].var_lab, [0.0, 0.0, 0.0]);
        assert_eq!(f[0].bbox, (0, 0, 3, 3));
        assert_eq!(f[0].bbox_extent(), (4, 4));
        assert_eq!(f[0].bbox_fill(), 1.0);
        assert!((f[0].centroid.0 - 1.5).abs() < 1e-6);
        assert!((f[1].centroid.0 - 5.5).abs() < 1e-6);
    }

    #[test]
    fn variance_captures_within_region_spread() {
        let lab = LabImage::from_fn(4, 1, |x, _| [if x % 2 == 0 { 0.0 } else { 10.0 }, 0.0, 0.0]);
        let labels = Plane::filled(4, 1, 0u32);
        let f = extract_features(&lab, &labels);
        assert_eq!(f[0].mean_lab[0], 5.0);
        assert_eq!(f[0].var_lab[0], 25.0);
    }

    #[test]
    fn bbox_fill_detects_ragged_shapes() {
        // An L-shaped region fills 3/4 of its bounding box.
        let labels = Plane::from_fn(2, 2, |x, y| u32::from(x == 1 && y == 0));
        let lab = LabImage::from_fn(2, 2, |_, _| [0.0; 3]);
        let f = extract_features(&lab, &labels);
        let l_shape = f.iter().find(|f| f.label == 0).expect("label 0");
        assert_eq!(l_shape.size, 3);
        assert!((l_shape.bbox_fill() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sorted_by_label_and_sizes_conserve_pixels() {
        let lab = LabImage::from_fn(9, 9, |_, _| [1.0; 3]);
        let labels = Plane::from_fn(9, 9, |x, y| ((x * 31 + y * 7) % 5) as u32);
        let f = extract_features(&lab, &labels);
        assert!(f.windows(2).all(|w| w[0].label < w[1].label));
        assert_eq!(f.iter().map(|s| s.size).sum::<u64>(), 81);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn mismatched_geometry_panics() {
        let lab = LabImage::from_fn(4, 4, |_, _| [0.0; 3]);
        let labels = Plane::filled(4, 5, 0u32);
        let _ = extract_features(&lab, &labels);
    }
}
