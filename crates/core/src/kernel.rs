//! Assign-kernel dispatch and the SWAR fixed-point distance kernel.
//!
//! The quantized 9-candidate PPA distance scan is the hot inner loop of
//! the whole engine and is pure 8/16-bit integer arithmetic — exactly the
//! shape the paper's Cluster Update Unit parallelizes across D distance
//! ways in hardware. This module mirrors that parallelism in software with
//! a SWAR (SIMD-within-a-register) kernel: four pixels' truncated channel
//! codes are packed into the four 16-bit lanes of one `u64`, the per-lane
//! channel deltas are computed with carry-free lane arithmetic, and the
//! per-pixel argmin reduction preserves the scalar loop's first-wins
//! tie-break order exactly — labels are **bit-identical** to the scalar
//! path for every (size, params, threads, warm-start, faults) combination.
//!
//! # Why the labels are bit-identical
//!
//! The scalar path compares `quantizer.encode(sqrt(V))` codes, where
//! `V = dc2 + m2_over_s2 * ds2` is an f64. `encode` is monotone
//! non-decreasing in `V`, so "candidate code < best code" is equivalent to
//! `V < VB[best_code]`, where `VB[c]` is the smallest non-negative f64
//! whose code reaches `c`. [`SwarKernel`] precomputes that threshold table
//! by binary search over f64 *bit patterns* (order-isomorphic to the
//! non-negative reals) with the scalar quantizer as the oracle, and
//! replicates the scalar `V` computation bit-for-bit via two 512-entry
//! squared-delta LUTs indexed by the biased SWAR lanes. This removes the
//! per-candidate `sqrt` + divide + `round` that dominates the scalar
//! datapath while deciding every comparison identically.
//!
//! # Dispatch resolution
//!
//! [`Kernel`] is the public selection knob (params builder, per-run
//! options, fleet config, CLI). Resolution is a pure function of the
//! request and frame eligibility: `Scalar` always runs the reference
//! loop; `Swar` and `Auto` run the SWAR kernel when the frame qualifies
//! (quantized distance mode, pixel-perspective algorithm, non-adaptive)
//! and fall back to the — bit-identical — scalar loop otherwise.

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

use sslic_color::Lab8Image;

use crate::distance::{ClusterCodes, QuantKernel};
use crate::params::ParamError;
use crate::subsample::SubsetPartition;
use crate::SeedGrid;

/// Pixels evaluated per SWAR step: four 16-bit lanes of a `u64`.
const LANES: usize = 4;

/// `1` replicated into each 16-bit lane; multiplying by a value ≤ 2¹⁶−1
/// splats it across all four lanes.
const LANE_ONES: u64 = 0x0001_0001_0001_0001;

/// Which backend executes the assign phase's 9-candidate distance scan.
///
/// Selected per configuration via [`SlicParamsBuilder::kernel`], per run
/// via [`RunOptions::with_kernel`], or fleet-wide via
/// [`FleetConfigBuilder::with_kernel`]; parsed from `--kernel` on the CLI.
/// The resolved backend of each frame is reported by
/// [`FrameReport::kernel`] / `RunReport`.
///
/// All three choices produce **bit-identical labels**: the SWAR kernel is
/// an exact replay of the scalar comparisons (see the module docs), so
/// this knob only selects the execution strategy, never the result.
///
/// [`SlicParamsBuilder::kernel`]: crate::SlicParamsBuilder::kernel
/// [`RunOptions::with_kernel`]: crate::RunOptions::with_kernel
/// [`FleetConfigBuilder::with_kernel`]: crate::FleetConfigBuilder::with_kernel
/// [`FrameReport::kernel`]: crate::FrameReport::kernel
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Pick automatically: [`Kernel::Swar`] when the frame qualifies
    /// (quantized distance, pixel-perspective algorithm), scalar
    /// otherwise. The default.
    #[default]
    Auto,
    /// The reference per-pixel scalar loop.
    Scalar,
    /// The 4-lane SWAR fixed-point kernel. Falls back to the scalar loop
    /// on frames that do not qualify (float mode, center-perspective
    /// algorithms, adaptive compactness).
    Swar,
}

impl Kernel {
    /// Canonical lowercase name: `"auto"`, `"scalar"`, or `"swar"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kernel::Auto => "auto",
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
        }
    }

    /// Resolves a request against frame eligibility into the backend that
    /// actually runs. Total and deterministic: never depends on thread
    /// count, warm state, or faults.
    pub(crate) fn resolve(self, swar_eligible: bool) -> Kernel {
        match self {
            Kernel::Scalar => Kernel::Scalar,
            Kernel::Auto | Kernel::Swar if swar_eligible => Kernel::Swar,
            Kernel::Auto | Kernel::Swar => Kernel::Scalar,
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Kernel {
    type Err = ParamError;

    /// Parses a CLI-style kernel name. Only the canonical lowercase
    /// names are accepted; anything else is
    /// [`ParamError::UnknownKernel`].
    fn from_str(s: &str) -> Result<Self, ParamError> {
        match s {
            "auto" => Ok(Kernel::Auto),
            "scalar" => Ok(Kernel::Scalar),
            "swar" => Ok(Kernel::Swar),
            _ => Err(ParamError::UnknownKernel),
        }
    }
}

/// Packs four 8-bit channel codes into the four 16-bit lanes of a `u64`.
/// Wrap-free: each operand is ≤ 255 and lands in its own lane, so the
/// ORs never collide and the widest shifted value is `255 << 48`.
#[inline]
fn pack4(b: [u8; LANES]) -> u64 {
    (b[0] as u64) | ((b[1] as u64) << 16) | ((b[2] as u64) << 32) | ((b[3] as u64) << 48)
}

/// Biased per-lane channel deltas: adds `256 - center` to every lane.
/// With packed lanes ≤ 255 and the bias in `[1, 256]`, every lane sum
/// sits in `[1, 511]` — no lane ever carries into its neighbor, which is
/// what makes the lane arithmetic borrow-free without masking.
#[inline]
fn biased_deltas(packed: u64, center: u8) -> u64 {
    packed + (256 - center as u16) as u64 * LANE_ONES
}

/// Precomputed tables of the SWAR assign kernel. Built once per session
/// when the configuration qualifies (ledger-recorded alongside the other
/// scratch), then shared immutably across bands — steady-state frames
/// never touch the heap for it.
#[derive(Debug, Clone)]
pub(crate) struct SwarKernel {
    /// Channel-truncation mask replicated across the four 16-bit lanes
    /// (`(0xFF >> chan_shift) << chan_shift` per lane).
    chan_mask: u64,
    /// `lsq[i] = ((i − 256) · 100/255)²` in f64 — the L channel term of
    /// `dc2`, indexed by a biased lane value. Matches the scalar
    /// `dl * dl` rounding exactly (same two-operation f64 evaluation).
    lsq: Vec<f64>,
    /// `isq[i] = (i − 256)²` as f64 — the a/b channel terms. Exact
    /// integers (≤ 255² < 2⁵³), so identical to the scalar `da * da`.
    isq: Vec<f64>,
    /// `vb[c]` = smallest non-negative f64 `V` with
    /// `encode(sqrt(V)) ≥ c`. `vb[0]` is 0.0; the table is sorted.
    vb: Vec<f64>,
    /// Eq. 5 spatial weight `m²/S²`, bit-identical to the scalar
    /// kernel's f64 copy.
    m2_over_s2: f64,
}

impl SwarKernel {
    /// Builds the lane mask, squared-delta LUTs, and the code-threshold
    /// table from the session's scalar quantized kernel. The threshold
    /// for each code is found by binary search over f64 bit patterns
    /// (monotone-isomorphic to non-negative f64 ordering) with the
    /// scalar `encode(sqrt(V))` as the oracle, so every comparison the
    /// SWAR kernel makes reproduces a scalar comparison exactly.
    pub(crate) fn new(qk: &QuantKernel) -> SwarKernel {
        const L_SCALE: f64 = 100.0 / 255.0;
        let shift = qk.chan_shift();
        let lane = (0xFFu64 >> shift) << shift;
        let lsq: Vec<f64> = (0..512)
            .map(|i| {
                let d = (i - 256) as f64 * L_SCALE;
                d * d
            })
            .collect();
        let isq: Vec<f64> = (0..512)
            .map(|i| {
                let d = (i - 256) as f64;
                d * d
            })
            .collect();

        let q = qk.quantizer();
        let code_of = |bits: u64| q.encode(f64::from_bits(bits).sqrt());
        let max_code = q.max_code();
        let mut vb = Vec::with_capacity(max_code as usize + 1);
        vb.push(0.0f64);
        let mut prev = 0u64; // bit pattern of vb[c - 1]
        for c in 1..=max_code {
            if code_of(prev) >= c {
                // The previous threshold already reaches this code (codes
                // can be skipped when the quantizer step is coarse).
                vb.push(f64::from_bits(prev));
                continue;
            }
            // Invariant: code_of(lo) < c ≤ code_of(hi); the least
            // satisfying bit pattern is found in ≤ 64 oracle calls.
            let mut lo = prev;
            let mut hi = f64::INFINITY.to_bits();
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if code_of(mid) >= c {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            vb.push(f64::from_bits(hi));
            prev = hi;
        }

        SwarKernel {
            chan_mask: lane * LANE_ONES,
            lsq,
            isq,
            vb,
            m2_over_s2: qk.m2_over_s2(),
        }
    }

    /// Heap bytes held by the tables, for the session allocation ledger.
    pub(crate) fn table_bytes(&self) -> u64 {
        ((self.lsq.len() + self.isq.len() + self.vb.len()) * std::mem::size_of::<f64>()) as u64
    }

    /// The threshold a future candidate must beat after a candidate with
    /// value `v` became the current best: `vb[encode(sqrt(v))]`. A later
    /// candidate `v'` wins under the scalar rule (`code' < code`) exactly
    /// when `v' < vb[code]`, because `encode(sqrt(·))` is monotone.
    #[inline]
    fn beat_threshold(&self, v: f64) -> f64 {
        let code = self.vb[1..].partition_point(|&b| b <= v);
        self.vb[code]
    }

    /// The SWAR replacement of the scalar per-band assign loop: walks
    /// each grid-cell run of each row (pixels of one run share their
    /// 9-candidate set), gathers subset-surviving pixels four at a time
    /// into SWAR lanes, and writes the per-pixel argmin labels into the
    /// band stripe. Pixels skipped by subset filtering or preemption keep
    /// their stripe value, exactly like the scalar loop. Returns the
    /// number of pixels assigned (the scalar loop's `assigned` counter).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assign_rows(
        &self,
        grid: &SeedGrid,
        lab8: &Lab8Image,
        codes: &[ClusterCodes],
        active: &[bool],
        partition: Option<(&SubsetPartition, u32)>,
        preempting: bool,
        rows: Range<usize>,
        stripe: &mut [u32],
    ) -> u64 {
        let w = grid.width();
        let h = grid.height();
        let cols = grid.cols();
        let grows = grid.rows();
        let mut assigned = 0u64;
        for y in rows.clone() {
            let cy = (y * grows / h).min(grows - 1);
            let row_off = (y - rows.start) * w;
            let srow = &mut stripe[row_off..row_off + w];
            let lrow = lab8.l.row(y);
            let arow = lab8.a.row(y);
            let brow = lab8.b.row(y);
            for cx in 0..cols {
                // The run of columns mapping to grid cell `cx`:
                // `x * cols / w == cx` ⇔ `x ∈ [⌈cx·w/cols⌉, ⌈(cx+1)·w/cols⌉)`.
                let x0 = (cx * w + cols - 1) / cols;
                let x1 = ((cx + 1) * w + cols - 1) / cols;
                if x0 >= x1 {
                    continue;
                }
                let nine = grid.nine_neighbors_of_cell(cx, cy);
                // Preemption: the whole run shares one candidate set, so
                // one all-frozen check replaces the per-pixel checks.
                if preempting && nine.iter().all(|&k| !active[k]) {
                    continue;
                }
                let mut gx = [0usize; LANES];
                let mut n = 0usize;
                for x in x0..x1 {
                    if let Some((part, s)) = partition {
                        if part.subset_of(x, y) != s {
                            continue;
                        }
                    }
                    gx[n] = x;
                    n += 1;
                    if n == LANES {
                        self.scan_group(lrow, arow, brow, &gx, n, y, &nine, codes, srow);
                        assigned += LANES as u64;
                        n = 0;
                    }
                }
                if n > 0 {
                    self.scan_group(lrow, arow, brow, &gx, n, y, &nine, codes, srow);
                    assigned += n as u64;
                }
            }
        }
        assigned
    }

    /// Scans the 9 candidates for up to four gathered pixels at once.
    /// Lanes `n..LANES` of a partial group hold stale packs and are never
    /// read back. The per-lane comparison replays the scalar first-wins
    /// strict-`<` argmin through the code-threshold table.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn scan_group(
        &self,
        lrow: &[u8],
        arow: &[u8],
        brow: &[u8],
        gx: &[usize; LANES],
        n: usize,
        y: usize,
        nine: &[usize; 9],
        codes: &[ClusterCodes],
        srow: &mut [u32],
    ) {
        let mut lb = [0u8; LANES];
        let mut ab = [0u8; LANES];
        let mut bb = [0u8; LANES];
        for j in 0..n {
            lb[j] = lrow[gx[j]];
            ab[j] = arow[gx[j]];
            bb[j] = brow[gx[j]];
        }
        // Channel truncation for all four pixels at once: the scalar
        // `(code >> s) << s` is the same bit-clear as `code & mask`, and
        // the AND never crosses lane boundaries.
        let pl = pack4(lb) & self.chan_mask;
        let pa = pack4(ab) & self.chan_mask;
        let pb = pack4(bb) & self.chan_mask;
        let mut best = [0u32; LANES];
        let mut thresh = [0f64; LANES];
        for (i, &k) in nine.iter().enumerate() {
            let c = &codes[k];
            // Center codes are truncated 8-bit values, so `as u8` is
            // lossless here.
            let dl = biased_deltas(pl, c.l as u8);
            let da = biased_deltas(pa, c.a as u8);
            let db = biased_deltas(pb, c.b as u8);
            let dy = (y as i32 - c.y) as f64;
            let dy2 = dy * dy;
            for j in 0..n {
                let sh = 16 * j as u32;
                let il = ((dl >> sh) & 0xFFFF) as usize;
                let ia = ((da >> sh) & 0xFFFF) as usize;
                let ib = ((db >> sh) & 0xFFFF) as usize;
                // Identical f64 evaluation order to the scalar
                // `dist_code`: (dl² + da²) + db², dx² + dy², then
                // dc2 + m²/S² · ds2.
                let dc2 = self.lsq[il] + self.isq[ia] + self.isq[ib];
                let dx = (gx[j] as i32 - c.x) as f64;
                let ds2 = dx * dx + dy2;
                let v = dc2 + self.m2_over_s2 * ds2;
                if i == 0 || v < thresh[j] {
                    best[j] = k as u32;
                    thresh[j] = self.beat_threshold(v);
                }
            }
        }
        for j in 0..n {
            srow[gx[j]] = best[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_default_is_auto() {
        assert_eq!(Kernel::default(), Kernel::Auto);
    }

    #[test]
    fn kernel_parses_canonical_names() {
        assert_eq!("auto".parse::<Kernel>(), Ok(Kernel::Auto));
        assert_eq!("scalar".parse::<Kernel>(), Ok(Kernel::Scalar));
        assert_eq!("swar".parse::<Kernel>(), Ok(Kernel::Swar));
    }

    #[test]
    fn kernel_rejects_unknown_and_non_canonical_names() {
        for s in ["", "Swar", "SCALAR", "simd", "auto ", "fast"] {
            assert_eq!(s.parse::<Kernel>(), Err(ParamError::UnknownKernel), "{s:?}");
        }
    }

    #[test]
    fn kernel_display_round_trips() {
        for k in [Kernel::Auto, Kernel::Scalar, Kernel::Swar] {
            assert_eq!(k.to_string().parse::<Kernel>(), Ok(k));
        }
    }

    #[test]
    fn resolution_rules() {
        assert_eq!(Kernel::Auto.resolve(true), Kernel::Swar);
        assert_eq!(Kernel::Auto.resolve(false), Kernel::Scalar);
        assert_eq!(Kernel::Swar.resolve(true), Kernel::Swar);
        assert_eq!(Kernel::Swar.resolve(false), Kernel::Scalar);
        assert_eq!(Kernel::Scalar.resolve(true), Kernel::Scalar);
        assert_eq!(Kernel::Scalar.resolve(false), Kernel::Scalar);
    }

    #[test]
    fn pack4_places_each_byte_in_its_lane() {
        assert_eq!(pack4([1, 2, 3, 4]), 0x0004_0003_0002_0001);
        assert_eq!(pack4([255; 4]), 0x00FF_00FF_00FF_00FF);
    }

    #[test]
    fn biased_deltas_stay_borrow_free() {
        // Extremes: lane 255 against center 0 → 511; lane 0 against
        // center 255 → 1. No lane disturbs its neighbor.
        let p = pack4([255, 0, 255, 0]);
        let d = biased_deltas(p, 0);
        assert_eq!(d & 0xFFFF, 511);
        assert_eq!((d >> 16) & 0xFFFF, 256);
        let d = biased_deltas(p, 255);
        assert_eq!(d & 0xFFFF, 256);
        assert_eq!((d >> 16) & 0xFFFF, 1);
    }

    #[test]
    fn threshold_table_is_sorted_and_starts_at_zero() {
        let qk = QuantKernel::new(8, 8, 10.0, 20.0);
        let sk = SwarKernel::new(&qk);
        assert_eq!(sk.vb[0], 0.0);
        assert!(sk.vb.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sk.vb.len(), qk.quantizer().max_code() as usize + 1);
    }

    #[test]
    fn thresholds_replay_the_scalar_code_comparison() {
        // For a sweep of V values, `v < vb[code(best)]` must agree with
        // the scalar `code(v) < code(best)` comparison exactly.
        let qk = QuantKernel::new(8, 8, 10.0, 20.0);
        let sk = SwarKernel::new(&qk);
        let code = |v: f64| qk.quantizer().encode(v.sqrt());
        let mut v = 0.0f64;
        while v < 200_000.0 {
            let c = code(v);
            // beat_threshold(v) is vb[code(v)].
            assert_eq!(sk.beat_threshold(v), sk.vb[c as usize], "v = {v}");
            // A value strictly below the threshold has a strictly
            // smaller code; a value at/above it does not.
            if c > 0 {
                let below = f64::from_bits(sk.vb[c as usize].to_bits() - 1);
                assert!(code(below) < c, "v = {v}");
            }
            assert!(code(sk.vb[c as usize]) >= c, "v = {v}");
            v = v * 1.17 + 0.73;
        }
    }
}
