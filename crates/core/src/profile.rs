//! Per-phase wall-clock accounting, reproducing the paper's Table 1 time
//! breakdown (color conversion / distance+min / center update / other).

use std::time::{Duration, Instant};

/// The pipeline phases SLIC/S-SLIC execution time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// RGB → CIELAB conversion.
    ColorConversion,
    /// Grid construction, seeding, buffer setup.
    Init,
    /// Color-space distance computation and minimum selection — the
    /// cluster-assignment inner loop.
    DistanceMin,
    /// Sigma accumulation and center recomputation.
    CenterUpdate,
    /// Connectivity enforcement post-pass.
    Connectivity,
}

/// All phases, in pipeline order.
pub const PHASES: [Phase; 5] = [
    Phase::ColorConversion,
    Phase::Init,
    Phase::DistanceMin,
    Phase::CenterUpdate,
    Phase::Connectivity,
];

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::ColorConversion => 0,
            Phase::Init => 1,
            Phase::DistanceMin => 2,
            Phase::CenterUpdate => 3,
            Phase::Connectivity => 4,
        }
    }

    /// Human-readable phase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ColorConversion => "color conversion",
            Phase::Init => "init",
            Phase::DistanceMin => "distance + min",
            Phase::CenterUpdate => "center update",
            Phase::Connectivity => "connectivity",
        }
    }

    /// Stable snake_case identifier used by trace events and run reports.
    pub fn key(self) -> &'static str {
        match self {
            Phase::ColorConversion => "color_conversion",
            Phase::Init => "init",
            Phase::DistanceMin => "distance_min",
            Phase::CenterUpdate => "center_update",
            Phase::Connectivity => "connectivity",
        }
    }
}

/// Accumulated time per [`Phase`].
///
/// # Example
///
/// ```
/// use sslic_core::profile::{Phase, PhaseBreakdown};
/// use std::time::Duration;
///
/// let mut b = PhaseBreakdown::new();
/// b.record(Phase::DistanceMin, Duration::from_millis(60));
/// b.record(Phase::CenterUpdate, Duration::from_millis(40));
/// assert_eq!(b.total(), Duration::from_millis(100));
/// assert!((b.percent(Phase::DistanceMin) - 60.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    times: [Duration; 5],
}

impl PhaseBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` to `phase`.
    pub fn record(&mut self, phase: Phase, elapsed: Duration) {
        self.times[phase.index()] += elapsed;
    }

    /// Times `f`, attributing its runtime to `phase`, and returns its
    /// result.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(phase, start.elapsed());
        out
    }

    /// Accumulated time in `phase`.
    pub fn phase_time(&self, phase: Phase) -> Duration {
        self.times[phase.index()]
    }

    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.times.iter().sum()
    }

    /// `phase`'s share of the total, in percent (0 when nothing was
    /// recorded).
    pub fn percent(&self, phase: Phase) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.phase_time(phase).as_secs_f64() / total
        }
    }

    /// Merges another breakdown into this one (for corpus-level totals).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for (t, o) in self.times.iter_mut().zip(other.times.iter()) {
            *t += *o;
        }
    }

    /// The four-column grouping of the paper's Table 1:
    /// `(color conversion, distance+min, center update, other)` in percent,
    /// where *other* collects init and connectivity ("the connectivity
    /// enforcement, and some initialization tasks", §4.1).
    pub fn table1_percents(&self) -> (f64, f64, f64, f64) {
        let other = self.percent(Phase::Init) + self.percent(Phase::Connectivity);
        (
            self.percent(Phase::ColorConversion),
            self.percent(Phase::DistanceMin),
            self.percent(Phase::CenterUpdate),
            other,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_breakdown_has_zero_total_and_percents() {
        let b = PhaseBreakdown::new();
        assert_eq!(b.total(), Duration::ZERO);
        for p in PHASES {
            assert_eq!(b.percent(p), 0.0);
        }
    }

    #[test]
    fn record_accumulates() {
        let mut b = PhaseBreakdown::new();
        b.record(Phase::DistanceMin, Duration::from_millis(10));
        b.record(Phase::DistanceMin, Duration::from_millis(5));
        assert_eq!(b.phase_time(Phase::DistanceMin), Duration::from_millis(15));
    }

    #[test]
    fn time_returns_closure_result_and_records() {
        let mut b = PhaseBreakdown::new();
        // Sleep inside the timed closure so the recorded duration has a
        // deterministic lower bound the assertion can actually check.
        let v = b.time(Phase::Init, || {
            std::thread::sleep(Duration::from_millis(1));
            41 + 1
        });
        assert_eq!(v, 42);
        assert!(b.phase_time(Phase::Init) >= Duration::from_millis(1));
        assert_eq!(b.phase_time(Phase::DistanceMin), Duration::ZERO);
    }

    #[test]
    fn percents_sum_to_hundred() {
        let mut b = PhaseBreakdown::new();
        b.record(Phase::ColorConversion, Duration::from_millis(20));
        b.record(Phase::DistanceMin, Duration::from_millis(60));
        b.record(Phase::CenterUpdate, Duration::from_millis(15));
        b.record(Phase::Connectivity, Duration::from_millis(5));
        let sum: f64 = PHASES.iter().map(|&p| b.percent(p)).sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn table1_grouping_matches_paper_columns() {
        let mut b = PhaseBreakdown::new();
        b.record(Phase::ColorConversion, Duration::from_millis(19));
        b.record(Phase::DistanceMin, Duration::from_millis(60));
        b.record(Phase::CenterUpdate, Duration::from_millis(18));
        b.record(Phase::Init, Duration::from_millis(2));
        b.record(Phase::Connectivity, Duration::from_millis(1));
        let (cc, dm, cu, other) = b.table1_percents();
        assert!((cc - 19.0).abs() < 1e-6);
        assert!((dm - 60.0).abs() < 1e-6);
        assert!((cu - 18.0).abs() < 1e-6);
        assert!((other - 3.0).abs() < 1e-6);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = PhaseBreakdown::new();
        a.record(Phase::DistanceMin, Duration::from_millis(10));
        let mut b = PhaseBreakdown::new();
        b.record(Phase::DistanceMin, Duration::from_millis(20));
        b.record(Phase::Init, Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.phase_time(Phase::DistanceMin), Duration::from_millis(30));
        assert_eq!(a.phase_time(Phase::Init), Duration::from_millis(1));
    }

    #[test]
    fn phase_names_are_nonempty() {
        for p in PHASES {
            assert!(!p.name().is_empty());
        }
    }
}
