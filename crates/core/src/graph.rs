//! Region adjacency graph (RAG) over a superpixel label map.
//!
//! Superpixel segmentation exists to "reduce the complexity of image
//! processing tasks later in the computer vision pipeline" (paper §1) —
//! and the first thing most downstream algorithms build on top of a label
//! map is its adjacency structure. This module provides it: nodes are
//! superpixels, edges connect 4-adjacent superpixels and carry the shared
//! boundary length and region statistics.

use std::collections::HashMap;

use sslic_image::Plane;

/// Per-superpixel statistics gathered while building the graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegionStats {
    /// Pixel count.
    pub size: u64,
    /// Centroid column.
    pub centroid_x: f64,
    /// Centroid row.
    pub centroid_y: f64,
    /// Total boundary length (exposed 4-neighbour edges, image border
    /// included).
    pub perimeter: u64,
}

/// The region adjacency graph of a label map.
///
/// # Example
///
/// ```
/// use sslic_core::graph::RegionAdjacency;
/// use sslic_image::Plane;
///
/// // Two vertical halves: one edge, shared boundary of `height` pixels.
/// let labels = Plane::from_fn(8, 6, |x, _| if x < 4 { 0u32 } else { 1 });
/// let rag = RegionAdjacency::build(&labels);
/// assert_eq!(rag.region_count(), 2);
/// assert_eq!(rag.edges().len(), 1);
/// assert_eq!(rag.boundary_length(0, 1), Some(6));
/// ```
#[derive(Debug, Clone)]
pub struct RegionAdjacency {
    stats: HashMap<u32, RegionStats>,
    /// `(a, b) -> shared boundary length`, with `a < b`.
    edges: HashMap<(u32, u32), u64>,
}

impl RegionAdjacency {
    /// Builds the graph from a label map in one scan.
    pub fn build(labels: &Plane<u32>) -> Self {
        let (w, h) = (labels.width(), labels.height());
        let mut stats: HashMap<u32, RegionStats> = HashMap::new();
        let mut edges: HashMap<(u32, u32), u64> = HashMap::new();
        for y in 0..h {
            for x in 0..w {
                let l = labels[(x, y)];
                let s = stats.entry(l).or_default();
                s.size += 1;
                s.centroid_x += x as f64;
                s.centroid_y += y as f64;

                let mut exposed = 0u64;
                if x == 0 || y == 0 {
                    exposed += (x == 0) as u64 + (y == 0) as u64;
                }
                if x + 1 < w {
                    let r = labels[(x + 1, y)];
                    if r != l {
                        exposed += 1;
                        *edges.entry(ordered(l, r)).or_insert(0) += 1;
                    }
                } else {
                    exposed += 1;
                }
                if y + 1 < h {
                    let b = labels[(x, y + 1)];
                    if b != l {
                        exposed += 1;
                        *edges.entry(ordered(l, b)).or_insert(0) += 1;
                    }
                } else {
                    exposed += 1;
                }
                // Left/top exposure toward *different* labels was already
                // counted from the neighbour's side for the edge map, but
                // the perimeter needs it here.
                if x > 0 && labels[(x - 1, y)] != l {
                    exposed += 1;
                }
                if y > 0 && labels[(x, y - 1)] != l {
                    exposed += 1;
                }
                if let Some(s) = stats.get_mut(&l) {
                    s.perimeter += exposed;
                }
            }
        }
        for s in stats.values_mut() {
            if s.size > 0 {
                s.centroid_x /= s.size as f64;
                s.centroid_y /= s.size as f64;
            }
        }
        RegionAdjacency { stats, edges }
    }

    /// Number of distinct superpixels present.
    pub fn region_count(&self) -> usize {
        self.stats.len()
    }

    /// Statistics for superpixel `label`, if present.
    pub fn stats(&self, label: u32) -> Option<&RegionStats> {
        self.stats.get(&label)
    }

    /// All adjacency edges as `((a, b), shared boundary length)` with
    /// `a < b`, in unspecified order.
    pub fn edges(&self) -> Vec<((u32, u32), u64)> {
        self.edges.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Shared boundary length between two superpixels, or `None` if they
    /// are not adjacent.
    pub fn boundary_length(&self, a: u32, b: u32) -> Option<u64> {
        self.edges.get(&ordered(a, b)).copied()
    }

    /// The labels adjacent to `label`.
    pub fn neighbors(&self, label: u32) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .edges
            .keys()
            .filter_map(|&(a, b)| {
                if a == label {
                    Some(b)
                } else if b == label {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Mean neighbour count — the "complexity reduction" number downstream
    /// stages care about (a few dozen edges instead of millions of pixel
    /// pairs).
    pub fn mean_degree(&self) -> f64 {
        if self.stats.is_empty() {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.stats.len() as f64
        }
    }
}

#[inline]
fn ordered(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_region_split() {
        let labels = Plane::from_fn(8, 6, |x, _| if x < 4 { 0u32 } else { 1 });
        let rag = RegionAdjacency::build(&labels);
        assert_eq!(rag.region_count(), 2);
        assert_eq!(rag.boundary_length(0, 1), Some(6));
        assert_eq!(rag.boundary_length(1, 0), Some(6), "order-insensitive");
        assert_eq!(rag.neighbors(0), vec![1]);
        assert_eq!(rag.mean_degree(), 1.0);
    }

    #[test]
    fn quadrant_grid_adjacency() {
        let labels = Plane::from_fn(8, 8, |x, y| ((x / 4) + 2 * (y / 4)) as u32);
        let rag = RegionAdjacency::build(&labels);
        assert_eq!(rag.region_count(), 4);
        // 4 side-sharing pairs; diagonal quadrants are NOT 4-adjacent.
        assert_eq!(rag.edges().len(), 4);
        assert_eq!(rag.boundary_length(0, 3), None);
        assert_eq!(rag.boundary_length(0, 1), Some(4));
        assert_eq!(rag.neighbors(0), vec![1, 2]);
    }

    #[test]
    fn stats_are_correct_for_known_shapes() {
        let labels = Plane::from_fn(4, 4, |x, _| if x < 2 { 7u32 } else { 9 });
        let rag = RegionAdjacency::build(&labels);
        let s = rag.stats(7).expect("region 7 present");
        assert_eq!(s.size, 8);
        assert!((s.centroid_x - 0.5).abs() < 1e-12);
        assert!((s.centroid_y - 1.5).abs() < 1e-12);
        // 2×4 block: perimeter = 2*(2+4) = 12 exposed edges.
        assert_eq!(s.perimeter, 12);
        assert!(rag.stats(8).is_none());
    }

    #[test]
    fn uniform_map_has_no_edges() {
        let labels = Plane::filled(5, 5, 3u32);
        let rag = RegionAdjacency::build(&labels);
        assert_eq!(rag.region_count(), 1);
        assert!(rag.edges().is_empty());
        assert_eq!(rag.mean_degree(), 0.0);
        assert_eq!(rag.stats(3).map(|s| s.perimeter), Some(20));
    }

    #[test]
    fn total_size_is_pixel_count() {
        let labels = Plane::from_fn(9, 7, |x, y| ((x + 2 * y) % 5) as u32);
        let rag = RegionAdjacency::build(&labels);
        let total: u64 = (0..5).filter_map(|l| rag.stats(l)).map(|s| s.size).sum();
        assert_eq!(total, 63);
    }
}
