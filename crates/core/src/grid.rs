/// The regular seed grid SLIC initializes its cluster centers on, and the
/// static pixel → 9-nearest-centers mapping the pixel-perspective
/// architecture precomputes (paper §4.3: "The image is statically split
/// into tiled regions based on the initial 9 closest SPs").
///
/// The grid has `cols × rows` cells; cell `(cx, cy)` owns the pixels of one
/// tile and cluster index `cy * cols + cx`. A pixel's 9 candidate clusters
/// are the 3×3 block of cells around its own cell, clamped at image borders
/// (border pixels therefore see some duplicate candidates — exactly what
/// fixed 9-way hardware does).
///
/// # Example
///
/// ```
/// use sslic_core::SeedGrid;
///
/// let grid = SeedGrid::new(192, 108, 100);
/// assert!(grid.cluster_count() >= 90 && grid.cluster_count() <= 110);
/// let nine = grid.nine_neighbors_of_pixel(96, 54);
/// assert_eq!(nine.len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedGrid {
    width: usize,
    height: usize,
    cols: usize,
    rows: usize,
}

impl SeedGrid {
    /// Builds the grid for an image of `width × height` pixels targeting
    /// `superpixels` clusters. The realized cluster count is
    /// `cols × rows ≈ superpixels` (the standard SLIC rounding).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(width: usize, height: usize, superpixels: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert!(superpixels > 0, "superpixel count must be nonzero");
        let spacing = ((width * height) as f64 / superpixels as f64).sqrt();
        let cols = ((width as f64 / spacing).round() as usize).max(1);
        let rows = ((height as f64 / spacing).round() as usize).max(1);
        SeedGrid {
            width,
            height,
            cols,
            rows,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Realized number of clusters (`cols × rows`).
    pub fn cluster_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Mean grid spacing `S` in pixels (used by the distance normalization
    /// of Eq. 5).
    pub fn spacing(&self) -> f32 {
        ((self.width * self.height) as f32 / self.cluster_count() as f32).sqrt()
    }

    /// Initial (unperturbed) center of cluster `k`, at the middle of its
    /// cell.
    ///
    /// # Panics
    ///
    /// Panics if `k >= cluster_count()`.
    pub fn seed_position(&self, k: usize) -> (f32, f32) {
        assert!(k < self.cluster_count(), "cluster index out of range");
        let cx = k % self.cols;
        let cy = k / self.cols;
        (
            (cx as f32 + 0.5) * self.width as f32 / self.cols as f32,
            (cy as f32 + 0.5) * self.height as f32 / self.rows as f32,
        )
    }

    /// The grid cell that owns pixel `(x, y)`.
    #[inline]
    pub fn cell_of_pixel(&self, x: usize, y: usize) -> (usize, usize) {
        debug_assert!(x < self.width && y < self.height);
        (
            (x * self.cols / self.width).min(self.cols - 1),
            (y * self.rows / self.height).min(self.rows - 1),
        )
    }

    /// The cluster whose tile owns pixel `(x, y)` — the static initial
    /// assignment the accelerator precomputes offline.
    #[inline]
    pub fn home_cluster_of_pixel(&self, x: usize, y: usize) -> usize {
        let (cx, cy) = self.cell_of_pixel(x, y);
        cy * self.cols + cx
    }

    /// The 9 candidate cluster indices for a cell (3×3 block clamped at
    /// borders; entries may repeat at edges, matching fixed 9-way
    /// hardware).
    #[inline]
    pub fn nine_neighbors_of_cell(&self, cx: usize, cy: usize) -> [usize; 9] {
        let mut out = [0usize; 9];
        let mut i = 0;
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = (cx as i64 + dx).clamp(0, self.cols as i64 - 1) as usize;
                let ny = (cy as i64 + dy).clamp(0, self.rows as i64 - 1) as usize;
                out[i] = ny * self.cols + nx;
                i += 1;
            }
        }
        out
    }

    /// The 9 candidate cluster indices for a pixel.
    #[inline]
    pub fn nine_neighbors_of_pixel(&self, x: usize, y: usize) -> [usize; 9] {
        let (cx, cy) = self.cell_of_pixel(x, y);
        self.nine_neighbors_of_cell(cx, cy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realized_count_tracks_target() {
        let g = SeedGrid::new(1920, 1080, 5000);
        let k = g.cluster_count();
        assert!((4500..=5500).contains(&k), "realized K = {k}");
    }

    #[test]
    fn spacing_matches_sqrt_n_over_k() {
        let g = SeedGrid::new(1920, 1080, 5000);
        let s = g.spacing();
        assert!((s - 20.36).abs() < 1.5, "S = {s}");
    }

    #[test]
    fn seeds_are_inside_the_image() {
        let g = SeedGrid::new(100, 60, 24);
        for k in 0..g.cluster_count() {
            let (x, y) = g.seed_position(k);
            assert!(x > 0.0 && x < 100.0);
            assert!(y > 0.0 && y < 60.0);
        }
    }

    #[test]
    fn every_pixel_has_a_home_cluster() {
        let g = SeedGrid::new(37, 23, 12);
        for y in 0..23 {
            for x in 0..37 {
                assert!(g.home_cluster_of_pixel(x, y) < g.cluster_count());
            }
        }
    }

    #[test]
    fn home_cluster_is_among_nine_neighbors() {
        let g = SeedGrid::new(64, 48, 20);
        for y in (0..48).step_by(5) {
            for x in (0..64).step_by(5) {
                let home = g.home_cluster_of_pixel(x, y);
                let nine = g.nine_neighbors_of_pixel(x, y);
                assert!(nine.contains(&home));
            }
        }
    }

    #[test]
    fn interior_cell_has_nine_distinct_neighbors() {
        let g = SeedGrid::new(100, 100, 25); // 5×5 grid
        let nine = g.nine_neighbors_of_cell(2, 2);
        let set: std::collections::HashSet<usize> = nine.iter().copied().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn corner_cell_neighbors_are_clamped() {
        let g = SeedGrid::new(100, 100, 25);
        let nine = g.nine_neighbors_of_cell(0, 0);
        // Clamping duplicates: only 4 distinct cells exist in the corner.
        let set: std::collections::HashSet<usize> = nine.iter().copied().collect();
        assert_eq!(set.len(), 4);
        assert!(nine.iter().all(|&k| k < g.cluster_count()));
    }

    #[test]
    fn single_cluster_degenerate_grid() {
        let g = SeedGrid::new(10, 10, 1);
        assert_eq!(g.cluster_count(), 1);
        assert_eq!(g.nine_neighbors_of_pixel(5, 5), [0; 9]);
    }

    #[test]
    fn tiny_image_more_superpixels_than_pixels_is_clamped_sanely() {
        let g = SeedGrid::new(4, 4, 64);
        assert!(g.cluster_count() <= 64);
        for y in 0..4 {
            for x in 0..4 {
                assert!(g.home_cluster_of_pixel(x, y) < g.cluster_count());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn seed_position_bounds_checked() {
        let g = SeedGrid::new(10, 10, 4);
        let _ = g.seed_position(g.cluster_count());
    }
}
