use std::ops::Range;

use sslic_color::{float, hw::HwColorConverter, Lab8Image, LabImage};
use sslic_image::{Plane, RgbImage};
use sslic_obs::{LogicalClock, Recorder, Value};

use crate::cluster::{init_clusters, Cluster};
use crate::connectivity::enforce_connectivity;
use crate::distance::{dist2_float, ClusterCodes, DistanceMode, QuantKernel};
use crate::instrument::RunCounters;
use crate::parallel::{band_rows, run_bands};
use crate::profile::{Phase, PhaseBreakdown};
use crate::subsample::{SubsetPartition, SubsetStrategy};
use crate::{SeedGrid, SlicParams};

/// Which SLIC variant the [`Segmenter`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Original SLIC: each cluster scans a `2S×2S` window per iteration
    /// (the paper's center-perspective architecture, Fig. 1a).
    SlicCpa,
    /// gSLIC-style SLIC: each pixel considers its 9 nearest initial
    /// centers every iteration (pixel perspective without subsampling).
    SlicPpa,
    /// S-SLIC, pixel-perspective: pixels split into `subsets` equal groups
    /// traversed round-robin; one group per center-update step (the
    /// paper's primary algorithm, Fig. 1b).
    SSlicPpa {
        /// Number of pixel subsets `P` (subsampling ratio `1/P`).
        subsets: u32,
        /// Spatial layout of the subsets.
        strategy: SubsetStrategy,
    },
    /// S-SLIC, center-perspective: the superpixel centers are split into
    /// `subsets` groups; one group is updated per step (the examined
    /// alternative of §3).
    SSlicCpa {
        /// Number of center subsets `P`.
        subsets: u32,
    },
}

impl Algorithm {
    /// Number of sub-iterations that make up one full-image pass.
    pub fn steps_per_full_pass(&self) -> u32 {
        match self {
            Algorithm::SlicCpa | Algorithm::SlicPpa => 1,
            Algorithm::SSlicPpa { subsets, .. } | Algorithm::SSlicCpa { subsets } => *subsets,
        }
    }

    /// Stable snake_case identifier used by trace events and run reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SlicCpa => "slic_cpa",
            Algorithm::SlicPpa => "slic_ppa",
            Algorithm::SSlicPpa { .. } => "sslic_ppa",
            Algorithm::SSlicCpa { .. } => "sslic_cpa",
        }
    }
}

/// Fault-injection hooks the engine invokes at architecturally meaningful
/// points, modeling soft errors in the accelerator's state-holding
/// elements. Implemented by `sslic-fault`; every method defaults to a
/// no-op, and a no-op implementation leaves the segmentation bit-identical
/// to the hook-free entry points.
///
/// The engine treats whatever the hooks leave behind as untrusted: centers
/// are clamped back into the image box (and non-finite fields replaced),
/// out-of-range labels are repaired to the pixel's home cluster, and the
/// iteration budget of [`SlicParams::iterations`] bounds the run
/// unconditionally — corrupted state can degrade quality but never hang or
/// panic the engine. Any repair marks the result
/// [`SegmentationStatus::Degraded`].
/// Hooks take `&self`: injection is expected to be a pure function of the
/// corrupted addresses (implementations keep any tallies in interior-
/// mutable cells), which is what makes fault injection compose with the
/// banded multi-threaded execution layer — the hooks run at serial
/// synchronization points (before the first iteration, after each center
/// reduction), never inside a worker, so the corruption they apply is
/// independent of the thread count by construction.
pub trait StepFaults {
    /// Called once, before the first iteration, with the quantized pixel
    /// features (the accelerator's channel-memory contents). Only invoked
    /// when the pixel features exist, i.e. in quantized distance mode or
    /// when the input is a [`SegmentRequest::Lab8`].
    fn corrupt_lab8(&self, _lab8: &mut Lab8Image) {}

    /// Called after the center update of step `step` with the engine's
    /// center registers — the landing spot for bit flips in the sigma
    /// accumulators / center register file between iterations.
    fn corrupt_centers(&self, _step: u32, _clusters: &mut [Cluster]) {}
}

/// The input of one segmentation run: which color representation the
/// pixels arrive in. Together with [`RunOptions`] this replaces the six
/// legacy `segment_*` entry points — every combination of input
/// representation × warm start × fault hooks is one [`Segmenter::run`]
/// call.
#[derive(Debug, Clone, Copy)]
pub enum SegmentRequest<'a> {
    /// An RGB image; CIELAB conversion runs first (and is charged to the
    /// [`Phase::ColorConversion`] breakdown slot). The conversion route
    /// follows the distance mode: the accelerator's LUT converter in
    /// quantized mode, the exact float converter otherwise.
    Rgb(&'a RgbImage),
    /// A pre-converted float CIELAB image; conversion is charged zero time
    /// (useful when sweeping algorithms over one corpus). In quantized
    /// mode the pixels are first encoded to 8-bit codes so the datapath
    /// sees the representation the accelerator's channel memories hold.
    Lab(&'a LabImage),
    /// A pre-encoded 8-bit CIELAB image — exactly the accelerator's
    /// channel-memory contents. The float working image is decoded from
    /// the supplied codes, so assignment and sigma accumulation see this
    /// data bit for bit; in quantized mode the codes also feed the
    /// distance datapath directly. This is the entry point for externally
    /// converted (or externally corrupted) pixel features.
    Lab8(&'a Lab8Image),
}

/// Cross-cutting options of one segmentation run. The struct is the
/// extension point for new engine concerns: adding a field here reaches
/// every input representation at once instead of doubling the
/// `segment_*` surface.
///
/// # Example
///
/// ```
/// use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
/// use sslic_image::synthetic::SyntheticImage;
///
/// let img = SyntheticImage::builder(64, 48).seed(2).regions(5).build();
/// let seg = Segmenter::sslic_ppa(SlicParams::builder(80).iterations(4).build(), 2);
/// let cold = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
/// // Re-run warm-started from the converged centers.
/// let warm = seg.run(
///     SegmentRequest::Rgb(&img.rgb),
///     &RunOptions::new().with_warm_start(cold.clusters()),
/// );
/// assert_eq!(warm.labels().len(), 64 * 48);
/// ```
#[derive(Default, Clone, Copy)]
pub struct RunOptions<'a> {
    /// Initial cluster centers from a previous frame, replacing grid
    /// seeding (no gradient perturbation) — the temporal warm start a
    /// 30 fps video pipeline uses. Must carry exactly
    /// [`SeedGrid::cluster_count`] clusters for this image's realized
    /// grid, since the static 9-neighborhood tiling must stay valid.
    pub warm_start: Option<&'a [Cluster]>,
    /// Fault-injection hooks, consulted at the points documented on
    /// [`StepFaults`]. `None` (or hooks that never mutate anything)
    /// leaves the output bit-identical to the hook-free run.
    pub faults: Option<&'a dyn StepFaults>,
    /// Observability recorder. When set, the engine emits spans and
    /// events keyed by logical clocks (step, band) at its serial
    /// synchronization points: a `core.run` span, per-step `core.step`
    /// spans, per-band counter events from the assignment and
    /// center-update passes, phase attribution, and repair events. The
    /// emission schedule is a pure function of the workload, so a
    /// deterministic-mode trace is byte-identical across repeats and
    /// thread counts. Recording never changes the segmentation output.
    pub recorder: Option<&'a Recorder>,
}

impl<'a> RunOptions<'a> {
    /// Default options: cold start, no fault hooks.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Warm-starts the run from `clusters` (see
    /// [`RunOptions::warm_start`]).
    pub fn with_warm_start(mut self, clusters: &'a [Cluster]) -> Self {
        self.warm_start = Some(clusters);
        self
    }

    /// Activates fault-injection hooks (see [`RunOptions::faults`]).
    pub fn with_faults(mut self, faults: &'a dyn StepFaults) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches an observability recorder (see [`RunOptions::recorder`]).
    pub fn with_recorder(mut self, recorder: &'a Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("warm_start", &self.warm_start.map(<[Cluster]>::len))
            .field("faults", &self.faults.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

/// Health of a completed segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentationStatus {
    /// No invariant repairs fired, and the run converged within its
    /// iteration budget whenever a convergence threshold was configured.
    Ok,
    /// Corrupted state was detected and repaired (center clamp or
    /// label-range repair), or a configured convergence threshold was
    /// still unmet when the iteration budget ran out — the non-convergence
    /// signature of corruption. The label map is still valid (in-range,
    /// fully assigned).
    Degraded,
}

/// Configured segmentation pipeline: parameters + algorithm + numeric mode.
///
/// # Example
///
/// ```
/// use sslic_core::{DistanceMode, RunOptions, SegmentRequest, Segmenter, SlicParams};
/// use sslic_image::synthetic::SyntheticImage;
///
/// let img = SyntheticImage::builder(64, 48).seed(2).regions(5).build();
/// let params = SlicParams::builder(80).iterations(4).build();
/// // The accelerator's datapath: S-SLIC at 8-bit precision.
/// let seg = Segmenter::sslic_ppa(params, 2)
///     .with_distance_mode(DistanceMode::quantized(8))
///     .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
/// assert_eq!(seg.labels().len(), 64 * 48);
/// ```
#[derive(Debug, Clone)]
pub struct Segmenter {
    params: SlicParams,
    algorithm: Algorithm,
    distance_mode: DistanceMode,
    preemption: Option<f32>,
}

impl Segmenter {
    /// Creates a segmenter for an explicit algorithm choice.
    pub fn new(params: SlicParams, algorithm: Algorithm) -> Self {
        if let Algorithm::SSlicPpa { subsets, .. } | Algorithm::SSlicCpa { subsets } = algorithm {
            assert!(subsets > 0, "subset count must be nonzero");
        }
        Segmenter {
            params,
            algorithm,
            distance_mode: DistanceMode::Float,
            preemption: None,
        }
    }

    /// Original SLIC (center-perspective full scan).
    pub fn slic(params: SlicParams) -> Self {
        Self::new(params, Algorithm::SlicCpa)
    }

    /// Pixel-perspective SLIC without subsampling (gSLIC-style).
    pub fn slic_ppa(params: SlicParams) -> Self {
        Self::new(params, Algorithm::SlicPpa)
    }

    /// S-SLIC with `subsets` pixel subsets (the paper's primary
    /// configuration; `subsets = 2` is "S-SLIC (0.5)", `4` is
    /// "S-SLIC (0.25)").
    ///
    /// # Panics
    ///
    /// Panics if `subsets == 0`.
    pub fn sslic_ppa(params: SlicParams, subsets: u32) -> Self {
        Self::new(
            params,
            Algorithm::SSlicPpa {
                subsets,
                strategy: SubsetStrategy::default(),
            },
        )
    }

    /// S-SLIC with `subsets` center subsets (the CPA alternative of §3).
    ///
    /// # Panics
    ///
    /// Panics if `subsets == 0`.
    pub fn sslic_cpa(params: SlicParams, subsets: u32) -> Self {
        Self::new(params, Algorithm::SSlicCpa { subsets })
    }

    /// Selects the numeric mode of the distance datapath.
    pub fn with_distance_mode(mut self, mode: DistanceMode) -> Self {
        self.distance_mode = mode;
        self
    }

    /// Selects the subset layout (PPA subsampling only; no-op otherwise).
    pub fn with_subset_strategy(mut self, strategy: SubsetStrategy) -> Self {
        if let Algorithm::SSlicPpa { strategy: s, .. } = &mut self.algorithm {
            *s = strategy;
        }
        self
    }

    /// Enables Preemptive-SLIC-style per-cluster halting (Neubert &
    /// Protzel, ICPR 2014 — the paper's §8 notes the technique is
    /// orthogonal to S-SLIC and that combining them was "beyond the scope
    /// of this work"; this implementation makes the combination
    /// analyzable).
    ///
    /// A cluster whose center moves less than `threshold` pixels (L1) in
    /// one update step is frozen: it is no longer scanned (CPA) and pixels
    /// whose nine candidates are all frozen are skipped (PPA), cutting
    /// distance computations in the late, already-converged iterations.
    pub fn with_preemption(mut self, threshold: f32) -> Self {
        self.preemption = Some(threshold.max(0.0));
        self
    }

    /// The configured preemption threshold, if any.
    pub fn preemption(&self) -> Option<f32> {
        self.preemption
    }

    /// The configured parameters.
    pub fn params(&self) -> &SlicParams {
        &self.params
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured numeric mode.
    pub fn distance_mode(&self) -> DistanceMode {
        self.distance_mode
    }

    /// Runs one segmentation: the canonical entry point. `request` names
    /// the input representation, `options` carries the cross-cutting
    /// concerns (warm start, fault hooks); every legacy `segment_*`
    /// method is a thin wrapper over this.
    ///
    /// # Panics
    ///
    /// Panics if [`RunOptions::warm_start`] is set and its length does not
    /// match this image's realized grid (`SeedGrid::cluster_count`), since
    /// the static 9-neighborhood tiling must stay valid.
    pub fn run(&self, request: SegmentRequest<'_>, options: &RunOptions<'_>) -> Segmentation {
        let mut breakdown = PhaseBreakdown::new();
        let quantized = self.distance_mode.is_quantized();
        let (lab, lab8) = match request {
            SegmentRequest::Rgb(img) => {
                if quantized {
                    // The accelerator's LUT path produces the 8-bit image
                    // the quantized datapath operates on; the f32 image is
                    // derived from it so assignment and sigma see the same
                    // data.
                    let mut lab8 = breakdown.time(Phase::ColorConversion, || {
                        HwColorConverter::paper_default().convert_image(img)
                    });
                    if let Some(f) = options.faults {
                        f.corrupt_lab8(&mut lab8);
                    }
                    (lab8.decode(), Some(lab8))
                } else {
                    (
                        breakdown.time(Phase::ColorConversion, || float::convert_image(img)),
                        None,
                    )
                }
            }
            SegmentRequest::Lab(lab) => {
                if quantized {
                    let mut lab8 = breakdown.time(Phase::ColorConversion, || {
                        Lab8Image::from_fn(lab.width(), lab.height(), |x, y| {
                            let [l, a, b] = lab.pixel(x, y);
                            sslic_color::lab8::encode([l as f64, a as f64, b as f64])
                        })
                    });
                    if let Some(f) = options.faults {
                        f.corrupt_lab8(&mut lab8);
                    }
                    (lab8.decode(), Some(lab8))
                } else {
                    (lab.clone(), None)
                }
            }
            SegmentRequest::Lab8(lab8) => {
                // Conversion happened outside the engine: charged zero
                // time. The hooks corrupt the codes before anything reads
                // them.
                match options.faults {
                    Some(f) => {
                        let mut lab8 = lab8.clone();
                        f.corrupt_lab8(&mut lab8);
                        (lab8.decode(), quantized.then_some(lab8))
                    }
                    None => (lab8.decode(), quantized.then(|| lab8.clone())),
                }
            }
        };
        if let Some(warm) = options.warm_start {
            let grid = SeedGrid::new(lab.width(), lab.height(), self.params.superpixels());
            assert!(
                warm.len() == grid.cluster_count(),
                "warm start must carry {} clusters, got {}",
                grid.cluster_count(),
                warm.len()
            );
        }
        self.execute(
            lab,
            lab8,
            breakdown,
            options.warm_start,
            options.faults,
            options.recorder,
        )
    }

    /// Segments an RGB image starting from another frame's converged
    /// cluster centers — the temporal warm start a 30 fps video pipeline
    /// uses (the paper's motivating deployment). Centers replace the grid
    /// seeding (no gradient perturbation); everything else is identical,
    /// so a warm-started run typically converges in 1–2 center-update
    /// steps on slowly changing scenes.
    ///
    /// # Panics
    ///
    /// Panics if `warm_start` is empty or its length does not match this
    /// image's realized grid (`SeedGrid::cluster_count`), since the static
    /// 9-neighborhood tiling must stay valid.
    #[deprecated(note = "use Segmenter::run")]
    pub fn segment_warm(&self, img: &RgbImage, warm_start: &[Cluster]) -> Segmentation {
        self.run(
            SegmentRequest::Rgb(img),
            &RunOptions::new().with_warm_start(warm_start),
        )
    }

    /// Segments an RGB image (runs color conversion first).
    #[deprecated(note = "use Segmenter::run")]
    pub fn segment(&self, img: &RgbImage) -> Segmentation {
        self.run(SegmentRequest::Rgb(img), &RunOptions::new())
    }

    /// Segments an RGB image with fault-injection hooks active: `faults`
    /// is consulted at the points documented on [`StepFaults`]. With a
    /// no-op hook the output is bit-identical to a hook-free run.
    #[deprecated(note = "use Segmenter::run")]
    pub fn segment_with_faults(
        &self,
        img: &RgbImage,
        faults: &mut dyn StepFaults,
    ) -> Segmentation {
        self.run(
            SegmentRequest::Rgb(img),
            &RunOptions::new().with_faults(&*faults),
        )
    }

    /// Segments a pre-encoded 8-bit CIELAB image — see
    /// [`SegmentRequest::Lab8`].
    #[deprecated(note = "use Segmenter::run")]
    pub fn segment_lab8(&self, lab8: &Lab8Image) -> Segmentation {
        self.run(SegmentRequest::Lab8(lab8), &RunOptions::new())
    }

    /// [`SegmentRequest::Lab8`] with fault-injection hooks active; the
    /// supplied image is corrupted by [`StepFaults::corrupt_lab8`] before
    /// anything reads it.
    #[deprecated(note = "use Segmenter::run")]
    pub fn segment_lab8_with_faults(
        &self,
        lab8: &Lab8Image,
        faults: &mut dyn StepFaults,
    ) -> Segmentation {
        self.run(
            SegmentRequest::Lab8(lab8),
            &RunOptions::new().with_faults(&*faults),
        )
    }

    /// Segments a pre-converted CIELAB image (color conversion is charged
    /// zero time; useful when sweeping algorithms over one corpus).
    #[deprecated(note = "use Segmenter::run")]
    pub fn segment_lab(&self, lab: &LabImage) -> Segmentation {
        self.run(SegmentRequest::Lab(lab), &RunOptions::new())
    }

    fn execute(
        &self,
        lab: LabImage,
        lab8: Option<Lab8Image>,
        mut breakdown: PhaseBreakdown,
        warm_start: Option<&[Cluster]>,
        faults: Option<&dyn StepFaults>,
        recorder: Option<&Recorder>,
    ) -> Segmentation {
        let params = &self.params;
        let (w, h) = (lab.width(), lab.height());

        let (grid, clusters, labels, partition, kernel) =
            breakdown.time(Phase::Init, || {
                let grid = SeedGrid::new(w, h, params.superpixels());
                let clusters = match warm_start {
                    Some(c) => c.to_vec(),
                    None => init_clusters(&lab, &grid, params.perturb_seeds()),
                };
                let labels = Plane::from_fn(w, h, |x, y| {
                    grid.home_cluster_of_pixel(x, y) as u32
                });
                let partition = match self.algorithm {
                    Algorithm::SSlicPpa { subsets, strategy } => {
                        Some(SubsetPartition::new(w, h, subsets, strategy))
                    }
                    _ => None,
                };
                let kernel = match self.distance_mode {
                    DistanceMode::Float => None,
                    DistanceMode::Quantized {
                        channel_bits,
                        distance_bits,
                    } => Some(QuantKernel::new(
                        channel_bits,
                        distance_bits,
                        params.compactness(),
                        grid.spacing(),
                    )),
                };
                (grid, clusters, labels, partition, kernel)
            });

        let spacing = grid.spacing();
        let m = params.compactness();
        assert!(
            !(params.adaptive_compactness() && self.distance_mode.is_quantized()),
            "adaptive compactness is a float-datapath feature"
        );
        let cluster_count = clusters.len();
        if let Some(rec) = recorder {
            rec.span_begin(
                "core.run",
                LogicalClock::ZERO,
                vec![
                    ("algorithm", Value::from(self.algorithm.name())),
                    ("width", Value::U64(w as u64)),
                    ("height", Value::U64(h as u64)),
                    ("clusters", Value::U64(cluster_count as u64)),
                    ("iterations", Value::U64(u64::from(params.iterations()))),
                    // Deliberately NOT the thread count: the determinism
                    // contract byte-diffs traces across worker counts.
                ],
            );
        }
        let mut engine = Engine {
            grid,
            lab: &lab,
            lab8: lab8.as_ref(),
            clusters,
            labels,
            dist: Plane::filled(w, h, f32::INFINITY),
            kernel,
            codes: Vec::new(),
            m2_over_s2: (m * m) / (spacing * spacing),
            max_dc2: params
                .adaptive_compactness()
                .then(|| vec![m * m; cluster_count]),
            inv_s2: 1.0 / (spacing * spacing),
            counters: RunCounters::default(),
            active: vec![true; cluster_count],
            preemption: self.preemption,
            threads: params.threads().get(),
            recorder,
            step: 0,
        };

        let mut iterations_run = 0u32;
        let mut repairs = 0u64;
        let mut last_movement = 0.0f32;
        for step in 0..params.iterations() {
            engine.step = step;
            if let Some(rec) = recorder {
                rec.span_begin(
                    "core.step",
                    LogicalClock::step(step),
                    vec![(
                        "subset",
                        Value::U64(u64::from(step % self.algorithm.steps_per_full_pass())),
                    )],
                );
            }
            let movement = match self.algorithm {
                Algorithm::SlicCpa => {
                    breakdown.time(Phase::DistanceMin, || {
                        engine.dist.as_mut_slice().fill(f32::INFINITY);
                        engine.assign_cpa(None);
                    });
                    breakdown.time(Phase::CenterUpdate, || engine.update_centers(None, None))
                }
                Algorithm::SlicPpa => {
                    breakdown.time(Phase::DistanceMin, || engine.assign_ppa(None));
                    breakdown.time(Phase::CenterUpdate, || engine.update_centers(None, None))
                }
                Algorithm::SSlicPpa { subsets, .. } => {
                    // init() builds the partition for every SSlic* run; if
                    // it were ever absent, degrade to full-density PPA for
                    // this step instead of aborting the segmentation.
                    debug_assert!(partition.is_some(), "partition built in init");
                    match partition.as_ref() {
                        Some(part) => {
                            let subset = step % subsets;
                            breakdown.time(Phase::DistanceMin, || {
                                engine.assign_ppa(Some((part, subset)));
                            });
                            breakdown.time(Phase::CenterUpdate, || {
                                engine.update_centers(Some((part, subset)), None)
                            })
                        }
                        None => {
                            breakdown.time(Phase::DistanceMin, || engine.assign_ppa(None));
                            breakdown
                                .time(Phase::CenterUpdate, || engine.update_centers(None, None))
                        }
                    }
                }
                Algorithm::SSlicCpa { subsets } => {
                    let subset = step % subsets;
                    breakdown.time(Phase::DistanceMin, || {
                        if subset == 0 {
                            // New round: clusters compete afresh so stale
                            // distances to long-moved centers cannot pin
                            // labels forever.
                            engine.dist.as_mut_slice().fill(f32::INFINITY);
                        }
                        engine.assign_cpa(Some((subsets, subset)));
                    });
                    breakdown.time(Phase::CenterUpdate, || {
                        engine.update_centers(None, Some((subsets, subset)))
                    })
                }
            };
            engine.counters.sub_iterations += 1;
            iterations_run = step + 1;
            last_movement = movement;
            if let Some(f) = faults {
                f.corrupt_centers(step, &mut engine.clusters);
            }
            // Invariant guard: runs unconditionally (a no-op on clean
            // state, preserving bit-identity of the fault-free path) so
            // corrupted center registers cannot push subsequent window
            // scans or seed lookups out of the image box.
            let step_repairs = engine.repair_centers();
            repairs += step_repairs;
            if let Some(rec) = recorder {
                if step_repairs > 0 {
                    rec.instant(
                        "core.repair.centers",
                        LogicalClock::step(step),
                        vec![("repaired", Value::U64(step_repairs))],
                    );
                }
                rec.span_end(
                    "core.step",
                    LogicalClock::step(step),
                    vec![("sub_iterations", Value::U64(1))],
                );
            }
            if let Some(threshold) = params.convergence_threshold() {
                if movement <= threshold {
                    break;
                }
            }
        }

        let mut labels = engine.labels;
        // Invariant guard: any out-of-range label (possible only via
        // corruption) is repaired to the pixel's home cluster, keeping the
        // map a valid index into `clusters` for connectivity and callers.
        let k = engine.clusters.len() as u32;
        let mut label_repairs = 0u64;
        for y in 0..h {
            for x in 0..w {
                if labels[(x, y)] >= k {
                    labels[(x, y)] = engine.grid.home_cluster_of_pixel(x, y) as u32;
                    label_repairs += 1;
                }
            }
        }
        repairs += label_repairs;
        if let Some(rec) = recorder {
            if label_repairs > 0 {
                rec.instant(
                    "core.repair.labels",
                    LogicalClock::step(iterations_run.saturating_sub(1)),
                    vec![("repaired", Value::U64(label_repairs))],
                );
            }
        }
        if params.enforce_connectivity() {
            breakdown.time(Phase::Connectivity, || {
                let min_size =
                    ((spacing * spacing) / params.min_region_divisor() as f32).max(1.0) as usize;
                enforce_connectivity(&mut labels, min_size.max(1));
            });
        }

        let frozen_clusters = engine.active.iter().filter(|&&a| !a).count();
        // Exhausting the iteration budget while a convergence threshold is
        // configured and unmet is the non-convergence signature of
        // corruption: the run terminated (budget bound) but did not settle.
        let converged = params
            .convergence_threshold()
            .map_or(true, |t| last_movement <= t);
        let status = if repairs > 0 || !converged {
            SegmentationStatus::Degraded
        } else {
            SegmentationStatus::Ok
        };
        if let Some(rec) = recorder {
            // Phase attribution: wall-clock durations pass through
            // Recorder::duration_ns, which zeroes them in deterministic
            // mode so the trace bytes stay workload-pure.
            for phase in crate::profile::PHASES {
                rec.instant(
                    "core.phase",
                    LogicalClock::step(iterations_run.saturating_sub(1)),
                    vec![
                        ("phase", Value::from(phase.key())),
                        (
                            "nanos",
                            Value::U64(rec.duration_ns(breakdown.phase_time(phase))),
                        ),
                    ],
                );
            }
            let c = &engine.counters;
            rec.counter_add("core.distance_calcs", c.distance_calcs);
            rec.counter_add("core.pixel_color_reads", c.pixel_color_reads);
            rec.counter_add("core.sigma_updates", c.sigma_updates);
            rec.counter_add("core.center_updates", c.center_updates);
            rec.counter_add("core.sub_iterations", c.sub_iterations);
            rec.counter_add("core.invariant_repairs", repairs);
            rec.span_end(
                "core.run",
                LogicalClock::step(iterations_run.saturating_sub(1)),
                vec![
                    ("iterations_run", Value::U64(u64::from(iterations_run))),
                    ("repairs", Value::U64(repairs)),
                    (
                        "status",
                        Value::from(match status {
                            SegmentationStatus::Ok => "ok",
                            SegmentationStatus::Degraded => "degraded",
                        }),
                    ),
                ],
            );
        }
        Segmentation {
            labels,
            clusters: engine.clusters,
            iterations_run,
            breakdown,
            counters: engine.counters,
            spacing,
            frozen_clusters,
            status,
            repairs,
        }
    }
}

/// The result of a segmentation run: the label map, final cluster centers,
/// and the recorded instrumentation.
#[derive(Debug, Clone)]
pub struct Segmentation {
    labels: Plane<u32>,
    clusters: Vec<Cluster>,
    iterations_run: u32,
    breakdown: PhaseBreakdown,
    counters: RunCounters,
    spacing: f32,
    frozen_clusters: usize,
    status: SegmentationStatus,
    repairs: u64,
}

impl Segmentation {
    /// Superpixel index per pixel (indices address [`Self::clusters`]).
    pub fn labels(&self) -> &Plane<u32> {
        &self.labels
    }

    /// Consumes the result, returning the label map.
    pub fn into_labels(self) -> Plane<u32> {
        self.labels
    }

    /// Final cluster centers (`[L, a, b, x, y]` per superpixel).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Realized superpixel count (grid rounding of the requested `K`).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Center-update steps actually executed (≤ `params.iterations()` when
    /// early exit triggered).
    pub fn iterations_run(&self) -> u32 {
        self.iterations_run
    }

    /// Wall-clock time per pipeline phase (Table 1).
    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.breakdown
    }

    /// Recorded event counts (Table 2 inputs).
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// Grid spacing `S` used by this run.
    pub fn spacing(&self) -> f32 {
        self.spacing
    }

    /// Number of clusters frozen by Preemptive-SLIC halting (0 unless
    /// [`Segmenter::with_preemption`] was used).
    pub fn frozen_clusters(&self) -> usize {
        self.frozen_clusters
    }

    /// Health of the run — [`SegmentationStatus::Degraded`] when invariant
    /// repairs fired or a configured convergence threshold went unmet.
    pub fn status(&self) -> SegmentationStatus {
        self.status
    }

    /// Number of invariant repairs applied (center clamps / non-finite
    /// replacements plus out-of-range label fixes). Always 0 on fault-free
    /// runs.
    pub fn invariant_repairs(&self) -> u64 {
        self.repairs
    }
}

// --- the inner engine ------------------------------------------------------

struct Engine<'a> {
    grid: SeedGrid,
    lab: &'a LabImage,
    lab8: Option<&'a Lab8Image>,
    clusters: Vec<Cluster>,
    labels: Plane<u32>,
    dist: Plane<f32>,
    kernel: Option<QuantKernel>,
    codes: Vec<ClusterCodes>,
    m2_over_s2: f32,
    /// SLICO adaptive-compactness state: per-cluster maximum squared color
    /// distance observed in the previous pass (`None` when disabled).
    max_dc2: Option<Vec<f32>>,
    inv_s2: f32,
    counters: RunCounters,
    /// Per-cluster activity for Preemptive-SLIC halting; all `true` when
    /// preemption is disabled.
    active: Vec<bool>,
    preemption: Option<f32>,
    /// Worker count for the banded parallel passes. Affects wall-clock
    /// time only — never the output (see `parallel`).
    threads: usize,
    /// Observability recorder; consulted only at serial synchronization
    /// points (after band folds), so the emission schedule is independent
    /// of the worker count.
    recorder: Option<&'a Recorder>,
    /// Current center-update step, stamped into emitted logical clocks.
    step: u32,
}

/// Fixed bucket boundaries of the per-band assigned-pixel histogram
/// (`core.band.pixels`): powers of four from 256 to 64k pixels.
const BAND_PIXEL_BOUNDS: [u64; 5] = [1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16];

impl Engine<'_> {
    /// Repairs corrupted center registers in place: non-finite fields are
    /// replaced (position from the cluster's grid seed, color with neutral
    /// mid-range CIELAB), then every field is clamped into its
    /// architectural range — position inside the image box, `L ∈ [0,100]`,
    /// `a,b ∈ [-128,127]`. Returns the number of clusters changed. A no-op
    /// (returning 0) on any clean state, so the fault-free path is
    /// bit-identical with or without the guard.
    fn repair_centers(&mut self) -> u64 {
        let (w, h) = (self.grid.width(), self.grid.height());
        let (xmax, ymax) = ((w - 1) as f32, (h - 1) as f32);
        let mut repaired = 0u64;
        for (k, c) in self.clusters.iter_mut().enumerate() {
            let before = *c;
            // f32::clamp propagates NaN, so non-finite fields must be
            // replaced before clamping.
            if !c.x.is_finite() || !c.y.is_finite() {
                let (sx, sy) = self.grid.seed_position(k);
                if !c.x.is_finite() {
                    c.x = sx;
                }
                if !c.y.is_finite() {
                    c.y = sy;
                }
            }
            if !c.l.is_finite() {
                c.l = 50.0;
            }
            if !c.a.is_finite() {
                c.a = 0.0;
            }
            if !c.b.is_finite() {
                c.b = 0.0;
            }
            c.x = c.x.clamp(0.0, xmax);
            c.y = c.y.clamp(0.0, ymax);
            c.l = c.l.clamp(0.0, 100.0);
            c.a = c.a.clamp(-128.0, 127.0);
            c.b = c.b.clamp(-128.0, 127.0);
            // NaN != NaN, so a replaced non-finite field also registers
            // as a change here.
            if *c != before {
                repaired += 1;
            }
        }
        repaired
    }

    /// Refreshes the quantized cluster codes from the float centers
    /// (hardware: centers are loaded into the center registers at the
    /// start of each pass).
    fn refresh_codes(&mut self) {
        if let Some(kernel) = &self.kernel {
            self.codes = self
                .clusters
                .iter()
                .map(|c| kernel.encode_cluster(c))
                .collect();
        }
    }

    /// Distance between pixel `(x, y)` and cluster `k`, in whichever
    /// numeric mode is active. Returned values are only compared against
    /// each other within one pixel's candidate set.
    #[inline]
    fn distance(&self, x: usize, y: usize, k: usize) -> f32 {
        if let Some(max_dc2) = &self.max_dc2 {
            // SLICO objective: color and space each normalized by their
            // per-cluster / grid maxima.
            let (dc2, ds2) = self.dc2_ds2(x, y, k);
            return dc2 / max_dc2[k] + ds2 * self.inv_s2;
        }
        match (&self.kernel, self.lab8) {
            (Some(kernel), Some(lab8)) => {
                let px = lab8.pixel(x, y);
                kernel.dist_code(px, (x as i32, y as i32), &self.codes[k]) as f32
            }
            _ => dist2_float(
                self.lab.pixel(x, y),
                (x as f32, y as f32),
                &self.clusters[k],
                self.m2_over_s2,
            ),
        }
    }

    /// Squared color and spatial distances separately (float path).
    #[inline]
    fn dc2_ds2(&self, x: usize, y: usize, k: usize) -> (f32, f32) {
        let [l, a, b] = self.lab.pixel(x, y);
        let c = &self.clusters[k];
        let (dl, da, db) = (l - c.l, a - c.a, b - c.b);
        let (dx, dy) = (x as f32 - c.x, y as f32 - c.y);
        (dl * dl + da * da + db * db, dx * dx + dy * dy)
    }

    /// Pixel-perspective assignment pass over all pixels or one subset.
    ///
    /// Sharded into the fixed horizontal row bands of [`band_rows`]: each
    /// band writes its own disjoint stripe of the label plane and returns
    /// private counters/maxima that are merged in band order, so the
    /// output is bit-identical for any thread count.
    fn assign_ppa(&mut self, subset: Option<(&SubsetPartition, u32)>) {
        self.refresh_codes();
        let (w, h) = (self.grid.width(), self.grid.height());
        let preempting = self.preemption.is_some();
        // Detach the label plane so the worker closures can share `&self`
        // while each mutates only its own stripe.
        let mut labels = std::mem::replace(&mut self.labels, Plane::filled(1, 1, 0));
        let partials = {
            let mut rest = labels.as_mut_slice();
            let mut items = Vec::new();
            for rows in band_rows(h) {
                let (stripe, tail) = rest.split_at_mut(rows.len() * w);
                rest = tail;
                items.push((rows, stripe));
            }
            let this = &*self;
            run_bands(this.threads, items, |_, (rows, stripe)| {
                this.assign_ppa_band(subset, rows, stripe, preempting)
            })
        };
        self.labels = labels;
        let mut new_max = vec![0f32; self.clusters.len()];
        let mut band_counters = Vec::with_capacity(partials.len());
        for (band_part, band_max) in partials {
            for (cur, seen) in new_max.iter_mut().zip(band_max) {
                *cur = cur.max(seen);
            }
            band_counters.push(band_part);
        }
        self.merge_adaptive_maxima(&new_max);
        // Per-band counter partials fold in ascending band order at this
        // serial sync point: the totals depend only on the band layout
        // (a pure function of the image height), never the thread count.
        for part in &band_counters {
            self.counters += *part;
        }
        // One 9-center register load per tile processed (paper §4.3); under
        // interleaved subsets every tile is touched each sub-iteration.
        let center_reads = self.grid.cluster_count() as u64 * 9;
        self.counters.center_reads += center_reads;
        if let Some(rec) = self.recorder {
            for (b, part) in band_counters.iter().enumerate() {
                rec.instant(
                    "core.assign.band",
                    LogicalClock::band(self.step, b as u32),
                    vec![
                        ("pixel_color_reads", Value::U64(part.pixel_color_reads)),
                        ("distance_calcs", Value::U64(part.distance_calcs)),
                        ("label_writes", Value::U64(part.label_writes)),
                    ],
                );
                rec.histogram_observe(
                    "core.band.pixels",
                    &BAND_PIXEL_BOUNDS,
                    part.pixel_color_reads,
                );
            }
            rec.instant(
                "core.assign.step",
                LogicalClock::step(self.step),
                vec![("center_reads", Value::U64(center_reads))],
            );
        }
    }

    /// One band of PPA assignment over rows `rows`, writing into that
    /// band's label stripe (row-major, `rows.len() × width`). Returns the
    /// band's private counter partial and the per-cluster color-distance
    /// maxima observed (SLICO state); both are folded in ascending band
    /// order by the caller.
    fn assign_ppa_band(
        &self,
        subset: Option<(&SubsetPartition, u32)>,
        rows: Range<usize>,
        stripe: &mut [u32],
        preempting: bool,
    ) -> (RunCounters, Vec<f32>) {
        let w = self.grid.width();
        let mut assigned = 0u64;
        let mut new_max = vec![0f32; self.clusters.len()];
        for y in rows.clone() {
            for x in 0..w {
                if let Some((part, s)) = subset {
                    if part.subset_of(x, y) != s {
                        continue;
                    }
                }
                let nine = self.grid.nine_neighbors_of_pixel(x, y);
                // Preemption: if every candidate is frozen, the pixel's
                // assignment cannot change — skip the 9 distances.
                if preempting && nine.iter().all(|&k| !self.active[k]) {
                    continue;
                }
                let mut best = nine[0];
                let mut best_d = self.distance(x, y, nine[0]);
                for &k in &nine[1..] {
                    let d = self.distance(x, y, k);
                    if d < best_d {
                        best_d = d;
                        best = k;
                    }
                }
                stripe[(y - rows.start) * w + x] = best as u32;
                if self.max_dc2.is_some() {
                    let (dc2, _) = self.dc2_ds2(x, y, best);
                    new_max[best] = new_max[best].max(dc2);
                }
                assigned += 1;
            }
        }
        let part = RunCounters {
            pixel_color_reads: assigned,
            distance_calcs: assigned * 9,
            label_writes: assigned,
            ..RunCounters::default()
        };
        (part, new_max)
    }

    /// Center-perspective assignment pass over all clusters or the subset
    /// `k % p == s`.
    #[allow(clippy::needless_range_loop)] // k indexes clusters, labels, and new_max
    fn assign_cpa(&mut self, subset: Option<(u32, u32)>) {
        self.refresh_codes();
        let (w, h) = (self.grid.width(), self.grid.height());
        let radius = self.grid.spacing().ceil() as isize; // 2S×2S window
        let mut new_max = vec![0f32; self.clusters.len()];
        let mut visits = 0u64;
        let mut improvements = 0u64;
        let mut clusters_processed = 0u64;
        for k in 0..self.clusters.len() {
            if let Some((p, s)) = subset {
                if k as u32 % p != s {
                    continue;
                }
            }
            if !self.active[k] {
                continue; // preempted: this cluster's window no longer scans
            }
            clusters_processed += 1;
            let cx = self.clusters[k].x.round() as isize;
            let cy = self.clusters[k].y.round() as isize;
            let x0 = (cx - radius).max(0) as usize;
            let x1 = ((cx + radius) as usize).min(w - 1);
            let y0 = (cy - radius).max(0) as usize;
            let y1 = ((cy + radius) as usize).min(h - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let d = self.distance(x, y, k);
                    visits += 1;
                    if d < self.dist[(x, y)] {
                        self.dist[(x, y)] = d;
                        self.labels[(x, y)] = k as u32;
                        improvements += 1;
                        if self.max_dc2.is_some() {
                            let (dc2, _) = self.dc2_ds2(x, y, k);
                            new_max[k] = new_max[k].max(dc2);
                        }
                    }
                }
            }
        }
        self.merge_adaptive_maxima(&new_max);
        self.counters.distance_calcs += visits;
        self.counters.pixel_color_reads += visits;
        self.counters.dist_buffer_reads += visits;
        self.counters.dist_buffer_writes += improvements;
        self.counters.label_writes += improvements;
        self.counters.center_reads += clusters_processed;
        if let Some(rec) = self.recorder {
            // CPA is a serial window scan (not banded): the whole pass
            // reports as one step-level counter event.
            rec.instant(
                "core.assign.step",
                LogicalClock::step(self.step),
                vec![
                    ("distance_calcs", Value::U64(visits)),
                    ("pixel_color_reads", Value::U64(visits)),
                    ("dist_buffer_reads", Value::U64(visits)),
                    ("dist_buffer_writes", Value::U64(improvements)),
                    ("label_writes", Value::U64(improvements)),
                    ("center_reads", Value::U64(clusters_processed)),
                ],
            );
        }
    }

    /// Folds a pass's observed per-cluster color-distance maxima into the
    /// SLICO state (clusters with no observations keep their previous
    /// maximum; a floor of 1.0 avoids division blow-ups in flat regions).
    fn merge_adaptive_maxima(&mut self, new_max: &[f32]) {
        if let Some(max_dc2) = &mut self.max_dc2 {
            for (cur, &seen) in max_dc2.iter_mut().zip(new_max) {
                if seen > 0.0 {
                    *cur = seen.max(1.0);
                }
            }
        }
    }

    /// Recomputes centers from member pixels and returns the mean L1
    /// center movement (pixels) over the updated clusters.
    ///
    /// * `pixel_subset` restricts the sigma accumulation to one pixel
    ///   subset (S-SLIC PPA).
    /// * `cluster_subset = (p, s)` restricts which clusters are updated
    ///   (S-SLIC CPA).
    fn update_centers(
        &mut self,
        pixel_subset: Option<(&SubsetPartition, u32)>,
        cluster_subset: Option<(u32, u32)>,
    ) -> f32 {
        let (w, h) = (self.grid.width(), self.grid.height());
        let cluster_count = self.clusters.len();
        // Banded sigma accumulation: every band sums its own rows into a
        // private register file; partials are folded in ascending band
        // order below. The f64 sums therefore always group the same way —
        // per band, row-major within a band — no matter how many workers
        // executed the bands, which is what makes the result bit-identical
        // across thread counts despite float non-associativity.
        let this = &*self;
        let partials = run_bands(this.threads, band_rows(h), |_, rows| {
            let mut sigma = vec![[0f64; 6]; cluster_count];
            let mut pixels_seen = 0u64;
            for y in rows {
                for x in 0..w {
                    if let Some((part, s)) = pixel_subset {
                        if part.subset_of(x, y) != s {
                            continue;
                        }
                    }
                    let k = this.labels[(x, y)] as usize;
                    if let Some((p, s)) = cluster_subset {
                        if k as u32 % p != s {
                            continue;
                        }
                    }
                    let [l, a, b] = this.lab.pixel(x, y);
                    let acc = &mut sigma[k];
                    acc[0] += l as f64;
                    acc[1] += a as f64;
                    acc[2] += b as f64;
                    acc[3] += x as f64;
                    acc[4] += y as f64;
                    acc[5] += 1.0;
                    pixels_seen += 1;
                }
            }
            let part = RunCounters {
                label_reads: pixels_seen,
                pixel_color_reads: pixels_seen,
                sigma_updates: pixels_seen,
                ..RunCounters::default()
            };
            (sigma, part)
        });
        let mut sigma = vec![[0f64; 6]; cluster_count];
        let mut band_counters = Vec::with_capacity(partials.len());
        for (band_sigma, band_part) in partials {
            for (acc, part) in sigma.iter_mut().zip(band_sigma) {
                for (a, p) in acc.iter_mut().zip(part) {
                    *a += p;
                }
            }
            band_counters.push(band_part);
        }
        // Like assignment: per-band counter partials fold in ascending
        // band order at the serial sync point.
        for part in &band_counters {
            self.counters += *part;
        }
        if let Some(rec) = self.recorder {
            for (b, part) in band_counters.iter().enumerate() {
                rec.instant(
                    "core.update.band",
                    LogicalClock::band(self.step, b as u32),
                    vec![
                        ("label_reads", Value::U64(part.label_reads)),
                        ("pixel_color_reads", Value::U64(part.pixel_color_reads)),
                        ("sigma_updates", Value::U64(part.sigma_updates)),
                    ],
                );
            }
        }

        let mut movement = 0.0f32;
        let mut updated = 0u64;
        for (k, acc) in sigma.iter().enumerate() {
            if let Some((p, s)) = cluster_subset {
                if k as u32 % p != s {
                    continue;
                }
            }
            if !self.active[k] {
                continue; // preempted: center is frozen
            }
            if acc[5] == 0.0 {
                continue; // no members seen this step: keep the old center
            }
            let n = acc[5];
            let new = Cluster::new(
                (acc[0] / n) as f32,
                (acc[1] / n) as f32,
                (acc[2] / n) as f32,
                (acc[3] / n) as f32,
                (acc[4] / n) as f32,
            );
            let moved = new.movement_from(&self.clusters[k]);
            movement += moved;
            self.clusters[k] = new;
            updated += 1;
            if let Some(threshold) = self.preemption {
                if moved < threshold {
                    self.active[k] = false;
                }
            }
        }
        self.counters.center_updates += updated;
        if let Some(rec) = self.recorder {
            rec.instant(
                "core.update.step",
                LogicalClock::step(self.step),
                vec![("center_updates", Value::U64(updated))],
            );
        }
        if updated == 0 {
            0.0
        } else {
            movement / updated as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslic_image::synthetic::SyntheticImage;

    fn test_image() -> SyntheticImage {
        SyntheticImage::builder(64, 48).seed(0).regions(5).build()
    }

    fn params(k: usize, iters: u32) -> SlicParams {
        SlicParams::builder(k).iterations(iters).build()
    }

    #[test]
    fn all_variants_produce_valid_label_maps() {
        let img = test_image();
        for seg in [
            Segmenter::slic(params(60, 3)),
            Segmenter::slic_ppa(params(60, 3)),
            Segmenter::sslic_ppa(params(60, 4), 2),
            Segmenter::sslic_cpa(params(60, 4), 2),
        ] {
            let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            assert_eq!(out.labels().width(), 64);
            assert_eq!(out.labels().height(), 48);
            let k = out.cluster_count() as u32;
            assert!(out.labels().iter().all(|&l| l < k), "labels in range");
            assert_eq!(out.iterations_run(), seg.params().iterations());
        }
    }

    #[test]
    fn segmentation_is_deterministic() {
        let img = test_image();
        let seg = Segmenter::sslic_ppa(params(60, 4), 2);
        let a = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let b = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn clusters_move_toward_member_centroids() {
        let img = test_image();
        let out = Segmenter::slic_ppa(params(60, 5)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        // After convergence iterations, cluster centroids should be inside
        // the image and labels should form compact regions near centers.
        for c in out.clusters() {
            assert!(c.x >= 0.0 && c.x < 64.0);
            assert!(c.y >= 0.0 && c.y < 48.0);
        }
    }

    #[test]
    fn ppa_labels_come_from_the_nine_neighborhood() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(3)
            .enforce_connectivity(false)
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let grid = SeedGrid::new(64, 48, 60);
        for y in 0..48 {
            for x in 0..64 {
                let l = out.labels()[(x, y)] as usize;
                assert!(
                    grid.nine_neighbors_of_pixel(x, y).contains(&l),
                    "pixel ({x},{y}) labeled outside its 9-neighborhood"
                );
            }
        }
    }

    #[test]
    fn early_exit_on_convergence_threshold() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(50)
            .convergence_threshold(Some(1000.0)) // absurdly lax: exit after 1 step
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.iterations_run(), 1);
    }

    #[test]
    fn sslic_counts_sub_iterations() {
        let img = test_image();
        let out = Segmenter::sslic_ppa(params(60, 6), 3).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.counters().sub_iterations, 6);
    }

    #[test]
    fn sslic_subset_pass_touches_fraction_of_pixels() {
        let img = test_image();
        let n = (64 * 48) as u64;
        let full = Segmenter::slic_ppa(params(60, 2)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let half = Segmenter::sslic_ppa(params(60, 2), 2).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        // Same number of steps, but each S-SLIC step assigns half the
        // pixels: distance calcs are ~half.
        assert_eq!(full.counters().distance_calcs, 2 * n * 9);
        assert_eq!(half.counters().distance_calcs, n * 9);
    }

    #[test]
    fn cpa_averages_four_distance_calcs_per_pixel() {
        // Table 2's premise: the 2S×2S windows visit each pixel ~4 times
        // per iteration (interior clusters; borders reduce it slightly).
        let img = SyntheticImage::builder(96, 96).seed(1).regions(4).build();
        let p = SlicParams::builder(36)
            .iterations(1)
            .perturb_seeds(false)
            .enforce_connectivity(false)
            .build();
        let out = Segmenter::slic(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let per_pixel = out.counters().distance_calcs as f64 / (96.0 * 96.0);
        assert!(
            (3.0..=4.6).contains(&per_pixel),
            "CPA visits/pixel = {per_pixel}"
        );
    }

    #[test]
    fn ppa_does_exactly_nine_distance_calcs_per_pixel() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(1)
            .enforce_connectivity(false)
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.counters().distance_calcs, 64 * 48 * 9);
    }

    fn label_agreement(a: &Segmentation, b: &Segmentation) -> f64 {
        let agree = a
            .labels()
            .iter()
            .zip(b.labels().iter())
            .filter(|(x, y)| x == y)
            .count();
        agree as f64 / a.labels().len() as f64
    }

    #[test]
    fn quantized_8bit_tracks_float_labels_closely() {
        // Float vs 8-bit differ in *both* the color-conversion path (LUT vs
        // exact) and the distance precision; near-tie boundary pixels can
        // flip. On this small image boundaries are a large pixel fraction,
        // so require a moderate majority agreement here — the metric-level
        // claim of §6.1 (USE within 0.003) is validated in the bench
        // harness on full-size corpora.
        let img = test_image();
        let p = params(60, 4);
        let float = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let quant = Segmenter::slic_ppa(p)
            .with_distance_mode(DistanceMode::quantized(8))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let frac = label_agreement(&float, &quant);
        assert!(frac > 0.65, "8-bit agrees with float on {frac} of pixels");
    }

    #[test]
    fn distance_precision_cliff_sits_below_8_bits() {
        // Same LUT color conversion on all sides: only the distance-code
        // width differs. The paper's §6.1 finding is that 8 bits is safe
        // and degradation starts below — measured here as label agreement
        // against a 12-bit reference at SLIC-realistic superpixel size.
        let img = SyntheticImage::builder(128, 96).seed(3).regions(5).build();
        let p = params(24, 4);
        let run = |bits: u8| {
            Segmenter::slic_ppa(p)
                .with_distance_mode(DistanceMode::quantized(bits))
                .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new())
        };
        let q12 = run(12);
        let a8 = label_agreement(&q12, &run(8));
        let a6 = label_agreement(&q12, &run(6));
        assert!(a8 > 0.85, "8-bit agrees with 12-bit on {a8} of pixels");
        assert!(
            a6 < a8 - 0.1,
            "6-bit ({a6}) must be noticeably worse than 8-bit ({a8})"
        );
    }

    #[test]
    fn very_low_precision_degrades_labels() {
        let img = test_image();
        let p = params(60, 4);
        let q8 = Segmenter::slic_ppa(p)
            .with_distance_mode(DistanceMode::quantized(8))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let q3 = Segmenter::slic_ppa(p)
            .with_distance_mode(DistanceMode::quantized(3))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let diff = q8
            .labels()
            .iter()
            .zip(q3.labels().iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 0, "3-bit must differ from 8-bit somewhere");
    }

    #[test]
    fn segment_lab_matches_segment_for_float_mode() {
        let img = test_image();
        let seg = Segmenter::slic_ppa(params(60, 3));
        let via_rgb = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let lab = float::convert_image(&img.rgb);
        let via_lab = seg.run(SegmentRequest::Lab(&lab), &RunOptions::new());
        assert_eq!(via_rgb.labels(), via_lab.labels());
    }

    #[test]
    fn connectivity_can_be_disabled() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(3)
            .enforce_connectivity(false)
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        // With connectivity off the connectivity phase records zero time.
        assert_eq!(
            out.breakdown().phase_time(crate::profile::Phase::Connectivity),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn breakdown_records_assignment_and_update_time() {
        let img = test_image();
        let out = Segmenter::slic_ppa(params(60, 3)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        use crate::profile::Phase;
        assert!(out.breakdown().phase_time(Phase::DistanceMin) > std::time::Duration::ZERO);
        assert!(out.breakdown().phase_time(Phase::CenterUpdate) > std::time::Duration::ZERO);
    }

    #[test]
    fn bands_strategy_is_selectable() {
        let img = test_image();
        let seg = Segmenter::sslic_ppa(params(60, 4), 2)
            .with_subset_strategy(SubsetStrategy::Bands);
        match seg.algorithm() {
            Algorithm::SSlicPpa { strategy, .. } => {
                assert_eq!(strategy, SubsetStrategy::Bands)
            }
            _ => panic!("wrong algorithm"),
        }
        let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.labels().len(), 64 * 48);
    }

    #[test]
    fn preemption_freezes_clusters_and_cuts_distance_work() {
        let img = test_image();
        let plain = Segmenter::slic_ppa(params(60, 10)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let preempted = Segmenter::slic_ppa(params(60, 10))
            .with_preemption(0.5)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(plain.frozen_clusters(), 0);
        assert!(
            preempted.frozen_clusters() > 0,
            "some clusters should converge and freeze within 10 iterations"
        );
        assert!(
            preempted.counters().distance_calcs < plain.counters().distance_calcs,
            "frozen neighborhoods skip distance computations"
        );
    }

    #[test]
    fn preemption_barely_changes_the_result() {
        let img = test_image();
        let plain = Segmenter::slic_ppa(params(60, 10)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let preempted = Segmenter::slic_ppa(params(60, 10))
            .with_preemption(0.25)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let agree = plain
            .labels()
            .iter()
            .zip(preempted.labels().iter())
            .filter(|(a, b)| a == b)
            .count() as f64
            / plain.labels().len() as f64;
        assert!(agree > 0.9, "preemption is near-lossless: {agree}");
    }

    #[test]
    fn preemption_composes_with_subsampling() {
        // The combination the paper's §8 left unanalyzed.
        let img = test_image();
        let combined = Segmenter::sslic_ppa(params(60, 12), 2)
            .with_preemption(0.5)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let sslic_only = Segmenter::sslic_ppa(params(60, 12), 2).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert!(combined.counters().distance_calcs <= sslic_only.counters().distance_calcs);
        let k = combined.cluster_count() as u32;
        assert!(combined.labels().iter().all(|&l| l < k));
    }

    #[test]
    fn measured_counters_match_the_analytic_prediction() {
        use crate::instrument::predict_ppa_distance_calcs;
        let img = test_image();
        for subsets in [1u32, 2, 3] {
            for strategy in [
                SubsetStrategy::Interleaved,
                SubsetStrategy::Checkerboard,
                SubsetStrategy::Bands,
            ] {
                let seg = if subsets == 1 {
                    Segmenter::slic_ppa(params(60, 5))
                } else {
                    Segmenter::sslic_ppa(params(60, 5), subsets)
                        .with_subset_strategy(strategy)
                };
                let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                let predicted =
                    predict_ppa_distance_calcs(64, 48, 5, subsets, strategy);
                if subsets == 1 {
                    // Strategy irrelevant for one subset.
                    assert_eq!(out.counters().distance_calcs, 64 * 48 * 5 * 9);
                } else {
                    assert_eq!(
                        out.counters().distance_calcs,
                        predicted,
                        "P={subsets} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_compactness_produces_valid_labels() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(6)
            .adaptive_compactness(true)
            .build();
        let seg = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let k = seg.cluster_count() as u32;
        assert!(seg.labels().iter().all(|&l| l < k));
        // It must actually differ from fixed-m SLIC after several passes.
        let fixed = Segmenter::slic_ppa(params(60, 6)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_ne!(seg.labels(), fixed.labels());
    }

    #[test]
    fn adaptive_compactness_is_deterministic() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(5)
            .adaptive_compactness(true)
            .build();
        let a = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let b = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    #[should_panic(expected = "float-datapath")]
    fn adaptive_compactness_rejects_quantized_mode() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(2)
            .adaptive_compactness(true)
            .build();
        let _ = Segmenter::slic_ppa(p)
            .with_distance_mode(DistanceMode::quantized(8))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
    }

    #[test]
    fn warm_start_converges_immediately_on_the_same_frame() {
        let img = test_image();
        let seg = Segmenter::slic_ppa(params(60, 10));
        let cold = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        // Re-segment the identical frame from the converged centers with a
        // tight convergence threshold: it should stop almost at once.
        let p = SlicParams::builder(60)
            .iterations(10)
            .convergence_threshold(Some(0.1))
            .build();
        let warm = Segmenter::slic_ppa(p).run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_warm_start(cold.clusters()),
        );
        assert!(
            warm.iterations_run() <= 3,
            "warm start on an identical frame converges fast: {} steps",
            warm.iterations_run()
        );
    }

    #[test]
    fn warm_start_matches_cold_quality_on_similar_frames() {
        // "Frame t+1": the same scene, slightly different noise.
        let frame0 = SyntheticImage::builder(64, 48).seed(0).regions(5).build();
        let frame1 = SyntheticImage::builder(64, 48)
            .seed(0)
            .regions(5)
            .noise_sigma(7.0)
            .build();
        let seg10 = Segmenter::slic_ppa(params(60, 10));
        let cold1 = seg10.run(SegmentRequest::Rgb(&frame1.rgb), &RunOptions::new());
        let prev = seg10.run(SegmentRequest::Rgb(&frame0.rgb), &RunOptions::new());
        let warm1 = Segmenter::slic_ppa(params(60, 2)).run(
            SegmentRequest::Rgb(&frame1.rgb),
            &RunOptions::new().with_warm_start(prev.clusters()),
        );
        let agree = warm1
            .labels()
            .iter()
            .zip(cold1.labels().iter())
            .filter(|(a, b)| a == b)
            .count() as f64
            / cold1.labels().len() as f64;
        assert!(
            agree > 0.8,
            "2 warm steps track 10 cold steps on a similar frame: {agree}"
        );
    }

    #[test]
    #[should_panic(expected = "warm start must carry")]
    fn warm_start_with_wrong_cluster_count_panics() {
        let img = test_image();
        let seg = Segmenter::slic_ppa(params(60, 2));
        let _ = seg.run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_warm_start(&[Cluster::default(); 3]),
        );
    }

    #[test]
    #[should_panic(expected = "subset count")]
    fn zero_subsets_panics() {
        let _ = Segmenter::sslic_ppa(params(60, 2), 0);
    }

    #[test]
    fn more_superpixels_than_pixels_yields_valid_degenerate_map() {
        // K far beyond the pixel count: the grid clamps to one seed per
        // pixel-ish cell and the run must still produce an in-range, fully
        // assigned label map instead of panicking.
        let img = SyntheticImage::builder(4, 4).seed(0).regions(2).build();
        let p = SlicParams::builder(64).iterations(2).build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let k = out.cluster_count() as u32;
        assert!(k >= 1);
        assert_eq!(out.labels().len(), 16);
        assert!(out.labels().iter().all(|&l| l < k));
    }

    #[test]
    fn noop_fault_hook_is_bit_identical() {
        struct Noop;
        impl StepFaults for Noop {}
        let img = test_image();
        for seg in [
            Segmenter::slic_ppa(params(60, 4)),
            Segmenter::sslic_ppa(params(60, 4), 2)
                .with_distance_mode(DistanceMode::quantized(8)),
        ] {
            let clean = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            let hooked = seg.run(
                SegmentRequest::Rgb(&img.rgb),
                &RunOptions::new().with_faults(&Noop),
            );
            assert_eq!(clean.labels(), hooked.labels());
            assert_eq!(clean.clusters(), hooked.clusters());
            assert_eq!(hooked.status(), SegmentationStatus::Ok);
            assert_eq!(hooked.invariant_repairs(), 0);
        }
    }

    #[test]
    fn fault_free_runs_report_ok_status() {
        let img = test_image();
        let out = Segmenter::slic_ppa(params(60, 3)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.status(), SegmentationStatus::Ok);
        assert_eq!(out.invariant_repairs(), 0);
    }

    #[test]
    fn corrupted_centers_are_repaired_and_flagged() {
        struct Smash;
        impl StepFaults for Smash {
            fn corrupt_centers(&self, step: u32, clusters: &mut [Cluster]) {
                if step == 0 {
                    clusters[0].x = f32::NAN;
                    clusters[1].y = 1.0e9;
                    clusters[2].l = f32::INFINITY;
                }
            }
        }
        let img = test_image();
        let out = Segmenter::slic_ppa(params(60, 3)).run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_faults(&Smash),
        );
        assert_eq!(out.status(), SegmentationStatus::Degraded);
        assert!(out.invariant_repairs() >= 3);
        for c in out.clusters() {
            assert!(c.x.is_finite() && (0.0..64.0).contains(&c.x));
            assert!(c.y.is_finite() && (0.0..48.0).contains(&c.y));
            assert!(c.l.is_finite() && (0.0..=100.0).contains(&c.l));
        }
        let k = out.cluster_count() as u32;
        assert!(out.labels().iter().all(|&l| l < k));
    }

    #[test]
    fn corrupted_lab8_still_yields_valid_labels() {
        struct Noise;
        impl StepFaults for Noise {
            fn corrupt_lab8(&self, lab8: &mut Lab8Image) {
                for (i, v) in lab8.l.as_mut_slice().iter_mut().enumerate() {
                    if i % 7 == 0 {
                        *v ^= 0x80;
                    }
                }
            }
        }
        let img = test_image();
        let seg = Segmenter::sslic_ppa(params(60, 4), 2)
            .with_distance_mode(DistanceMode::quantized(8));
        let out = seg.run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_faults(&Noise),
        );
        let k = out.cluster_count() as u32;
        assert!(out.labels().iter().all(|&l| l < k));
        let clean = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_ne!(clean.labels(), out.labels(), "corruption must be visible");
    }

    #[test]
    fn segment_lab8_matches_segment_in_quantized_mode() {
        let img = test_image();
        let seg = Segmenter::slic_ppa(params(60, 3))
            .with_distance_mode(DistanceMode::quantized(8));
        let via_rgb = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let lab8 = HwColorConverter::paper_default().convert_image(&img.rgb);
        let via_lab8 = seg.run(SegmentRequest::Lab8(&lab8), &RunOptions::new());
        assert_eq!(via_rgb.labels(), via_lab8.labels());
    }

    #[test]
    fn unmet_convergence_threshold_reports_degraded() {
        let img = test_image();
        // An impossible threshold with a tiny budget: terminates (budget
        // bound) but flags non-convergence.
        let p = SlicParams::builder(60)
            .iterations(1)
            .convergence_threshold(Some(0.0))
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.iterations_run(), 1);
        assert_eq!(out.status(), SegmentationStatus::Degraded);
    }

    #[test]
    fn steps_per_full_pass() {
        assert_eq!(Algorithm::SlicCpa.steps_per_full_pass(), 1);
        assert_eq!(
            Algorithm::SSlicPpa {
                subsets: 4,
                strategy: SubsetStrategy::Interleaved
            }
            .steps_per_full_pass(),
            4
        );
    }

    /// The six legacy entry points must stay exact aliases of `run` for
    /// as long as they exist.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_run() {
        let img = test_image();
        let seg = Segmenter::sslic_ppa(params(60, 4), 2);
        let via_run = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let via_wrapper = seg.segment(&img.rgb);
        assert_eq!(via_run.labels(), via_wrapper.labels());
        assert_eq!(via_run.clusters(), via_wrapper.clusters());

        let warm_run = seg.run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_warm_start(via_run.clusters()),
        );
        let warm_wrapper = seg.segment_warm(&img.rgb, via_run.clusters());
        assert_eq!(warm_run.labels(), warm_wrapper.labels());

        let lab = float::convert_image(&img.rgb);
        assert_eq!(
            seg.run(SegmentRequest::Lab(&lab), &RunOptions::new()).labels(),
            seg.segment_lab(&lab).labels()
        );
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let img = test_image();
        let mut baseline: Option<Segmentation> = None;
        for threads in [1usize, 2, 3, 8] {
            let p = SlicParams::builder(60)
                .iterations(4)
                .threads(threads)
                .build();
            let out =
                Segmenter::sslic_ppa(p, 2).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            if let Some(base) = &baseline {
                assert_eq!(base.labels(), out.labels(), "threads = {threads}");
                assert_eq!(base.clusters(), out.clusters(), "threads = {threads}");
            } else {
                baseline = Some(out);
            }
        }
    }
}
