use sslic_color::{Lab8Image, LabImage};
use sslic_image::{Plane, RgbImage};
use sslic_obs::Recorder;

use crate::cluster::Cluster;
use crate::distance::DistanceMode;
use crate::instrument::RunCounters;
use crate::kernel::Kernel;
use crate::profile::PhaseBreakdown;
use crate::recovery::{RecoveryPolicy, RecoveryReport};
use crate::session::FrameReport;
use crate::subsample::SubsetStrategy;
use crate::SlicParams;

/// Which SLIC variant the [`Segmenter`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Original SLIC: each cluster scans a `2S×2S` window per iteration
    /// (the paper's center-perspective architecture, Fig. 1a).
    SlicCpa,
    /// gSLIC-style SLIC: each pixel considers its 9 nearest initial
    /// centers every iteration (pixel perspective without subsampling).
    SlicPpa,
    /// S-SLIC, pixel-perspective: pixels split into `subsets` equal groups
    /// traversed round-robin; one group per center-update step (the
    /// paper's primary algorithm, Fig. 1b).
    SSlicPpa {
        /// Number of pixel subsets `P` (subsampling ratio `1/P`).
        subsets: u32,
        /// Spatial layout of the subsets.
        strategy: SubsetStrategy,
    },
    /// S-SLIC, center-perspective: the superpixel centers are split into
    /// `subsets` groups; one group is updated per step (the examined
    /// alternative of §3).
    SSlicCpa {
        /// Number of center subsets `P`.
        subsets: u32,
    },
}

impl Algorithm {
    /// Number of sub-iterations that make up one full-image pass.
    pub fn steps_per_full_pass(&self) -> u32 {
        match self {
            Algorithm::SlicCpa | Algorithm::SlicPpa => 1,
            Algorithm::SSlicPpa { subsets, .. } | Algorithm::SSlicCpa { subsets } => *subsets,
        }
    }

    /// Stable snake_case identifier used by trace events and run reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SlicCpa => "slic_cpa",
            Algorithm::SlicPpa => "slic_ppa",
            Algorithm::SSlicPpa { .. } => "sslic_ppa",
            Algorithm::SSlicCpa { .. } => "sslic_cpa",
        }
    }
}

/// Fault-injection hooks the engine invokes at architecturally meaningful
/// points, modeling soft errors in the accelerator's state-holding
/// elements. Implemented by `sslic-fault`; every method defaults to a
/// no-op, and a no-op implementation leaves the segmentation bit-identical
/// to the hook-free entry points.
///
/// The engine treats whatever the hooks leave behind as untrusted: centers
/// are clamped back into the image box (and non-finite fields replaced),
/// out-of-range labels are repaired to the pixel's home cluster, and the
/// iteration budget of [`SlicParams::iterations`] bounds the run
/// unconditionally — corrupted state can degrade quality but never hang or
/// panic the engine. Any repair marks the result
/// [`SegmentationStatus::Degraded`].
/// Hooks take `&self`: injection is expected to be a pure function of the
/// corrupted addresses (implementations keep any tallies in interior-
/// mutable cells), which is what makes fault injection compose with the
/// banded multi-threaded execution layer — the hooks run at serial
/// synchronization points (before the first iteration, after each center
/// reduction), never inside a worker, so the corruption they apply is
/// independent of the thread count by construction.
pub trait StepFaults {
    /// Called at the start of every run attempt of a frame with the
    /// attempt number (0 for the ordinary run, 1.. for recovery
    /// retries), before any corruption hook of that attempt fires.
    /// Implementations that derive corruption from addresses should fold
    /// the attempt into their address space so a retry draws an
    /// independent fault pattern — re-applying attempt 0's faults
    /// verbatim would re-corrupt the rolled-back state identically and
    /// make recovery impossible by construction. The default is a no-op,
    /// and attempt 0 must leave behavior identical to a hook without
    /// this method.
    fn begin_attempt(&self, _attempt: u32) {}

    /// Called once, before the first iteration, with the quantized pixel
    /// features (the accelerator's channel-memory contents). Only invoked
    /// when the pixel features exist, i.e. in quantized distance mode or
    /// when the input is a [`SegmentRequest::Lab8`].
    fn corrupt_lab8(&self, _lab8: &mut Lab8Image) {}

    /// Called after the center update of step `step` with the engine's
    /// center registers — the landing spot for bit flips in the sigma
    /// accumulators / center register file between iterations.
    fn corrupt_centers(&self, _step: u32, _clusters: &mut [Cluster]) {}
}

/// The input of one segmentation run: which color representation the
/// pixels arrive in. Together with [`RunOptions`], every combination of
/// input representation × warm start × fault hooks is one
/// [`Segmenter::run`] (or session) call.
#[derive(Debug, Clone, Copy)]
pub enum SegmentRequest<'a> {
    /// An RGB image; CIELAB conversion runs first (and is charged to the
    /// [`crate::profile::Phase::ColorConversion`] breakdown slot). The
    /// conversion route
    /// follows the distance mode: the accelerator's LUT converter in
    /// quantized mode, the exact float converter otherwise.
    Rgb(&'a RgbImage),
    /// A pre-converted float CIELAB image; conversion is charged zero time
    /// (useful when sweeping algorithms over one corpus). In quantized
    /// mode the pixels are first encoded to 8-bit codes so the datapath
    /// sees the representation the accelerator's channel memories hold.
    Lab(&'a LabImage),
    /// A pre-encoded 8-bit CIELAB image — exactly the accelerator's
    /// channel-memory contents. The float working image is decoded from
    /// the supplied codes, so assignment and sigma accumulation see this
    /// data bit for bit; in quantized mode the codes also feed the
    /// distance datapath directly. This is the entry point for externally
    /// converted (or externally corrupted) pixel features.
    Lab8(&'a Lab8Image),
}

/// Cross-cutting options of one segmentation run. The struct is the
/// extension point for new engine concerns: adding a field here reaches
/// every input representation and entry point (one-shot and streaming
/// session alike) at once.
///
/// # Example
///
/// ```
/// use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
/// use sslic_image::synthetic::SyntheticImage;
///
/// let img = SyntheticImage::builder(64, 48).seed(2).regions(5).build();
/// let seg = Segmenter::sslic_ppa(SlicParams::builder(80).iterations(4).build(), 2);
/// let cold = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
/// // Re-run warm-started from the converged centers.
/// let warm = seg.run(
///     SegmentRequest::Rgb(&img.rgb),
///     &RunOptions::new().with_warm_start(cold.clusters()),
/// );
/// assert_eq!(warm.labels().len(), 64 * 48);
/// ```
#[derive(Default, Clone, Copy)]
pub struct RunOptions<'a> {
    /// Initial cluster centers from a previous frame, replacing grid
    /// seeding (no gradient perturbation) — the temporal warm start a
    /// 30 fps video pipeline uses. Must carry exactly
    /// [`crate::SeedGrid::cluster_count`] clusters for this image's
    /// realized grid, since the static 9-neighborhood tiling must stay
    /// valid.
    pub warm_start: Option<&'a [Cluster]>,
    /// Fault-injection hooks, consulted at the points documented on
    /// [`StepFaults`]. `None` (or hooks that never mutate anything)
    /// leaves the output bit-identical to the hook-free run.
    pub faults: Option<&'a dyn StepFaults>,
    /// Observability recorder. When set, the engine emits spans and
    /// events keyed by logical clocks (step, band) at its serial
    /// synchronization points: a `core.run` span, per-step `core.step`
    /// spans, per-band counter events from the assignment and
    /// center-update passes, phase attribution, and repair events. The
    /// emission schedule is a pure function of the workload, so a
    /// deterministic-mode trace is byte-identical across repeats and
    /// thread counts. Recording never changes the segmentation output.
    pub recorder: Option<&'a Recorder>,
    /// Self-healing recovery policy. When set, end-of-frame invariant
    /// guards that fire trigger checkpoint rollback and bounded
    /// deterministic retries per the policy's escalation ladder instead
    /// of merely flagging [`SegmentationStatus::Degraded`]. `None`
    /// preserves the detect-and-flag behavior exactly.
    pub recovery: Option<&'a RecoveryPolicy>,
    /// Per-run assign-kernel override. `None` defers to the
    /// configuration-level [`SlicParams::kernel`] preference; `Some`
    /// takes precedence for this run only. Every choice produces
    /// bit-identical labels (see [`Kernel`]).
    ///
    /// [`SlicParams::kernel`]: crate::SlicParams::kernel
    pub kernel: Option<Kernel>,
}

impl<'a> RunOptions<'a> {
    /// Default options: cold start, no fault hooks.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Warm-starts the run from `clusters` (see
    /// [`RunOptions::warm_start`]).
    pub fn with_warm_start(mut self, clusters: &'a [Cluster]) -> Self {
        self.warm_start = Some(clusters);
        self
    }

    /// Activates fault-injection hooks (see [`RunOptions::faults`]).
    pub fn with_faults(mut self, faults: &'a dyn StepFaults) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches an observability recorder (see [`RunOptions::recorder`]).
    pub fn with_recorder(mut self, recorder: &'a Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Enables self-healing recovery (see [`RunOptions::recovery`]).
    pub fn with_recovery(mut self, policy: &'a RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Overrides the assign-kernel selection for this run (see
    /// [`RunOptions::kernel`]).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("warm_start", &self.warm_start.map(<[Cluster]>::len))
            .field("faults", &self.faults.is_some())
            .field("recorder", &self.recorder.is_some())
            .field("recovery", &self.recovery)
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// Health of a completed segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentationStatus {
    /// No invariant repairs fired, and the run converged within its
    /// iteration budget whenever a convergence threshold was configured.
    Ok,
    /// Corrupted state was detected and repaired (center clamp or
    /// label-range repair), or a configured convergence threshold was
    /// still unmet when the iteration budget ran out — the non-convergence
    /// signature of corruption. The label map is still valid (in-range,
    /// fully assigned).
    Degraded,
    /// Invariant guards fired, but the session's recovery engine rolled
    /// back to its checkpoint and re-ran within the retry budget until an
    /// attempt finished guard-clean — the labels are those of a clean
    /// run, not a repaired one. Only produced when a
    /// [`RecoveryPolicy`] is active (see [`RunOptions::recovery`]).
    Recovered,
}

/// Configured segmentation pipeline: parameters + algorithm + numeric mode.
///
/// # Example
///
/// ```
/// use sslic_core::{DistanceMode, RunOptions, SegmentRequest, Segmenter, SlicParams};
/// use sslic_image::synthetic::SyntheticImage;
///
/// let img = SyntheticImage::builder(64, 48).seed(2).regions(5).build();
/// let params = SlicParams::builder(80).iterations(4).build();
/// // The accelerator's datapath: S-SLIC at 8-bit precision.
/// let seg = Segmenter::sslic_ppa(params, 2)
///     .with_distance_mode(DistanceMode::quantized(8))
///     .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
/// assert_eq!(seg.labels().len(), 64 * 48);
/// ```
#[derive(Debug, Clone)]
pub struct Segmenter {
    params: SlicParams,
    algorithm: Algorithm,
    distance_mode: DistanceMode,
    preemption: Option<f32>,
}

impl Segmenter {
    /// Creates a segmenter for an explicit algorithm choice.
    pub fn new(params: SlicParams, algorithm: Algorithm) -> Self {
        if let Algorithm::SSlicPpa { subsets, .. } | Algorithm::SSlicCpa { subsets } = algorithm {
            assert!(subsets > 0, "subset count must be nonzero");
        }
        Segmenter {
            params,
            algorithm,
            distance_mode: DistanceMode::Float,
            preemption: None,
        }
    }

    /// Original SLIC (center-perspective full scan).
    pub fn slic(params: SlicParams) -> Self {
        Self::new(params, Algorithm::SlicCpa)
    }

    /// Pixel-perspective SLIC without subsampling (gSLIC-style).
    pub fn slic_ppa(params: SlicParams) -> Self {
        Self::new(params, Algorithm::SlicPpa)
    }

    /// S-SLIC with `subsets` pixel subsets (the paper's primary
    /// configuration; `subsets = 2` is "S-SLIC (0.5)", `4` is
    /// "S-SLIC (0.25)").
    ///
    /// # Panics
    ///
    /// Panics if `subsets == 0`.
    pub fn sslic_ppa(params: SlicParams, subsets: u32) -> Self {
        Self::new(
            params,
            Algorithm::SSlicPpa {
                subsets,
                strategy: SubsetStrategy::default(),
            },
        )
    }

    /// S-SLIC with `subsets` center subsets (the CPA alternative of §3).
    ///
    /// # Panics
    ///
    /// Panics if `subsets == 0`.
    pub fn sslic_cpa(params: SlicParams, subsets: u32) -> Self {
        Self::new(params, Algorithm::SSlicCpa { subsets })
    }

    /// Selects the numeric mode of the distance datapath.
    pub fn with_distance_mode(mut self, mode: DistanceMode) -> Self {
        self.distance_mode = mode;
        self
    }

    /// Selects the subset layout (PPA subsampling only; no-op otherwise).
    pub fn with_subset_strategy(mut self, strategy: SubsetStrategy) -> Self {
        if let Algorithm::SSlicPpa { strategy: s, .. } = &mut self.algorithm {
            *s = strategy;
        }
        self
    }

    /// Enables Preemptive-SLIC-style per-cluster halting (Neubert &
    /// Protzel, ICPR 2014 — the paper's §8 notes the technique is
    /// orthogonal to S-SLIC and that combining them was "beyond the scope
    /// of this work"; this implementation makes the combination
    /// analyzable).
    ///
    /// A cluster whose center moves less than `threshold` pixels (L1) in
    /// one update step is frozen: it is no longer scanned (CPA) and pixels
    /// whose nine candidates are all frozen are skipped (PPA), cutting
    /// distance computations in the late, already-converged iterations.
    pub fn with_preemption(mut self, threshold: f32) -> Self {
        self.preemption = Some(threshold.max(0.0));
        self
    }

    /// The configured preemption threshold, if any.
    pub fn preemption(&self) -> Option<f32> {
        self.preemption
    }

    /// The configured parameters.
    pub fn params(&self) -> &SlicParams {
        &self.params
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured numeric mode.
    pub fn distance_mode(&self) -> DistanceMode {
        self.distance_mode
    }

}

/// The result of a segmentation run: the label map, final cluster centers,
/// and the recorded instrumentation.
#[derive(Debug, Clone)]
pub struct Segmentation {
    labels: Plane<u32>,
    clusters: Vec<Cluster>,
    iterations_run: u32,
    breakdown: PhaseBreakdown,
    counters: RunCounters,
    spacing: f32,
    frozen_clusters: usize,
    status: SegmentationStatus,
    repairs: u64,
    recovery: RecoveryReport,
    kernel: Kernel,
}

impl Segmentation {
    /// Assembles a result from a finished session frame (the one-shot
    /// entry points route through here).
    pub(crate) fn from_parts(
        labels: Plane<u32>,
        clusters: Vec<Cluster>,
        report: FrameReport,
    ) -> Segmentation {
        Segmentation {
            labels,
            clusters,
            iterations_run: report.iterations_run,
            breakdown: report.breakdown,
            counters: report.counters,
            spacing: report.spacing,
            frozen_clusters: report.frozen_clusters,
            status: report.status,
            repairs: report.repairs,
            recovery: report.recovery,
            kernel: report.kernel,
        }
    }

    /// Superpixel index per pixel (indices address [`Self::clusters`]).
    pub fn labels(&self) -> &Plane<u32> {
        &self.labels
    }

    /// Consumes the result, returning the label map.
    pub fn into_labels(self) -> Plane<u32> {
        self.labels
    }

    /// Final cluster centers (`[L, a, b, x, y]` per superpixel).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Realized superpixel count (grid rounding of the requested `K`).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Center-update steps actually executed (≤ `params.iterations()` when
    /// early exit triggered).
    pub fn iterations_run(&self) -> u32 {
        self.iterations_run
    }

    /// Wall-clock time per pipeline phase (Table 1).
    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.breakdown
    }

    /// Recorded event counts (Table 2 inputs).
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// Grid spacing `S` used by this run.
    pub fn spacing(&self) -> f32 {
        self.spacing
    }

    /// Number of clusters frozen by Preemptive-SLIC halting (0 unless
    /// [`Segmenter::with_preemption`] was used).
    pub fn frozen_clusters(&self) -> usize {
        self.frozen_clusters
    }

    /// Health of the run — [`SegmentationStatus::Degraded`] when invariant
    /// repairs fired or a configured convergence threshold went unmet.
    pub fn status(&self) -> SegmentationStatus {
        self.status
    }

    /// Number of invariant repairs applied (center clamps / non-finite
    /// replacements plus out-of-range label fixes). Always 0 on fault-free
    /// runs.
    pub fn invariant_repairs(&self) -> u64 {
        self.repairs
    }

    /// Per-frame recovery record: guard firings, retries, escalations,
    /// outcome, and the final center-table checksum. With no
    /// [`RecoveryPolicy`] active this still carries the guard totals and
    /// checksum of the single attempt (outcome `Clean` or `Failed`).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The assign-kernel backend that actually ran: [`Kernel::Swar`] or
    /// [`Kernel::Scalar`], never [`Kernel::Auto`]. Informational only —
    /// labels are bit-identical across backends.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedGrid;
    use sslic_color::{float, hw::HwColorConverter};
    use sslic_image::synthetic::SyntheticImage;

    fn test_image() -> SyntheticImage {
        SyntheticImage::builder(64, 48).seed(0).regions(5).build()
    }

    fn params(k: usize, iters: u32) -> SlicParams {
        SlicParams::builder(k).iterations(iters).build()
    }

    #[test]
    fn all_variants_produce_valid_label_maps() {
        let img = test_image();
        for seg in [
            Segmenter::slic(params(60, 3)),
            Segmenter::slic_ppa(params(60, 3)),
            Segmenter::sslic_ppa(params(60, 4), 2),
            Segmenter::sslic_cpa(params(60, 4), 2),
        ] {
            let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            assert_eq!(out.labels().width(), 64);
            assert_eq!(out.labels().height(), 48);
            let k = out.cluster_count() as u32;
            assert!(out.labels().iter().all(|&l| l < k), "labels in range");
            assert_eq!(out.iterations_run(), seg.params().iterations());
        }
    }

    #[test]
    fn segmentation_is_deterministic() {
        let img = test_image();
        let seg = Segmenter::sslic_ppa(params(60, 4), 2);
        let a = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let b = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn clusters_move_toward_member_centroids() {
        let img = test_image();
        let out = Segmenter::slic_ppa(params(60, 5)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        // After convergence iterations, cluster centroids should be inside
        // the image and labels should form compact regions near centers.
        for c in out.clusters() {
            assert!(c.x >= 0.0 && c.x < 64.0);
            assert!(c.y >= 0.0 && c.y < 48.0);
        }
    }

    #[test]
    fn ppa_labels_come_from_the_nine_neighborhood() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(3)
            .enforce_connectivity(false)
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let grid = SeedGrid::new(64, 48, 60);
        for y in 0..48 {
            for x in 0..64 {
                let l = out.labels()[(x, y)] as usize;
                assert!(
                    grid.nine_neighbors_of_pixel(x, y).contains(&l),
                    "pixel ({x},{y}) labeled outside its 9-neighborhood"
                );
            }
        }
    }

    #[test]
    fn early_exit_on_convergence_threshold() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(50)
            .convergence_threshold(Some(1000.0)) // absurdly lax: exit after 1 step
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.iterations_run(), 1);
    }

    #[test]
    fn sslic_counts_sub_iterations() {
        let img = test_image();
        let out = Segmenter::sslic_ppa(params(60, 6), 3).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.counters().sub_iterations, 6);
    }

    #[test]
    fn sslic_subset_pass_touches_fraction_of_pixels() {
        let img = test_image();
        let n = (64 * 48) as u64;
        let full = Segmenter::slic_ppa(params(60, 2)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let half = Segmenter::sslic_ppa(params(60, 2), 2).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        // Same number of steps, but each S-SLIC step assigns half the
        // pixels: distance calcs are ~half.
        assert_eq!(full.counters().distance_calcs, 2 * n * 9);
        assert_eq!(half.counters().distance_calcs, n * 9);
    }

    #[test]
    fn cpa_averages_four_distance_calcs_per_pixel() {
        // Table 2's premise: the 2S×2S windows visit each pixel ~4 times
        // per iteration (interior clusters; borders reduce it slightly).
        let img = SyntheticImage::builder(96, 96).seed(1).regions(4).build();
        let p = SlicParams::builder(36)
            .iterations(1)
            .perturb_seeds(false)
            .enforce_connectivity(false)
            .build();
        let out = Segmenter::slic(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let per_pixel = out.counters().distance_calcs as f64 / (96.0 * 96.0);
        assert!(
            (3.0..=4.6).contains(&per_pixel),
            "CPA visits/pixel = {per_pixel}"
        );
    }

    #[test]
    fn ppa_does_exactly_nine_distance_calcs_per_pixel() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(1)
            .enforce_connectivity(false)
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.counters().distance_calcs, 64 * 48 * 9);
    }

    fn label_agreement(a: &Segmentation, b: &Segmentation) -> f64 {
        let agree = a
            .labels()
            .iter()
            .zip(b.labels().iter())
            .filter(|(x, y)| x == y)
            .count();
        agree as f64 / a.labels().len() as f64
    }

    #[test]
    fn quantized_8bit_tracks_float_labels_closely() {
        // Float vs 8-bit differ in *both* the color-conversion path (LUT vs
        // exact) and the distance precision; near-tie boundary pixels can
        // flip. On this small image boundaries are a large pixel fraction,
        // so require a moderate majority agreement here — the metric-level
        // claim of §6.1 (USE within 0.003) is validated in the bench
        // harness on full-size corpora.
        let img = test_image();
        let p = params(60, 4);
        let float = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let quant = Segmenter::slic_ppa(p)
            .with_distance_mode(DistanceMode::quantized(8))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let frac = label_agreement(&float, &quant);
        assert!(frac > 0.65, "8-bit agrees with float on {frac} of pixels");
    }

    #[test]
    fn distance_precision_cliff_sits_below_8_bits() {
        // Same LUT color conversion on all sides: only the distance-code
        // width differs. The paper's §6.1 finding is that 8 bits is safe
        // and degradation starts below — measured here as label agreement
        // against a 12-bit reference at SLIC-realistic superpixel size.
        let img = SyntheticImage::builder(128, 96).seed(3).regions(5).build();
        let p = params(24, 4);
        let run = |bits: u8| {
            Segmenter::slic_ppa(p)
                .with_distance_mode(DistanceMode::quantized(bits))
                .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new())
        };
        let q12 = run(12);
        let a8 = label_agreement(&q12, &run(8));
        let a6 = label_agreement(&q12, &run(6));
        assert!(a8 > 0.85, "8-bit agrees with 12-bit on {a8} of pixels");
        assert!(
            a6 < a8 - 0.1,
            "6-bit ({a6}) must be noticeably worse than 8-bit ({a8})"
        );
    }

    #[test]
    fn very_low_precision_degrades_labels() {
        let img = test_image();
        let p = params(60, 4);
        let q8 = Segmenter::slic_ppa(p)
            .with_distance_mode(DistanceMode::quantized(8))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let q3 = Segmenter::slic_ppa(p)
            .with_distance_mode(DistanceMode::quantized(3))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let diff = q8
            .labels()
            .iter()
            .zip(q3.labels().iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 0, "3-bit must differ from 8-bit somewhere");
    }

    #[test]
    fn segment_lab_matches_segment_for_float_mode() {
        let img = test_image();
        let seg = Segmenter::slic_ppa(params(60, 3));
        let via_rgb = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let lab = float::convert_image(&img.rgb);
        let via_lab = seg.run(SegmentRequest::Lab(&lab), &RunOptions::new());
        assert_eq!(via_rgb.labels(), via_lab.labels());
    }

    #[test]
    fn connectivity_can_be_disabled() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(3)
            .enforce_connectivity(false)
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        // With connectivity off the connectivity phase records zero time.
        assert_eq!(
            out.breakdown().phase_time(crate::profile::Phase::Connectivity),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn breakdown_records_assignment_and_update_time() {
        let img = test_image();
        let out = Segmenter::slic_ppa(params(60, 3)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        use crate::profile::Phase;
        assert!(out.breakdown().phase_time(Phase::DistanceMin) > std::time::Duration::ZERO);
        assert!(out.breakdown().phase_time(Phase::CenterUpdate) > std::time::Duration::ZERO);
    }

    #[test]
    fn bands_strategy_is_selectable() {
        let img = test_image();
        let seg = Segmenter::sslic_ppa(params(60, 4), 2)
            .with_subset_strategy(SubsetStrategy::Bands);
        match seg.algorithm() {
            Algorithm::SSlicPpa { strategy, .. } => {
                assert_eq!(strategy, SubsetStrategy::Bands)
            }
            _ => panic!("wrong algorithm"),
        }
        let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.labels().len(), 64 * 48);
    }

    #[test]
    fn preemption_freezes_clusters_and_cuts_distance_work() {
        let img = test_image();
        let plain = Segmenter::slic_ppa(params(60, 10)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let preempted = Segmenter::slic_ppa(params(60, 10))
            .with_preemption(0.5)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(plain.frozen_clusters(), 0);
        assert!(
            preempted.frozen_clusters() > 0,
            "some clusters should converge and freeze within 10 iterations"
        );
        assert!(
            preempted.counters().distance_calcs < plain.counters().distance_calcs,
            "frozen neighborhoods skip distance computations"
        );
    }

    #[test]
    fn preemption_barely_changes_the_result() {
        let img = test_image();
        let plain = Segmenter::slic_ppa(params(60, 10)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let preempted = Segmenter::slic_ppa(params(60, 10))
            .with_preemption(0.25)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let agree = plain
            .labels()
            .iter()
            .zip(preempted.labels().iter())
            .filter(|(a, b)| a == b)
            .count() as f64
            / plain.labels().len() as f64;
        assert!(agree > 0.9, "preemption is near-lossless: {agree}");
    }

    #[test]
    fn preemption_composes_with_subsampling() {
        // The combination the paper's §8 left unanalyzed.
        let img = test_image();
        let combined = Segmenter::sslic_ppa(params(60, 12), 2)
            .with_preemption(0.5)
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let sslic_only = Segmenter::sslic_ppa(params(60, 12), 2).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert!(combined.counters().distance_calcs <= sslic_only.counters().distance_calcs);
        let k = combined.cluster_count() as u32;
        assert!(combined.labels().iter().all(|&l| l < k));
    }

    #[test]
    fn measured_counters_match_the_analytic_prediction() {
        use crate::instrument::predict_ppa_distance_calcs;
        let img = test_image();
        for subsets in [1u32, 2, 3] {
            for strategy in [
                SubsetStrategy::Interleaved,
                SubsetStrategy::Checkerboard,
                SubsetStrategy::Bands,
            ] {
                let seg = if subsets == 1 {
                    Segmenter::slic_ppa(params(60, 5))
                } else {
                    Segmenter::sslic_ppa(params(60, 5), subsets)
                        .with_subset_strategy(strategy)
                };
                let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                let predicted =
                    predict_ppa_distance_calcs(64, 48, 5, subsets, strategy);
                if subsets == 1 {
                    // Strategy irrelevant for one subset.
                    assert_eq!(out.counters().distance_calcs, 64 * 48 * 5 * 9);
                } else {
                    assert_eq!(
                        out.counters().distance_calcs,
                        predicted,
                        "P={subsets} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_compactness_produces_valid_labels() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(6)
            .adaptive_compactness(true)
            .build();
        let seg = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let k = seg.cluster_count() as u32;
        assert!(seg.labels().iter().all(|&l| l < k));
        // It must actually differ from fixed-m SLIC after several passes.
        let fixed = Segmenter::slic_ppa(params(60, 6)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_ne!(seg.labels(), fixed.labels());
    }

    #[test]
    fn adaptive_compactness_is_deterministic() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(5)
            .adaptive_compactness(true)
            .build();
        let a = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let b = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    #[should_panic(expected = "float-datapath")]
    fn adaptive_compactness_rejects_quantized_mode() {
        let img = test_image();
        let p = SlicParams::builder(60)
            .iterations(2)
            .adaptive_compactness(true)
            .build();
        let _ = Segmenter::slic_ppa(p)
            .with_distance_mode(DistanceMode::quantized(8))
            .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
    }

    #[test]
    fn warm_start_converges_immediately_on_the_same_frame() {
        let img = test_image();
        let seg = Segmenter::slic_ppa(params(60, 10));
        let cold = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        // Re-segment the identical frame from the converged centers with a
        // tight convergence threshold: it should stop almost at once.
        let p = SlicParams::builder(60)
            .iterations(10)
            .convergence_threshold(Some(0.1))
            .build();
        let warm = Segmenter::slic_ppa(p).run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_warm_start(cold.clusters()),
        );
        assert!(
            warm.iterations_run() <= 3,
            "warm start on an identical frame converges fast: {} steps",
            warm.iterations_run()
        );
    }

    #[test]
    fn warm_start_matches_cold_quality_on_similar_frames() {
        // "Frame t+1": the same scene, slightly different noise.
        let frame0 = SyntheticImage::builder(64, 48).seed(0).regions(5).build();
        let frame1 = SyntheticImage::builder(64, 48)
            .seed(0)
            .regions(5)
            .noise_sigma(7.0)
            .build();
        let seg10 = Segmenter::slic_ppa(params(60, 10));
        let cold1 = seg10.run(SegmentRequest::Rgb(&frame1.rgb), &RunOptions::new());
        let prev = seg10.run(SegmentRequest::Rgb(&frame0.rgb), &RunOptions::new());
        let warm1 = Segmenter::slic_ppa(params(60, 2)).run(
            SegmentRequest::Rgb(&frame1.rgb),
            &RunOptions::new().with_warm_start(prev.clusters()),
        );
        let agree = warm1
            .labels()
            .iter()
            .zip(cold1.labels().iter())
            .filter(|(a, b)| a == b)
            .count() as f64
            / cold1.labels().len() as f64;
        assert!(
            agree > 0.8,
            "2 warm steps track 10 cold steps on a similar frame: {agree}"
        );
    }

    #[test]
    #[should_panic(expected = "warm start must carry")]
    fn warm_start_with_wrong_cluster_count_panics() {
        let img = test_image();
        let seg = Segmenter::slic_ppa(params(60, 2));
        let _ = seg.run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_warm_start(&[Cluster::default(); 3]),
        );
    }

    #[test]
    #[should_panic(expected = "subset count")]
    fn zero_subsets_panics() {
        let _ = Segmenter::sslic_ppa(params(60, 2), 0);
    }

    #[test]
    fn more_superpixels_than_pixels_yields_valid_degenerate_map() {
        // K far beyond the pixel count: the grid clamps to one seed per
        // pixel-ish cell and the run must still produce an in-range, fully
        // assigned label map instead of panicking.
        let img = SyntheticImage::builder(4, 4).seed(0).regions(2).build();
        let p = SlicParams::builder(64).iterations(2).build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let k = out.cluster_count() as u32;
        assert!(k >= 1);
        assert_eq!(out.labels().len(), 16);
        assert!(out.labels().iter().all(|&l| l < k));
    }

    #[test]
    fn noop_fault_hook_is_bit_identical() {
        struct Noop;
        impl StepFaults for Noop {}
        let img = test_image();
        for seg in [
            Segmenter::slic_ppa(params(60, 4)),
            Segmenter::sslic_ppa(params(60, 4), 2)
                .with_distance_mode(DistanceMode::quantized(8)),
        ] {
            let clean = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            let hooked = seg.run(
                SegmentRequest::Rgb(&img.rgb),
                &RunOptions::new().with_faults(&Noop),
            );
            assert_eq!(clean.labels(), hooked.labels());
            assert_eq!(clean.clusters(), hooked.clusters());
            assert_eq!(hooked.status(), SegmentationStatus::Ok);
            assert_eq!(hooked.invariant_repairs(), 0);
        }
    }

    #[test]
    fn fault_free_runs_report_ok_status() {
        let img = test_image();
        let out = Segmenter::slic_ppa(params(60, 3)).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.status(), SegmentationStatus::Ok);
        assert_eq!(out.invariant_repairs(), 0);
    }

    #[test]
    fn corrupted_centers_are_repaired_and_flagged() {
        struct Smash;
        impl StepFaults for Smash {
            fn corrupt_centers(&self, step: u32, clusters: &mut [Cluster]) {
                if step == 0 {
                    clusters[0].x = f32::NAN;
                    clusters[1].y = 1.0e9;
                    clusters[2].l = f32::INFINITY;
                }
            }
        }
        let img = test_image();
        let out = Segmenter::slic_ppa(params(60, 3)).run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_faults(&Smash),
        );
        assert_eq!(out.status(), SegmentationStatus::Degraded);
        assert!(out.invariant_repairs() >= 3);
        for c in out.clusters() {
            assert!(c.x.is_finite() && (0.0..64.0).contains(&c.x));
            assert!(c.y.is_finite() && (0.0..48.0).contains(&c.y));
            assert!(c.l.is_finite() && (0.0..=100.0).contains(&c.l));
        }
        let k = out.cluster_count() as u32;
        assert!(out.labels().iter().all(|&l| l < k));
    }

    #[test]
    fn corrupted_lab8_still_yields_valid_labels() {
        struct Noise;
        impl StepFaults for Noise {
            fn corrupt_lab8(&self, lab8: &mut Lab8Image) {
                for (i, v) in lab8.l.as_mut_slice().iter_mut().enumerate() {
                    if i % 7 == 0 {
                        *v ^= 0x80;
                    }
                }
            }
        }
        let img = test_image();
        let seg = Segmenter::sslic_ppa(params(60, 4), 2)
            .with_distance_mode(DistanceMode::quantized(8));
        let out = seg.run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_faults(&Noise),
        );
        let k = out.cluster_count() as u32;
        assert!(out.labels().iter().all(|&l| l < k));
        let clean = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_ne!(clean.labels(), out.labels(), "corruption must be visible");
    }

    #[test]
    fn lab8_request_matches_rgb_in_quantized_mode() {
        let img = test_image();
        let seg = Segmenter::slic_ppa(params(60, 3))
            .with_distance_mode(DistanceMode::quantized(8));
        let via_rgb = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let lab8 = HwColorConverter::paper_default().convert_image(&img.rgb);
        let via_lab8 = seg.run(SegmentRequest::Lab8(&lab8), &RunOptions::new());
        assert_eq!(via_rgb.labels(), via_lab8.labels());
    }

    #[test]
    fn unmet_convergence_threshold_reports_degraded() {
        let img = test_image();
        // An impossible threshold with a tiny budget: terminates (budget
        // bound) but flags non-convergence.
        let p = SlicParams::builder(60)
            .iterations(1)
            .convergence_threshold(Some(0.0))
            .build();
        let out = Segmenter::slic_ppa(p).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        assert_eq!(out.iterations_run(), 1);
        assert_eq!(out.status(), SegmentationStatus::Degraded);
    }

    #[test]
    fn steps_per_full_pass() {
        assert_eq!(Algorithm::SlicCpa.steps_per_full_pass(), 1);
        assert_eq!(
            Algorithm::SSlicPpa {
                subsets: 4,
                strategy: SubsetStrategy::Interleaved
            }
            .steps_per_full_pass(),
            4
        );
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let img = test_image();
        let mut baseline: Option<Segmentation> = None;
        for threads in [1usize, 2, 3, 8] {
            let p = SlicParams::builder(60)
                .iterations(4)
                .threads(threads)
                .build();
            let out =
                Segmenter::sslic_ppa(p, 2).run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            if let Some(base) = &baseline {
                assert_eq!(base.labels(), out.labels(), "threads = {threads}");
                assert_eq!(base.clusters(), out.clusters(), "threads = {threads}");
            } else {
                baseline = Some(out);
            }
        }
    }
}
