use std::num::NonZeroUsize;

use crate::kernel::Kernel;

/// Parameters shared by every SLIC variant.
///
/// Construct via [`SlicParams::builder`]; the builder supplies the paper's
/// defaults for everything except the superpixel count.
///
/// # Example
///
/// ```
/// use sslic_core::SlicParams;
///
/// let p = SlicParams::builder(900)
///     .compactness(10.0)
///     .iterations(10)
///     .convergence_threshold(Some(0.25))
///     .threads(4)
///     .build();
/// assert_eq!(p.superpixels(), 900);
/// assert_eq!(p.compactness(), 10.0);
/// assert_eq!(p.threads().get(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlicParams {
    superpixels: usize,
    compactness: f32,
    iterations: u32,
    convergence_threshold: Option<f32>,
    perturb_seeds: bool,
    enforce_connectivity: bool,
    min_region_divisor: u32,
    adaptive_compactness: bool,
    threads: NonZeroUsize,
    kernel: Kernel,
}

impl SlicParams {
    /// Starts building parameters for `superpixels` target superpixels
    /// (`K` in the paper).
    ///
    /// # Panics
    ///
    /// The terminal [`SlicParamsBuilder::build`] panics if
    /// `superpixels == 0`.
    pub fn builder(superpixels: usize) -> SlicParamsBuilder {
        SlicParamsBuilder {
            params: SlicParams {
                superpixels,
                compactness: 10.0,
                iterations: 10,
                convergence_threshold: None,
                perturb_seeds: true,
                enforce_connectivity: true,
                min_region_divisor: 4,
                adaptive_compactness: false,
                threads: NonZeroUsize::MIN,
                kernel: Kernel::Auto,
            },
            threads: 1,
        }
    }

    /// Target superpixel count `K`.
    pub fn superpixels(&self) -> usize {
        self.superpixels
    }

    /// Compactness weight `m` of Eq. 5 (color-vs-space balance, "generally
    /// set between 1 and 40"). Default 10.
    pub fn compactness(&self) -> f32 {
        self.compactness
    }

    /// Maximum number of center-update steps. For subsampled variants this
    /// counts *sub-iterations* (one subset pass each); one full-image pass
    /// equals `subsets` sub-iterations. Default 10.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Early-exit threshold on the mean per-cluster center movement in
    /// pixels (L1). `None` disables early exit. Default `None`.
    pub fn convergence_threshold(&self) -> Option<f32> {
        self.convergence_threshold
    }

    /// Whether initial seeds are moved to the 3×3 minimum-gradient
    /// position. Default `true`.
    pub fn perturb_seeds(&self) -> bool {
        self.perturb_seeds
    }

    /// Whether the connectivity-enforcement post-pass runs. Default `true`.
    pub fn enforce_connectivity(&self) -> bool {
        self.enforce_connectivity
    }

    /// Components smaller than `S²/min_region_divisor` are absorbed by the
    /// connectivity pass. Default 4.
    pub fn min_region_divisor(&self) -> u32 {
        self.min_region_divisor
    }

    /// Whether SLICO-style adaptive compactness is enabled: each cluster
    /// normalizes color distance by the maximum color distance observed
    /// among its members in the previous pass, making `m` self-tuning per
    /// region (Achanta's zero-parameter SLIC follow-up). Float datapath
    /// only. Default `false`.
    pub fn adaptive_compactness(&self) -> bool {
        self.adaptive_compactness
    }

    /// Worker-thread count for the banded parallel execution layer of the
    /// engine (see DESIGN.md §5d). The segmentation output is bit-identical
    /// for every thread count; this knob trades wall-clock time only.
    /// Default 1 (fully serial).
    pub fn threads(&self) -> NonZeroUsize {
        self.threads
    }

    /// Assign-phase kernel preference (see [`Kernel`]). The resolved
    /// backend never changes the labels — every kernel is bit-identical —
    /// only the execution strategy. Default [`Kernel::Auto`].
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Grid spacing `S = sqrt(N / K)` for an image of `pixels` pixels.
    pub fn grid_spacing(&self, pixels: usize) -> f32 {
        (pixels as f32 / self.superpixels as f32).sqrt()
    }
}

/// A parameter-validation failure from [`SlicParamsBuilder::try_build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamError {
    /// `superpixels == 0`: the grid needs at least one cluster.
    ZeroSuperpixels,
    /// Compactness `m` is zero, negative, NaN, or infinite.
    InvalidCompactness,
    /// `iterations == 0`: at least one center-update step is required.
    ZeroIterations,
    /// `min_region_divisor == 0`: the connectivity pass would divide by
    /// zero.
    ZeroMinRegionDivisor,
    /// `threads == 0`: the banded execution layer needs at least one
    /// worker.
    ZeroThreads,
    /// An assign-kernel name failed to parse: only `auto`, `scalar`, and
    /// `swar` select a backend (see [`Kernel`]).
    UnknownKernel,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ParamError::ZeroSuperpixels => "superpixel count must be nonzero",
            ParamError::InvalidCompactness => "compactness must be positive and finite",
            ParamError::ZeroIterations => "at least one iteration required",
            ParamError::ZeroMinRegionDivisor => "min_region_divisor must be nonzero",
            ParamError::ZeroThreads => "thread count must be nonzero",
            ParamError::UnknownKernel => "kernel must be one of auto, scalar, swar",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParamError {}

/// Builder for [`SlicParams`]; see [`SlicParams::builder`].
#[derive(Debug, Clone)]
pub struct SlicParamsBuilder {
    params: SlicParams,
    /// Raw thread request; validated to be nonzero at build time.
    threads: usize,
}

impl SlicParamsBuilder {
    /// Sets the compactness weight `m` (Eq. 5).
    ///
    /// # Panics
    ///
    /// `build` panics if the value is not positive.
    pub fn compactness(mut self, m: f32) -> Self {
        self.params.compactness = m;
        self
    }

    /// Sets the maximum number of center-update steps.
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.params.iterations = iterations;
        self
    }

    /// Sets (or disables, with `None`) the early-exit movement threshold.
    pub fn convergence_threshold(mut self, threshold: Option<f32>) -> Self {
        self.params.convergence_threshold = threshold;
        self
    }

    /// Enables or disables gradient seed perturbation.
    pub fn perturb_seeds(mut self, on: bool) -> Self {
        self.params.perturb_seeds = on;
        self
    }

    /// Enables or disables the connectivity post-pass.
    pub fn enforce_connectivity(mut self, on: bool) -> Self {
        self.params.enforce_connectivity = on;
        self
    }

    /// Enables SLICO-style adaptive compactness (see
    /// [`SlicParams::adaptive_compactness`]).
    pub fn adaptive_compactness(mut self, on: bool) -> Self {
        self.params.adaptive_compactness = on;
        self
    }

    /// Sets the minimum-region divisor for the connectivity pass.
    ///
    /// # Panics
    ///
    /// `build` panics if the divisor is zero.
    pub fn min_region_divisor(mut self, divisor: u32) -> Self {
        self.params.min_region_divisor = divisor;
        self
    }

    /// Sets the worker-thread count of the engine's banded parallel
    /// execution layer (see [`SlicParams::threads`]). The output is
    /// bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// `build` panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the assign-phase kernel preference (see
    /// [`SlicParams::kernel`]). Any choice yields bit-identical labels;
    /// the per-run [`RunOptions::with_kernel`] override, when present,
    /// takes precedence over this configuration-level default.
    ///
    /// [`RunOptions::with_kernel`]: crate::RunOptions::with_kernel
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.params.kernel = kernel;
        self
    }

    /// Validates and returns the parameters, reporting the first violated
    /// constraint as a typed [`ParamError`] instead of panicking — the
    /// entry point for callers that receive parameters from untrusted
    /// input (configuration files, CLI flags, fuzzers).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint among
    /// [`ParamError::ZeroSuperpixels`], [`ParamError::InvalidCompactness`],
    /// [`ParamError::ZeroIterations`],
    /// [`ParamError::ZeroMinRegionDivisor`], and
    /// [`ParamError::ZeroThreads`].
    pub fn try_build(self) -> Result<SlicParams, ParamError> {
        let mut p = self.params;
        if p.superpixels == 0 {
            return Err(ParamError::ZeroSuperpixels);
        }
        if !(p.compactness > 0.0 && p.compactness.is_finite()) {
            return Err(ParamError::InvalidCompactness);
        }
        if p.iterations == 0 {
            return Err(ParamError::ZeroIterations);
        }
        if p.min_region_divisor == 0 {
            return Err(ParamError::ZeroMinRegionDivisor);
        }
        p.threads = NonZeroUsize::new(self.threads).ok_or(ParamError::ZeroThreads)?;
        Ok(p)
    }

    /// Validates and returns the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `superpixels == 0`, `compactness <= 0`, `iterations == 0`,
    /// `min_region_divisor == 0`, or `threads == 0`. Use
    /// [`Self::try_build`] to receive these as typed errors instead.
    pub fn build(self) -> SlicParams {
        let mut p = self.params;
        assert!(p.superpixels > 0, "superpixel count must be nonzero");
        assert!(
            p.compactness > 0.0 && p.compactness.is_finite(),
            "compactness must be positive and finite"
        );
        assert!(p.iterations > 0, "at least one iteration required");
        assert!(p.min_region_divisor > 0, "min_region_divisor must be nonzero");
        assert!(self.threads > 0, "thread count must be nonzero");
        p.threads = NonZeroUsize::new(self.threads).unwrap_or(NonZeroUsize::MIN);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = SlicParams::builder(900).build();
        assert_eq!(p.compactness(), 10.0);
        assert_eq!(p.iterations(), 10);
        assert_eq!(p.convergence_threshold(), None);
        assert!(p.perturb_seeds());
        assert!(p.enforce_connectivity());
    }

    #[test]
    fn grid_spacing_is_sqrt_n_over_k() {
        let p = SlicParams::builder(5000).build();
        let s = p.grid_spacing(1920 * 1080);
        assert!((s - 20.36).abs() < 0.01, "S={s}");
    }

    #[test]
    fn builder_round_trips_every_field() {
        let p = SlicParams::builder(42)
            .compactness(25.0)
            .iterations(3)
            .convergence_threshold(Some(0.5))
            .perturb_seeds(false)
            .enforce_connectivity(false)
            .min_region_divisor(8)
            .kernel(Kernel::Swar)
            .build();
        assert_eq!(p.superpixels(), 42);
        assert_eq!(p.compactness(), 25.0);
        assert_eq!(p.iterations(), 3);
        assert_eq!(p.convergence_threshold(), Some(0.5));
        assert!(!p.perturb_seeds());
        assert!(!p.enforce_connectivity());
        assert_eq!(p.min_region_divisor(), 8);
        assert_eq!(p.kernel(), Kernel::Swar);
    }

    #[test]
    fn kernel_defaults_to_auto() {
        assert_eq!(SlicParams::builder(10).build().kernel(), Kernel::Auto);
    }

    #[test]
    fn try_build_accepts_valid_params() {
        let p = SlicParams::builder(900).try_build().unwrap();
        assert_eq!(p.superpixels(), 900);
    }

    #[test]
    fn try_build_reports_typed_errors() {
        assert_eq!(
            SlicParams::builder(0).try_build(),
            Err(ParamError::ZeroSuperpixels)
        );
        assert_eq!(
            SlicParams::builder(10).compactness(-1.0).try_build(),
            Err(ParamError::InvalidCompactness)
        );
        assert_eq!(
            SlicParams::builder(10).compactness(f32::NAN).try_build(),
            Err(ParamError::InvalidCompactness)
        );
        assert_eq!(
            SlicParams::builder(10).compactness(f32::INFINITY).try_build(),
            Err(ParamError::InvalidCompactness)
        );
        assert_eq!(
            SlicParams::builder(10).iterations(0).try_build(),
            Err(ParamError::ZeroIterations)
        );
        assert_eq!(
            SlicParams::builder(10).min_region_divisor(0).try_build(),
            Err(ParamError::ZeroMinRegionDivisor)
        );
    }

    #[test]
    fn param_error_messages_match_build_panics() {
        // try_build's Display strings are the contract build() panics with.
        assert_eq!(
            ParamError::ZeroSuperpixels.to_string(),
            "superpixel count must be nonzero"
        );
        assert_eq!(
            ParamError::InvalidCompactness.to_string(),
            "compactness must be positive and finite"
        );
        assert_eq!(
            ParamError::ZeroIterations.to_string(),
            "at least one iteration required"
        );
    }

    #[test]
    fn threads_default_to_one_and_round_trip() {
        assert_eq!(SlicParams::builder(10).build().threads().get(), 1);
        let p = SlicParams::builder(10).threads(8).build();
        assert_eq!(p.threads().get(), 8);
        let p = SlicParams::builder(10).threads(3).try_build().unwrap();
        assert_eq!(p.threads().get(), 3);
    }

    #[test]
    fn try_build_rejects_zero_threads() {
        assert_eq!(
            SlicParams::builder(10).threads(0).try_build(),
            Err(ParamError::ZeroThreads)
        );
        assert_eq!(
            ParamError::ZeroThreads.to_string(),
            "thread count must be nonzero"
        );
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_panics() {
        let _ = SlicParams::builder(10).threads(0).build();
    }

    #[test]
    #[should_panic(expected = "superpixel count")]
    fn zero_superpixels_panics() {
        let _ = SlicParams::builder(0).build();
    }

    #[test]
    #[should_panic(expected = "compactness")]
    fn negative_compactness_panics() {
        let _ = SlicParams::builder(10).compactness(-1.0).build();
    }

    #[test]
    #[should_panic(expected = "iteration")]
    fn zero_iterations_panics() {
        let _ = SlicParams::builder(10).iterations(0).build();
    }
}
