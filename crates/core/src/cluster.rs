use sslic_color::LabImage;
use sslic_image::gradient::{gradient_magnitude, min_gradient_in_3x3};

use crate::SeedGrid;

/// A superpixel cluster center: the 5-D vector `[L, a, b, x, y]` of the
/// paper (§2), i.e. the mean color and centroid of its member pixels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cluster {
    /// Mean lightness `L*`.
    pub l: f32,
    /// Mean `a*`.
    pub a: f32,
    /// Mean `b*`.
    pub b: f32,
    /// Centroid column.
    pub x: f32,
    /// Centroid row.
    pub y: f32,
}

impl Cluster {
    /// Creates a cluster from its 5 coordinates.
    pub fn new(l: f32, a: f32, b: f32, x: f32, y: f32) -> Self {
        Cluster { l, a, b, x, y }
    }

    /// L1 distance moved from `previous`, in pixels (the paper's
    /// convergence criterion tracks center movement).
    pub fn movement_from(&self, previous: &Cluster) -> f32 {
        (self.x - previous.x).abs() + (self.y - previous.y).abs()
    }
}

/// Initializes cluster centers on the seed grid, sampling the color at each
/// seed and optionally perturbing seeds to the 3×3 minimum-gradient
/// position (paper §2).
///
/// # Panics
///
/// Panics if `lab` and `grid` disagree on geometry.
pub fn init_clusters(lab: &LabImage, grid: &SeedGrid, perturb: bool) -> Vec<Cluster> {
    assert!(
        lab.width() == grid.width() && lab.height() == grid.height(),
        "image and grid must share geometry"
    );
    let gradient = if perturb {
        Some(gradient_magnitude(&[
            lab.l.clone(),
            lab.a.clone(),
            lab.b.clone(),
        ]))
    } else {
        None
    };
    (0..grid.cluster_count())
        .map(|k| {
            let (fx, fy) = grid.seed_position(k);
            let mut x = (fx as usize).min(lab.width() - 1);
            let mut y = (fy as usize).min(lab.height() - 1);
            if let Some(g) = &gradient {
                let (nx, ny) = min_gradient_in_3x3(g, x, y);
                x = nx;
                y = ny;
            }
            let [l, a, b] = lab.pixel(x, y);
            Cluster::new(l, a, b, x as f32, y as f32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_lab(w: usize, h: usize, v: f32) -> LabImage {
        LabImage::from_fn(w, h, |_, _| [v, 0.0, 0.0])
    }

    #[test]
    fn init_produces_one_cluster_per_grid_cell() {
        let lab = flat_lab(60, 40, 50.0);
        let grid = SeedGrid::new(60, 40, 24);
        let clusters = init_clusters(&lab, &grid, false);
        assert_eq!(clusters.len(), grid.cluster_count());
    }

    #[test]
    fn init_samples_seed_color() {
        let lab = LabImage::from_fn(40, 40, |x, _| [x as f32, 0.0, 0.0]);
        let grid = SeedGrid::new(40, 40, 4);
        let clusters = init_clusters(&lab, &grid, false);
        for c in &clusters {
            assert_eq!(c.l, c.x, "cluster color sampled at its seed position");
        }
    }

    #[test]
    fn perturbation_moves_seed_off_edge() {
        // A strong vertical edge exactly through a seed column.
        let grid = SeedGrid::new(40, 40, 4); // 2×2 grid, seeds at x = 10, 30
        let lab = LabImage::from_fn(40, 40, |x, _| {
            [if x < 10 { 0.0 } else { 100.0 }, 0.0, 0.0]
        });
        let unperturbed = init_clusters(&lab, &grid, false);
        let perturbed = init_clusters(&lab, &grid, true);
        // Seeds in the first column sit on the gradient ridge at x=10 and
        // must move; their x must differ from the unperturbed position.
        assert_ne!(unperturbed[0].x, perturbed[0].x);
    }

    #[test]
    fn perturbation_is_noop_on_flat_images() {
        let lab = flat_lab(50, 50, 42.0);
        let grid = SeedGrid::new(50, 50, 9);
        let a = init_clusters(&lab, &grid, false);
        let b = init_clusters(&lab, &grid, true);
        assert_eq!(a, b);
    }

    #[test]
    fn movement_is_l1_in_pixels() {
        let a = Cluster::new(0.0, 0.0, 0.0, 10.0, 10.0);
        let b = Cluster::new(5.0, 5.0, 5.0, 13.0, 6.0);
        assert_eq!(b.movement_from(&a), 7.0);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn mismatched_geometry_panics() {
        let lab = flat_lab(10, 10, 0.0);
        let grid = SeedGrid::new(20, 10, 4);
        let _ = init_clusters(&lab, &grid, false);
    }
}
