//! Logical scratch-memory accounting for streaming sessions.
//!
//! A [`SegmenterSession`](crate::SegmenterSession) pre-allocates every
//! per-frame working buffer once at construction and then reuses it for the
//! lifetime of the session. The [`AllocLedger`] records each *logical
//! establishment* of such a buffer — one entry per buffer, with its size in
//! bytes — so the session can report a scratch inventory through the
//! observability layer (`core.alloc.scratch` / `core.alloc.scratch_bytes`
//! counters).
//!
//! The ledger counts establishments, not heap traffic: a buffer that is
//! reset in place on a later frame records nothing. On the first frame the
//! per-frame delta therefore equals the full scratch inventory, and on
//! every steady-state frame it is zero — which is exactly the property the
//! zero-allocation proof test pins at the real allocator level. Because the
//! totals depend only on frame geometry and algorithm configuration (never
//! on thread count or timing), the emitted counters are deterministic and
//! survive the CI byte-diff gates.
//!
//! Everything here is integer arithmetic, so the module lives inside the
//! fixed-point datapath lint scope.

/// Running totals of logical scratch establishments (see module docs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocLedger {
    /// Buffers established since the session was created.
    total_count: u64,
    /// Bytes established since the session was created.
    total_bytes: u64,
    /// `total_count` at the last [`AllocLedger::take_frame_delta`] call.
    mark_count: u64,
    /// `total_bytes` at the last [`AllocLedger::take_frame_delta`] call.
    mark_bytes: u64,
}

impl AllocLedger {
    /// A fresh ledger with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the establishment of one scratch buffer of `bytes` bytes.
    pub fn record(&mut self, bytes: u64) {
        self.total_count = self.total_count.saturating_add(1);
        self.total_bytes = self.total_bytes.saturating_add(bytes);
    }

    /// Buffers established over the session lifetime.
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Bytes established over the session lifetime.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Returns `(count, bytes)` established since the previous call and
    /// advances the mark. The first call after session construction yields
    /// the full scratch inventory; steady-state frames yield `(0, 0)`.
    pub fn take_frame_delta(&mut self) -> (u64, u64) {
        let delta = (
            self.total_count - self.mark_count,
            self.total_bytes - self.mark_bytes,
        );
        self.mark_count = self.total_count;
        self.mark_bytes = self.total_bytes;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_deltas_reset() {
        let mut ledger = AllocLedger::new();
        ledger.record(128);
        ledger.record(64);
        assert_eq!(ledger.total_count(), 2);
        assert_eq!(ledger.total_bytes(), 192);
        assert_eq!(ledger.take_frame_delta(), (2, 192));
        assert_eq!(ledger.take_frame_delta(), (0, 0), "steady state is zero");
        ledger.record(8);
        assert_eq!(ledger.take_frame_delta(), (1, 8));
        assert_eq!(ledger.total_count(), 3);
    }

    #[test]
    fn fresh_ledger_reports_zero() {
        let mut ledger = AllocLedger::new();
        assert_eq!(ledger.take_frame_delta(), (0, 0));
    }
}
