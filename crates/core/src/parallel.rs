//! Deterministic banded parallel execution.
//!
//! The engine parallelizes its pixel loops by splitting the image into a
//! **fixed** set of horizontal row bands whose layout depends only on the
//! image height — never on the worker count. Every band produces its own
//! partial result (a label stripe, a partial sigma accumulator), and
//! partials are combined in ascending band order on the calling thread.
//! Because the work decomposition and the reduction order are both
//! independent of how many workers happened to execute the bands, the
//! segmentation output is bit-identical for every thread count; threads
//! trade wall-clock time only. See DESIGN.md §5d for the full argument.
//!
//! Execution runs on a persistent [`BandPool`]: workers are spawned once
//! per session and parked on a condvar between dispatches, and every
//! band's output buffer lives in a pre-allocated per-band slot. This is
//! what makes multi-threaded steady-state frames allocation-free — the
//! previous `std::thread::scope` executor allocated stacks, queues, and
//! result vectors on every pass. Band `b` is executed by worker
//! `b % workers` (the caller doubles as worker 0), a static round-robin
//! schedule that keeps the band→output mapping trivially deterministic.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Upper bound on the number of row bands. Small enough that per-band
/// sigma accumulators stay cheap (`bands × K × 48` bytes per update step),
/// large enough that up to ~8 workers load-balance on uniform-cost rows.
const MAX_BANDS: usize = 32;

/// The fixed horizontal band decomposition for an image of `height` rows:
/// `min(height, 32)` contiguous, non-overlapping row ranges of near-equal
/// size covering every row. Depends only on `height`.
pub(crate) fn band_rows(height: usize) -> Vec<Range<usize>> {
    let bands = height.min(MAX_BANDS).max(1);
    let base = height / bands;
    let extra = height % bands;
    let mut ranges = Vec::with_capacity(bands);
    let mut y = 0;
    for b in 0..bands {
        let rows = base + usize::from(b < extra);
        ranges.push(y..y + rows);
        y += rows;
    }
    ranges
}

/// Per-dispatch coordination state, guarded by one mutex.
struct DispatchState<C> {
    /// Incremented once per dispatch; workers track the last generation
    /// they executed so a spurious condvar wakeup never re-runs a command.
    generation: u64,
    /// The command of the current dispatch (`None` between dispatches).
    /// Workers clone it (an `Arc`-field bump, no heap traffic) so the
    /// caller can reclaim unique ownership of the shared state after the
    /// barrier.
    cmd: Option<C>,
    /// Spawned workers still running the current dispatch.
    remaining: usize,
    /// Total workers including the caller; fixed after construction.
    workers: usize,
    shutdown: bool,
    /// Set by a worker's completion guard when a panic *escaped* the
    /// kernel containment and unwound the worker thread itself; the
    /// caller converts it into a poisoned-band report at the barrier and
    /// schedules the dead worker slot for respawn.
    panicked: bool,
    /// Bands whose kernel panicked during the current dispatch, contained
    /// by the per-band `catch_unwind` isolation. Reset by the caller when
    /// a new generation is posted.
    poisoned_bands: u64,
}

/// Runs the kernel over one band with panic containment: a panicking
/// kernel poisons that band (its slot keeps whatever partial state the
/// kernel left — the session's invariant guards detect it) instead of
/// unwinding the worker or wedging the pool. Returns 1 if the band was
/// poisoned.
fn run_band_contained<C, S>(
    kernel: fn(&C, usize, Range<usize>, &mut S),
    cmd: &C,
    band: usize,
    rows: Range<usize>,
    slot: &mut S,
) -> u64 {
    // AssertUnwindSafe: the slot is per-band scratch that the session
    // re-derives every dispatch (stripes re-sync from the label plane,
    // sigma files zero on entry), so observing a half-written slot after
    // a caught panic is exactly the "poisoned band" state the guards are
    // built to flag — never silently trusted.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        kernel(cmd, band, rows, slot);
    }));
    u64::from(outcome.is_err())
}

struct Shared<C, S> {
    state: Mutex<DispatchState<C>>,
    /// Signaled by the caller when a new generation (or shutdown) is
    /// posted.
    work: Condvar,
    /// Signaled by workers when `remaining` reaches zero.
    done: Condvar,
    bands: Vec<Range<usize>>,
    /// One pre-allocated output slot per band. A slot is only ever locked
    /// by the one worker that owns the band during a dispatch and by the
    /// caller during the fold, so the locks never contend.
    slots: Vec<Mutex<S>>,
    kernel: fn(&C, usize, Range<usize>, &mut S),
}

/// Recovers the guard from a poisoned lock: pool state is plain data that
/// stays consistent under panic (the completion guard below repairs the
/// counters), so continuing with the inner value is safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Decrements `remaining` when a worker finishes a dispatch — including by
/// panic, in which case the flag is raised so the caller's barrier fails
/// instead of deadlocking.
struct DoneGuard<'a, C, S> {
    shared: &'a Shared<C, S>,
}

impl<C, S> Drop for DoneGuard<'_, C, S> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        if std::thread::panicking() {
            st.panicked = true;
        }
        st.remaining = st.remaining.saturating_sub(1);
        if st.remaining == 0 || st.panicked {
            self.shared.done.notify_all();
        }
    }
}

fn worker_loop<C: Clone, S>(shared: Arc<Shared<C, S>>, index: usize) {
    let mut seen = 0u64;
    loop {
        let (cmd, generation, workers) = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen {
                    if let Some(cmd) = st.cmd.clone() {
                        break (cmd, st.generation, st.workers);
                    }
                }
                st = wait(&shared.work, st);
            }
        };
        seen = generation;
        let guard = DoneGuard { shared: &shared };
        let mut poisoned = 0u64;
        for (b, rows) in shared.bands.iter().enumerate() {
            if b % workers == index {
                let mut slot = lock(&shared.slots[b]);
                poisoned += run_band_contained(shared.kernel, &cmd, b, rows.clone(), &mut slot);
            }
        }
        if poisoned > 0 {
            lock(&shared.state).poisoned_bands += poisoned;
        }
        // Release the command's shared handles (Arc refs) *before*
        // signaling completion, so the caller observes unique ownership at
        // the barrier and its copy-on-write accesses never actually copy.
        drop(cmd);
        drop(guard);
    }
}

/// A persistent pool of banded workers plus their per-band output slots.
///
/// Created once per session with a fixed kernel and slot layout; each
/// [`BandPool::run`] dispatches one command to every band and returns
/// after all bands completed (the caller executes worker 0's bands
/// itself). Steady-state dispatch allocates nothing: commands travel by
/// `Clone` (callers pass `Arc`-built commands), outputs land in the
/// pre-allocated slots, and workers park on a condvar between frames.
///
/// With one worker no threads are spawned and `run` degenerates to a
/// serial in-order loop; the band decomposition and ascending-band fold
/// order are fixed either way, so outputs are bit-identical for every
/// worker count.
pub(crate) struct BandPool<C: Clone + Send + 'static, S: Send + 'static> {
    shared: Arc<Shared<C, S>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Spawned workers (total workers = spawned + 1; the caller is
    /// worker 0).
    spawned: usize,
    workers: usize,
    /// Set when the barrier observed a panic that unwound a worker
    /// thread; the next dispatch respawns dead slots before posting work.
    needs_respawn: bool,
}

impl<C: Clone + Send + 'static, S: Send + 'static> BandPool<C, S> {
    /// Builds a pool for images of `height` rows, with `make_slot(b, rows)`
    /// pre-allocating band `b`'s output slot. At most
    /// `min(threads, bands) - 1` workers are spawned; if a spawn fails the
    /// pool degrades to fewer workers (output unchanged — only wall-clock
    /// time depends on the worker count).
    pub(crate) fn new(
        threads: usize,
        height: usize,
        kernel: fn(&C, usize, Range<usize>, &mut S),
        mut make_slot: impl FnMut(usize, &Range<usize>) -> S,
    ) -> Self {
        let bands = band_rows(height);
        let slots: Vec<Mutex<S>> = bands
            .iter()
            .enumerate()
            .map(|(b, rows)| Mutex::new(make_slot(b, rows)))
            .collect();
        let target = threads.max(1).min(bands.len());
        let shared = Arc::new(Shared {
            state: Mutex::new(DispatchState {
                generation: 0,
                cmd: None,
                remaining: 0,
                workers: target,
                shutdown: false,
                panicked: false,
                poisoned_bands: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            bands,
            slots,
            kernel,
        });
        let mut handles = Vec::new();
        for index in 1..target {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("sslic-band-{index}"))
                .spawn(move || worker_loop(shared, index));
            match spawned {
                Ok(handle) => handles.push(handle),
                // Degrade gracefully: the remaining bands fall to the
                // workers that did spawn (plus the caller).
                Err(_) => break,
            }
        }
        let workers = handles.len() + 1;
        if workers != target {
            lock(&shared.state).workers = workers;
        }
        BandPool {
            shared,
            spawned: handles.len(),
            workers,
            handles,
            needs_respawn: false,
        }
    }

    /// Number of bands (and slots).
    pub(crate) fn band_count(&self) -> usize {
        self.shared.bands.len()
    }

    /// The fixed band decomposition, in ascending band order.
    pub(crate) fn bands(&self) -> &[Range<usize>] {
        &self.shared.bands
    }

    /// Locks band `b`'s output slot. Outside a dispatch the lock is always
    /// free; during one it is held only by the band's owning worker.
    pub(crate) fn slot(&self, b: usize) -> MutexGuard<'_, S> {
        lock(&self.shared.slots[b])
    }

    /// Runs `kernel(&cmd, b, rows, &mut slot_b)` for every band and
    /// returns once all bands completed (a full barrier). The caller
    /// executes the bands of worker 0 itself. Steady state allocates
    /// nothing.
    ///
    /// Returns the number of **poisoned bands**: bands whose kernel
    /// panicked and was contained by the per-band `catch_unwind`
    /// isolation. A poisoned band's slot holds whatever partial state the
    /// kernel left; the caller must treat it as corrupt (the session's
    /// invariant guards do). The pool itself stays serviceable — one bad
    /// band degrades one dispatch, never the pool — and any worker thread
    /// a panic managed to unwind entirely (possible only outside the
    /// kernel containment) is respawned before the next dispatch.
    pub(crate) fn run(&mut self, cmd: C) -> u64 {
        if self.spawned == 0 {
            let mut poisoned = 0u64;
            for (b, rows) in self.shared.bands.iter().enumerate() {
                let mut slot = lock(&self.shared.slots[b]);
                poisoned +=
                    run_band_contained(self.shared.kernel, &cmd, b, rows.clone(), &mut slot);
            }
            return poisoned;
        }
        if self.needs_respawn {
            self.respawn_dead_workers();
        }
        {
            let mut st = lock(&self.shared.state);
            st.generation += 1;
            st.cmd = Some(cmd.clone());
            st.remaining = self.spawned;
            st.poisoned_bands = 0;
            self.shared.work.notify_all();
        }
        let mut poisoned = 0u64;
        for (b, rows) in self.shared.bands.iter().enumerate() {
            if b % self.workers == 0 {
                let mut slot = lock(&self.shared.slots[b]);
                poisoned +=
                    run_band_contained(self.shared.kernel, &cmd, b, rows.clone(), &mut slot);
            }
        }
        let mut st = lock(&self.shared.state);
        while st.remaining > 0 {
            st = wait(&self.shared.done, st);
        }
        st.cmd = None;
        poisoned += st.poisoned_bands;
        if st.panicked {
            // A panic unwound a worker thread itself (escaped the kernel
            // containment). Report it as at least one poisoned band and
            // schedule a respawn of the dead slot off the steady path.
            st.panicked = false;
            poisoned = poisoned.max(1);
            self.needs_respawn = true;
        }
        drop(st);
        poisoned
    }

    /// Replaces worker threads that have terminated (a panic escaped the
    /// kernel containment and unwound the thread). Only called between
    /// dispatches when the barrier observed an escaped panic, so its
    /// allocations never touch the steady-state frame path.
    ///
    /// If a replacement cannot be spawned, the fixed `b % workers`
    /// indexing can no longer be honored, so the pool degrades to the
    /// serial path permanently — deterministic by construction, and
    /// strictly better than leaving a band unexecuted.
    fn respawn_dead_workers(&mut self) {
        let mut all_respawned = true;
        for (slot, handle) in self.handles.iter_mut().enumerate() {
            if !handle.is_finished() {
                continue;
            }
            let index = slot + 1;
            let shared = Arc::clone(&self.shared);
            let fresh = std::thread::Builder::new()
                .name(format!("sslic-band-{index}"))
                .spawn(move || worker_loop(shared, index));
            match fresh {
                Ok(fresh) => {
                    let dead = std::mem::replace(handle, fresh);
                    let _ = dead.join();
                }
                Err(_) => all_respawned = false,
            }
        }
        if !all_respawned {
            {
                let mut st = lock(&self.shared.state);
                st.shutdown = true;
                self.shared.work.notify_all();
            }
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
            self.spawned = 0;
            self.workers = 1;
        }
        self.needs_respawn = false;
    }
}

impl<C: Clone + Send + 'static, S: Send + 'static> Drop for BandPool<C, S> {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_the_height_exactly_and_in_order() {
        for height in [1usize, 2, 7, 31, 32, 33, 100, 719, 1080] {
            let bands = band_rows(height);
            assert_eq!(bands.len(), height.min(MAX_BANDS));
            assert_eq!(bands[0].start, 0);
            assert_eq!(bands[bands.len() - 1].end, height);
            for w in bands.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous at height {height}");
            }
            let sizes: Vec<usize> = bands.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "near-equal bands at height {height}");
        }
    }

    #[test]
    fn band_layout_is_independent_of_thread_count() {
        // The layout function has no thread parameter at all — pin that
        // contract by checking it is a pure function of height.
        assert_eq!(band_rows(720), band_rows(720));
    }

    /// Kernel under test: records which band ran over which rows, scaled
    /// by the command value.
    fn record_kernel(cmd: &u64, band: usize, rows: Range<usize>, slot: &mut (u64, usize, usize)) {
        *slot = (cmd * (band as u64 + 1), rows.start, rows.end);
    }

    fn collect(pool: &BandPool<u64, (u64, usize, usize)>) -> Vec<(u64, usize, usize)> {
        (0..pool.band_count()).map(|b| *pool.slot(b)).collect()
    }

    #[test]
    fn pool_outputs_are_ordered_and_worker_count_invariant() {
        let serial = {
            let mut pool = BandPool::new(1, 23, record_kernel, |_, _| (0, 0, 0));
            assert_eq!(pool.run(3), 0);
            collect(&pool)
        };
        assert_eq!(serial.len(), 23);
        for (b, &(v, start, end)) in serial.iter().enumerate() {
            assert_eq!(v, 3 * (b as u64 + 1));
            assert_eq!(end - start, 1);
        }
        for threads in [2usize, 3, 8, 16] {
            let mut pool = BandPool::new(threads, 23, record_kernel, |_, _| (0, 0, 0));
            assert_eq!(pool.run(3), 0);
            assert_eq!(collect(&pool), serial, "threads = {threads}");
        }
    }

    #[test]
    fn pool_redispatches_across_generations() {
        let mut pool = BandPool::new(4, 8, record_kernel, |_, _| (0, 0, 0));
        for cmd in [1u64, 5, 9] {
            pool.run(cmd);
            for b in 0..pool.band_count() {
                assert_eq!(pool.slot(b).0, cmd * (b as u64 + 1), "cmd {cmd}");
            }
        }
    }

    #[test]
    fn pool_handles_more_threads_than_bands() {
        let mut pool = BandPool::new(64, 2, record_kernel, |_, _| (0, 0, 0));
        pool.run(7);
        assert_eq!(collect(&pool), vec![(7, 0, 1), (14, 1, 2)]);
    }

    /// Kernel that panics on one band of one command value but records
    /// normally otherwise — the poisoned-band containment scenario.
    fn boom_kernel(cmd: &u64, band: usize, rows: Range<usize>, slot: &mut (u64, usize, usize)) {
        assert!(!(*cmd == 13 && band == 2), "boom");
        *slot = (cmd * (band as u64 + 1), rows.start, rows.end);
    }

    #[test]
    fn worker_panic_poisons_one_band_and_pool_stays_serviceable() {
        let mut pool = BandPool::new(2, 4, boom_kernel, |_, _| (0, 0, 0));
        assert_eq!(pool.run(1), 0, "clean dispatch reports zero poison");
        assert_eq!(pool.run(13), 1, "exactly band 2 poisons");
        // Band 2's slot kept its previous (now stale) contents — the
        // caller must treat it as corrupt.
        assert_eq!(pool.slot(2).0, 1 * 3);
        // The pool is not wedged: a subsequent clean dispatch runs every
        // band, including the previously poisoned one.
        assert_eq!(pool.run(5), 0);
        assert_eq!(
            collect(&pool),
            vec![(5, 0, 1), (10, 1, 2), (15, 2, 3), (20, 3, 4)]
        );
    }

    #[test]
    fn caller_band_panics_are_contained_serially_too() {
        let mut pool = BandPool::new(1, 4, boom_kernel, |_, _| (0, 0, 0));
        assert_eq!(pool.run(13), 1);
        assert_eq!(pool.run(2), 0);
        assert_eq!(
            collect(&pool),
            vec![(2, 0, 1), (4, 1, 2), (6, 2, 3), (8, 3, 4)]
        );
    }

    #[test]
    fn poison_reports_are_thread_count_invariant() {
        for threads in [1usize, 2, 4, 8] {
            let mut pool = BandPool::new(threads, 8, boom_kernel, |_, _| (0, 0, 0));
            assert_eq!(pool.run(13), 1, "threads = {threads}");
            assert_eq!(pool.run(13), 1, "threads = {threads} (repeat)");
            assert_eq!(pool.run(4), 0, "threads = {threads} (clean)");
        }
    }
}
