//! Deterministic banded parallel execution.
//!
//! The engine parallelizes its pixel loops by splitting the image into a
//! **fixed** set of horizontal row bands whose layout depends only on the
//! image height — never on the worker count. Every band produces its own
//! partial result (a label stripe, a partial sigma accumulator), and
//! partials are combined in ascending band order on the calling thread.
//! Because the work decomposition and the reduction order are both
//! independent of how many workers happened to execute the bands, the
//! segmentation output is bit-identical for every thread count; threads
//! trade wall-clock time only. See DESIGN.md §5d for the full argument.
//!
//! Workers are `std::thread::scope` scoped threads (the workspace is
//! zero-dependency by policy); band `b` is executed by worker
//! `b % threads`, a static round-robin schedule that needs no atomics and
//! keeps the band→output mapping trivially deterministic.

use std::ops::Range;

/// Upper bound on the number of row bands. Small enough that per-band
/// sigma accumulators stay cheap (`bands × K × 48` bytes per update step),
/// large enough that up to ~8 workers load-balance on uniform-cost rows.
const MAX_BANDS: usize = 32;

/// The fixed horizontal band decomposition for an image of `height` rows:
/// `min(height, 32)` contiguous, non-overlapping row ranges of near-equal
/// size covering every row. Depends only on `height`.
pub(crate) fn band_rows(height: usize) -> Vec<Range<usize>> {
    let bands = height.min(MAX_BANDS).max(1);
    let base = height / bands;
    let extra = height % bands;
    let mut ranges = Vec::with_capacity(bands);
    let mut y = 0;
    for b in 0..bands {
        let rows = base + usize::from(b < extra);
        ranges.push(y..y + rows);
        y += rows;
    }
    ranges
}

/// Runs `f(band_index, item)` for every item, distributing bands over
/// `threads` scoped workers (band `b` runs on worker `b % threads`), and
/// returns the outputs in band order. With `threads == 1` no thread is
/// spawned. The output vector is identical for every `threads` value; only
/// wall-clock time changes.
pub(crate) fn run_bands<I, T>(
    threads: usize,
    items: Vec<I>,
    f: impl Fn(usize, I) -> T + Sync,
) -> Vec<T>
where
    I: Send,
    T: Send,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(b, it)| f(b, it)).collect();
    }
    let workers = threads.min(n);
    // Deal the (band, item) pairs round-robin into per-worker queues.
    let mut queues: Vec<Vec<(usize, I)>> = (0..workers).map(|_| Vec::new()).collect();
    for (b, item) in items.into_iter().enumerate() {
        queues[b % workers].push((b, item));
    }
    let f = &f;
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .into_iter()
            .map(|queue| {
                scope.spawn(move || {
                    queue
                        .into_iter()
                        .map(|(b, item)| (b, f(b, item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mut part) => tagged.append(&mut part),
                // A worker panicked (e.g. an overflow check tripped):
                // surface the original panic on the caller.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    tagged.sort_by_key(|&(b, _)| b);
    tagged.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_the_height_exactly_and_in_order() {
        for height in [1usize, 2, 7, 31, 32, 33, 100, 719, 1080] {
            let bands = band_rows(height);
            assert_eq!(bands.len(), height.min(MAX_BANDS));
            assert_eq!(bands[0].start, 0);
            assert_eq!(bands[bands.len() - 1].end, height);
            for w in bands.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous at height {height}");
            }
            let sizes: Vec<usize> = bands.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "near-equal bands at height {height}");
        }
    }

    #[test]
    fn band_layout_is_independent_of_thread_count() {
        // The layout function has no thread parameter at all — pin that
        // contract by checking it is a pure function of height.
        assert_eq!(band_rows(720), band_rows(720));
    }

    #[test]
    fn run_bands_outputs_are_ordered_and_thread_count_invariant() {
        let items: Vec<usize> = (0..23).collect();
        let serial = run_bands(1, items.clone(), |b, it| (b, it * it));
        for threads in [2usize, 3, 8, 16] {
            let parallel = run_bands(threads, items.clone(), |b, it| (b, it * it));
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        for (b, (idx, sq)) in serial.iter().enumerate() {
            assert_eq!(*idx, b);
            assert_eq!(*sq, b * b);
        }
    }

    #[test]
    fn run_bands_handles_more_threads_than_bands() {
        let out = run_bands(64, vec![10, 20], |b, it| b + it);
        assert_eq!(out, vec![10, 21]);
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            run_bands(2, vec![0u32, 1, 2, 3], |_, it| {
                assert!(it != 2, "boom");
                it
            })
        });
        assert!(caught.is_err());
    }
}
