//! Subsampling strategies for S-SLIC.
//!
//! "The image pixels are split into subsets of equal size. At each
//! iteration, a different subset is used to update the SPs. The subsets are
//! traversed in a round-robin fashion to guarantee that all image pixels
//! are considered." (paper §3)
//!
//! The paper explores "different subsampling mechanisms"; this module
//! provides three spatial layouts for the pixel subsets. All of them
//! partition the image exactly (every pixel in exactly one subset) and the
//! sub-iteration schedule is round-robin by construction.

/// How image pixels are distributed among the `P` subsets of S-SLIC's
/// pixel-perspective architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SubsetStrategy {
    /// Raster-interleaved: pixel `i` (raster index) belongs to subset
    /// `i mod P`. Spatially uniform at single-pixel granularity; every
    /// cluster sees members in every sub-iteration. The strategy the
    /// OS-EM analogy suggests and our default.
    #[default]
    Interleaved,
    /// Checkerboard-style 2-D interleave: subset `(x + y·q) mod P` with
    /// `q = ceil(sqrt(P))`, decorrelating rows so subsets are not vertical
    /// stripe patterns for P dividing the width.
    Checkerboard,
    /// Contiguous horizontal bands: subset `⌊y·P / height⌋`. The cheapest
    /// layout for a DMA engine, but clusters outside the active band see no
    /// members in a sub-iteration (worst case for convergence) — included
    /// as the strawman the paper's "proper subsampling strategy" remark
    /// warns about.
    Bands,
}

/// A partition of image pixels into `P` equal-ish subsets.
///
/// # Example
///
/// ```
/// use sslic_core::subsample::{SubsetPartition, SubsetStrategy};
///
/// let part = SubsetPartition::new(64, 48, 4, SubsetStrategy::Interleaved);
/// // The subsets exactly cover the image.
/// let total: usize = (0..4).map(|s| part.subset_len(s)).sum();
/// assert_eq!(total, 64 * 48);
/// // Round-robin schedule: sub-iteration t processes subset t mod P.
/// assert_eq!(part.subset_for_step(6), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsetPartition {
    width: usize,
    height: usize,
    subsets: u32,
    strategy: SubsetStrategy,
    counts: Vec<usize>,
}

impl SubsetPartition {
    /// Builds the partition.
    ///
    /// # Panics
    ///
    /// Panics if `subsets == 0` or either dimension is zero.
    pub fn new(width: usize, height: usize, subsets: u32, strategy: SubsetStrategy) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert!(subsets > 0, "subset count must be nonzero");
        let mut counts = vec![0usize; subsets as usize];
        for y in 0..height {
            for x in 0..width {
                counts[subset_of(x, y, width, height, subsets, strategy) as usize] += 1;
            }
        }
        SubsetPartition {
            width,
            height,
            subsets,
            strategy,
            counts,
        }
    }

    /// Number of subsets `P`.
    pub fn subsets(&self) -> u32 {
        self.subsets
    }

    /// The strategy this partition uses.
    pub fn strategy(&self) -> SubsetStrategy {
        self.strategy
    }

    /// Subset index of pixel `(x, y)`.
    #[inline]
    pub fn subset_of(&self, x: usize, y: usize) -> u32 {
        subset_of(x, y, self.width, self.height, self.subsets, self.strategy)
    }

    /// The subset processed at sub-iteration `step` (round-robin).
    #[inline]
    pub fn subset_for_step(&self, step: u32) -> u32 {
        step % self.subsets
    }

    /// Number of pixels in `subset`.
    ///
    /// # Panics
    ///
    /// Panics if `subset >= subsets()`.
    pub fn subset_len(&self, subset: u32) -> usize {
        self.counts[subset as usize]
    }

    /// Fraction of image pixels each sub-iteration touches (`1/P` up to
    /// rounding) — the paper's "subsampling ratio" (0.5 for P=2, 0.25 for
    /// P=4).
    pub fn sampling_ratio(&self) -> f64 {
        1.0 / self.subsets as f64
    }
}

#[inline]
fn subset_of(
    x: usize,
    y: usize,
    width: usize,
    height: usize,
    subsets: u32,
    strategy: SubsetStrategy,
) -> u32 {
    let p = subsets as usize;
    (match strategy {
        SubsetStrategy::Interleaved => (y * width + x) % p,
        SubsetStrategy::Checkerboard => {
            let q = (p as f64).sqrt().ceil() as usize;
            (x + y * q) % p
        }
        SubsetStrategy::Bands => (y * p / height).min(p - 1),
    }) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_subset_is_identity() {
        let part = SubsetPartition::new(10, 10, 1, SubsetStrategy::Interleaved);
        assert_eq!(part.subset_len(0), 100);
        assert_eq!(part.sampling_ratio(), 1.0);
        for y in 0..10 {
            for x in 0..10 {
                assert_eq!(part.subset_of(x, y), 0);
            }
        }
    }

    #[test]
    fn interleaved_subsets_are_equal_size() {
        let part = SubsetPartition::new(64, 32, 4, SubsetStrategy::Interleaved);
        for s in 0..4 {
            assert_eq!(part.subset_len(s), 64 * 32 / 4);
        }
    }

    #[test]
    fn bands_cover_rows_contiguously() {
        let part = SubsetPartition::new(8, 12, 3, SubsetStrategy::Bands);
        assert_eq!(part.subset_of(0, 0), 0);
        assert_eq!(part.subset_of(0, 5), 1);
        assert_eq!(part.subset_of(0, 11), 2);
        // Rows within a band share the subset.
        for x in 0..8 {
            assert_eq!(part.subset_of(x, 2), part.subset_of(0, 2));
        }
    }

    #[test]
    fn checkerboard_varies_within_a_row_and_column() {
        let part = SubsetPartition::new(16, 16, 4, SubsetStrategy::Checkerboard);
        let row: std::collections::HashSet<u32> =
            (0..16).map(|x| part.subset_of(x, 0)).collect();
        let col: std::collections::HashSet<u32> =
            (0..16).map(|y| part.subset_of(0, y)).collect();
        assert!(row.len() > 1, "subsets vary along a row");
        assert!(col.len() > 1, "subsets vary along a column");
    }

    #[test]
    fn round_robin_schedule() {
        let part = SubsetPartition::new(8, 8, 3, SubsetStrategy::Interleaved);
        let schedule: Vec<u32> = (0..7).map(|t| part.subset_for_step(t)).collect();
        assert_eq!(schedule, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "subset count")]
    fn zero_subsets_panics() {
        let _ = SubsetPartition::new(8, 8, 0, SubsetStrategy::Interleaved);
    }

    proptest! {
        #[test]
        fn partition_is_exact_and_balanced(
            w in 4usize..40,
            h in 4usize..40,
            p in 1u32..6,
            strat in prop_oneof![
                Just(SubsetStrategy::Interleaved),
                Just(SubsetStrategy::Checkerboard),
                Just(SubsetStrategy::Bands),
            ],
        ) {
            let part = SubsetPartition::new(w, h, p, strat);
            // Exact cover.
            let total: usize = (0..p).map(|s| part.subset_len(s)).sum();
            prop_assert_eq!(total, w * h);
            // Every subset index in range.
            for y in 0..h {
                for x in 0..w {
                    prop_assert!(part.subset_of(x, y) < p);
                }
            }
            // Equal size up to a row/remainder of slack.
            let ideal = (w * h) as f64 / p as f64;
            let slack = match strat {
                SubsetStrategy::Bands => w as f64 * 2.0,
                _ => p as f64 * 2.0,
            };
            for s in 0..p {
                let len = part.subset_len(s) as f64;
                prop_assert!((len - ideal).abs() <= slack.max(ideal * 0.5),
                    "subset {s} has {len} pixels, ideal {ideal}");
            }
        }

        #[test]
        fn schedule_covers_all_subsets(p in 1u32..8) {
            let part = SubsetPartition::new(8, 8, p, SubsetStrategy::Interleaved);
            let seen: std::collections::HashSet<u32> =
                (0..p).map(|t| part.subset_for_step(t)).collect();
            prop_assert_eq!(seen.len() as u32, p);
        }
    }
}
