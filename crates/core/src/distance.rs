use sslic_fixed::Quantizer;

use crate::Cluster;

/// Numeric mode of the color-space distance datapath (Eq. 5).
///
/// The paper's Eq. 5 contains a typo (`(d_s²/S)²`); like the SLIC reference
/// implementation we compute
///
/// ```text
/// D² = d_c² + m² · d_s² / S²
/// ```
///
/// and compare squared distances (monotone in `D`, so the assignment is
/// identical and no square root is needed in the float path).
///
/// [`DistanceMode::Quantized`] models the accelerator's reduced-precision
/// datapath for the §6.1 bit-width exploration: channel values are
/// truncated to `channel_bits` and the distance output — what the 9:1
/// minimum unit actually compares — is a `distance_bits`-wide code of
/// `D` ("Each unit … returns the 8-bit distance", paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceMode {
    /// Full-precision floating point (the "64-bit" end of §6.1).
    #[default]
    Float,
    /// Reduced-precision fixed point.
    Quantized {
        /// Bits kept per L/a/b channel sample (≤ 8; the scratchpads store
        /// bytes, narrower widths truncate LSBs).
        channel_bits: u8,
        /// Bit width of the distance code compared by the minimum unit.
        distance_bits: u8,
    },
}

impl DistanceMode {
    /// The paper's single-knob precision sweep: an `bits`-wide datapath
    /// (channels saturate at 8 bits, the scratchpad word size).
    pub fn quantized(bits: u8) -> Self {
        DistanceMode::Quantized {
            channel_bits: bits.min(8),
            distance_bits: bits,
        }
    }

    /// Whether this mode requires the 8-bit CIELAB image.
    pub fn is_quantized(&self) -> bool {
        matches!(self, DistanceMode::Quantized { .. })
    }
}

// (the derive would also work, but keep the explicit impl documented)

/// Float-path squared distance of Eq. 5 (compared without the square
/// root).
#[inline]
pub fn dist2_float(
    px: [f32; 3],
    (x, y): (f32, f32),
    c: &Cluster,
    m2_over_s2: f32,
) -> f32 {
    let dl = px[0] - c.l;
    let da = px[1] - c.a;
    let db = px[2] - c.b;
    let dx = x - c.x;
    let dy = y - c.y;
    dl * dl + da * da + db * db + m2_over_s2 * (dx * dx + dy * dy)
}

/// A cluster center rounded into the quantized datapath's representation:
/// 8-bit Lab codes (truncated to the channel width) and integer position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterCodes {
    /// Truncated scratchpad code of the center's `L*`.
    pub l: i32,
    /// Truncated scratchpad code of the center's `a*`.
    pub a: i32,
    /// Truncated scratchpad code of the center's `b*`.
    pub b: i32,
    /// Center column, rounded to an integer.
    pub x: i32,
    /// Center row, rounded to an integer.
    pub y: i32,
}

/// The quantized-distance kernel of the accelerator datapath.
#[derive(Debug, Clone)]
pub struct QuantKernel {
    chan_shift: u32,
    quantizer: Quantizer,
    m2_over_s2: f64,
}

impl QuantKernel {
    /// Builds the kernel for compactness `m` and grid spacing `s`.
    pub fn new(channel_bits: u8, distance_bits: u8, m: f32, s: f32) -> Self {
        assert!((1..=8).contains(&channel_bits), "channel_bits must be 1..=8");
        assert!(
            (1..=16).contains(&distance_bits),
            "distance_bits must be 1..=16"
        );
        let m2_over_s2 = (m as f64 * m as f64) / (s as f64 * s as f64);
        // Worst-case distance over a 9-neighborhood, in Lab units:
        // ΔL ≤ 100, Δa/Δb ≤ 255, spatial distance up to ~3S per axis.
        let dmax = (100.0f64 * 100.0
            + 2.0 * 255.0f64 * 255.0
            + m2_over_s2 * 18.0 * (s as f64) * (s as f64))
            .sqrt();
        QuantKernel {
            chan_shift: 8 - channel_bits as u32,
            quantizer: Quantizer::new(distance_bits, 0.0, dmax),
            m2_over_s2,
        }
    }

    /// Truncates an 8-bit channel code to the datapath width (LSB drop,
    /// then shift back so magnitudes stay comparable).
    #[inline]
    pub fn truncate_channel(&self, code: u8) -> i32 {
        ((code as i32) >> self.chan_shift) << self.chan_shift
    }

    /// Rounds a cluster into datapath codes (Lab via the scratchpad
    /// encoding, position to integers).
    pub fn encode_cluster(&self, c: &Cluster) -> ClusterCodes {
        let [l8, a8, b8] = sslic_color::lab8::encode([c.l as f64, c.a as f64, c.b as f64]);
        ClusterCodes {
            l: self.truncate_channel(l8),
            a: self.truncate_channel(a8),
            b: self.truncate_channel(b8),
            x: c.x.round() as i32,
            y: c.y.round() as i32,
        }
    }

    /// Channel-truncation shift (`8 - channel_bits`); the SWAR kernel
    /// derives its replicated per-lane truncation mask from this.
    #[inline]
    pub(crate) fn chan_shift(&self) -> u32 {
        self.chan_shift
    }

    /// The distance-code quantizer, exposed so the SWAR kernel can build
    /// its code-threshold table against the exact encoder the scalar path
    /// uses (bit-identity depends on sharing the oracle).
    #[inline]
    pub(crate) fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The Eq. 5 spatial weight `m²/S²` in f64, matching the scalar
    /// `dist_code` expression exactly.
    #[inline]
    pub(crate) fn m2_over_s2(&self) -> f64 {
        self.m2_over_s2
    }

    /// The distance code the 9:1 minimum unit compares for one
    /// pixel/center pair. Monotone in the real distance up to the code
    /// resolution.
    ///
    /// Channel differences are rescaled from the scratchpad encoding back
    /// into Lab units (`ΔL = Δl8 · 100/255`) so the quantized datapath
    /// optimizes the same Eq. 5 objective as the float path — only the
    /// precision differs, which is exactly the knob §6.1 sweeps.
    #[inline]
    pub fn dist_code(&self, px: [u8; 3], (x, y): (i32, i32), c: &ClusterCodes) -> u32 {
        const L_SCALE: f64 = 100.0 / 255.0;
        let dl = (self.truncate_channel(px[0]) - c.l) as f64 * L_SCALE;
        let da = (self.truncate_channel(px[1]) - c.a) as f64;
        let db = (self.truncate_channel(px[2]) - c.b) as f64;
        let dx = (x - c.x) as f64;
        let dy = (y - c.y) as f64;
        let dc2 = dl * dl + da * da + db * db;
        let ds2 = dx * dx + dy * dy;
        self.quantizer.encode((dc2 + self.m2_over_s2 * ds2).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_float() {
        assert_eq!(DistanceMode::default(), DistanceMode::Float);
        assert!(!DistanceMode::Float.is_quantized());
    }

    #[test]
    fn quantized_constructor_clamps_channel_bits() {
        let m = DistanceMode::quantized(12);
        assert_eq!(
            m,
            DistanceMode::Quantized {
                channel_bits: 8,
                distance_bits: 12
            }
        );
        assert!(m.is_quantized());
    }

    #[test]
    fn float_distance_is_zero_at_center() {
        let c = Cluster::new(50.0, 10.0, -10.0, 5.0, 5.0);
        let d = dist2_float([50.0, 10.0, -10.0], (5.0, 5.0), &c, 0.25);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn float_distance_weights_space_by_m_over_s() {
        let c = Cluster::new(0.0, 0.0, 0.0, 0.0, 0.0);
        let near = dist2_float([0.0; 3], (1.0, 0.0), &c, 0.25);
        let far = dist2_float([0.0; 3], (2.0, 0.0), &c, 0.25);
        assert_eq!(near, 0.25);
        assert_eq!(far, 1.0);
    }

    #[test]
    fn quant_kernel_zero_distance_at_center() {
        let k = QuantKernel::new(8, 8, 10.0, 20.0);
        let c = ClusterCodes {
            l: 100,
            a: 128,
            b: 128,
            x: 10,
            y: 10,
        };
        assert_eq!(k.dist_code([100, 128, 128], (10, 10), &c), 0);
    }

    #[test]
    fn quant_distance_monotone_in_color_difference() {
        let k = QuantKernel::new(8, 8, 10.0, 20.0);
        let c = ClusterCodes {
            l: 0,
            a: 128,
            b: 128,
            x: 0,
            y: 0,
        };
        let d1 = k.dist_code([60, 128, 128], (0, 0), &c);
        let d2 = k.dist_code([200, 128, 128], (0, 0), &c);
        assert!(d2 > d1);
    }

    #[test]
    fn narrow_channels_truncate_lsbs() {
        let k = QuantKernel::new(4, 8, 10.0, 20.0);
        assert_eq!(k.truncate_channel(0b1011_0110), 0b1011_0000);
        assert_eq!(k.truncate_channel(0b0000_1111), 0);
    }

    #[test]
    fn eight_bit_channels_are_lossless() {
        let k = QuantKernel::new(8, 8, 10.0, 20.0);
        for v in [0u8, 1, 127, 254, 255] {
            assert_eq!(k.truncate_channel(v), v as i32);
        }
    }

    #[test]
    fn fewer_distance_bits_coarsen_codes() {
        let k8 = QuantKernel::new(8, 8, 10.0, 20.0);
        let k4 = QuantKernel::new(8, 4, 10.0, 20.0);
        let c = ClusterCodes {
            l: 0,
            a: 128,
            b: 128,
            x: 0,
            y: 0,
        };
        // Two nearby color differences distinguished at 8 bits may collide
        // at 4 bits.
        let a8 = k8.dist_code([10, 128, 128], (0, 0), &c);
        let b8 = k8.dist_code([14, 128, 128], (0, 0), &c);
        let a4 = k4.dist_code([10, 128, 128], (0, 0), &c);
        let b4 = k4.dist_code([14, 128, 128], (0, 0), &c);
        assert!(b8 > a8);
        assert_eq!(a4, b4, "4-bit codes collide for nearby distances");
    }

    #[test]
    fn encode_cluster_rounds_position() {
        let k = QuantKernel::new(8, 8, 10.0, 20.0);
        let c = Cluster::new(50.0, 0.0, 0.0, 10.6, 3.2);
        let codes = k.encode_cluster(&c);
        assert_eq!(codes.x, 11);
        assert_eq!(codes.y, 3);
        assert_eq!(codes.a, 128); // a* = 0 encodes to 128
    }

    #[test]
    #[should_panic(expected = "channel_bits")]
    fn zero_channel_bits_panics() {
        let _ = QuantKernel::new(0, 8, 10.0, 20.0);
    }
}
