//! Streaming segmentation sessions: persistent per-frame scratch and the
//! zero-allocation steady-state execution engine.
//!
//! A [`SegmenterSession`] is created once from a [`Segmenter`] and a frame
//! geometry. It owns every piece of per-frame working memory — the CIELAB
//! feature planes, the label plane, the distance buffer, per-band sigma
//! register files, the connectivity flood-fill queues, the cluster slots —
//! plus a persistent [`BandPool`] of parked workers. Each
//! [`SegmenterSession::run_into`] call segments one frame by *reusing* that
//! memory: after the first (cold) frame, a steady-state frame performs zero
//! heap allocations at any thread count (pinned by `tests/zero_alloc.rs` at
//! the workspace root).
//!
//! The one-shot [`Segmenter::run`] is itself a thin wrapper that builds a
//! transient session and runs a single frame through it, so session output
//! is bit-identical to one-shot output **by construction** — there is only
//! one execution engine. Determinism across thread counts is inherited
//! from the banded execution model (see [`crate::parallel`] and
//! DESIGN.md §5d/§5f): band layout, per-band partials, and ascending-band
//! folds never depend on the worker count.
//!
//! Shared state crosses the worker boundary as `Arc`s inside a per-dispatch
//! [`FrameCtx`] command; workers drop their command clones before signaling
//! the dispatch barrier, so the session's `Arc::make_mut` calls at the
//! serial sync points always find a unique reference and mutate in place
//! (copy-on-write never actually copies on the steady-state path).

use std::ops::Range;
use std::sync::Arc;

use sslic_color::{float, hw::HwColorConverter, Lab8Image, LabImage};
use sslic_image::Plane;
use sslic_obs::{LogicalClock, Recorder, Value};

use crate::arena::AllocLedger;
use crate::cluster::{init_clusters, Cluster};
use crate::connectivity::{enforce_connectivity_with, ConnScratch};
use crate::distance::{dist2_float, ClusterCodes, DistanceMode, QuantKernel};
use crate::engine::{
    Algorithm, RunOptions, Segmentation, SegmentationStatus, SegmentRequest, Segmenter, StepFaults,
};
use crate::instrument::RunCounters;
use crate::kernel::{Kernel, SwarKernel};
use crate::parallel::BandPool;
use crate::profile::{Phase, PhaseBreakdown};
use crate::recovery::{
    center_checksum, GuardVerdict, RecoveryAction, RecoveryOutcome, RecoveryReport,
};
use crate::subsample::SubsetPartition;
use crate::SeedGrid;

/// Fixed bucket boundaries of the per-band assigned-pixel histogram
/// (`core.band.pixels`): powers of four from 256 to 64k pixels.
const BAND_PIXEL_BOUNDS: [u64; 5] = [1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16];

/// Why a segmentation request could not run. Returned by the fallible
/// entry points ([`Segmenter::try_run`], [`SegmenterSession::try_run`],
/// [`SegmenterSession::try_run_into`]); the panicking twins raise the same
/// conditions as panics carrying the [`std::fmt::Display`] message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SegmentError {
    /// The frame has a zero-sized dimension; there is nothing to segment
    /// (and no valid seed grid).
    EmptyFrame {
        /// Requested frame width.
        width: usize,
        /// Requested frame height.
        height: usize,
    },
    /// The request's frame (or the caller's output plane) does not match
    /// the geometry this session's scratch was sized for. Sessions are
    /// fixed-geometry: build a new session to change resolution.
    GeometryMismatch {
        /// `(width, height)` the session was built for.
        expected: (usize, usize),
        /// `(width, height)` actually supplied.
        actual: (usize, usize),
    },
    /// A warm start carried the wrong number of clusters for this frame's
    /// realized seed grid, which would invalidate the static
    /// 9-neighborhood tiling.
    WarmStartLen {
        /// `SeedGrid::cluster_count` of the realized grid.
        expected: usize,
        /// Length of the supplied warm-start slice.
        actual: usize,
    },
    /// A session-fleet operation was refused (saturated pool, full
    /// admission queue, or invalid fleet sizing); see
    /// [`FleetError`](crate::FleetError) for the exact condition.
    Fleet(crate::fleet::FleetError),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::EmptyFrame { width, height } => {
                write!(f, "cannot segment an empty {width}x{height} frame")
            }
            SegmentError::GeometryMismatch { expected, actual } => write!(
                f,
                "session scratch is sized for {}x{} frames, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            SegmentError::WarmStartLen { expected, actual } => {
                write!(f, "warm start must carry {expected} clusters, got {actual}")
            }
            SegmentError::Fleet(e) => write!(f, "fleet: {e}"),
        }
    }
}

impl std::error::Error for SegmentError {}

/// Funnels a [`SegmentError`] into a panic with the same message the
/// fallible API reports, for the panicking convenience wrappers.
pub(crate) fn raise(error: SegmentError) -> ! {
    assert!(false, "{error}");
    unreachable!()
}

/// Per-frame result metadata: everything [`Segmentation`] carries except
/// the label map and cluster centers, which live in (or are borrowed from)
/// the session's reusable buffers.
#[derive(Debug, Clone)]
pub struct FrameReport {
    pub(crate) iterations_run: u32,
    pub(crate) breakdown: PhaseBreakdown,
    pub(crate) counters: RunCounters,
    pub(crate) spacing: f32,
    pub(crate) frozen_clusters: usize,
    pub(crate) status: SegmentationStatus,
    pub(crate) repairs: u64,
    pub(crate) scratch_allocs: u64,
    pub(crate) scratch_bytes: u64,
    pub(crate) recovery: RecoveryReport,
    pub(crate) kernel: Kernel,
}

impl FrameReport {
    /// Center-update steps actually executed this frame.
    pub fn iterations_run(&self) -> u32 {
        self.iterations_run
    }

    /// Wall-clock time per pipeline phase for this frame.
    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.breakdown
    }

    /// Recorded event counts for this frame.
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// Grid spacing `S` of the session geometry.
    pub fn spacing(&self) -> f32 {
        self.spacing
    }

    /// Clusters frozen by Preemptive-SLIC halting at frame end.
    pub fn frozen_clusters(&self) -> usize {
        self.frozen_clusters
    }

    /// Health of the frame (see [`SegmentationStatus`]).
    pub fn status(&self) -> SegmentationStatus {
        self.status
    }

    /// Invariant repairs applied this frame (0 on fault-free frames).
    pub fn invariant_repairs(&self) -> u64 {
        self.repairs
    }

    /// Scratch buffers logically established during this frame. The full
    /// inventory on the session's first frame; **zero** on every
    /// steady-state frame — the streaming contract.
    pub fn scratch_allocs(&self) -> u64 {
        self.scratch_allocs
    }

    /// Bytes of scratch logically established during this frame (see
    /// [`FrameReport::scratch_allocs`]).
    pub fn scratch_bytes(&self) -> u64 {
        self.scratch_bytes
    }

    /// Per-frame recovery record: guard firings, retries, escalations,
    /// outcome, and the final center-table checksum — populated whether
    /// or not a [`crate::RecoveryPolicy`] is active (without one, a
    /// guard failure reports outcome `Failed` with zero retries).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The assign-kernel backend that actually ran this frame:
    /// [`Kernel::Swar`] or [`Kernel::Scalar`], never [`Kernel::Auto`].
    /// Informational only — every backend is bit-identical.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

/// Everything a band worker needs to execute one dispatch, shared by `Arc`:
/// cloning a `FrameCtx` bumps reference counts and copies plain scalars —
/// it never touches the heap. Workers drop their clone before signaling
/// completion, restoring unique ownership to the session.
#[derive(Clone)]
struct FrameCtx {
    grid: SeedGrid,
    lab: Arc<LabImage>,
    /// `Some` only in quantized distance mode (mirrors the one-shot
    /// engine's `(kernel, lab8)` pairing).
    lab8: Option<Arc<Lab8Image>>,
    labels: Arc<Plane<u32>>,
    clusters: Arc<Vec<Cluster>>,
    codes: Arc<Vec<ClusterCodes>>,
    active: Arc<Vec<bool>>,
    max_dc2: Option<Arc<Vec<f32>>>,
    partition: Option<Arc<SubsetPartition>>,
    kernel: Option<QuantKernel>,
    /// `Some` exactly when this frame resolved to [`Kernel::Swar`]: the
    /// shared SWAR tables the band workers scan with.
    swar: Option<Arc<SwarKernel>>,
    m2_over_s2: f32,
    inv_s2: f32,
}

/// One dispatch to the band pool.
#[derive(Clone)]
enum Cmd {
    /// Pixel-perspective assignment over all pixels or one subset.
    Assign {
        ctx: FrameCtx,
        subset: Option<u32>,
        preempting: bool,
    },
    /// Banded sigma accumulation for the center update.
    Update {
        ctx: FrameCtx,
        pixel_subset: Option<u32>,
        cluster_subset: Option<(u32, u32)>,
    },
}

/// Pre-allocated per-band output slot: the band's label stripe (PPA
/// algorithms only), its private sigma register file and SLICO maxima, and
/// its counter partial. Reused across every dispatch of the session.
struct BandSlot {
    stripe: Vec<u32>,
    sigma: Vec<[f64; 6]>,
    new_max: Vec<f32>,
    counters: RunCounters,
}

/// Borrowed distance-datapath view over a [`FrameCtx`] — the exact logic
/// of the one-shot engine's `distance`/`dc2_ds2`, shared by the banded
/// kernels and the serial CPA scan.
struct DistCtx<'a> {
    lab: &'a LabImage,
    lab8: Option<&'a Lab8Image>,
    clusters: &'a [Cluster],
    codes: &'a [ClusterCodes],
    kernel: Option<&'a QuantKernel>,
    max_dc2: Option<&'a [f32]>,
    m2_over_s2: f32,
    inv_s2: f32,
}

impl<'a> DistCtx<'a> {
    fn of(ctx: &'a FrameCtx) -> Self {
        DistCtx {
            lab: &ctx.lab,
            lab8: ctx.lab8.as_deref(),
            clusters: &ctx.clusters,
            codes: &ctx.codes,
            kernel: ctx.kernel.as_ref(),
            max_dc2: ctx.max_dc2.as_deref().map(Vec::as_slice),
            m2_over_s2: ctx.m2_over_s2,
            inv_s2: ctx.inv_s2,
        }
    }

    /// Distance between pixel `(x, y)` and cluster `k`, in whichever
    /// numeric mode is active. Returned values are only compared against
    /// each other within one pixel's candidate set.
    #[inline]
    fn distance(&self, x: usize, y: usize, k: usize) -> f32 {
        if let Some(max_dc2) = self.max_dc2 {
            // SLICO objective: color and space each normalized by their
            // per-cluster / grid maxima.
            let (dc2, ds2) = self.dc2_ds2(x, y, k);
            return dc2 / max_dc2[k] + ds2 * self.inv_s2;
        }
        match (self.kernel, self.lab8) {
            (Some(kernel), Some(lab8)) => {
                let px = lab8.pixel(x, y);
                kernel.dist_code(px, (x as i32, y as i32), &self.codes[k]) as f32
            }
            _ => dist2_float(
                self.lab.pixel(x, y),
                (x as f32, y as f32),
                &self.clusters[k],
                self.m2_over_s2,
            ),
        }
    }

    /// Squared color and spatial distances separately (float path).
    #[inline]
    fn dc2_ds2(&self, x: usize, y: usize, k: usize) -> (f32, f32) {
        let [l, a, b] = self.lab.pixel(x, y);
        let c = &self.clusters[k];
        let (dl, da, db) = (l - c.l, a - c.a, b - c.b);
        let (dx, dy) = (x as f32 - c.x, y as f32 - c.y);
        (dl * dl + da * da + db * db, dx * dx + dy * dy)
    }
}

/// The band-pool kernel: decodes one dispatch command for one band.
fn band_kernel(cmd: &Cmd, _band: usize, rows: Range<usize>, slot: &mut BandSlot) {
    match cmd {
        Cmd::Assign {
            ctx,
            subset,
            preempting,
        } => assign_band(ctx, *subset, rows, slot, *preempting),
        Cmd::Update {
            ctx,
            pixel_subset,
            cluster_subset,
        } => update_band(ctx, *pixel_subset, *cluster_subset, rows, slot),
    }
}

/// One band of PPA assignment over `rows`, writing the band's label stripe
/// and private counters/maxima into its slot. Skipped pixels (subset
/// mismatch, all-frozen neighborhoods) keep the stripe's previous value,
/// which the session keeps synchronized with the central label plane — so
/// the stripe write-back is identical to the one-shot engine's in-place
/// label writes.
fn assign_band(
    ctx: &FrameCtx,
    subset: Option<u32>,
    rows: Range<usize>,
    slot: &mut BandSlot,
    preempting: bool,
) {
    let w = ctx.grid.width();
    slot.new_max.fill(0.0);
    if let (Some(swar), Some(lab8)) = (ctx.swar.as_deref(), ctx.lab8.as_deref()) {
        // The SWAR fixed-point kernel: bit-identical labels (the lane
        // scan replays every scalar comparison — see `crate::kernel`),
        // identical counters, identical stripe semantics for skipped
        // pixels. SLICO maxima never apply here: adaptive compactness
        // is a float-datapath feature, and `ctx.swar` is only populated
        // on quantized frames.
        let part = match (subset, ctx.partition.as_deref()) {
            (Some(s), Some(p)) => Some((p, s)),
            _ => None,
        };
        let assigned = swar.assign_rows(
            &ctx.grid,
            lab8,
            &ctx.codes,
            &ctx.active,
            part,
            preempting,
            rows,
            &mut slot.stripe,
        );
        slot.counters = RunCounters {
            pixel_color_reads: assigned,
            distance_calcs: assigned * 9,
            label_writes: assigned,
            ..RunCounters::default()
        };
        return;
    }
    let dist = DistCtx::of(ctx);
    let mut assigned = 0u64;
    for y in rows.clone() {
        for x in 0..w {
            if let (Some(s), Some(part)) = (subset, ctx.partition.as_deref()) {
                if part.subset_of(x, y) != s {
                    continue;
                }
            }
            let nine = ctx.grid.nine_neighbors_of_pixel(x, y);
            // Preemption: if every candidate is frozen, the pixel's
            // assignment cannot change — skip the 9 distances.
            if preempting && nine.iter().all(|&k| !ctx.active[k]) {
                continue;
            }
            let mut best = nine[0];
            let mut best_d = dist.distance(x, y, nine[0]);
            for &k in &nine[1..] {
                let d = dist.distance(x, y, k);
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            slot.stripe[(y - rows.start) * w + x] = best as u32;
            if ctx.max_dc2.is_some() {
                let (dc2, _) = dist.dc2_ds2(x, y, best);
                slot.new_max[best] = slot.new_max[best].max(dc2);
            }
            assigned += 1;
        }
    }
    slot.counters = RunCounters {
        pixel_color_reads: assigned,
        distance_calcs: assigned * 9,
        label_writes: assigned,
        ..RunCounters::default()
    };
}

/// One band of sigma accumulation over `rows` into the slot's private
/// register file (zeroed on entry; folded in ascending band order by the
/// session, which is what keeps the f64 sums bit-identical across thread
/// counts despite float non-associativity).
fn update_band(
    ctx: &FrameCtx,
    pixel_subset: Option<u32>,
    cluster_subset: Option<(u32, u32)>,
    rows: Range<usize>,
    slot: &mut BandSlot,
) {
    let w = ctx.grid.width();
    for acc in slot.sigma.iter_mut() {
        *acc = [0.0; 6];
    }
    let mut pixels_seen = 0u64;
    for y in rows {
        for x in 0..w {
            if let (Some(s), Some(part)) = (pixel_subset, ctx.partition.as_deref()) {
                if part.subset_of(x, y) != s {
                    continue;
                }
            }
            let k = ctx.labels[(x, y)] as usize;
            if let Some((p, s)) = cluster_subset {
                if k as u32 % p != s {
                    continue;
                }
            }
            let [l, a, b] = ctx.lab.pixel(x, y);
            let acc = &mut slot.sigma[k];
            acc[0] += l as f64;
            acc[1] += a as f64;
            acc[2] += b as f64;
            acc[3] += x as f64;
            acc[4] += y as f64;
            acc[5] += 1.0;
            pixels_seen += 1;
        }
    }
    slot.counters = RunCounters {
        label_reads: pixels_seen,
        pixel_color_reads: pixels_seen,
        sigma_updates: pixels_seen,
        ..RunCounters::default()
    };
}

/// Where a frame's final label map lands.
enum Target<'a> {
    /// A caller-owned plane (`run_into`).
    Caller(&'a mut Plane<u32>),
    /// The session's own output plane (`run`, and the one-shot wrapper).
    Internal,
}

/// How the frame resolves its initial cluster centers when
/// [`RunOptions::warm_start`] is absent.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WarmMode {
    /// `run`/`try_run`: frame 0 seeds cold, later frames recycle the
    /// previous frame's converged centers in place (the 30 fps video
    /// pipeline of the paper).
    Auto,
    /// `run_into`/`try_run_into` and the one-shot wrapper: every frame
    /// seeds cold unless a warm start is supplied, mirroring
    /// [`Segmenter::run`] semantics exactly.
    OneShot,
}

/// How one attempt of a frame resolves its initial centers.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AttemptInit {
    /// Attempt 0: explicit warm start, recycled session state, or cold
    /// grid seeding — as the caller requested.
    AsRequested,
    /// Retry: restore the last-known-good center checkpoint.
    Rollback,
    /// Escalated retry: discard all warm state and re-seed from the grid.
    Cold,
}

/// What one attempt of a frame produced, evaluated at the end-of-attempt
/// serial sync point (bit-identical across thread counts).
struct AttemptOutcome {
    iterations_run: u32,
    verdict: GuardVerdict,
    converged: bool,
}

/// A persistent streaming segmentation session: a [`Segmenter`]
/// configuration bound to one frame geometry, owning all per-frame working
/// memory and a parked worker pool.
///
/// After the first (cold) frame, segmenting a steady-state frame performs
/// **zero heap allocations** at any thread count, and the output is
/// bit-identical to running [`Segmenter::run`] on the same inputs.
///
/// # Example
///
/// ```
/// use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
/// use sslic_image::synthetic::SyntheticImage;
///
/// let seg = Segmenter::sslic_ppa(SlicParams::builder(80).iterations(4).build(), 2);
/// let mut session = seg.session(64, 48);
/// for seed in 0..3 {
///     let img = SyntheticImage::builder(64, 48).seed(seed).regions(5).build();
///     let report = session.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
///     assert_eq!(session.labels().len(), 64 * 48);
///     if seed > 0 {
///         // Steady state: the scratch inventory was established on frame 0.
///         assert_eq!(report.scratch_allocs(), 0);
///     }
/// }
/// ```
pub struct SegmenterSession {
    config: Segmenter,
    grid: SeedGrid,
    quantized: bool,
    lab: Arc<LabImage>,
    lab8: Arc<Lab8Image>,
    labels: Arc<Plane<u32>>,
    clusters: Arc<Vec<Cluster>>,
    codes: Arc<Vec<ClusterCodes>>,
    active: Arc<Vec<bool>>,
    max_dc2: Option<Arc<Vec<f32>>>,
    partition: Option<Arc<SubsetPartition>>,
    kernel: Option<QuantKernel>,
    /// SWAR assign tables, built at construction whenever the
    /// configuration qualifies (quantized + pixel-perspective); `None`
    /// means every frame of this session is scalar-only.
    swar: Option<Arc<SwarKernel>>,
    /// The backend resolved for the frame currently running (set at the
    /// top of [`SegmenterSession::frame`]; [`Kernel::Scalar`] before the
    /// first frame).
    frame_kernel: Kernel,
    converter: Option<HwColorConverter>,
    dist: Plane<f32>,
    out: Plane<u32>,
    conn: ConnScratch,
    pool: BandPool<Cmd, BandSlot>,
    fold_max: Vec<f32>,
    fold_sigma: Vec<[f64; 6]>,
    band_counters: Vec<RunCounters>,
    counters: RunCounters,
    m2_over_s2: f32,
    inv_s2: f32,
    ledger: AllocLedger,
    frames: u64,
    /// Last-known-good center table, snapshotted at the serial point
    /// right after attempt 0's Init each frame (post-Init state is always
    /// guard-verified or trusted input). Rollback and frame-failure
    /// restore from here.
    checkpoint: Vec<Cluster>,
    /// [`center_checksum`] of `checkpoint`, for integrity verification at
    /// rollback and the per-frame recovery report.
    checkpoint_sum: u64,
    /// Poisoned bands observed by pool dispatches this attempt.
    poisoned: u64,
    /// Sigma-fold count-conservation mismatch accumulated this attempt.
    sigma_mismatch: u64,
}

impl std::fmt::Debug for SegmenterSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmenterSession")
            .field("width", &self.grid.width())
            .field("height", &self.grid.height())
            .field("algorithm", &self.config.algorithm().name())
            .field("clusters", &self.clusters.len())
            .field("frames", &self.frames)
            .finish_non_exhaustive()
    }
}

impl SegmenterSession {
    /// Builds a session for `width × height` frames, pre-allocating every
    /// per-frame buffer and spawning the worker pool.
    ///
    /// # Errors
    ///
    /// [`SegmentError::EmptyFrame`] if either dimension is zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration combines adaptive compactness with a
    /// quantized distance mode ("adaptive compactness is a float-datapath
    /// feature").
    pub fn try_new(
        config: Segmenter,
        width: usize,
        height: usize,
    ) -> Result<SegmenterSession, SegmentError> {
        if width == 0 || height == 0 {
            return Err(SegmentError::EmptyFrame { width, height });
        }
        let params = *config.params();
        assert!(
            !(params.adaptive_compactness() && config.distance_mode().is_quantized()),
            "adaptive compactness is a float-datapath feature"
        );
        let grid = SeedGrid::new(width, height, params.superpixels());
        let k = grid.cluster_count();
        let spacing = grid.spacing();
        let m = params.compactness();
        let quantized = config.distance_mode().is_quantized();
        let kernel = match config.distance_mode() {
            DistanceMode::Float => None,
            DistanceMode::Quantized {
                channel_bits,
                distance_bits,
            } => Some(QuantKernel::new(
                channel_bits,
                distance_bits,
                params.compactness(),
                spacing,
            )),
        };
        let partition = match config.algorithm() {
            Algorithm::SSlicPpa { subsets, strategy } => {
                Some(Arc::new(SubsetPartition::new(width, height, subsets, strategy)))
            }
            _ => None,
        };
        let banded_labels = matches!(
            config.algorithm(),
            Algorithm::SlicPpa | Algorithm::SSlicPpa { .. }
        );
        let pixels = (width * height) as u64;

        // Every logical scratch buffer is recorded in the ledger as it is
        // established, so frame 0 reports the full inventory and every
        // later frame reports zero (`core.alloc.*` counters).
        let mut ledger = AllocLedger::new();
        let cluster_bytes = std::mem::size_of::<Cluster>() as u64;
        let code_bytes = std::mem::size_of::<ClusterCodes>() as u64;
        ledger.record(pixels * 12); // f32 CIELAB feature planes
        let lab = Arc::new(LabImage::from_fn(width, height, |_, _| [0.0; 3]));
        ledger.record(pixels * 3); // 8-bit CIELAB code planes
        let lab8 = Arc::new(Lab8Image::from_fn(width, height, |_, _| [0; 3]));
        ledger.record(pixels * 4); // working label plane
        let labels = Arc::new(Plane::filled(width, height, 0u32));
        ledger.record(pixels * 4); // finished output plane
        let out = Plane::filled(width, height, 0u32);
        ledger.record(pixels * 4); // CPA distance buffer
        let dist = Plane::filled(width, height, f32::INFINITY);
        ledger.record(pixels * (8 + 16 + 16)); // connectivity component plane + queues
        let conn = ConnScratch::new(width, height);
        ledger.record(k as u64 * cluster_bytes); // cluster center registers
        let clusters = Arc::new(vec![Cluster::default(); k]);
        ledger.record(k as u64 * code_bytes); // quantized center codes
        let codes = Arc::new(Vec::with_capacity(k));
        ledger.record(k as u64); // preemption activity flags
        let active = Arc::new(vec![true; k]);
        let max_dc2 = if params.adaptive_compactness() {
            ledger.record(k as u64 * 4); // SLICO per-cluster maxima
            Some(Arc::new(vec![m * m; k]))
        } else {
            None
        };
        ledger.record(k as u64 * cluster_bytes); // recovery checkpoint of the center table
        let checkpoint = vec![Cluster::default(); k];
        ledger.record(k as u64 * 4); // fold buffer: SLICO maxima
        let fold_max = vec![0f32; k];
        ledger.record(k as u64 * 48); // fold buffer: sigma register file
        let fold_sigma = vec![[0f64; 6]; k];
        // SWAR assign-kernel tables (squared-delta LUTs + code-threshold
        // table), built whenever the configuration qualifies — regardless
        // of the kernel actually requested — so a per-run
        // `RunOptions::with_kernel` override stays zero-alloc in steady
        // state. Quantized + adaptive is rejected above, so `kernel`
        // being `Some` already implies the non-adaptive datapath.
        let swar = match &kernel {
            Some(qk) if banded_labels => {
                let tables = SwarKernel::new(qk);
                ledger.record(tables.table_bytes());
                Some(Arc::new(tables))
            }
            _ => None,
        };
        let pool = BandPool::new(
            params.threads().get(),
            height,
            band_kernel,
            |_, rows: &Range<usize>| {
                let stripe_len = if banded_labels { rows.len() * width } else { 0 };
                ledger.record((stripe_len * 4) as u64 + k as u64 * (48 + 4));
                BandSlot {
                    stripe: vec![0u32; stripe_len],
                    sigma: vec![[0f64; 6]; k],
                    new_max: vec![0f32; k],
                    counters: RunCounters::default(),
                }
            },
        );
        let band_count = pool.band_count();
        ledger.record(band_count as u64 * std::mem::size_of::<RunCounters>() as u64);
        let band_counters = Vec::with_capacity(band_count);

        Ok(SegmenterSession {
            config,
            grid,
            quantized,
            lab,
            lab8,
            labels,
            clusters,
            codes,
            active,
            max_dc2,
            partition,
            kernel,
            swar,
            frame_kernel: Kernel::Scalar,
            converter: quantized.then(HwColorConverter::paper_default),
            dist,
            out,
            conn,
            pool,
            fold_max,
            fold_sigma,
            band_counters,
            counters: RunCounters::default(),
            m2_over_s2: (m * m) / (spacing * spacing),
            inv_s2: 1.0 / (spacing * spacing),
            ledger,
            frames: 0,
            checkpoint,
            checkpoint_sum: 0,
            poisoned: 0,
            sigma_mismatch: 0,
        })
    }

    /// Panicking convenience over [`SegmenterSession::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on any [`SegmentError`] condition, with the error's
    /// [`std::fmt::Display`] message.
    pub fn new(config: Segmenter, width: usize, height: usize) -> SegmenterSession {
        match SegmenterSession::try_new(config, width, height) {
            Ok(session) => session,
            Err(e) => raise(e),
        }
    }

    /// Frame width this session is bound to.
    pub fn width(&self) -> usize {
        self.grid.width()
    }

    /// Frame height this session is bound to.
    pub fn height(&self) -> usize {
        self.grid.height()
    }

    /// Frames segmented so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Rewinds the session to its pre-first-frame state: the next
    /// [`WarmMode`]-`Auto` frame seeds cold instead of warm-starting from
    /// the previous frame's centers. The scratch arena is untouched — no
    /// allocation, no geometry change. Session fleets call this when a
    /// freed slot rebinds to a new stream, so the newcomer never inherits
    /// the departed stream's converged centers.
    pub fn reset(&mut self) {
        self.frames = 0;
    }

    /// Total scratch inventory of this session as `(buffers, bytes)` — a
    /// pure function of the frame geometry and configuration, established
    /// once at construction and reused for every frame.
    pub fn scratch_inventory(&self) -> (u64, u64) {
        (self.ledger.total_count(), self.ledger.total_bytes())
    }

    /// The session's configuration.
    pub fn config(&self) -> &Segmenter {
        &self.config
    }

    /// The label map of the most recent [`SegmenterSession::run`] /
    /// [`SegmenterSession::try_run`] frame (all zeros before the first).
    pub fn labels(&self) -> &Plane<u32> {
        &self.out
    }

    /// The current cluster centers — after a frame, that frame's converged
    /// centers (the warm-start state the next [`SegmenterSession::run`]
    /// recycles).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Segments one frame into the session's own output plane (readable
    /// via [`SegmenterSession::labels`]). The first frame seeds cold;
    /// every later frame recycles the previous frame's converged centers
    /// as a warm start (unless [`RunOptions::warm_start`] overrides it),
    /// and performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// [`SegmentError::GeometryMismatch`] if the request's frame differs
    /// from the session geometry; [`SegmentError::WarmStartLen`] if an
    /// explicit warm start has the wrong cluster count.
    pub fn try_run(
        &mut self,
        request: SegmentRequest<'_>,
        options: &RunOptions<'_>,
    ) -> Result<FrameReport, SegmentError> {
        self.frame(request, options, WarmMode::Auto, Target::Internal)
    }

    /// Panicking convenience over [`SegmenterSession::try_run`].
    ///
    /// # Panics
    ///
    /// Panics on any [`SegmentError`] condition, with the error's
    /// [`std::fmt::Display`] message.
    pub fn run(&mut self, request: SegmentRequest<'_>, options: &RunOptions<'_>) -> FrameReport {
        match self.try_run(request, options) {
            Ok(report) => report,
            Err(e) => raise(e),
        }
    }

    /// Segments one frame into a caller-owned label plane, with one-shot
    /// warm semantics: cold seeding unless [`RunOptions::warm_start`] is
    /// supplied — exactly [`Segmenter::run`], minus the per-call
    /// allocations. The output is bit-identical to the one-shot API by
    /// construction (they share this engine).
    ///
    /// # Errors
    ///
    /// [`SegmentError::GeometryMismatch`] if the request's frame *or*
    /// `out` differs from the session geometry;
    /// [`SegmentError::WarmStartLen`] as in
    /// [`SegmenterSession::try_run`].
    pub fn try_run_into(
        &mut self,
        request: SegmentRequest<'_>,
        options: &RunOptions<'_>,
        out: &mut Plane<u32>,
    ) -> Result<FrameReport, SegmentError> {
        self.frame(request, options, WarmMode::OneShot, Target::Caller(out))
    }

    /// Panicking convenience over [`SegmenterSession::try_run_into`].
    ///
    /// # Panics
    ///
    /// Panics on any [`SegmentError`] condition, with the error's
    /// [`std::fmt::Display`] message.
    pub fn run_into(
        &mut self,
        request: SegmentRequest<'_>,
        options: &RunOptions<'_>,
        out: &mut Plane<u32>,
    ) -> FrameReport {
        match self.try_run_into(request, options, out) {
            Ok(report) => report,
            Err(e) => raise(e),
        }
    }

    /// Consumes the session, assembling a full [`Segmentation`] from the
    /// most recent frame's output plane and cluster state. `report` is the
    /// [`FrameReport`] that frame returned; pairing it with any other
    /// frame's report produces a `Segmentation` whose labels and summary
    /// disagree. Backs the one-shot [`Segmenter::run`], and lets streaming
    /// callers hand the final frame of a session to `Segmentation`-based
    /// consumers without a copy.
    pub fn into_segmentation(self, report: FrameReport) -> Segmentation {
        let SegmenterSession { out, clusters, .. } = self;
        let clusters = match Arc::try_unwrap(clusters) {
            Ok(v) => v,
            // A worker kept a stale handle (cannot happen after a clean
            // frame barrier); fall back to a copy rather than failing.
            Err(shared) => (*shared).clone(),
        };
        Segmentation::from_parts(out, clusters, report)
    }

    // --- the frame engine --------------------------------------------------

    /// Runs one frame end to end. This is the single execution engine
    /// behind every public entry point (session and one-shot alike).
    fn frame(
        &mut self,
        request: SegmentRequest<'_>,
        options: &RunOptions<'_>,
        warm_mode: WarmMode,
        mut target: Target<'_>,
    ) -> Result<FrameReport, SegmentError> {
        let (w, h) = (self.grid.width(), self.grid.height());
        let (rw, rh) = request_dims(&request);
        if (rw, rh) != (w, h) {
            return Err(SegmentError::GeometryMismatch {
                expected: (w, h),
                actual: (rw, rh),
            });
        }
        if let Target::Caller(out) = &target {
            if (out.width(), out.height()) != (w, h) {
                return Err(SegmentError::GeometryMismatch {
                    expected: (w, h),
                    actual: (out.width(), out.height()),
                });
            }
        }
        if let Some(warm) = options.warm_start {
            if warm.len() != self.grid.cluster_count() {
                return Err(SegmentError::WarmStartLen {
                    expected: self.grid.cluster_count(),
                    actual: warm.len(),
                });
            }
        }
        let params = *self.config.params();
        let recorder = options.recorder;
        let policy = options.recovery;
        let spacing = self.grid.spacing();
        // Resolve the assign backend for this frame: the per-run override
        // beats the configuration preference; `Swar`/`Auto` fall back to
        // the (bit-identical) scalar loop when the session never built
        // SWAR tables (float mode or a center-perspective algorithm).
        self.frame_kernel = options
            .kernel
            .unwrap_or(params.kernel())
            .resolve(self.swar.is_some());
        let mut breakdown = PhaseBreakdown::new();

        if let Some(f) = options.faults {
            // Attempt 0 of a new frame: fault adapters re-seed their
            // attempt salt so a recovery-enabled first attempt stays
            // bit-identical to a recovery-free run.
            f.begin_attempt(0);
        }
        self.convert_into(request, options.faults, &mut breakdown);

        // Attempt 0 initial centers: explicit warm start > recycled
        // session state (Auto, frames ≥ 1) > cold grid seeding.
        let cold = options.warm_start.is_none()
            && (warm_mode == WarmMode::OneShot || self.frames == 0);

        // The self-healing attempt loop. Attempt 0 is the ordinary run;
        // each further attempt is a retry whose init the policy chose from
        // the previous attempt's guard verdict — a pure function of
        // (frame, verdict, attempt), so the whole ladder replays
        // bit-identically across thread counts and re-runs. Without a
        // policy the loop body runs exactly once.
        let mut init = AttemptInit::AsRequested;
        let mut attempt: u32 = 0;
        let mut total_guards: u64 = 0;
        let mut escalations: u32 = 0;
        let (last, guard_clean) = loop {
            let outcome =
                self.run_attempt(options, init, cold, attempt, &mut breakdown, &mut target);
            total_guards = total_guards.wrapping_add(outcome.verdict.guards_fired());
            let action = if outcome.verdict.clean() {
                None
            } else {
                policy.map(|p| p.action_for(self.frames, &outcome.verdict, attempt))
            };
            match action {
                Some(act @ (RecoveryAction::Rollback | RecoveryAction::ColdRestart)) => {
                    if let Some(rec) = recorder {
                        let clock = LogicalClock::step(outcome.iterations_run.saturating_sub(1));
                        rec.span_end(
                            "core.run",
                            clock,
                            vec![
                                (
                                    "iterations_run",
                                    Value::U64(u64::from(outcome.iterations_run)),
                                ),
                                (
                                    "repairs",
                                    Value::U64(
                                        outcome.verdict.center_repairs
                                            + outcome.verdict.label_repairs,
                                    ),
                                ),
                                ("status", Value::from("retrying")),
                            ],
                        );
                        rec.instant(
                            "core.recovery.retry",
                            clock,
                            vec![
                                ("attempt", Value::U64(u64::from(attempt + 1))),
                                ("action", Value::from(act.as_str())),
                                ("guards_fired", Value::U64(outcome.verdict.guards_fired())),
                            ],
                        );
                    }
                    init = if act == RecoveryAction::Rollback
                        && center_checksum(&self.checkpoint) == self.checkpoint_sum
                    {
                        AttemptInit::Rollback
                    } else {
                        // ColdRestart — or, defense in depth, a checkpoint
                        // that no longer matches its own checksum.
                        escalations += 1;
                        AttemptInit::Cold
                    };
                    attempt += 1;
                    if let Some(f) = options.faults {
                        f.begin_attempt(attempt);
                    }
                }
                Some(RecoveryAction::FailFrame) => {
                    // Budget exhausted: keep the repaired (valid but
                    // degraded) labels, but restore the last-known-good
                    // centers so the next frame warm-starts clean instead
                    // of propagating corruption.
                    Arc::make_mut(&mut self.clusters).copy_from_slice(&self.checkpoint);
                    break (outcome, false);
                }
                None => {
                    let clean = outcome.verdict.clean();
                    break (outcome, clean);
                }
            }
        };
        let iterations_run = last.iterations_run;
        let repairs = last.verdict.center_repairs + last.verdict.label_repairs;
        let out: &mut Plane<u32> = match &mut target {
            Target::Caller(p) => p,
            Target::Internal => &mut self.out,
        };
        if params.enforce_connectivity() {
            let conn = &mut self.conn;
            breakdown.time(Phase::Connectivity, || {
                let min_size =
                    ((spacing * spacing) / params.min_region_divisor() as f32).max(1.0) as usize;
                enforce_connectivity_with(out, min_size.max(1), conn);
            });
        }

        let frozen_clusters = self.active.iter().filter(|&&a| !a).count();
        let outcome = if !guard_clean {
            RecoveryOutcome::Failed
        } else if attempt > 0 {
            RecoveryOutcome::Recovered
        } else {
            RecoveryOutcome::Clean
        };
        // Exhausting the iteration budget while a convergence threshold is
        // configured and unmet is the non-convergence signature of
        // corruption: the run terminated (budget bound) but did not settle.
        // Non-convergence is *not* a guard (it never triggers a retry) but
        // it still degrades the reported status.
        let status = match outcome {
            RecoveryOutcome::Failed => SegmentationStatus::Degraded,
            _ if !last.converged => SegmentationStatus::Degraded,
            RecoveryOutcome::Recovered => SegmentationStatus::Recovered,
            RecoveryOutcome::Clean => SegmentationStatus::Ok,
        };
        let recovery = RecoveryReport {
            guards_fired: total_guards,
            retries: attempt,
            escalations,
            outcome,
            center_checksum: center_checksum(&self.clusters),
        };
        let (scratch_allocs, scratch_bytes) = self.ledger.take_frame_delta();
        if let Some(rec) = recorder {
            // Phase attribution: wall-clock durations pass through
            // Recorder::duration_ns, which zeroes them in deterministic
            // mode so the trace bytes stay workload-pure.
            for phase in crate::profile::PHASES {
                rec.instant(
                    "core.phase",
                    LogicalClock::step(iterations_run.saturating_sub(1)),
                    vec![
                        ("phase", Value::from(phase.key())),
                        (
                            "nanos",
                            Value::U64(rec.duration_ns(breakdown.phase_time(phase))),
                        ),
                    ],
                );
            }
            let c = &self.counters;
            rec.counter_add("core.distance_calcs", c.distance_calcs);
            rec.counter_add("core.pixel_color_reads", c.pixel_color_reads);
            rec.counter_add("core.sigma_updates", c.sigma_updates);
            rec.counter_add("core.center_updates", c.center_updates);
            rec.counter_add("core.sub_iterations", c.sub_iterations);
            rec.counter_add("core.invariant_repairs", repairs);
            // Scratch establishments this frame: the full inventory on the
            // session's first frame, zero in steady state. Geometry-pure
            // (never thread- or timing-dependent), so deterministic traces
            // stay byte-identical across worker counts.
            rec.counter_add("core.alloc.scratch", scratch_allocs);
            rec.counter_add("core.alloc.scratch_bytes", scratch_bytes);
            if policy.is_some() {
                // Recovery telemetry is policy-gated so recovery-off
                // traces stay byte-identical to the pre-recovery engine.
                rec.instant(
                    "core.recovery.outcome",
                    LogicalClock::step(iterations_run.saturating_sub(1)),
                    vec![
                        ("outcome", Value::from(recovery.outcome.as_str())),
                        ("guards_fired", Value::U64(recovery.guards_fired)),
                        ("retries", Value::U64(u64::from(recovery.retries))),
                        ("escalations", Value::U64(u64::from(recovery.escalations))),
                        ("center_checksum", Value::U64(recovery.center_checksum)),
                    ],
                );
                rec.counter_add("core.recovery.guards_fired", recovery.guards_fired);
                rec.counter_add("core.recovery.retries", u64::from(recovery.retries));
                rec.counter_add("core.recovery.escalations", u64::from(recovery.escalations));
            }
            rec.span_end(
                "core.run",
                LogicalClock::step(iterations_run.saturating_sub(1)),
                vec![
                    ("iterations_run", Value::U64(u64::from(iterations_run))),
                    ("repairs", Value::U64(repairs)),
                    (
                        "status",
                        Value::from(match status {
                            SegmentationStatus::Ok => "ok",
                            SegmentationStatus::Degraded => "degraded",
                            SegmentationStatus::Recovered => "recovered",
                        }),
                    ),
                ],
            );
        }
        self.frames += 1;
        Ok(FrameReport {
            iterations_run,
            breakdown,
            counters: self.counters,
            spacing,
            frozen_clusters,
            status,
            repairs,
            scratch_allocs,
            scratch_bytes,
            recovery,
            kernel: self.frame_kernel,
        })
    }

    /// Runs one attempt of a frame: attempt init, the iteration loop,
    /// copy-out, and the center/label/sigma/poison guards — everything up
    /// to the retry decision, which stays in [`SegmenterSession::frame`]
    /// together with the finishing passes (connectivity, reporting).
    ///
    /// Emits this attempt's `core.run` span-begin, step spans, and repair
    /// instants; the caller closes the span with the attempt's
    /// disposition (`retrying`, or the frame's final status).
    fn run_attempt(
        &mut self,
        options: &RunOptions<'_>,
        init: AttemptInit,
        cold: bool,
        attempt: u32,
        breakdown: &mut PhaseBreakdown,
        target: &mut Target<'_>,
    ) -> AttemptOutcome {
        let (w, h) = (self.grid.width(), self.grid.height());
        let params = *self.config.params();
        let algorithm = self.config.algorithm();
        let preemption = self.config.preemption();
        let recorder = options.recorder;

        breakdown.time(Phase::Init, || {
            match init {
                AttemptInit::AsRequested => match options.warm_start {
                    Some(warm) => {
                        let clusters = Arc::make_mut(&mut self.clusters);
                        clusters.clear();
                        clusters.extend_from_slice(warm);
                    }
                    None if cold => {
                        let fresh = init_clusters(&self.lab, &self.grid, params.perturb_seeds());
                        let clusters = Arc::make_mut(&mut self.clusters);
                        clusters.clear();
                        clusters.extend_from_slice(&fresh);
                    }
                    None => {} // Auto steady state: centers stay in place.
                },
                AttemptInit::Rollback => {
                    // Restore the last-known-good center table written at
                    // this frame's attempt-0 sync point. Same-length copy:
                    // no allocation on the retry path.
                    Arc::make_mut(&mut self.clusters).copy_from_slice(&self.checkpoint);
                }
                AttemptInit::Cold => {
                    let fresh = init_clusters(&self.lab, &self.grid, params.perturb_seeds());
                    let clusters = Arc::make_mut(&mut self.clusters);
                    clusters.clear();
                    clusters.extend_from_slice(&fresh);
                }
            }
            let labels = Arc::make_mut(&mut self.labels);
            for y in 0..h {
                for x in 0..w {
                    labels[(x, y)] = self.grid.home_cluster_of_pixel(x, y) as u32;
                }
            }
            // PPA algorithms: re-sync every band's stripe with the central
            // labels so skipped pixels keep their previous assignment,
            // exactly like the one-shot engine's in-place label writes.
            for b in 0..self.pool.band_count() {
                let rows = self.pool.bands()[b].clone();
                let mut slot = self.pool.slot(b);
                if !slot.stripe.is_empty() {
                    slot.stripe
                        .copy_from_slice(&labels.as_slice()[rows.start * w..rows.end * w]);
                }
            }
        });
        if attempt == 0 {
            // Checkpoint: the post-init state of attempt 0 is
            // last-known-good by construction — a guard-verified previous
            // frame, an explicitly trusted warm start, or a fresh grid
            // seed. Same-length copy into preallocated scratch.
            self.checkpoint.copy_from_slice(&self.clusters);
            self.checkpoint_sum = center_checksum(&self.checkpoint);
        }

        let cluster_count = self.clusters.len();
        if let Some(rec) = recorder {
            rec.span_begin(
                "core.run",
                LogicalClock::ZERO,
                vec![
                    ("algorithm", Value::from(algorithm.name())),
                    ("width", Value::U64(w as u64)),
                    ("height", Value::U64(h as u64)),
                    ("clusters", Value::U64(cluster_count as u64)),
                    ("iterations", Value::U64(u64::from(params.iterations()))),
                    // Deliberately NOT the thread count: the determinism
                    // contract byte-diffs traces across worker counts.
                ],
            );
        }

        // Per-attempt scratch resets — all in place, no allocation. A
        // retry resets the counters too, so the frame reports the final
        // attempt's workload (matching the labels it actually produced).
        Arc::make_mut(&mut self.active).fill(true);
        let m = params.compactness();
        if let Some(max_dc2) = &mut self.max_dc2 {
            Arc::make_mut(max_dc2).fill(m * m);
        }
        self.counters = RunCounters::default();
        self.dist.reset_to(f32::INFINITY);
        self.poisoned = 0;
        self.sigma_mismatch = 0;

        let mut iterations_run = 0u32;
        let mut center_repairs = 0u64;
        let mut last_movement = 0.0f32;
        for step in 0..params.iterations() {
            if let Some(rec) = recorder {
                rec.span_begin(
                    "core.step",
                    LogicalClock::step(step),
                    vec![(
                        "subset",
                        Value::U64(u64::from(step % algorithm.steps_per_full_pass())),
                    )],
                );
            }
            let movement = match algorithm {
                Algorithm::SlicCpa => {
                    breakdown.time(Phase::DistanceMin, || {
                        self.dist.reset_to(f32::INFINITY);
                        self.assign_cpa(None, recorder, step);
                    });
                    breakdown.time(Phase::CenterUpdate, || {
                        self.update_centers(None, None, preemption, recorder, step)
                    })
                }
                Algorithm::SlicPpa => {
                    breakdown.time(Phase::DistanceMin, || {
                        self.assign_ppa(None, preemption.is_some(), recorder, step);
                    });
                    breakdown.time(Phase::CenterUpdate, || {
                        self.update_centers(None, None, preemption, recorder, step)
                    })
                }
                Algorithm::SSlicPpa { subsets, .. } => {
                    let subset = step % subsets;
                    breakdown.time(Phase::DistanceMin, || {
                        self.assign_ppa(Some(subset), preemption.is_some(), recorder, step);
                    });
                    breakdown.time(Phase::CenterUpdate, || {
                        self.update_centers(Some(subset), None, preemption, recorder, step)
                    })
                }
                Algorithm::SSlicCpa { subsets } => {
                    let subset = step % subsets;
                    breakdown.time(Phase::DistanceMin, || {
                        if subset == 0 {
                            // New round: clusters compete afresh so stale
                            // distances to long-moved centers cannot pin
                            // labels forever.
                            self.dist.reset_to(f32::INFINITY);
                        }
                        self.assign_cpa(Some((subsets, subset)), recorder, step);
                    });
                    breakdown.time(Phase::CenterUpdate, || {
                        self.update_centers(None, Some((subsets, subset)), preemption, recorder, step)
                    })
                }
            };
            self.counters.sub_iterations += 1;
            iterations_run = step + 1;
            last_movement = movement;
            if let Some(f) = options.faults {
                f.corrupt_centers(step, Arc::make_mut(&mut self.clusters).as_mut_slice());
            }
            // Invariant guard: runs unconditionally (a no-op on clean
            // state, preserving bit-identity of the fault-free path) so
            // corrupted center registers cannot push subsequent window
            // scans or seed lookups out of the image box.
            let step_repairs = self.repair_centers();
            center_repairs += step_repairs;
            if let Some(rec) = recorder {
                if step_repairs > 0 {
                    rec.instant(
                        "core.repair.centers",
                        LogicalClock::step(step),
                        vec![("repaired", Value::U64(step_repairs))],
                    );
                }
                rec.span_end(
                    "core.step",
                    LogicalClock::step(step),
                    vec![("sub_iterations", Value::U64(1))],
                );
            }
            if let Some(threshold) = params.convergence_threshold() {
                if movement <= threshold {
                    break;
                }
            }
        }

        // The finished label map lands in the target plane; the working
        // plane stays untouched by the post-passes (it is re-seeded from
        // home clusters next attempt/frame anyway).
        let out: &mut Plane<u32> = match target {
            Target::Caller(p) => p,
            Target::Internal => &mut self.out,
        };
        out.copy_from(&self.labels);
        // Invariant guard: any out-of-range label (possible only via
        // corruption) is repaired to the pixel's home cluster, keeping the
        // map a valid index into `clusters` for connectivity and callers.
        let k = self.clusters.len() as u32;
        let mut label_repairs = 0u64;
        for y in 0..h {
            for x in 0..w {
                if out[(x, y)] >= k {
                    out[(x, y)] = self.grid.home_cluster_of_pixel(x, y) as u32;
                    label_repairs += 1;
                }
            }
        }
        if let Some(rec) = recorder {
            if label_repairs > 0 {
                rec.instant(
                    "core.repair.labels",
                    LogicalClock::step(iterations_run.saturating_sub(1)),
                    vec![("repaired", Value::U64(label_repairs))],
                );
            }
        }
        let converged = params
            .convergence_threshold()
            .map_or(true, |t| last_movement <= t);
        AttemptOutcome {
            iterations_run,
            verdict: GuardVerdict {
                center_repairs,
                label_repairs,
                sigma_mismatch: self.sigma_mismatch,
                poisoned_bands: self.poisoned,
            },
            converged,
        }
    }

    /// Converts the request's pixels into the session's reusable feature
    /// planes, applying pixel-feature fault hooks exactly where the
    /// one-shot engine did.
    fn convert_into(
        &mut self,
        request: SegmentRequest<'_>,
        faults: Option<&dyn StepFaults>,
        breakdown: &mut PhaseBreakdown,
    ) {
        let (w, h) = (self.grid.width(), self.grid.height());
        match request {
            SegmentRequest::Rgb(img) => {
                if self.quantized {
                    // The accelerator's LUT path produces the 8-bit image
                    // the quantized datapath operates on; the f32 image is
                    // derived from it so assignment and sigma see the same
                    // data.
                    let lab8 = Arc::make_mut(&mut self.lab8);
                    if let Some(conv) = &self.converter {
                        breakdown.time(Phase::ColorConversion, || {
                            conv.convert_image_into(img, lab8);
                        });
                    }
                    if let Some(f) = faults {
                        f.corrupt_lab8(lab8);
                    }
                    lab8.decode_into(Arc::make_mut(&mut self.lab));
                } else {
                    let lab = Arc::make_mut(&mut self.lab);
                    breakdown.time(Phase::ColorConversion, || {
                        float::convert_image_into(img, lab);
                    });
                }
            }
            SegmentRequest::Lab(src) => {
                if self.quantized {
                    let lab8 = Arc::make_mut(&mut self.lab8);
                    breakdown.time(Phase::ColorConversion, || {
                        for y in 0..h {
                            for x in 0..w {
                                let [l, a, b] = src.pixel(x, y);
                                let code =
                                    sslic_color::lab8::encode([l as f64, a as f64, b as f64]);
                                lab8.l[(x, y)] = code[0];
                                lab8.a[(x, y)] = code[1];
                                lab8.b[(x, y)] = code[2];
                            }
                        }
                    });
                    if let Some(f) = faults {
                        f.corrupt_lab8(lab8);
                    }
                    lab8.decode_into(Arc::make_mut(&mut self.lab));
                } else {
                    Arc::make_mut(&mut self.lab).copy_from(src);
                }
            }
            SegmentRequest::Lab8(src) => {
                // Conversion happened outside the engine: charged zero
                // time. The hooks corrupt the codes before anything reads
                // them.
                let lab8 = Arc::make_mut(&mut self.lab8);
                lab8.copy_from(src);
                if let Some(f) = faults {
                    f.corrupt_lab8(lab8);
                }
                lab8.decode_into(Arc::make_mut(&mut self.lab));
            }
        }
    }

    /// Assembles the per-dispatch shared view (`Arc` bumps and scalar
    /// copies only — no heap traffic).
    fn frame_ctx(&self) -> FrameCtx {
        FrameCtx {
            grid: self.grid.clone(),
            lab: Arc::clone(&self.lab),
            lab8: self.quantized.then(|| Arc::clone(&self.lab8)),
            labels: Arc::clone(&self.labels),
            clusters: Arc::clone(&self.clusters),
            codes: Arc::clone(&self.codes),
            active: Arc::clone(&self.active),
            max_dc2: self.max_dc2.as_ref().map(Arc::clone),
            partition: self.partition.as_ref().map(Arc::clone),
            kernel: self.kernel.clone(),
            swar: (self.frame_kernel == Kernel::Swar)
                .then(|| self.swar.as_ref().map(Arc::clone))
                .flatten(),
            m2_over_s2: self.m2_over_s2,
            inv_s2: self.inv_s2,
        }
    }

    /// Refreshes the quantized cluster codes from the float centers in
    /// place (hardware: centers are loaded into the center registers at
    /// the start of each pass).
    fn refresh_codes(&mut self) {
        if let Some(kernel) = &self.kernel {
            let codes = Arc::make_mut(&mut self.codes);
            codes.clear();
            codes.extend(self.clusters.iter().map(|c| kernel.encode_cluster(c)));
        }
    }

    /// Repairs corrupted center registers in place; see the one-shot
    /// engine's invariant-guard documentation. Returns clusters changed.
    fn repair_centers(&mut self) -> u64 {
        let (w, h) = (self.grid.width(), self.grid.height());
        let (xmax, ymax) = ((w - 1) as f32, (h - 1) as f32);
        let mut repaired = 0u64;
        let clusters = Arc::make_mut(&mut self.clusters);
        for (k, c) in clusters.iter_mut().enumerate() {
            let before = *c;
            // f32::clamp propagates NaN, so non-finite fields must be
            // replaced before clamping.
            if !c.x.is_finite() || !c.y.is_finite() {
                let (sx, sy) = self.grid.seed_position(k);
                if !c.x.is_finite() {
                    c.x = sx;
                }
                if !c.y.is_finite() {
                    c.y = sy;
                }
            }
            if !c.l.is_finite() {
                c.l = 50.0;
            }
            if !c.a.is_finite() {
                c.a = 0.0;
            }
            if !c.b.is_finite() {
                c.b = 0.0;
            }
            c.x = c.x.clamp(0.0, xmax);
            c.y = c.y.clamp(0.0, ymax);
            c.l = c.l.clamp(0.0, 100.0);
            c.a = c.a.clamp(-128.0, 127.0);
            c.b = c.b.clamp(-128.0, 127.0);
            // NaN != NaN, so a replaced non-finite field also registers
            // as a change here.
            if *c != before {
                repaired += 1;
            }
        }
        repaired
    }

    /// Pixel-perspective assignment: one pool dispatch, then the serial
    /// fold — stripes copy back into the label plane in ascending band
    /// order, SLICO maxima and counters merge the same way.
    fn assign_ppa(
        &mut self,
        subset: Option<u32>,
        preempting: bool,
        recorder: Option<&Recorder>,
        step: u32,
    ) {
        self.refresh_codes();
        let w = self.grid.width();
        let cmd = Cmd::Assign {
            ctx: self.frame_ctx(),
            subset,
            preempting,
        };
        self.poisoned += self.pool.run(cmd);
        self.fold_max.fill(0.0);
        self.band_counters.clear();
        let labels = Arc::make_mut(&mut self.labels);
        for b in 0..self.pool.band_count() {
            let rows = self.pool.bands()[b].clone();
            let slot = self.pool.slot(b);
            labels.as_mut_slice()[rows.start * w..rows.end * w].copy_from_slice(&slot.stripe);
            for (cur, &seen) in self.fold_max.iter_mut().zip(&slot.new_max) {
                *cur = cur.max(seen);
            }
            self.band_counters.push(slot.counters);
        }
        self.merge_adaptive_maxima();
        // Per-band counter partials fold in ascending band order at this
        // serial sync point: the totals depend only on the band layout
        // (a pure function of the image height), never the thread count.
        for part in &self.band_counters {
            self.counters += *part;
        }
        // One 9-center register load per tile processed (paper §4.3); under
        // interleaved subsets every tile is touched each sub-iteration.
        let center_reads = self.grid.cluster_count() as u64 * 9;
        self.counters.center_reads += center_reads;
        if let Some(rec) = recorder {
            for (b, part) in self.band_counters.iter().enumerate() {
                rec.instant(
                    "core.assign.band",
                    LogicalClock::band(step, b as u32),
                    vec![
                        ("pixel_color_reads", Value::U64(part.pixel_color_reads)),
                        ("distance_calcs", Value::U64(part.distance_calcs)),
                        ("label_writes", Value::U64(part.label_writes)),
                    ],
                );
                rec.histogram_observe(
                    "core.band.pixels",
                    &BAND_PIXEL_BOUNDS,
                    part.pixel_color_reads,
                );
            }
            rec.instant(
                "core.assign.step",
                LogicalClock::step(step),
                vec![("center_reads", Value::U64(center_reads))],
            );
        }
    }

    /// Center-perspective assignment: a serial window scan over all
    /// clusters or the subset `k % p == s`, against the persistent
    /// distance buffer.
    fn assign_cpa(&mut self, subset: Option<(u32, u32)>, recorder: Option<&Recorder>, step: u32) {
        self.refresh_codes();
        let (w, h) = (self.grid.width(), self.grid.height());
        let radius = self.grid.spacing().ceil() as isize; // 2S×2S window
        self.fold_max.fill(0.0);
        let labels = Arc::make_mut(&mut self.labels);
        let dist_buffer = &mut self.dist;
        let dctx = DistCtx {
            lab: &self.lab,
            lab8: self.quantized.then_some(&*self.lab8),
            clusters: &self.clusters,
            codes: &self.codes,
            kernel: self.kernel.as_ref(),
            max_dc2: self.max_dc2.as_deref().map(Vec::as_slice),
            m2_over_s2: self.m2_over_s2,
            inv_s2: self.inv_s2,
        };
        let adaptive = dctx.max_dc2.is_some();
        let mut visits = 0u64;
        let mut improvements = 0u64;
        let mut clusters_processed = 0u64;
        for k in 0..dctx.clusters.len() {
            if let Some((p, s)) = subset {
                if k as u32 % p != s {
                    continue;
                }
            }
            if !self.active[k] {
                continue; // preempted: this cluster's window no longer scans
            }
            clusters_processed += 1;
            let cx = dctx.clusters[k].x.round() as isize;
            let cy = dctx.clusters[k].y.round() as isize;
            let x0 = (cx - radius).max(0) as usize;
            let x1 = ((cx + radius) as usize).min(w - 1);
            let y0 = (cy - radius).max(0) as usize;
            let y1 = ((cy + radius) as usize).min(h - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let d = dctx.distance(x, y, k);
                    visits += 1;
                    if d < dist_buffer[(x, y)] {
                        dist_buffer[(x, y)] = d;
                        labels[(x, y)] = k as u32;
                        improvements += 1;
                        if adaptive {
                            let (dc2, _) = dctx.dc2_ds2(x, y, k);
                            self.fold_max[k] = self.fold_max[k].max(dc2);
                        }
                    }
                }
            }
        }
        self.merge_adaptive_maxima();
        self.counters.distance_calcs += visits;
        self.counters.pixel_color_reads += visits;
        self.counters.dist_buffer_reads += visits;
        self.counters.dist_buffer_writes += improvements;
        self.counters.label_writes += improvements;
        self.counters.center_reads += clusters_processed;
        if let Some(rec) = recorder {
            // CPA is a serial window scan (not banded): the whole pass
            // reports as one step-level counter event.
            rec.instant(
                "core.assign.step",
                LogicalClock::step(step),
                vec![
                    ("distance_calcs", Value::U64(visits)),
                    ("pixel_color_reads", Value::U64(visits)),
                    ("dist_buffer_reads", Value::U64(visits)),
                    ("dist_buffer_writes", Value::U64(improvements)),
                    ("label_writes", Value::U64(improvements)),
                    ("center_reads", Value::U64(clusters_processed)),
                ],
            );
        }
    }

    /// Folds the pass's observed per-cluster color-distance maxima
    /// (accumulated in `fold_max`) into the SLICO state — clusters with no
    /// observations keep their previous maximum; a floor of 1.0 avoids
    /// division blow-ups in flat regions.
    fn merge_adaptive_maxima(&mut self) {
        if let Some(max_dc2) = &mut self.max_dc2 {
            let cur = Arc::make_mut(max_dc2);
            for (cur, &seen) in cur.iter_mut().zip(&self.fold_max) {
                if seen > 0.0 {
                    *cur = seen.max(1.0);
                }
            }
        }
    }

    /// Center update: one banded sigma-accumulation dispatch, the
    /// ascending-band fold, then the serial center recomputation. Returns
    /// the mean L1 center movement over the updated clusters.
    fn update_centers(
        &mut self,
        pixel_subset: Option<u32>,
        cluster_subset: Option<(u32, u32)>,
        preemption: Option<f32>,
        recorder: Option<&Recorder>,
        step: u32,
    ) -> f32 {
        let cmd = Cmd::Update {
            ctx: self.frame_ctx(),
            pixel_subset,
            cluster_subset,
        };
        self.poisoned += self.pool.run(cmd);
        // Banded sigma fold in ascending band order: the f64 sums always
        // group the same way — per band, row-major within a band — no
        // matter how many workers executed the bands, which is what makes
        // the result bit-identical across thread counts despite float
        // non-associativity.
        for acc in self.fold_sigma.iter_mut() {
            *acc = [0.0; 6];
        }
        self.band_counters.clear();
        for b in 0..self.pool.band_count() {
            let slot = self.pool.slot(b);
            for (acc, part) in self.fold_sigma.iter_mut().zip(&slot.sigma) {
                for (a, p) in acc.iter_mut().zip(part) {
                    *a += p;
                }
            }
            self.band_counters.push(slot.counters);
        }
        for part in &self.band_counters {
            self.counters += *part;
        }
        // Invariant guard: count conservation across the parallel fold.
        // Every pixel an update band read contributes exactly 1.0 to its
        // cluster's member count, so the folded counts and the band
        // counters must agree; a mismatch means a band handed back
        // partial state (e.g. a poisoned band's stale slot). Integer
        // compare at a serial sync point — bit-identical across thread
        // counts, and exact (member counts are far below 2^53).
        let folded = self
            .fold_sigma
            .iter()
            .map(|acc| acc[5])
            .sum::<f64>() as u64;
        let read: u64 = self.band_counters.iter().map(|c| c.label_reads).sum();
        self.sigma_mismatch += folded.abs_diff(read);
        if let Some(rec) = recorder {
            for (b, part) in self.band_counters.iter().enumerate() {
                rec.instant(
                    "core.update.band",
                    LogicalClock::band(step, b as u32),
                    vec![
                        ("label_reads", Value::U64(part.label_reads)),
                        ("pixel_color_reads", Value::U64(part.pixel_color_reads)),
                        ("sigma_updates", Value::U64(part.sigma_updates)),
                    ],
                );
            }
        }

        let clusters = Arc::make_mut(&mut self.clusters);
        let active = Arc::make_mut(&mut self.active);
        let mut movement = 0.0f32;
        let mut updated = 0u64;
        for (k, acc) in self.fold_sigma.iter().enumerate() {
            if let Some((p, s)) = cluster_subset {
                if k as u32 % p != s {
                    continue;
                }
            }
            if !active[k] {
                continue; // preempted: center is frozen
            }
            if acc[5] == 0.0 {
                continue; // no members seen this step: keep the old center
            }
            let n = acc[5];
            let new = Cluster::new(
                (acc[0] / n) as f32,
                (acc[1] / n) as f32,
                (acc[2] / n) as f32,
                (acc[3] / n) as f32,
                (acc[4] / n) as f32,
            );
            let moved = new.movement_from(&clusters[k]);
            movement += moved;
            clusters[k] = new;
            updated += 1;
            if let Some(threshold) = preemption {
                if moved < threshold {
                    active[k] = false;
                }
            }
        }
        self.counters.center_updates += updated;
        if let Some(rec) = recorder {
            rec.instant(
                "core.update.step",
                LogicalClock::step(step),
                vec![("center_updates", Value::U64(updated))],
            );
        }
        if updated == 0 {
            0.0
        } else {
            movement / updated as f32
        }
    }
}

pub(crate) fn request_dims(request: &SegmentRequest<'_>) -> (usize, usize) {
    match request {
        SegmentRequest::Rgb(img) => (img.width(), img.height()),
        SegmentRequest::Lab(lab) => (lab.width(), lab.height()),
        SegmentRequest::Lab8(lab8) => (lab8.width(), lab8.height()),
    }
}

impl Segmenter {
    /// Runs one segmentation: the canonical one-shot entry point.
    /// `request` names the input representation, `options` carries the
    /// cross-cutting concerns (warm start, fault hooks, recorder).
    ///
    /// Internally this builds a transient [`SegmenterSession`] and runs a
    /// single frame through it — the session API is the engine, so
    /// streaming and one-shot outputs are bit-identical by construction.
    /// For video-rate workloads, hold a session instead and amortize the
    /// setup.
    ///
    /// # Panics
    ///
    /// Panics on any [`SegmentError`] condition — notably a
    /// [`RunOptions::warm_start`] whose length does not match the image's
    /// realized grid ("warm start must carry … clusters").
    pub fn run(&self, request: SegmentRequest<'_>, options: &RunOptions<'_>) -> Segmentation {
        match self.try_run(request, options) {
            Ok(segmentation) => segmentation,
            Err(e) => raise(e),
        }
    }

    /// Fallible twin of [`Segmenter::run`]: every precondition surfaces as
    /// a [`SegmentError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// [`SegmentError::EmptyFrame`] for a zero-sized frame,
    /// [`SegmentError::WarmStartLen`] for a warm start that does not match
    /// the realized grid.
    pub fn try_run(
        &self,
        request: SegmentRequest<'_>,
        options: &RunOptions<'_>,
    ) -> Result<Segmentation, SegmentError> {
        let (w, h) = request_dims(&request);
        let mut session = SegmenterSession::try_new(self.clone(), w, h)?;
        let report = session.frame(request, options, WarmMode::OneShot, Target::Internal)?;
        Ok(session.into_segmentation(report))
    }

    /// Builds a streaming [`SegmenterSession`] for `width × height` frames
    /// from this configuration.
    ///
    /// # Errors
    ///
    /// [`SegmentError::EmptyFrame`] if either dimension is zero.
    pub fn try_session(
        &self,
        width: usize,
        height: usize,
    ) -> Result<SegmenterSession, SegmentError> {
        SegmenterSession::try_new(self.clone(), width, height)
    }

    /// Panicking convenience over [`Segmenter::try_session`].
    ///
    /// # Panics
    ///
    /// Panics on any [`SegmentError`] condition, with the error's
    /// [`std::fmt::Display`] message.
    pub fn session(&self, width: usize, height: usize) -> SegmenterSession {
        SegmenterSession::new(self.clone(), width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlicParams;
    use sslic_image::synthetic::SyntheticImage;

    fn params(k: usize, iters: u32) -> SlicParams {
        SlicParams::builder(k).iterations(iters).build()
    }

    fn frames(n: u64) -> Vec<SyntheticImage> {
        (0..n)
            .map(|i| {
                SyntheticImage::builder(64, 48)
                    .seed(100 + i)
                    .regions(5)
                    .build()
            })
            .collect()
    }

    #[test]
    fn run_into_matches_one_shot_for_every_algorithm() {
        let configs = [
            Segmenter::slic(params(48, 4)),
            Segmenter::slic_ppa(params(48, 4)),
            Segmenter::sslic_ppa(params(48, 4), 2)
                .with_distance_mode(DistanceMode::quantized(8)),
            Segmenter::sslic_cpa(params(48, 4), 2),
        ];
        for seg in configs {
            let mut session = seg.session(64, 48);
            let mut out = Plane::filled(64, 48, 0u32);
            for img in frames(3) {
                let one_shot = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
                let report =
                    session.run_into(SegmentRequest::Rgb(&img.rgb), &RunOptions::new(), &mut out);
                assert_eq!(
                    out.as_slice(),
                    one_shot.labels().as_slice(),
                    "{} labels diverged",
                    seg.algorithm().name()
                );
                assert_eq!(report.counters(), one_shot.counters());
                assert_eq!(report.iterations_run(), one_shot.iterations_run());
                assert_eq!(report.status(), one_shot.status());
            }
        }
    }

    #[test]
    fn auto_warm_matches_explicit_warm_chain() {
        let seg = Segmenter::sslic_ppa(params(60, 5), 2);
        let imgs = frames(3);
        let mut session = seg.session(64, 48);
        // One-shot chain: each frame warm-started from the previous result.
        let mut warm: Option<Vec<Cluster>> = None;
        for img in &imgs {
            let mut options = RunOptions::new();
            if let Some(w) = &warm {
                options = options.with_warm_start(w);
            }
            let one_shot = seg.run(SegmentRequest::Rgb(&img.rgb), &options);
            session.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            assert_eq!(session.labels().as_slice(), one_shot.labels().as_slice());
            assert_eq!(session.clusters(), one_shot.clusters());
            warm = Some(one_shot.clusters().to_vec());
        }
    }

    #[test]
    fn steady_state_frames_report_zero_scratch() {
        let seg = Segmenter::slic_ppa(params(48, 4));
        let mut session = seg.session(64, 48);
        let imgs = frames(3);
        let first = session.run(SegmentRequest::Rgb(&imgs[0].rgb), &RunOptions::new());
        assert!(first.scratch_allocs() > 0, "frame 0 reports the inventory");
        assert!(first.scratch_bytes() > 0);
        for img in &imgs[1..] {
            let report = session.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
            assert_eq!(report.scratch_allocs(), 0);
            assert_eq!(report.scratch_bytes(), 0);
        }
    }

    #[test]
    fn geometry_mismatch_is_an_error_not_a_panic() {
        let seg = Segmenter::slic_ppa(params(48, 3));
        let mut session = seg.session(64, 48);
        let wrong = SyntheticImage::builder(32, 24).seed(1).regions(3).build();
        let err = session
            .try_run(SegmentRequest::Rgb(&wrong.rgb), &RunOptions::new())
            .unwrap_err();
        assert_eq!(
            err,
            SegmentError::GeometryMismatch {
                expected: (64, 48),
                actual: (32, 24),
            }
        );
        // A mis-sized output plane is caught the same way.
        let img = SyntheticImage::builder(64, 48).seed(1).regions(3).build();
        let mut out = Plane::filled(10, 10, 0u32);
        let err = session
            .try_run_into(SegmentRequest::Rgb(&img.rgb), &RunOptions::new(), &mut out)
            .unwrap_err();
        assert!(matches!(err, SegmentError::GeometryMismatch { .. }));
        assert!(err.to_string().contains("session scratch is sized for"));
    }

    #[test]
    fn warm_start_length_mismatch_is_an_error() {
        let seg = Segmenter::slic_ppa(params(48, 3));
        let mut session = seg.session(64, 48);
        let img = SyntheticImage::builder(64, 48).seed(1).regions(3).build();
        let bad = vec![Cluster::default(); 3];
        let err = session
            .try_run(
                SegmentRequest::Rgb(&img.rgb),
                &RunOptions::new().with_warm_start(&bad),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SegmentError::WarmStartLen { actual: 3, .. }
        ));
        assert!(err.to_string().contains("warm start must carry"));
    }

    #[test]
    fn empty_frame_is_an_error() {
        let seg = Segmenter::slic_ppa(params(48, 3));
        assert_eq!(
            SegmenterSession::try_new(seg, 0, 48).unwrap_err(),
            SegmentError::EmptyFrame {
                width: 0,
                height: 48
            }
        );
    }

    #[test]
    fn try_run_is_fallible_one_shot() {
        let img = SyntheticImage::builder(64, 48).seed(7).regions(4).build();
        let seg = Segmenter::slic(params(48, 3));
        let ok = seg
            .try_run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new())
            .expect("valid request segments");
        assert_eq!(ok.labels().len(), 64 * 48);
        let bad = vec![Cluster::default(); 5];
        let err = seg
            .try_run(
                SegmentRequest::Rgb(&img.rgb),
                &RunOptions::new().with_warm_start(&bad),
            )
            .unwrap_err();
        assert!(matches!(err, SegmentError::WarmStartLen { .. }));
    }

    #[test]
    fn session_respects_explicit_warm_start_override() {
        let seg = Segmenter::slic_ppa(params(48, 4));
        let imgs = frames(2);
        let cold = seg.run(SegmentRequest::Rgb(&imgs[0].rgb), &RunOptions::new());
        let warmed_one_shot = seg.run(
            SegmentRequest::Rgb(&imgs[1].rgb),
            &RunOptions::new().with_warm_start(cold.clusters()),
        );
        let mut session = seg.session(64, 48);
        let mut out = Plane::filled(64, 48, 0u32);
        session.run_into(
            SegmentRequest::Rgb(&imgs[1].rgb),
            &RunOptions::new().with_warm_start(cold.clusters()),
            &mut out,
        );
        assert_eq!(out.as_slice(), warmed_one_shot.labels().as_slice());
    }
}
