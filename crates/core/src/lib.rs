//! SLIC and Subsampled SLIC (S-SLIC) superpixel segmentation.
//!
//! This crate implements the paper's primary contribution and its baseline:
//!
//! * **SLIC** (Achanta et al.) in its original *center-perspective* form
//!   (each superpixel scans a `2S×2S` window — [`Algorithm::SlicCpa`]) and
//!   the gSLIC-style *pixel-perspective* form (each pixel considers its 9
//!   nearest initial centers — [`Algorithm::SlicPpa`]).
//! * **S-SLIC**, the paper's subsampled variant: the image pixels (PPA) or
//!   the superpixel centers (CPA) are split into equal subsets traversed
//!   round-robin, so each center-update step touches only a fraction of the
//!   data while converging almost as fast per step
//!   ([`Algorithm::SSlicPpa`] / [`Algorithm::SSlicCpa`]).
//! * A **quantized datapath** ([`DistanceMode::Quantized`]) reproducing the
//!   accelerator's reduced-precision distance pipeline for the paper's
//!   §6.1 bit-width exploration.
//! * **Instrumentation**: per-phase wall-clock breakdown (Table 1) and
//!   analytic operation/memory-traffic accounting (Table 2).
//! * **Streaming sessions** ([`SegmenterSession`]): a persistent per-frame
//!   scratch arena + parked worker pool for video pipelines — zero heap
//!   allocations per steady-state frame, bit-identical to the one-shot
//!   [`Segmenter::run`].
//!
//! # Quickstart
//!
//! ```
//! use sslic_core::{RunOptions, SegmentRequest, Segmenter, SlicParams};
//! use sslic_image::synthetic::SyntheticImage;
//!
//! let img = SyntheticImage::builder(96, 64).seed(1).regions(6).build();
//! let params = SlicParams::builder(150).compactness(10.0).iterations(4).build();
//! let seg = Segmenter::sslic_ppa(params, 2)
//!     .run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
//! assert_eq!(seg.labels().width(), 96);
//! assert!(seg.cluster_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod cluster;
mod connectivity;
mod distance;
mod engine;
mod fleet;
mod grid;
mod kernel;
mod parallel;
mod params;
mod recovery;
mod session;

pub mod features;
pub mod graph;
pub mod instrument;
pub mod profile;
pub mod report;
pub mod subsample;

/// The observability layer (re-exported so downstream crates reach the
/// [`obs::Recorder`] and [`obs::RunReport`] without a direct dependency).
pub use sslic_obs as obs;

pub use cluster::{init_clusters, Cluster};
pub use connectivity::{
    compact_labels, component_sizes, enforce_connectivity, enforce_connectivity_with, ConnScratch,
};
pub use distance::{dist2_float, ClusterCodes, DistanceMode, QuantKernel};
pub use engine::{
    Algorithm, RunOptions, SegmentRequest, Segmentation, SegmentationStatus, Segmenter, StepFaults,
};
pub use fleet::{
    label_checksum, serve, write_wire_close, write_wire_frame, write_wire_stats, FleetConfig,
    FleetConfigBuilder, FleetError, FleetStats, ServeOptions, ServeSummary, SessionFleet,
    StreamFrame, StreamId, StreamStats, WIRE_CLOSE, WIRE_FRAME, WIRE_MAX_PAYLOAD, WIRE_STATS,
};
pub use grid::SeedGrid;
pub use kernel::Kernel;
pub use params::{ParamError, SlicParams, SlicParamsBuilder};
pub use recovery::{
    center_checksum, GuardVerdict, RecoveryAction, RecoveryOutcome, RecoveryPolicy, RecoveryReport,
};
pub use report::{build_run_report, report_recovery};
pub use session::{FrameReport, SegmentError, SegmenterSession};
