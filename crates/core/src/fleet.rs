//! Multi-stream session fleets: admission control, deterministic
//! round-robin slot binding, frame-level batch parallelism, and the
//! length-prefixed `serve` wire protocol.
//!
//! A [`SessionFleet`] owns a pool of pre-built [`SegmenterSession`]s
//! (*slots*), all sharing one [`Segmenter`] configuration and one frame
//! geometry. Independent video streams, keyed by [`StreamId`], are bound
//! to slots on first use by a deterministic round-robin scan; a bound
//! stream keeps its slot — and therefore its warm-start center state —
//! until [`SessionFleet::close`] releases it. When every slot is bound,
//! admission fails with [`FleetError::Saturated`] backpressure; a bounded
//! queue ([`SessionFleet::try_enqueue`], capacity
//! [`FleetConfig::queue_depth`]) can park frames until a slot frees.
//!
//! The fleet upholds the contracts of the layers beneath it:
//!
//! * **Bit-identity** — every stream's frames run through an ordinary
//!   session, so a fleet-run stream is bit-identical to a standalone
//!   session fed the same frames, at any thread count and whether frames
//!   arrive one at a time ([`SessionFleet::run`]), batched
//!   ([`SessionFleet::run_batch`]), or over the wire ([`serve`]). Slot
//!   rebinding calls [`SegmenterSession::reset`], so a recycled slot
//!   seeds cold exactly like a fresh session.
//! * **Zero steady-state allocations** — admission is a linear scan over
//!   preallocated slots and per-frame bookkeeping is scalar, so a
//!   steady-state fleet frame allocates nothing (pinned in
//!   `tests/zero_alloc.rs`). The opt-in frame-parallel batch path and the
//!   queue (which owns its parked images) are documented exceptions off
//!   the per-frame steady path.
//! * **Independent healing** — recovery state lives inside each slot's
//!   session, so a recovery-armed stream rolls back and retries without
//!   perturbing its neighbors.
//!
//! Frame-level parallelism ([`FleetConfig::frame_workers`] > 1) runs
//! *different slots* on scoped worker threads during
//! [`SessionFleet::run_batch`]. Each slot's frames still execute in input
//! order on one thread, and slots share no mutable state, so the batch
//! output is bit-identical to the sequential schedule by construction.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::time::Instant;

use sslic_image::{ppm, Plane, RgbImage};
use sslic_obs::sink::escape_json;
use sslic_obs::telemetry::{self, LatencyHistogram};
use sslic_obs::{MetricsRegistry, Recorder, ReportFleet, RunReport, TelemetrySnapshot};

use crate::cluster::Cluster;
use crate::engine::{
    RunOptions, Segmentation, SegmentationStatus, SegmentRequest, Segmenter,
};
use crate::kernel::Kernel;
use crate::recovery::RecoveryPolicy;
use crate::session::{raise, request_dims, FrameReport, SegmentError, SegmenterSession};

/// Identifies one logical video stream within a fleet. Plain `u64`
/// newtype: callers mint the IDs (connection numbers, camera indices);
/// the fleet only compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One frame of a batch: which stream it belongs to and its pixels.
#[derive(Debug, Clone, Copy)]
pub struct StreamFrame<'a> {
    /// The stream this frame extends.
    pub stream: StreamId,
    /// The frame's pixels, in any of the engine's input representations.
    pub request: SegmentRequest<'a>,
}

impl<'a> StreamFrame<'a> {
    /// Pairs a stream with one frame of input.
    pub fn new(stream: StreamId, request: SegmentRequest<'a>) -> Self {
        StreamFrame { stream, request }
    }
}

/// Why the fleet refused an operation. Folded into the unified error
/// hierarchy as [`SegmentError::Fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// Every slot is bound to a live stream; the new stream cannot be
    /// admitted until one closes.
    Saturated {
        /// Streams currently bound to slots.
        streams: usize,
        /// Total slots in the fleet.
        slots: usize,
    },
    /// The admission queue is at its configured capacity.
    QueueFull {
        /// Configured queue depth ([`FleetConfig::queue_depth`]).
        depth: usize,
    },
    /// A [`FleetConfig`] requested zero slots.
    ZeroSlots,
    /// A [`FleetConfig`] requested zero frame workers.
    ZeroWorkers,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Saturated { streams, slots } => write!(
                f,
                "all {slots} fleet slots are bound ({streams} active streams); \
                 close a stream or configure more slots"
            ),
            FleetError::QueueFull { depth } => {
                write!(f, "fleet admission queue is full at its depth of {depth}")
            }
            FleetError::ZeroSlots => write!(f, "a session fleet needs at least one slot"),
            FleetError::ZeroWorkers => {
                write!(f, "a session fleet needs at least one frame worker")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<FleetError> for SegmentError {
    fn from(e: FleetError) -> Self {
        SegmentError::Fleet(e)
    }
}

/// Sizing of a [`SessionFleet`]: slot count, admission-queue depth, and
/// the frame-parallel worker count. Built via [`FleetConfig::builder`];
/// the builder validates, so every constructed config is well-formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    slots: usize,
    queue_depth: usize,
    frame_workers: usize,
    wallclock_latency: bool,
    kernel: Option<Kernel>,
}

impl Default for FleetConfig {
    /// One slot, no queue, sequential batches — the single-stream shape.
    fn default() -> Self {
        FleetConfig {
            slots: 1,
            queue_depth: 0,
            frame_workers: 1,
            wallclock_latency: false,
            kernel: None,
        }
    }
}

impl FleetConfig {
    /// Starts a builder at the default sizing (1 slot, no queue,
    /// sequential batches).
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            slots: 1,
            queue_depth: 0,
            frame_workers: 1,
            wallclock_latency: false,
            kernel: None,
        }
    }

    /// Session slots (maximum concurrently bound streams).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Admission-queue capacity (0 disables queueing).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Scoped worker threads used by the batch API (1 = run batches on
    /// the calling thread).
    pub fn frame_workers(&self) -> usize {
        self.frame_workers
    }

    /// Whether latency histograms record wall-clock nanoseconds (see
    /// [`FleetConfig::with_wallclock_latency`]).
    pub fn wallclock_latency(&self) -> bool {
        self.wallclock_latency
    }

    /// Toggles the unit of the fleet's latency telemetry: off (default),
    /// frame latency is the frame's exact deterministic cost in
    /// distance-evaluation units and queue wait is fleet frames elapsed —
    /// both byte-reproducible; on, both record wall-clock nanoseconds.
    /// Safe to toggle on a built config: it changes no sizing invariant.
    pub fn with_wallclock_latency(mut self, on: bool) -> Self {
        self.wallclock_latency = on;
        self
    }

    /// Fleet-wide assign-kernel preference (see
    /// [`FleetConfig::with_kernel`]). `None` defers to each run's
    /// [`RunOptions`](crate::RunOptions) / params resolution.
    pub fn kernel(&self) -> Option<Kernel> {
        self.kernel
    }

    /// Sets a fleet-wide assign-kernel preference applied to every frame
    /// whose [`RunOptions::kernel`](crate::RunOptions::kernel) is unset.
    /// Like every kernel knob this never changes the labels — all
    /// backends are bit-identical. Safe to toggle on a built config: it
    /// changes no sizing invariant.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }
}

/// Builder for [`FleetConfig`] (`with_*` chaining, validated by
/// [`FleetConfigBuilder::try_build`]).
#[derive(Debug, Clone, Copy)]
pub struct FleetConfigBuilder {
    slots: usize,
    queue_depth: usize,
    frame_workers: usize,
    wallclock_latency: bool,
    kernel: Option<Kernel>,
}

impl FleetConfigBuilder {
    /// Sets the slot count (see [`FleetConfig::slots`]).
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the admission-queue capacity (see
    /// [`FleetConfig::queue_depth`]).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the batch worker count (see [`FleetConfig::frame_workers`]).
    pub fn with_frame_workers(mut self, workers: usize) -> Self {
        self.frame_workers = workers;
        self
    }

    /// Switches latency telemetry to wall-clock nanoseconds (see
    /// [`FleetConfig::with_wallclock_latency`]).
    pub fn with_wallclock_latency(mut self, on: bool) -> Self {
        self.wallclock_latency = on;
        self
    }

    /// Sets a fleet-wide assign-kernel preference (see
    /// [`FleetConfig::with_kernel`]).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Validates and builds the config.
    ///
    /// # Errors
    ///
    /// [`FleetError::ZeroSlots`] / [`FleetError::ZeroWorkers`] when the
    /// corresponding count is zero.
    pub fn try_build(self) -> Result<FleetConfig, FleetError> {
        if self.slots == 0 {
            return Err(FleetError::ZeroSlots);
        }
        if self.frame_workers == 0 {
            return Err(FleetError::ZeroWorkers);
        }
        Ok(FleetConfig {
            slots: self.slots,
            queue_depth: self.queue_depth,
            frame_workers: self.frame_workers,
            wallclock_latency: self.wallclock_latency,
            kernel: self.kernel,
        })
    }

    /// Panicking convenience over [`FleetConfigBuilder::try_build`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FleetError`] condition, with the error's
    /// [`std::fmt::Display`] message.
    pub fn build(self) -> FleetConfig {
        match self.try_build() {
            Ok(config) => config,
            Err(e) => {
                assert!(false, "{e}");
                unreachable!()
            }
        }
    }
}

/// log2 exponent range of the frame-latency histograms: boundaries
/// `[2^8 … 2^36]` cover both deterministic cost units (distance
/// evaluations per frame, ~10^5–10^7) and wall-clock nanoseconds
/// (~10^5–10^10) in one fixed layout, so the report schema never depends
/// on the telemetry mode.
const FRAME_LATENCY_EXP: (u32, u32) = (8, 36);

/// log2 exponent range of the queue-wait histogram: `[2^0 … 2^36]` spans
/// single-frame deterministic waits up to tens of wall-clock seconds.
const QUEUE_WAIT_EXP: (u32, u32) = (0, 36);

/// One fleet slot: a session plus the stream bound to it (if any) and its
/// per-stream tallies.
struct Slot {
    session: SegmenterSession,
    stream: Option<StreamId>,
    frames: u64,
    recovered: u64,
    /// Per-stream frame-latency histogram; reset on rebind along with the
    /// session, so it describes exactly the currently bound stream.
    latency: LatencyHistogram,
}

/// One queued frame awaiting a slot. The queue owns the pixels: by the
/// time the frame becomes admissible the caller's borrow is long gone.
struct Pending {
    stream: StreamId,
    image: RgbImage,
    /// Fleet frame counter at enqueue time — the deterministic queue-wait
    /// clock (wait = frames segmented while parked).
    enqueued_frame: u64,
    /// Wall-clock enqueue stamp, present only in wallclock-latency mode.
    enqueued_at: Option<Instant>,
}

/// Fleet-level totals (see [`SessionFleet::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Frames segmented across all streams.
    pub frames: u64,
    /// Frames whose status was [`SegmentationStatus::Recovered`].
    pub recovered: u64,
    /// Stream-to-slot bindings performed.
    pub admitted: u64,
    /// Admission rejections (saturated fleet or full queue).
    pub rejected: u64,
    /// Frames currently parked in the queue.
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub queued_peak: u64,
    /// Streams currently bound to slots.
    pub active_streams: u64,
    /// Streams unbound via [`SessionFleet::close`].
    pub closed: u64,
}

/// Per-stream tallies (see [`SessionFleet::stream_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Frames this stream segmented since it was (re)bound.
    pub frames: u64,
    /// Of those, frames that healed via recovery.
    pub recovered: u64,
}

/// A pool of pre-warmed [`SegmenterSession`]s serving many concurrent
/// streams: per-stream warm-start state, deterministic round-robin
/// admission, explicit backpressure, and a frame-parallel batch API.
///
/// # Example
///
/// ```
/// use sslic_core::{
///     FleetConfig, RunOptions, SegmentRequest, Segmenter, SessionFleet, SlicParams, StreamId,
/// };
/// use sslic_image::synthetic::SyntheticImage;
///
/// let seg = Segmenter::sslic_ppa(SlicParams::builder(80).iterations(4).build(), 2);
/// let cfg = FleetConfig::builder().with_slots(2).try_build().unwrap();
/// let mut fleet = SessionFleet::new(&seg, 64, 48, cfg);
/// for frame in 0..3 {
///     for cam in 0..2u64 {
///         let img = SyntheticImage::builder(64, 48)
///             .seed(cam * 100 + frame)
///             .regions(5)
///             .build();
///         fleet.run(StreamId(cam), SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
///     }
/// }
/// assert_eq!(fleet.stats().frames, 6);
/// assert_eq!(fleet.stream_stats(StreamId(1)).unwrap().frames, 3);
/// ```
pub struct SessionFleet {
    config: Segmenter,
    fleet: FleetConfig,
    width: usize,
    height: usize,
    slots: Vec<Slot>,
    /// Round-robin cursor: the slot index where the next free-slot scan
    /// starts. A pure function of the admission history, never of timing.
    next_slot: usize,
    queue: VecDeque<Pending>,
    queued_peak: u64,
    admitted: u64,
    rejected: u64,
    frames: u64,
    recovered: u64,
    closed: u64,
    /// Fleet-wide frame-latency histogram (deterministic cost units, or
    /// wall-clock nanos under [`FleetConfig::wallclock_latency`]).
    frame_latency: LatencyHistogram,
    /// Fleet-wide queue-wait histogram (frames waited, or wall-clock
    /// nanos).
    queue_wait: LatencyHistogram,
}

impl std::fmt::Debug for SessionFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionFleet")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("slots", &self.slots.len())
            .field("active_streams", &self.active_streams())
            .field("frames", &self.frames)
            .finish_non_exhaustive()
    }
}

impl SessionFleet {
    /// Builds a fleet of `fleet.slots()` sessions for `width × height`
    /// frames, each with the full per-frame scratch inventory of a
    /// standalone session.
    ///
    /// # Errors
    ///
    /// [`SegmentError::EmptyFrame`] if either dimension is zero.
    pub fn try_new(
        config: &Segmenter,
        width: usize,
        height: usize,
        fleet: FleetConfig,
    ) -> Result<SessionFleet, SegmentError> {
        let mut slots = Vec::with_capacity(fleet.slots);
        for _ in 0..fleet.slots {
            slots.push(Slot {
                session: SegmenterSession::try_new(config.clone(), width, height)?,
                stream: None,
                frames: 0,
                recovered: 0,
                latency: LatencyHistogram::log2(FRAME_LATENCY_EXP.0, FRAME_LATENCY_EXP.1),
            });
        }
        Ok(SessionFleet {
            config: config.clone(),
            fleet,
            width,
            height,
            slots,
            next_slot: 0,
            queue: VecDeque::with_capacity(fleet.queue_depth),
            queued_peak: 0,
            admitted: 0,
            rejected: 0,
            frames: 0,
            recovered: 0,
            closed: 0,
            frame_latency: LatencyHistogram::log2(FRAME_LATENCY_EXP.0, FRAME_LATENCY_EXP.1),
            queue_wait: LatencyHistogram::log2(QUEUE_WAIT_EXP.0, QUEUE_WAIT_EXP.1),
        })
    }

    /// Panicking convenience over [`SessionFleet::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on any [`SegmentError`] condition, with the error's
    /// [`std::fmt::Display`] message.
    pub fn new(config: &Segmenter, width: usize, height: usize, fleet: FleetConfig) -> SessionFleet {
        match SessionFleet::try_new(config, width, height, fleet) {
            Ok(f) => f,
            Err(e) => raise(e),
        }
    }

    /// Frame width every slot is bound to.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height every slot is bound to.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The segmentation configuration all slots share.
    pub fn config(&self) -> &Segmenter {
        &self.config
    }

    /// The fleet sizing this pool was built with.
    pub fn fleet_config(&self) -> FleetConfig {
        self.fleet
    }

    fn active_streams(&self) -> usize {
        self.slots.iter().filter(|s| s.stream.is_some()).count()
    }

    /// The slot index `stream` is bound to, if any. Linear scan over the
    /// (small, preallocated) slot table — deterministic and
    /// allocation-free, unlike a hash map.
    fn slot_of(&self, stream: StreamId) -> Option<usize> {
        self.slots.iter().position(|s| s.stream == Some(stream))
    }

    /// Whether a frame for `stream` would be admitted right now (already
    /// bound, or a free slot exists).
    pub fn admissible(&self, stream: StreamId) -> bool {
        self.slot_of(stream).is_some() || self.slots.iter().any(|s| s.stream.is_none())
    }

    /// Binds `stream` to a slot, or returns its existing binding. New
    /// bindings scan free slots round-robin from the cursor; the chosen
    /// slot's session is [`SegmenterSession::reset`] so the new stream
    /// seeds cold instead of inheriting the departed stream's centers.
    fn admit(&mut self, stream: StreamId) -> Result<usize, FleetError> {
        if let Some(i) = self.slot_of(stream) {
            return Ok(i);
        }
        let n = self.slots.len();
        for k in 0..n {
            let i = (self.next_slot + k) % n;
            if self.slots[i].stream.is_none() {
                let slot = &mut self.slots[i];
                slot.stream = Some(stream);
                slot.frames = 0;
                slot.recovered = 0;
                slot.latency.reset();
                slot.session.reset();
                self.next_slot = (i + 1) % n;
                self.admitted += 1;
                return Ok(i);
            }
        }
        Err(FleetError::Saturated {
            streams: self.active_streams(),
            slots: n,
        })
    }

    /// Books a rejected admission: the fleet tally, and the
    /// `fleet.rejected` trace counter when a recorder is attached.
    fn note_rejected(&mut self, recorder: Option<&Recorder>) {
        self.rejected += 1;
        if let Some(rec) = recorder {
            rec.counter_add("fleet.rejected", 1);
        }
    }

    /// Books one finished frame into the fleet and per-stream tallies,
    /// the latency histograms, and the `fleet.*` trace counters when a
    /// recorder is attached. Allocation-free (it sits on the
    /// `try_run` hot path).
    fn note(&mut self, slot: usize, report: &FrameReport, latency: u64, recorder: Option<&Recorder>) {
        self.frames += 1;
        self.slots[slot].frames += 1;
        self.frame_latency.observe(latency);
        self.slots[slot].latency.observe(latency);
        let recovered = report.status() == SegmentationStatus::Recovered;
        if recovered {
            self.recovered += 1;
            self.slots[slot].recovered += 1;
        }
        if let Some(rec) = recorder {
            rec.counter_add("fleet.frames", 1);
            if recovered {
                rec.counter_add("fleet.recovered", 1);
            }
        }
    }

    /// The latency of one finished frame in the configured unit: elapsed
    /// wall-clock nanoseconds when a start stamp exists
    /// ([`FleetConfig::wallclock_latency`]), otherwise the frame's exact
    /// deterministic cost in distance-evaluation units.
    fn frame_latency_of(started: Option<Instant>, report: &FrameReport) -> u64 {
        match started {
            Some(t) => u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => report.counters().distance_calcs,
        }
    }

    /// The caller's options with the fleet-wide kernel preference folded
    /// in: a per-run [`RunOptions::kernel`] always wins, then
    /// [`FleetConfig::with_kernel`], then the params-level default.
    fn effective_options<'a>(&self, options: &RunOptions<'a>) -> RunOptions<'a> {
        let mut opts = *options;
        if opts.kernel.is_none() {
            opts.kernel = self.fleet.kernel;
        }
        opts
    }

    /// Segments one frame of `stream`, admitting the stream first if it
    /// has no slot yet. Bit-identical to running the same frames through
    /// a standalone session; allocation-free in steady state.
    ///
    /// # Errors
    ///
    /// [`SegmentError::Fleet`] ([`FleetError::Saturated`]) when no slot
    /// is free, plus every per-frame error of
    /// [`SegmenterSession::try_run`].
    pub fn try_run(
        &mut self,
        stream: StreamId,
        request: SegmentRequest<'_>,
        options: &RunOptions<'_>,
    ) -> Result<FrameReport, SegmentError> {
        let slot = match self.admit(stream) {
            Ok(i) => i,
            Err(e) => {
                self.note_rejected(options.recorder);
                return Err(SegmentError::Fleet(e));
            }
        };
        let started = self.fleet.wallclock_latency.then(Instant::now);
        let opts = self.effective_options(options);
        let report = self.slots[slot].session.try_run(request, &opts)?;
        let latency = Self::frame_latency_of(started, &report);
        self.note(slot, &report, latency, options.recorder);
        Ok(report)
    }

    /// Panicking convenience over [`SessionFleet::try_run`].
    ///
    /// # Panics
    ///
    /// Panics on any [`SegmentError`] condition, with the error's
    /// [`std::fmt::Display`] message.
    pub fn run(
        &mut self,
        stream: StreamId,
        request: SegmentRequest<'_>,
        options: &RunOptions<'_>,
    ) -> FrameReport {
        match self.try_run(stream, request, options) {
            Ok(report) => report,
            Err(e) => raise(e),
        }
    }

    /// Segments a batch of frames (possibly spanning many streams) into a
    /// caller-owned report vector, reusing its capacity — a steady-state
    /// batch through a warm `out` performs zero heap allocations on the
    /// default sequential schedule.
    ///
    /// The batch is all-or-nothing at admission: every frame's geometry,
    /// the warm-start length, and every stream's admission are validated
    /// before any frame runs, so an error never leaves partial output in
    /// `out` (streams admitted by a failed pre-pass do stay admitted).
    ///
    /// With [`FleetConfig::frame_workers`] > 1 and neither fault hooks
    /// nor a recorder attached, slots execute on scoped worker threads —
    /// each slot's frames still run in input order on a single thread, so
    /// the reports and every session's state are bit-identical to the
    /// sequential schedule. Fault hooks and recorders force the
    /// sequential path (their hooks are not shareable across threads, and
    /// a shared recorder would interleave trace events
    /// nondeterministically).
    ///
    /// # Errors
    ///
    /// Everything [`SessionFleet::try_run`] can return; on error `out` is
    /// left empty.
    pub fn try_run_batch_into(
        &mut self,
        frames: &[StreamFrame<'_>],
        options: &RunOptions<'_>,
        out: &mut Vec<FrameReport>,
    ) -> Result<(), SegmentError> {
        out.clear();
        let (w, h) = (self.width, self.height);
        for f in frames {
            let actual = request_dims(&f.request);
            if actual != (w, h) {
                return Err(SegmentError::GeometryMismatch {
                    expected: (w, h),
                    actual,
                });
            }
        }
        if let Some(warm) = options.warm_start {
            // All slots share one geometry, hence one realized grid.
            let expected = self.slots[0].session.clusters().len();
            if warm.len() != expected {
                return Err(SegmentError::WarmStartLen {
                    expected,
                    actual: warm.len(),
                });
            }
        }
        for f in frames {
            if let Err(e) = self.admit(f.stream) {
                self.note_rejected(options.recorder);
                return Err(SegmentError::Fleet(e));
            }
        }

        let parallel = self.fleet.frame_workers > 1
            && options.faults.is_none()
            && options.recorder.is_none()
            && frames.len() > 1;
        if !parallel {
            for f in frames {
                let slot = match self.admit(f.stream) {
                    Ok(i) => i,
                    // Unreachable: the pre-pass admitted every stream.
                    Err(e) => raise(SegmentError::Fleet(e)),
                };
                let started = self.fleet.wallclock_latency.then(Instant::now);
                let opts = self.effective_options(options);
                let report = self.slots[slot].session.try_run(f.request, &opts)?;
                let latency = Self::frame_latency_of(started, &report);
                self.note(slot, &report, latency, options.recorder);
                out.push(report);
            }
            return Ok(());
        }

        // Frame-parallel path: deal the active slots round-robin across
        // worker bins; each worker owns its slots exclusively and runs
        // their frames in input order. The per-batch plan/bin vectors
        // allocate — this opt-in path trades the zero-alloc contract for
        // wall-clock, which is why `frame_workers` defaults to 1.
        let mut jobs: Vec<Vec<usize>> = self.slots.iter().map(|_| Vec::new()).collect();
        for (i, f) in frames.iter().enumerate() {
            if let Some(slot) = self.slot_of(f.stream) {
                jobs[slot].push(i);
            }
        }
        let workers = self.fleet.frame_workers;
        let warm = options.warm_start;
        let recovery = options.recovery;
        let kernel = options.kernel.or(self.fleet.kernel);
        let wallclock = self.fleet.wallclock_latency;
        let mut bins: Vec<Vec<(&mut Slot, Vec<usize>)>> = (0..workers).map(|_| Vec::new()).collect();
        for (bin, work) in self
            .slots
            .iter_mut()
            .zip(jobs)
            .filter(|(_, idxs)| !idxs.is_empty())
            .enumerate()
        {
            bins[bin % workers].push(work);
        }
        let mut merged: Vec<(usize, FrameReport, u64)> = Vec::with_capacity(frames.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for bin in bins {
                if bin.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    let mut done: Vec<(usize, FrameReport, u64)> = Vec::new();
                    for (slot, idxs) in bin {
                        for i in idxs {
                            // Rebuilt from the Sync parts of the caller's
                            // options (hooks were excluded above).
                            let mut opts = RunOptions::new();
                            if let Some(ws) = warm {
                                opts = opts.with_warm_start(ws);
                            }
                            if let Some(p) = recovery {
                                opts = opts.with_recovery(p);
                            }
                            if let Some(k) = kernel {
                                opts = opts.with_kernel(k);
                            }
                            let started = wallclock.then(Instant::now);
                            match slot.session.try_run(frames[i].request, &opts) {
                                Ok(report) => {
                                    let latency = Self::frame_latency_of(started, &report);
                                    slot.frames += 1;
                                    slot.latency.observe(latency);
                                    if report.status() == SegmentationStatus::Recovered {
                                        slot.recovered += 1;
                                    }
                                    done.push((i, report, latency));
                                }
                                // Unreachable: geometry, warm-start
                                // length, and admission were validated
                                // before dispatch.
                                Err(e) => raise(e),
                            }
                        }
                    }
                    done
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(part) => merged.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        // Reports return in input order regardless of worker scheduling —
        // and the fleet-wide histogram folds in that same order, so the
        // telemetry bytes match the sequential schedule too.
        merged.sort_unstable_by_key(|(i, _, _)| *i);
        for (_, report, latency) in merged {
            self.frames += 1;
            self.frame_latency.observe(latency);
            if report.status() == SegmentationStatus::Recovered {
                self.recovered += 1;
            }
            out.push(report);
        }
        Ok(())
    }

    /// Allocating convenience over [`SessionFleet::try_run_batch_into`].
    ///
    /// # Errors
    ///
    /// See [`SessionFleet::try_run_batch_into`].
    pub fn try_run_batch(
        &mut self,
        frames: &[StreamFrame<'_>],
        options: &RunOptions<'_>,
    ) -> Result<Vec<FrameReport>, SegmentError> {
        let mut out = Vec::with_capacity(frames.len());
        self.try_run_batch_into(frames, options, &mut out)?;
        Ok(out)
    }

    /// Panicking convenience over [`SessionFleet::try_run_batch`].
    ///
    /// # Panics
    ///
    /// Panics on any [`SegmentError`] condition, with the error's
    /// [`std::fmt::Display`] message.
    pub fn run_batch(
        &mut self,
        frames: &[StreamFrame<'_>],
        options: &RunOptions<'_>,
    ) -> Vec<FrameReport> {
        match self.try_run_batch(frames, options) {
            Ok(reports) => reports,
            Err(e) => raise(e),
        }
    }

    /// Parks one frame in the admission queue (the backpressure relief
    /// valve for a saturated fleet). Returns the queue depth after the
    /// push. The queue owns the image; frames leave it in arrival order
    /// via [`SessionFleet::pop_admissible`] / [`SessionFleet::drain`].
    ///
    /// # Errors
    ///
    /// [`SegmentError::GeometryMismatch`] for a mis-sized frame;
    /// [`SegmentError::Fleet`] ([`FleetError::QueueFull`]) at capacity —
    /// which also counts as an admission rejection in
    /// [`SessionFleet::stats`].
    pub fn try_enqueue(
        &mut self,
        stream: StreamId,
        image: RgbImage,
    ) -> Result<usize, SegmentError> {
        let actual = (image.width(), image.height());
        if actual != (self.width, self.height) {
            return Err(SegmentError::GeometryMismatch {
                expected: (self.width, self.height),
                actual,
            });
        }
        if self.queue.len() >= self.fleet.queue_depth {
            self.rejected += 1;
            return Err(SegmentError::Fleet(FleetError::QueueFull {
                depth: self.fleet.queue_depth,
            }));
        }
        self.queue.push_back(Pending {
            stream,
            image,
            enqueued_frame: self.frames,
            enqueued_at: self.fleet.wallclock_latency.then(Instant::now),
        });
        self.queued_peak = self.queued_peak.max(self.queue.len() as u64);
        Ok(self.queue.len())
    }

    /// Removes and returns the first queued frame that could run right
    /// now (its stream is bound, or a slot is free). Other frames keep
    /// their arrival order. The frame's queue wait — fleet frames
    /// segmented while it was parked, or elapsed nanos in
    /// wallclock-latency mode — lands in the queue-wait histogram.
    pub fn pop_admissible(&mut self) -> Option<(StreamId, RgbImage)> {
        let at = self
            .queue
            .iter()
            .position(|p| self.admissible(p.stream))?;
        let p = self.queue.remove(at)?;
        let wait = match p.enqueued_at {
            Some(t) => u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => self.frames.saturating_sub(p.enqueued_frame),
        };
        self.queue_wait.observe(wait);
        Some((p.stream, p.image))
    }

    /// Runs every currently admissible queued frame (in arrival order,
    /// re-checking admissibility as slots bind), handing each report to
    /// `sink`. Returns the number of frames drained.
    ///
    /// # Errors
    ///
    /// Propagates the first per-frame error; already-drained frames stay
    /// drained.
    pub fn drain(
        &mut self,
        options: &RunOptions<'_>,
        mut sink: impl FnMut(StreamId, FrameReport),
    ) -> Result<u64, SegmentError> {
        let mut drained = 0u64;
        while let Some((stream, image)) = self.pop_admissible() {
            let report = self.try_run(stream, SegmentRequest::Rgb(&image), options)?;
            sink(stream, report);
            drained += 1;
        }
        Ok(drained)
    }

    /// Unbinds `stream`, freeing its slot for the next admission. Returns
    /// whether the stream was bound. Queued frames of the stream stay
    /// queued (they re-admit into a free slot on the next drain).
    pub fn close(&mut self, stream: StreamId) -> bool {
        match self.slot_of(stream) {
            Some(i) => {
                self.slots[i].stream = None;
                self.closed += 1;
                true
            }
            None => false,
        }
    }

    /// Fleet-level totals since construction.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            frames: self.frames,
            recovered: self.recovered,
            admitted: self.admitted,
            rejected: self.rejected,
            queue_depth: self.queue.len() as u64,
            queued_peak: self.queued_peak,
            active_streams: self.active_streams() as u64,
            closed: self.closed,
        }
    }

    /// The fleet-wide frame-latency histogram (unit per
    /// [`FleetConfig::wallclock_latency`]).
    pub fn frame_latency(&self) -> &LatencyHistogram {
        &self.frame_latency
    }

    /// The fleet-wide queue-wait histogram.
    pub fn queue_wait(&self) -> &LatencyHistogram {
        &self.queue_wait
    }

    /// The per-stream frame-latency histogram, if the stream is bound.
    pub fn stream_latency(&self, stream: StreamId) -> Option<&LatencyHistogram> {
        self.slot_of(stream).map(|i| &self.slots[i].latency)
    }

    /// Deterministic p50/p90/p99 estimates of the fleet-wide frame
    /// latency (all 0 before the first frame).
    pub fn latency_percentiles(&self) -> (u64, u64, u64) {
        (
            self.frame_latency.percentile(50).unwrap_or(0),
            self.frame_latency.percentile(90).unwrap_or(0),
            self.frame_latency.percentile(99).unwrap_or(0),
        )
    }

    /// Snapshots the fleet's telemetry into a [`MetricsRegistry`]:
    /// `sslic_fleet_*` counters and gauges, the fleet-wide frame-latency
    /// and queue-wait histograms, and per-stream `sslic_stream_*` series
    /// labeled `{stream="<id>"}` for every bound stream. Built off the
    /// frame path (it allocates); every value is deterministic unless
    /// wallclock latency is armed, so the Prometheus exposition rendered
    /// from it is byte-identical across thread counts.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("sslic_fleet_frames_total", self.frames);
        m.counter_add("sslic_fleet_recovered_total", self.recovered);
        m.counter_add("sslic_fleet_admitted_total", self.admitted);
        m.counter_add("sslic_fleet_rejected_total", self.rejected);
        m.counter_add("sslic_fleet_closed_total", self.closed);
        let to_gauge = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        let active = self.active_streams() as u64;
        let slots = self.slots.len() as u64;
        m.gauge_set("sslic_fleet_active_streams", to_gauge(active));
        m.gauge_set("sslic_fleet_slots", to_gauge(slots));
        m.gauge_set("sslic_fleet_queue_depth", to_gauge(self.queue.len() as u64));
        m.gauge_set("sslic_fleet_queued_peak", to_gauge(self.queued_peak));
        // Slot occupancy in permille: integer-exact, no float formatting.
        let saturation = if slots == 0 { 0 } else { active * 1000 / slots };
        m.gauge_set("sslic_fleet_saturation_permille", to_gauge(saturation));
        m.histogram_insert(
            "sslic_fleet_frame_latency",
            self.frame_latency.histogram().clone(),
        );
        m.histogram_insert("sslic_fleet_queue_wait", self.queue_wait.histogram().clone());
        for slot in &self.slots {
            let Some(stream) = slot.stream else { continue };
            let sid = stream.to_string();
            let labels: [(&str, &str); 1] = [("stream", &sid)];
            m.counter_add(
                &telemetry::label("sslic_stream_frames_total", &labels),
                slot.frames,
            );
            m.counter_add(
                &telemetry::label("sslic_stream_recovered_total", &labels),
                slot.recovered,
            );
            m.histogram_insert(
                &telemetry::label("sslic_stream_frame_latency", &labels),
                slot.latency.histogram().clone(),
            );
        }
        m
    }

    /// The fleet's telemetry as a serializable `sslic-telemetry-v1`
    /// snapshot (per-histogram p50/p90/p99 included).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::from_registry(&self.metrics_registry())
    }

    /// Per-stream tallies, if the stream is currently bound.
    pub fn stream_stats(&self, stream: StreamId) -> Option<StreamStats> {
        self.slot_of(stream).map(|i| StreamStats {
            frames: self.slots[i].frames,
            recovered: self.slots[i].recovered,
        })
    }

    /// The label map of `stream`'s most recent frame, if bound.
    pub fn stream_labels(&self, stream: StreamId) -> Option<&Plane<u32>> {
        self.slot_of(stream).map(|i| self.slots[i].session.labels())
    }

    /// The current cluster centers of `stream` (its warm-start state), if
    /// bound.
    pub fn stream_clusters(&self, stream: StreamId) -> Option<&[Cluster]> {
        self.slot_of(stream)
            .map(|i| self.slots[i].session.clusters())
    }

    /// Consumes the fleet, assembling a full [`Segmentation`] from
    /// `stream`'s most recent frame. `report` must be that frame's
    /// [`FrameReport`]; see [`SegmenterSession::into_segmentation`].
    /// Returns `None` when the stream is not bound.
    pub fn into_segmentation(
        mut self,
        stream: StreamId,
        report: FrameReport,
    ) -> Option<Segmentation> {
        let i = self.slot_of(stream)?;
        let slot = self.slots.swap_remove(i);
        Some(slot.session.into_segmentation(report))
    }

    /// Builds a [`RunReport`] for `stream`'s most recent frame, extended
    /// with the per-stream fleet section (`fleet.*`): stream id, frames,
    /// recovered frames, live queue depth, admission rejections, and the
    /// FNV-1a checksum of the stream's label map. Returns `None` when the
    /// stream is not bound.
    ///
    /// With `deterministic = true` the phase timings are zeroed so the
    /// report bytes are a pure function of the workload (the form the
    /// `serve` determinism gate byte-diffs, modulo the `threads` field).
    pub fn run_report(
        &self,
        stream: StreamId,
        report: &FrameReport,
        deterministic: bool,
    ) -> Option<RunReport> {
        let i = self.slot_of(stream)?;
        let slot = &self.slots[i];
        let mut run = crate::report::frame_run_report(&self.config, report, deterministic);
        run.width = self.width as u64;
        run.height = self.height as u64;
        run.fleet = Some(ReportFleet {
            stream: stream.0,
            frames: slot.frames,
            recovered: slot.recovered,
            queue_depth: self.queue.len() as u64,
            rejected: self.rejected,
            label_checksum: label_checksum(slot.session.labels()),
        });
        Some(run)
    }
}

/// FNV-1a over a label plane, the fleet's per-stream output fingerprint
/// (the same fold the throughput bench pins in BENCH_*.json seeds).
pub fn label_checksum(labels: &Plane<u32>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in labels.iter() {
        h ^= u64::from(l);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// --- the serve wire protocol ----------------------------------------------

/// Wire opcode: one frame follows — `stream: u64 LE`, `len: u32 LE`, then
/// `len` bytes of binary PPM (P6).
pub const WIRE_FRAME: u8 = 0x01;

/// Wire opcode: close a stream — `stream: u64 LE` follows. Frees the
/// stream's slot and drains admissible queued frames.
pub const WIRE_CLOSE: u8 = 0x02;

/// Wire opcode: telemetry request — no payload. [`serve`] replies with an
/// `sslic-serve-stats-v1` line carrying the fleet's Prometheus text
/// exposition.
pub const WIRE_STATS: u8 = 0x03;

/// Hard cap on a frame payload (64 MiB), rejecting absurd length prefixes
/// before any buffer grows.
pub const WIRE_MAX_PAYLOAD: usize = 1 << 26;

/// Encodes one [`WIRE_FRAME`] record.
///
/// # Errors
///
/// Any I/O error of `w`, plus a payload larger than
/// [`WIRE_MAX_PAYLOAD`].
pub fn write_wire_frame<W: Write>(
    w: &mut W,
    stream: StreamId,
    payload: &[u8],
) -> Result<(), String> {
    let len = match u32::try_from(payload.len()) {
        Ok(len) if payload.len() <= WIRE_MAX_PAYLOAD => len,
        _ => {
            return Err(format!(
                "frame payload of {} bytes exceeds the {WIRE_MAX_PAYLOAD}-byte wire cap",
                payload.len()
            ))
        }
    };
    let io = |e: std::io::Error| format!("wire write failed: {e}");
    w.write_all(&[WIRE_FRAME]).map_err(io)?;
    w.write_all(&stream.0.to_le_bytes()).map_err(io)?;
    w.write_all(&len.to_le_bytes()).map_err(io)?;
    w.write_all(payload).map_err(io)
}

/// Encodes one [`WIRE_CLOSE`] record.
///
/// # Errors
///
/// Any I/O error of `w`.
pub fn write_wire_close<W: Write>(w: &mut W, stream: StreamId) -> Result<(), String> {
    let io = |e: std::io::Error| format!("wire write failed: {e}");
    w.write_all(&[WIRE_CLOSE]).map_err(io)?;
    w.write_all(&stream.0.to_le_bytes()).map_err(io)
}

/// Encodes one [`WIRE_STATS`] record (a single opcode byte).
///
/// # Errors
///
/// Any I/O error of `w`.
pub fn write_wire_stats<W: Write>(w: &mut W) -> Result<(), String> {
    w.write_all(&[WIRE_STATS])
        .map_err(|e| format!("wire write failed: {e}"))
}

/// Reads one opcode byte, or `None` at a clean end of stream (EOF is only
/// legal at a record boundary).
fn read_opcode<R: Read>(r: &mut R) -> Result<Option<u8>, String> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("serve: read failed: {e}")),
        }
    }
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, String> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|e| format!("serve: truncated record: {e}"))?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, String> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|e| format!("serve: truncated record: {e}"))?;
    Ok(u32::from_le_bytes(b))
}

/// Options of one [`serve`] pump.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions<'a> {
    /// Self-healing policy armed on every stream (see
    /// [`RunOptions::recovery`]).
    pub recovery: Option<&'a RecoveryPolicy>,
    /// Emit real phase timings instead of deterministic zeros.
    pub wallclock: bool,
    /// Emit an `sslic-serve-heartbeat-v1` line after every N segmented
    /// frames (0 = off).
    pub heartbeat_every: u64,
    /// Dump the fleet's Prometheus exposition to this path at end of
    /// input.
    pub metrics_path: Option<&'a str>,
}

impl<'a> ServeOptions<'a> {
    /// Default serve options: no recovery, deterministic reports.
    pub fn new() -> Self {
        ServeOptions::default()
    }

    /// Arms a recovery policy on every stream.
    pub fn with_recovery(mut self, policy: &'a RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Emits wall-clock phase timings (reports are no longer
    /// byte-reproducible).
    pub fn with_wallclock(mut self, wallclock: bool) -> Self {
        self.wallclock = wallclock;
        self
    }

    /// Emits a heartbeat line after every `every` segmented frames
    /// (0 disables the heartbeat).
    pub fn with_heartbeat(mut self, every: u64) -> Self {
        self.heartbeat_every = every;
        self
    }

    /// Writes the fleet's Prometheus exposition to `path` at end of
    /// input.
    pub fn with_metrics_file(mut self, path: &'a str) -> Self {
        self.metrics_path = Some(path);
        self
    }
}

/// What one [`serve`] pump processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Frames segmented (including drained queued frames).
    pub frames: u64,
    /// Of those, frames that healed via recovery.
    pub recovered: u64,
    /// Frames rejected (saturated + queue full + bad payloads).
    pub rejected: u64,
    /// High-water mark of the admission queue.
    pub queued_peak: u64,
    /// Streams closed by [`WIRE_CLOSE`] records.
    pub closed: u64,
}

fn emit<W: Write>(out: &mut W, line: &str) -> Result<(), String> {
    writeln!(out, "{line}").map_err(|e| format!("serve: write failed: {e}"))
}

/// Runs one admissible frame through the fleet, emits its report line,
/// folds it into the summary, and emits a heartbeat when one is due.
fn pump_one<W: Write>(
    fl: &mut SessionFleet,
    stream: StreamId,
    image: &RgbImage,
    run_options: &RunOptions<'_>,
    deterministic: bool,
    heartbeat_every: u64,
    summary: &mut ServeSummary,
    out: &mut W,
) -> Result<(), String> {
    let report = fl
        .try_run(stream, SegmentRequest::Rgb(image), run_options)
        .map_err(|e| format!("serve: {e}"))?;
    summary.frames += 1;
    if report.status() == SegmentationStatus::Recovered {
        summary.recovered += 1;
    }
    if let Some(run) = fl.run_report(stream, &report, deterministic) {
        emit(out, &run.to_json())?;
    }
    if heartbeat_every != 0 && summary.frames % heartbeat_every == 0 {
        emit_heartbeat(out, fl, summary)?;
    }
    Ok(())
}

/// Emits one `sslic-serve-heartbeat-v1` line: liveness tallies plus the
/// fleet-wide frame-latency percentiles. In deterministic mode every
/// field is a pure function of the frames pumped so far, so heartbeat
/// bytes are identical across worker-thread counts.
fn emit_heartbeat<W: Write>(
    out: &mut W,
    fl: &SessionFleet,
    summary: &ServeSummary,
) -> Result<(), String> {
    let stats = fl.stats();
    let (p50, p90, p99) = fl.latency_percentiles();
    emit(
        out,
        &format!(
            "{{\"schema\":\"sslic-serve-heartbeat-v1\",\"frames\":{},\"recovered\":{},\
             \"rejected\":{},\"queue_depth\":{},\"active_streams\":{},\
             \"frame_latency_p50\":{p50},\"frame_latency_p90\":{p90},\
             \"frame_latency_p99\":{p99}}}",
            summary.frames,
            summary.recovered,
            summary.rejected,
            stats.queue_depth,
            stats.active_streams
        ),
    )
}

/// Pumps the length-prefixed frame protocol from `input` to completion,
/// emitting one JSON line per event on `out`: a full [`RunReport`]
/// (schema `sslic-run-report-v2`, with the `fleet` section) per segmented
/// frame, `sslic-serve-queued-v1` / `sslic-serve-reject-v1` lines for
/// parked and refused frames, an `sslic-serve-close-v1` line per closed
/// stream, an `sslic-serve-stats-v1` line (carrying the fleet's
/// Prometheus text exposition) per [`WIRE_STATS`] request, optional
/// `sslic-serve-heartbeat-v1` lines every
/// [`ServeOptions::heartbeat_every`] frames, and a final
/// `sslic-serve-summary-v2` line at EOF with the fleet-wide
/// frame-latency p50/p90/p99. With
/// [`ServeOptions::metrics_path`] set, the raw exposition is also
/// written to that file at end of input.
///
/// The fleet is sized by `fleet`, configured by `config`, and built
/// lazily from the first frame's geometry; later frames of a different
/// geometry are rejected, not resized. Every emitted byte is a pure
/// function of the input records (given `wallclock` off), except the
/// `"threads"` field inside each report — which is why the CI gate
/// sed-normalises exactly that field before byte-comparing 1-thread
/// against 4-thread output. Stats, heartbeat, and summary lines carry no
/// thread-dependent field at all, so they — and the metrics file — are
/// byte-identical across thread counts without normalisation.
///
/// # Errors
///
/// I/O failures and malformed records (truncation, unknown opcodes,
/// over-cap payloads) abort the pump with a message; malformed *frame
/// pixels* (unparseable PPM) only reject that frame.
pub fn serve<R: Read, W: Write>(
    config: &Segmenter,
    fleet: FleetConfig,
    input: &mut R,
    out: &mut W,
    opts: &ServeOptions<'_>,
) -> Result<ServeSummary, String> {
    let deterministic = !opts.wallclock;
    let fleet = fleet.with_wallclock_latency(opts.wallclock);
    let mut pool: Option<SessionFleet> = None;
    let mut payload: Vec<u8> = Vec::new();
    let mut summary = ServeSummary::default();
    let run_options = {
        let mut ro = RunOptions::new();
        if let Some(p) = opts.recovery {
            ro = ro.with_recovery(p);
        }
        ro
    };
    while let Some(op) = read_opcode(input)? {
        match op {
            WIRE_FRAME => {
                let stream = StreamId(read_u64(input)?);
                let len = read_u32(input)? as usize;
                if len > WIRE_MAX_PAYLOAD {
                    return Err(format!(
                        "serve: frame payload of {len} bytes exceeds the \
                         {WIRE_MAX_PAYLOAD}-byte wire cap"
                    ));
                }
                payload.resize(len, 0);
                input
                    .read_exact(&mut payload)
                    .map_err(|e| format!("serve: truncated frame payload: {e}"))?;
                let image = match ppm::read_ppm(&payload[..]) {
                    Ok(img) => img,
                    Err(_) => {
                        summary.rejected += 1;
                        emit(
                            out,
                            &format!(
                                "{{\"schema\":\"sslic-serve-reject-v1\",\"stream\":{stream},\
                                 \"error\":\"bad-frame\"}}"
                            ),
                        )?;
                        continue;
                    }
                };
                if pool.is_none() {
                    match SessionFleet::try_new(config, image.width(), image.height(), fleet) {
                        Ok(fl) => pool = Some(fl),
                        Err(e) => return Err(format!("serve: {e}")),
                    }
                }
                let Some(fl) = pool.as_mut() else { break };
                if (image.width(), image.height()) != (fl.width(), fl.height()) {
                    summary.rejected += 1;
                    emit(
                        out,
                        &format!(
                            "{{\"schema\":\"sslic-serve-reject-v1\",\"stream\":{stream},\
                             \"error\":\"geometry\"}}"
                        ),
                    )?;
                    continue;
                }
                if fl.admissible(stream) {
                    pump_one(
                        fl,
                        stream,
                        &image,
                        &run_options,
                        deterministic,
                        opts.heartbeat_every,
                        &mut summary,
                        out,
                    )?;
                } else {
                    match fl.try_enqueue(stream, image) {
                        Ok(depth) => emit(
                            out,
                            &format!(
                                "{{\"schema\":\"sslic-serve-queued-v1\",\"stream\":{stream},\
                                 \"depth\":{depth}}}"
                            ),
                        )?,
                        Err(_) => {
                            summary.rejected += 1;
                            emit(
                                out,
                                &format!(
                                    "{{\"schema\":\"sslic-serve-reject-v1\",\"stream\":{stream},\
                                     \"error\":\"saturated\"}}"
                                ),
                            )?;
                        }
                    }
                }
            }
            WIRE_CLOSE => {
                let stream = StreamId(read_u64(input)?);
                let mut drained = 0u64;
                if let Some(fl) = pool.as_mut() {
                    if fl.close(stream) {
                        summary.closed += 1;
                    }
                    while let Some((s, img)) = fl.pop_admissible() {
                        pump_one(
                            fl,
                            s,
                            &img,
                            &run_options,
                            deterministic,
                            opts.heartbeat_every,
                            &mut summary,
                            out,
                        )?;
                        drained += 1;
                    }
                }
                emit(
                    out,
                    &format!(
                        "{{\"schema\":\"sslic-serve-close-v1\",\"stream\":{stream},\
                         \"drained\":{drained}}}"
                    ),
                )?;
            }
            WIRE_STATS => {
                let exposition = match pool.as_ref() {
                    Some(fl) => telemetry::render_prometheus(&fl.metrics_registry()),
                    None => String::new(),
                };
                emit(
                    out,
                    &format!(
                        "{{\"schema\":\"sslic-serve-stats-v1\",\"exposition\":\"{}\"}}",
                        escape_json(&exposition)
                    ),
                )?;
            }
            other => return Err(format!("serve: unknown wire opcode 0x{other:02x}")),
        }
    }
    if let Some(fl) = pool.as_mut() {
        while let Some((s, img)) = fl.pop_admissible() {
            pump_one(
                fl,
                s,
                &img,
                &run_options,
                deterministic,
                opts.heartbeat_every,
                &mut summary,
                out,
            )?;
        }
        summary.queued_peak = fl.stats().queued_peak;
    }
    if let Some(path) = opts.metrics_path {
        let exposition = match pool.as_ref() {
            Some(fl) => telemetry::render_prometheus(&fl.metrics_registry()),
            None => String::new(),
        };
        std::fs::write(path, exposition)
            .map_err(|e| format!("serve: cannot write metrics file {path}: {e}"))?;
    }
    let (p50, p90, p99) = pool
        .as_ref()
        .map(|fl| fl.latency_percentiles())
        .unwrap_or((0, 0, 0));
    emit(
        out,
        &format!(
            "{{\"schema\":\"sslic-serve-summary-v2\",\"frames\":{},\"recovered\":{},\
             \"rejected\":{},\"queued_peak\":{},\"closed\":{},\
             \"frame_latency_p50\":{p50},\"frame_latency_p90\":{p90},\
             \"frame_latency_p99\":{p99}}}",
            summary.frames, summary.recovered, summary.rejected, summary.queued_peak, summary.closed
        ),
    )?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlicParams;
    use sslic_image::synthetic::SyntheticImage;
    use sslic_obs::Histogram;

    fn segmenter() -> Segmenter {
        Segmenter::sslic_ppa(SlicParams::builder(48).iterations(3).build(), 2)
    }

    fn img(seed: u64) -> SyntheticImage {
        SyntheticImage::builder(64, 48).seed(seed).regions(5).build()
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            FleetConfig::builder().with_slots(0).try_build(),
            Err(FleetError::ZeroSlots)
        );
        assert_eq!(
            FleetConfig::builder().with_frame_workers(0).try_build(),
            Err(FleetError::ZeroWorkers)
        );
        let cfg = FleetConfig::builder()
            .with_slots(3)
            .with_queue_depth(5)
            .with_frame_workers(2)
            .build();
        assert_eq!((cfg.slots(), cfg.queue_depth(), cfg.frame_workers()), (3, 5, 2));
        assert_eq!(FleetConfig::default().slots(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn builder_build_panics_with_the_display_message() {
        let _ = FleetConfig::builder().with_slots(0).build();
    }

    #[test]
    fn round_robin_admission_is_deterministic() {
        let cfg = FleetConfig::builder().with_slots(2).build();
        let mut fleet = SessionFleet::new(&segmenter(), 64, 48, cfg);
        let frame = img(1);
        fleet.run(StreamId(10), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        fleet.run(StreamId(20), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        // Saturated: a third stream is refused, observably.
        let err = fleet
            .try_run(StreamId(30), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new())
            .unwrap_err();
        assert_eq!(
            err,
            SegmentError::Fleet(FleetError::Saturated { streams: 2, slots: 2 })
        );
        assert_eq!(fleet.stats().rejected, 1);
        // Closing stream 10 frees exactly its slot; the next admission
        // reuses it (cursor continuity keeps the choice deterministic).
        assert!(fleet.close(StreamId(10)));
        assert!(!fleet.close(StreamId(10)));
        fleet.run(StreamId(30), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        assert_eq!(fleet.stats().active_streams, 2);
        assert_eq!(fleet.stream_stats(StreamId(30)).map(|s| s.frames), Some(1));
        assert_eq!(fleet.stream_stats(StreamId(10)), None);
    }

    #[test]
    fn rebinding_a_slot_seeds_cold_like_a_fresh_session() {
        let seg = segmenter();
        let cfg = FleetConfig::builder().with_slots(1).build();
        let mut fleet = SessionFleet::new(&seg, 64, 48, cfg);
        let a = img(1);
        let b = img(2);
        // Stream 0 warms the lone slot, then departs.
        fleet.run(StreamId(0), SegmentRequest::Rgb(&a.rgb), &RunOptions::new());
        fleet.close(StreamId(0));
        // Stream 1's first frame must match a cold standalone session,
        // not inherit stream 0's converged centers.
        fleet.run(StreamId(1), SegmentRequest::Rgb(&b.rgb), &RunOptions::new());
        let mut fresh = seg.session(64, 48);
        fresh.run(SegmentRequest::Rgb(&b.rgb), &RunOptions::new());
        assert_eq!(
            fleet.stream_labels(StreamId(1)).map(Plane::as_slice),
            Some(fresh.labels().as_slice())
        );
    }

    #[test]
    fn queue_holds_frames_until_a_slot_frees() {
        let cfg = FleetConfig::builder().with_slots(1).with_queue_depth(2).build();
        let mut fleet = SessionFleet::new(&segmenter(), 64, 48, cfg);
        let frame = img(3);
        fleet.run(StreamId(0), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        assert!(!fleet.admissible(StreamId(1)));
        assert_eq!(fleet.try_enqueue(StreamId(1), frame.rgb.clone()), Ok(1));
        assert_eq!(fleet.try_enqueue(StreamId(2), frame.rgb.clone()), Ok(2));
        let err = fleet.try_enqueue(StreamId(3), frame.rgb.clone()).unwrap_err();
        assert_eq!(err, SegmentError::Fleet(FleetError::QueueFull { depth: 2 }));
        assert_eq!(fleet.stats().queued_peak, 2);
        // Nothing admissible while the slot is bound elsewhere…
        assert!(fleet.pop_admissible().is_none());
        // …until the stream closes: the drain then runs both in order.
        fleet.close(StreamId(0));
        let mut order = Vec::new();
        let drained = fleet
            .drain(&RunOptions::new(), |s, _| order.push(s))
            .expect("drain");
        // Queue order is 1 then 2, but only one slot exists: 1 drains,
        // binds the slot, and 2 stays queued (inadmissible again).
        assert_eq!(drained, 1);
        assert_eq!(order, vec![StreamId(1)]);
        assert_eq!(fleet.stats().queue_depth, 1);
    }

    #[test]
    fn wire_records_round_trip() {
        let mut buf = Vec::new();
        write_wire_frame(&mut buf, StreamId(7), b"pixels").expect("frame");
        write_wire_close(&mut buf, StreamId(7)).expect("close");
        let mut r: &[u8] = &buf;
        assert_eq!(read_opcode(&mut r), Ok(Some(WIRE_FRAME)));
        assert_eq!(read_u64(&mut r), Ok(7));
        assert_eq!(read_u32(&mut r), Ok(6));
        let mut payload = [0u8; 6];
        r.read_exact(&mut payload).expect("payload");
        assert_eq!(&payload, b"pixels");
        assert_eq!(read_opcode(&mut r), Ok(Some(WIRE_CLOSE)));
        assert_eq!(read_u64(&mut r), Ok(7));
        assert_eq!(read_opcode(&mut r), Ok(None));
    }

    #[test]
    fn serve_smoke_emits_reports_and_summary() {
        let seg = segmenter();
        let mut stream_bytes = Vec::new();
        for (s, seed) in [(0u64, 1u64), (1, 2), (0, 3)] {
            let mut ppm_bytes = Vec::new();
            ppm::write_ppm(&mut ppm_bytes, &img(seed).rgb).expect("encode");
            write_wire_frame(&mut stream_bytes, StreamId(s), &ppm_bytes).expect("frame");
        }
        write_wire_close(&mut stream_bytes, StreamId(0)).expect("close");
        let cfg = FleetConfig::builder().with_slots(2).build();
        let mut out = Vec::new();
        let summary = serve(
            &seg,
            cfg,
            &mut &stream_bytes[..],
            &mut out,
            &ServeOptions::new(),
        )
        .expect("serve");
        assert_eq!(summary.frames, 3);
        assert_eq!(summary.closed, 1);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // 3 reports + 1 close ack + 1 summary.
        assert_eq!(lines.len(), 5);
        let report = RunReport::from_json(lines[0]).expect("report line parses");
        let fleet_section = report.fleet.expect("fleet section present");
        assert_eq!(fleet_section.stream, 0);
        assert_eq!(fleet_section.frames, 1);
        assert!(lines[3].contains("sslic-serve-close-v1"));
        assert!(lines[4].contains("sslic-serve-summary-v2"));
        assert!(lines[4].contains("\"frames\":3"));
        assert!(lines[4].contains("\"frame_latency_p50\":"));
    }

    #[test]
    fn wire_stats_round_trips() {
        let mut buf = Vec::new();
        write_wire_stats(&mut buf).expect("stats");
        let mut r: &[u8] = &buf;
        assert_eq!(read_opcode(&mut r), Ok(Some(WIRE_STATS)));
        assert_eq!(read_opcode(&mut r), Ok(None));
    }

    #[test]
    fn serve_answers_stats_with_prometheus_exposition() {
        let seg = segmenter();
        let mut stream_bytes = Vec::new();
        // A stats request before any frame: empty exposition, no pool yet.
        write_wire_stats(&mut stream_bytes).expect("stats");
        for (s, seed) in [(0u64, 1u64), (1, 2)] {
            let mut ppm_bytes = Vec::new();
            ppm::write_ppm(&mut ppm_bytes, &img(seed).rgb).expect("encode");
            write_wire_frame(&mut stream_bytes, StreamId(s), &ppm_bytes).expect("frame");
        }
        write_wire_stats(&mut stream_bytes).expect("stats");
        let cfg = FleetConfig::builder().with_slots(2).build();
        let mut out = Vec::new();
        serve(
            &seg,
            cfg,
            &mut &stream_bytes[..],
            &mut out,
            &ServeOptions::new(),
        )
        .expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        let stats: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("sslic-serve-stats-v1"))
            .collect();
        assert_eq!(stats.len(), 2);
        assert!(stats[0].contains("\"exposition\":\"\""));
        assert!(stats[1].contains("sslic_fleet_frames_total 2"));
        assert!(stats[1].contains("sslic_fleet_frame_latency_bucket"));
        assert!(stats[1].contains("le=\\\"+Inf\\\""));
        assert!(stats[1].contains("sslic_stream_frames_total{stream=\\\"0\\\"} 1"));
    }

    #[test]
    fn serve_heartbeat_fires_every_n_frames() {
        let seg = segmenter();
        let mut stream_bytes = Vec::new();
        for seed in 1u64..=4 {
            let mut ppm_bytes = Vec::new();
            ppm::write_ppm(&mut ppm_bytes, &img(seed).rgb).expect("encode");
            write_wire_frame(&mut stream_bytes, StreamId(0), &ppm_bytes).expect("frame");
        }
        let cfg = FleetConfig::builder().with_slots(1).build();
        let mut out = Vec::new();
        serve(
            &seg,
            cfg,
            &mut &stream_bytes[..],
            &mut out,
            &ServeOptions::new().with_heartbeat(2),
        )
        .expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        let beats: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("sslic-serve-heartbeat-v1"))
            .collect();
        assert_eq!(beats.len(), 2);
        assert!(beats[0].contains("\"frames\":2"));
        assert!(beats[1].contains("\"frames\":4"));
        assert!(beats[1].contains("\"frame_latency_p99\":"));
    }

    #[test]
    fn fleet_telemetry_tracks_latency_and_queue_wait() {
        let cfg = FleetConfig::builder().with_slots(1).with_queue_depth(2).build();
        let mut fleet = SessionFleet::new(&segmenter(), 64, 48, cfg);
        let frame = img(1);
        fleet.run(StreamId(0), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        fleet.run(StreamId(0), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        assert_eq!(fleet.frame_latency().count(), 2);
        // Deterministic latency unit is the frame's distance_calcs: > 0
        // for any real frame, so every percentile estimate is > 0 too.
        let (p50, p90, p99) = fleet.latency_percentiles();
        assert!(p50 > 0 && p50 <= p90 && p90 <= p99);
        assert_eq!(fleet.stream_latency(StreamId(0)).map(LatencyHistogram::count), Some(2));
        assert_eq!(fleet.stream_latency(StreamId(9)).map(LatencyHistogram::count), None);
        // Park a frame for a second stream, then free the slot and drain:
        // the queue-wait histogram sees exactly one observation.
        fleet
            .try_enqueue(StreamId(1), frame.rgb.clone())
            .expect("enqueue");
        assert_eq!(fleet.queue_wait().count(), 0);
        fleet.close(StreamId(0));
        fleet.drain(&RunOptions::new(), |_, _| {}).expect("drain");
        assert_eq!(fleet.queue_wait().count(), 1);
        let m = fleet.metrics_registry();
        assert_eq!(m.counter("sslic_fleet_frames_total"), 3);
        assert_eq!(m.counter("sslic_fleet_closed_total"), 1);
        assert_eq!(m.gauge("sslic_fleet_saturation_permille"), Some(1000));
        assert_eq!(
            m.histogram("sslic_fleet_frame_latency").map(Histogram::count),
            Some(3)
        );
        let snap = fleet.telemetry_snapshot();
        assert!(snap.histograms.iter().any(|h| h.name == "sslic_fleet_queue_wait"));
    }

    #[test]
    fn rebinding_a_slot_resets_its_latency_histogram() {
        let cfg = FleetConfig::builder().with_slots(1).build();
        let mut fleet = SessionFleet::new(&segmenter(), 64, 48, cfg);
        let frame = img(1);
        fleet.run(StreamId(0), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        assert_eq!(fleet.stream_latency(StreamId(0)).map(LatencyHistogram::count), Some(1));
        fleet.close(StreamId(0));
        fleet.run(StreamId(1), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        // Stream 1 inherits the slot but not stream 0's observations.
        assert_eq!(fleet.stream_latency(StreamId(1)).map(LatencyHistogram::count), Some(1));
        // The fleet-wide histogram keeps everything.
        assert_eq!(fleet.frame_latency().count(), 2);
    }

    #[test]
    fn batch_matches_streams_run_one_by_one() {
        let seg = segmenter();
        let imgs: Vec<SyntheticImage> = (0..6).map(img).collect();
        // Interleaved 2-stream batch.
        let frames: Vec<StreamFrame<'_>> = imgs
            .iter()
            .enumerate()
            .map(|(i, im)| StreamFrame::new(StreamId(i as u64 % 2), SegmentRequest::Rgb(&im.rgb)))
            .collect();
        for workers in [1usize, 4] {
            let cfg = FleetConfig::builder()
                .with_slots(2)
                .with_frame_workers(workers)
                .build();
            let mut fleet = SessionFleet::new(&seg, 64, 48, cfg);
            let reports = fleet.run_batch(&frames, &RunOptions::new());
            assert_eq!(reports.len(), 6);
            // Reference: one standalone session per stream.
            for stream in 0..2u64 {
                let mut session = seg.session(64, 48);
                for (i, im) in imgs.iter().enumerate() {
                    if i as u64 % 2 != stream {
                        continue;
                    }
                    let reference = session.run(SegmentRequest::Rgb(&im.rgb), &RunOptions::new());
                    assert_eq!(
                        reports[i].counters(),
                        reference.counters(),
                        "workers={workers} frame {i}"
                    );
                }
                assert_eq!(
                    fleet.stream_labels(StreamId(stream)).map(Plane::as_slice),
                    Some(session.labels().as_slice()),
                    "workers={workers} stream {stream} final labels"
                );
                assert_eq!(fleet.stream_clusters(StreamId(stream)), Some(session.clusters()));
            }
        }
    }

    #[test]
    fn batch_is_all_or_nothing_at_admission() {
        let cfg = FleetConfig::builder().with_slots(1).build();
        let mut fleet = SessionFleet::new(&segmenter(), 64, 48, cfg);
        let a = img(1);
        let frames = [
            StreamFrame::new(StreamId(0), SegmentRequest::Rgb(&a.rgb)),
            StreamFrame::new(StreamId(1), SegmentRequest::Rgb(&a.rgb)),
        ];
        let mut out = Vec::new();
        let err = fleet
            .try_run_batch_into(&frames, &RunOptions::new(), &mut out)
            .unwrap_err();
        assert!(matches!(
            err,
            SegmentError::Fleet(FleetError::Saturated { .. })
        ));
        assert!(out.is_empty(), "no partial output on admission failure");
        assert_eq!(fleet.stats().frames, 0);
    }

    #[test]
    fn into_segmentation_hands_over_the_final_frame() {
        let cfg = FleetConfig::default();
        let mut fleet = SessionFleet::new(&segmenter(), 64, 48, cfg);
        let frame = img(4);
        let report = fleet.run(StreamId(5), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        let labels = fleet
            .stream_labels(StreamId(5))
            .map(|p| p.as_slice().to_vec())
            .expect("bound");
        let seg = fleet
            .into_segmentation(StreamId(5), report)
            .expect("stream bound");
        assert_eq!(seg.labels().as_slice(), labels.as_slice());
    }

    #[test]
    fn run_report_carries_the_fleet_section() {
        let cfg = FleetConfig::builder().with_slots(1).with_queue_depth(1).build();
        let mut fleet = SessionFleet::new(&segmenter(), 64, 48, cfg);
        let frame = img(6);
        let report = fleet.run(StreamId(9), SegmentRequest::Rgb(&frame.rgb), &RunOptions::new());
        let run = fleet.run_report(StreamId(9), &report, true).expect("bound");
        let fleet_section = run.fleet.expect("fleet section");
        assert_eq!(fleet_section.stream, 9);
        assert_eq!(fleet_section.frames, 1);
        assert_eq!(
            fleet_section.label_checksum,
            label_checksum(fleet.stream_labels(StreamId(9)).expect("labels"))
        );
        // Round-trips through the schema with the optional section.
        let back = RunReport::from_json(&run.to_json()).expect("parse");
        assert_eq!(back, run);
        assert!(fleet.run_report(StreamId(1), &report, true).is_none());
    }
}
