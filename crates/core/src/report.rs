//! Building an [`sslic_obs::RunReport`] from a finished segmentation.
//!
//! The report is the serializable cap of a traced run: parameters,
//! counters, phase attribution, recorder histograms, fault summary, and
//! modeled DRAM traffic under each element-width convention.

use sslic_obs::{PhaseNanos, Recorder, ReportCounters, ReportRecovery, RunReport, TrafficEntry};

use crate::engine::{Segmentation, SegmentationStatus, Segmenter};
use crate::instrument::{RunCounters, TrafficModel};
use crate::profile::PHASES;
use crate::recovery::RecoveryReport;
use crate::session::FrameReport;

/// Converts the engine's per-frame [`RecoveryReport`] into the report
/// mirror.
pub fn report_recovery(r: &RecoveryReport) -> ReportRecovery {
    ReportRecovery {
        guards_fired: r.guards_fired,
        retries: u64::from(r.retries),
        escalations: u64::from(r.escalations),
        outcome: r.outcome.as_str().to_string(),
        center_checksum: r.center_checksum,
    }
}

/// Converts the engine's [`RunCounters`] into the report mirror.
pub fn report_counters(c: &RunCounters) -> ReportCounters {
    ReportCounters {
        distance_calcs: c.distance_calcs,
        pixel_color_reads: c.pixel_color_reads,
        dist_buffer_reads: c.dist_buffer_reads,
        dist_buffer_writes: c.dist_buffer_writes,
        label_reads: c.label_reads,
        label_writes: c.label_writes,
        center_reads: c.center_reads,
        sigma_updates: c.sigma_updates,
        center_updates: c.center_updates,
        sub_iterations: c.sub_iterations,
    }
}

/// Builds a [`RunReport`] from a streaming [`FrameReport`] — the same
/// document [`build_run_report`] produces, minus the pieces a frame
/// report does not carry: `width`/`height` are left at 0 for the caller
/// to fill in (a session fleet knows its geometry; the report does not),
/// histograms are empty, and `injected_words` is 0.
pub fn frame_run_report(seg: &Segmenter, frame: &FrameReport, deterministic: bool) -> RunReport {
    let params = seg.params();
    let phases = PHASES
        .iter()
        .map(|&p| PhaseNanos {
            name: p.key().to_string(),
            nanos: if deterministic {
                0
            } else {
                u64::try_from(frame.breakdown().phase_time(p).as_nanos()).unwrap_or(u64::MAX)
            },
        })
        .collect();
    let traffic = [
        ("sw_double", TrafficModel::sw_double()),
        ("sw_float", TrafficModel::sw_float()),
        ("hw_8bit", TrafficModel::hw_8bit()),
    ]
    .iter()
    .map(|(name, model)| {
        let bytes = model.bytes(frame.counters());
        TrafficEntry {
            model: name.to_string(),
            read_bytes: bytes.read,
            written_bytes: bytes.written,
        }
    })
    .collect();
    RunReport {
        algorithm: seg.algorithm().name().to_string(),
        width: 0,
        height: 0,
        superpixels: params.superpixels() as u64,
        iterations: u64::from(params.iterations()),
        subsets: u64::from(seg.algorithm().steps_per_full_pass()),
        threads: params.threads().get() as u64,
        compactness: f64::from(params.compactness()),
        distance_mode: if seg.distance_mode().is_quantized() {
            "quantized".to_string()
        } else {
            "float".to_string()
        },
        kernel: Some(frame.kernel().as_str().to_string()),
        iterations_run: u64::from(frame.iterations_run()),
        status: match frame.status() {
            SegmentationStatus::Ok => "ok".to_string(),
            SegmentationStatus::Degraded => "degraded".to_string(),
            SegmentationStatus::Recovered => "recovered".to_string(),
        },
        repairs: frame.invariant_repairs(),
        injected_words: 0,
        recovery: report_recovery(frame.recovery()),
        fleet: None,
        counters: report_counters(frame.counters()),
        phases,
        histograms: Vec::new(),
        traffic,
    }
}

/// Builds a [`RunReport`] for a completed run of `seg`.
///
/// With `deterministic = true` every timing field is zeroed so the report
/// bytes are a pure function of the workload (the mode CI byte-diffs);
/// otherwise the phase times carry real nanoseconds. `recorder`, when
/// given, contributes its histogram snapshots; `injected_words` is the
/// fault-campaign tally (0 for clean runs).
pub fn build_run_report(
    seg: &Segmenter,
    out: &Segmentation,
    deterministic: bool,
    recorder: Option<&Recorder>,
    injected_words: u64,
) -> RunReport {
    let params = seg.params();
    let phases = PHASES
        .iter()
        .map(|&p| PhaseNanos {
            name: p.key().to_string(),
            nanos: if deterministic {
                0
            } else {
                u64::try_from(out.breakdown().phase_time(p).as_nanos()).unwrap_or(u64::MAX)
            },
        })
        .collect();
    let traffic = [
        ("sw_double", TrafficModel::sw_double()),
        ("sw_float", TrafficModel::sw_float()),
        ("hw_8bit", TrafficModel::hw_8bit()),
    ]
    .iter()
    .map(|(name, model)| {
        let bytes = model.bytes(out.counters());
        TrafficEntry {
            model: name.to_string(),
            read_bytes: bytes.read,
            written_bytes: bytes.written,
        }
    })
    .collect();
    let mut report = RunReport {
        algorithm: seg.algorithm().name().to_string(),
        width: out.labels().width() as u64,
        height: out.labels().height() as u64,
        superpixels: params.superpixels() as u64,
        iterations: u64::from(params.iterations()),
        subsets: u64::from(seg.algorithm().steps_per_full_pass()),
        threads: params.threads().get() as u64,
        compactness: f64::from(params.compactness()),
        distance_mode: if seg.distance_mode().is_quantized() {
            "quantized".to_string()
        } else {
            "float".to_string()
        },
        kernel: Some(out.kernel().as_str().to_string()),
        iterations_run: u64::from(out.iterations_run()),
        status: match out.status() {
            SegmentationStatus::Ok => "ok".to_string(),
            SegmentationStatus::Degraded => "degraded".to_string(),
            SegmentationStatus::Recovered => "recovered".to_string(),
        },
        repairs: out.invariant_repairs(),
        injected_words,
        recovery: report_recovery(out.recovery()),
        fleet: None,
        counters: report_counters(out.counters()),
        phases,
        histograms: Vec::new(),
        traffic: Vec::new(),
    };
    report.traffic = traffic;
    if let Some(rec) = recorder {
        report.set_histograms(&rec.metrics());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunOptions, SegmentRequest, SlicParams};
    use sslic_image::synthetic::SyntheticImage;

    #[test]
    fn report_mirrors_counters_and_round_trips() {
        let img = SyntheticImage::builder(64, 48).seed(7).regions(4).build();
        let seg = Segmenter::sslic_ppa(SlicParams::builder(60).iterations(4).build(), 2);
        let rec = Recorder::deterministic();
        let out = seg.run(
            SegmentRequest::Rgb(&img.rgb),
            &RunOptions::new().with_recorder(&rec),
        );
        let report = build_run_report(&seg, &out, true, Some(&rec), 0);
        assert_eq!(report.counters, report_counters(out.counters()));
        assert_eq!(report.iterations_run, 4);
        assert_eq!(report.algorithm, "sslic_ppa");
        assert!(report.phases.iter().all(|p| p.nanos == 0));
        // Traffic entries match the models exactly.
        let hw = TrafficModel::hw_8bit().bytes(out.counters());
        let entry = report
            .traffic
            .iter()
            .find(|t| t.model == "hw_8bit")
            .expect("hw entry");
        assert_eq!((entry.read_bytes, entry.written_bytes), (hw.read, hw.written));
        // Round trip.
        let back = RunReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn wallclock_report_carries_phase_nanos() {
        let img = SyntheticImage::builder(64, 48).seed(7).regions(4).build();
        let seg = Segmenter::slic_ppa(SlicParams::builder(60).iterations(3).build());
        let out = seg.run(SegmentRequest::Rgb(&img.rgb), &RunOptions::new());
        let report = build_run_report(&seg, &out, false, None, 0);
        let total: u64 = report.phases.iter().map(|p| p.nanos).sum();
        assert!(total > 0, "non-deterministic report keeps real timings");
    }
}
