//! Vendored micro-benchmark shim, API-compatible with the subset of
//! [criterion](https://docs.rs/criterion) the workspace benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The crates registry is unreachable in this build environment, so the
//! real criterion cannot be fetched. This shim keeps `cargo bench`
//! functional with honest wall-clock measurement — median and min/max over
//! `sample_size` samples, each sample auto-calibrated to run for roughly
//! 10 ms — without statistics, plotting, or baseline storage.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name}");
        BenchmarkGroup { sample_size: 10 }
    }
}

/// A named collection of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints `median [min max]` per-iteration durations.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: find an iteration count that fills ~10 ms so
        // per-sample timer overhead is negligible.
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher { iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed / iters as u32
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!("{id:40} {median:>12.2?} [{lo:.2?} {hi:.2?}] ({iters} iters/sample)");
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.sample_size(2).bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0, "routine must have been exercised");
    }
}
