//! Vendored property-testing shim, API-compatible with the subset of
//! [proptest](https://docs.rs/proptest) this workspace uses.
//!
//! The build environment has no access to the crates registry, so the real
//! `proptest` cannot be fetched. Rather than rewrite every property test,
//! this crate re-implements the small surface they rely on:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies (`0u64..100`, `0.0f64..1.0`, …), [`any`], `Just`,
//!   [`prop_oneof!`], tuple strategies, and `.prop_map(..)`,
//! * `prop::num::{u64::ANY, f64::NORMAL}`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Generation is fully deterministic per test (seeded from the
//! test name), so a failing case reproduces exactly on re-run; the failure
//! message carries the case index.
//!
//! Everything here is plain `std` — no dependencies, no macros beyond
//! `macro_rules!`.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Runner configuration: number of generated cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier segmentation
        // properties inside CI budgets while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Namespaced strategy constants, mirroring `proptest::prop`.
pub mod prop {
    /// Numeric strategies.
    pub mod num {
        /// `u64` strategies.
        pub mod u64 {
            /// Any `u64`, uniformly distributed.
            pub const ANY: crate::strategy::AnyStrategy<u64> =
                crate::strategy::AnyStrategy::new();
        }
        /// `f64` strategies.
        pub mod f64 {
            /// Normal (finite, non-subnormal) `f64` values of either sign.
            pub const NORMAL: crate::strategy::NormalF64 = crate::strategy::NormalF64;
        }
    }
}

/// The prelude: everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::{any, AnyStrategy, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        ::core::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the current case (with
/// the generating case index) instead of aborting the whole process state.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::new(
                    ::std::string::String::from(
                        ::core::concat!("assertion failed: ", ::core::stringify!($cond)),
                    ),
                    ::core::file!(),
                    ::core::line!(),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::new(
                    ::std::format!($($fmt)+),
                    ::core::file!(),
                    ::core::line!(),
                ),
            );
        }
    };
}

/// `assert_eq!` for properties: fails the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::new(
                            ::std::format!(
                                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                                __l,
                                __r
                            ),
                            ::core::file!(),
                            ::core::line!(),
                        ),
                    );
                }
            }
        }
    };
}

/// `assert_ne!` for properties: fails the current case with both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::new(
                            ::std::format!(
                                "assertion failed: `left != right`\n  both: {:?}",
                                __l
                            ),
                            ::core::file!(),
                            ::core::line!(),
                        ),
                    );
                }
            }
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::UnionStrategy::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, f in -1.5f64..2.5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair < 20);
            prop_assert!(flag || !flag);
        }

        #[test]
        fn oneof_picks_only_listed_values(v in prop_oneof![Just(1u8), Just(7u8)]) {
            prop_assert!(v == 1 || v == 7, "unexpected {v}");
        }

        #[test]
        fn normal_f64_is_normal(v in prop::num::f64::NORMAL) {
            prop_assert!(v.is_normal());
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::from_name("fixed");
        let mut b = TestRng::from_name("fixed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn failing_property_reports_case() {
        let strat = crate::strategy::Just(3u8);
        let mut rng = TestRng::from_name("x");
        let v = crate::strategy::Strategy::generate(&strat, &mut rng);
        let body = || -> Result<(), TestCaseError> {
            prop_assert!(v != 3, "tripwire fired on {v}");
            Ok(())
        };
        let err = body().expect_err("must fail");
        assert!(err.to_string().contains("tripwire fired on 3"));
    }
}
