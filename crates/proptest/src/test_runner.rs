//! Deterministic RNG and failure type backing the [`proptest!`] runner.

use std::fmt;

/// A failed property case: message plus the `prop_assert!` call site.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    file: &'static str,
    line: u32,
}

impl TestCaseError {
    /// Builds a failure recorded at `file:line`.
    pub fn new(message: String, file: &'static str, line: u32) -> Self {
        TestCaseError { message, file, line }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}", self.message, self.file, self.line)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64: tiny, fast, and statistically solid enough for test-input
/// generation. Seeded from the property name so every test owns an
/// independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(hash)
    }

    /// Seeds the stream directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per
        // draw — irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn error_display_includes_location() {
        let e = TestCaseError::new("boom".into(), "x.rs", 12);
        assert_eq!(e.to_string(), "boom at x.rs:12");
    }
}
