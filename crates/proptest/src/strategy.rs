//! Value-generation strategies: the input half of the proptest API.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type from a deterministic RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// yields the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-shaped strategies producing
    /// the same value type can share a container (see [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniformly picks one of several boxed strategies per generated value.
/// Built by [`prop_oneof!`].
pub struct UnionStrategy<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> UnionStrategy<T> {
    /// Wraps a nonempty arm list.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty — a `prop_oneof![]` with no arms is a
    /// test-authoring bug worth failing loudly on.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        UnionStrategy { arms }
    }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// --- ranges ---------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Spans always fit u64 here: even i64/u64 full ranges do.
                let offset = rng.below(span as u64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --- any::<T>() -----------------------------------------------------------

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_arbitrary {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

tuple_arbitrary!(A);
tuple_arbitrary!(A, B);
tuple_arbitrary!(A, B, C);
tuple_arbitrary!(A, B, C, D);

/// Strategy generating unconstrained values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> AnyStrategy<T> {
    /// Const-constructible instance (used by `prop::num::u64::ANY`).
    pub const fn new() -> Self {
        AnyStrategy { _marker: PhantomData }
    }
}

impl<T> Default for AnyStrategy<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates unconstrained values of `T`: `any::<u64>()`, `any::<bool>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy::new()
}

/// Normal (finite, non-zero, non-subnormal) `f64` of either sign — the
/// `prop::num::f64::NORMAL` strategy.
#[derive(Debug, Clone, Copy)]
pub struct NormalF64;

impl Strategy for NormalF64 {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_normal() {
                return v;
            }
        }
    }
}

// --- tuples of strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!((A, 0));
tuple_strategy!((A, 0), (B, 1));
tuple_strategy!((A, 0), (B, 1), (C, 2));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_bounds_eventually() {
        let mut rng = TestRng::from_seed(1);
        let strat = 0u8..4;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn signed_ranges_honor_negative_starts() {
        let mut rng = TestRng::from_seed(2);
        let strat = -5i32..5;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = TestRng::from_seed(3);
        let strat = 0u64..u64::MAX;
        for _ in 0..50 {
            let _ = strat.generate(&mut rng);
        }
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::from_seed(4);
        let strat = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn union_only_yields_arm_values() {
        let mut rng = TestRng::from_seed(5);
        let strat = UnionStrategy::new(vec![Just(1u8).boxed(), Just(9u8).boxed()]);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || v == 9);
        }
    }
}
