//! Determinism contract: the same plan over the same workload reproduces
//! identical corruption, labels, and byte-identical reports.

use sslic_core::{DistanceMode, RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_fault::{
    run_sweep, to_json, to_markdown, EngineFaults, FaultKind, FaultPlan, FaultSite, HwFaults,
    SweepConfig,
};
use sslic_hw::accel::{Accelerator, AcceleratorConfig};
use sslic_hw::scratchpad::Protection;
use sslic_image::synthetic::SyntheticImage;

fn noisy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(FaultSite::ColorLut, FaultKind::SingleBitFlip, 4_000)
        .with(FaultSite::PixelFeature, FaultKind::SingleBitFlip, 4_000)
        .with(FaultSite::SigmaRegister, FaultKind::SingleBitFlip, 500)
        .with(FaultSite::ScratchpadWord, FaultKind::MultiBitFlip { bits: 2 }, 2_000)
        .with(FaultSite::DramBurst, FaultKind::Burst { span: 8 }, 500)
}

#[test]
fn faulted_engine_runs_replay_bit_identically() {
    let scene = SyntheticImage::builder(48, 36).seed(5).regions(4).build();
    let params = SlicParams::builder(40).iterations(4).build();
    let segmenter =
        Segmenter::sslic_ppa(params, 2).with_distance_mode(DistanceMode::quantized(8));
    let plan = noisy_plan(99);
    let lab8 = sslic_color::hw::HwColorConverter::paper_default().convert_image(&scene.rgb);

    let run = |lab8: &sslic_color::Lab8Image| {
        let faults = EngineFaults::new(&plan);
        let seg = segmenter.run(
            SegmentRequest::Lab8(lab8),
            &RunOptions::new().with_faults(&faults),
        );
        (seg.labels().as_slice().to_vec(), faults.injected_words())
    };
    let (labels_a, words_a) = run(&lab8);
    let (labels_b, words_b) = run(&lab8);
    assert_eq!(labels_a, labels_b);
    assert_eq!(words_a, words_b);
}

#[test]
fn faulted_hw_runs_replay_bit_identically() {
    let scene = SyntheticImage::builder(48, 36).seed(6).regions(4).build();
    let plan = noisy_plan(7);
    let mut cfg = AcceleratorConfig::new(40);
    cfg.iterations = 4;
    let accel = Accelerator::new(cfg);

    let run = || {
        let mut faults = HwFaults::new(&plan, Protection::Parity);
        let out = accel.process_with_faults(&scene.rgb, &mut faults);
        (out.labels.as_slice().to_vec(), out.retry_bursts, faults.stats)
    };
    let (la, ra, sa) = run();
    let (lb, rb, sb) = run();
    assert_eq!(la, lb);
    assert_eq!(ra, rb);
    assert_eq!(sa, sb);
}

#[test]
fn sweep_reports_are_byte_identical_across_runs() {
    let mut cfg = SweepConfig::smoke(17);
    cfg.rates_ppm = vec![0, 2_000];
    let a = run_sweep(&cfg);
    let b = run_sweep(&cfg);
    assert_eq!(to_json(&a), to_json(&b));
    assert_eq!(to_markdown(&a), to_markdown(&b));
}

#[test]
fn different_seeds_actually_change_the_injection() {
    let scene = SyntheticImage::builder(48, 36).seed(5).regions(4).build();
    let lab8 = sslic_color::hw::HwColorConverter::paper_default().convert_image(&scene.rgb);
    let corrupt = |seed: u64| {
        let plan = FaultPlan::new(seed).with(
            FaultSite::PixelFeature,
            FaultKind::SingleBitFlip,
            20_000,
        );
        let mut img = lab8.clone();
        let faults = EngineFaults::new(&plan);
        use sslic_core::StepFaults;
        faults.corrupt_lab8(&mut img);
        img.l.as_slice().to_vec()
    };
    assert_ne!(corrupt(1), corrupt(2));
}
