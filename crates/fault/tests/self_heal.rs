//! End-to-end self-healing: a SigmaRegister-only fault plan corrupts the
//! center table mid-stream. Without a recovery policy the session must
//! flag the damage (`Degraded`); with one it must retry from the frame
//! checkpoint and land bit-identical to the fault-free run — at every
//! thread count, because guards and retries live at serial sync points.
//!
//! The fault seed is discovered by a deterministic search rather than
//! pinned: the test walks seeds in order and takes the first plan whose
//! attempt-0 corruption trips a center guard on every frame while the
//! salted retry stream draws clean. The walk is a pure function of the
//! engine + injector, so the chosen seed is stable run-to-run.

use std::sync::OnceLock;

use sslic_core::{
    FrameReport, RecoveryOutcome, RecoveryPolicy, RunOptions, SegmentRequest, SegmentationStatus,
    Segmenter, SlicParams,
};
use sslic_fault::{EngineFaults, FaultKind, FaultPlan, FaultSite};
use sslic_image::synthetic::SyntheticImage;
use sslic_image::Plane;

const W: usize = 64;
const H: usize = 48;
const FRAMES: usize = 3;
/// SigmaRegister-only rate: low enough that the salted retry stream has a
/// real chance of drawing clean (the search below relies on it).
const RATE_PPM: u32 = 400;
const RETRIES: u32 = 2;
const SEED_SEARCH_LIMIT: u64 = 400;

/// The plan corrupts ONLY the center/sigma registers: a clean retry from
/// the checkpoint then reproduces the fault-free frame exactly, which is
/// what makes the labels-bit-equal acceptance meaningful.
fn sigma_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with(FaultSite::SigmaRegister, FaultKind::SingleBitFlip, RATE_PPM)
}

fn scenes() -> Vec<SyntheticImage> {
    (0..FRAMES)
        .map(|i| {
            SyntheticImage::builder(W, H)
                .seed(100 + i as u64)
                .regions(5)
                .build()
        })
        .collect()
}

fn segmenter(threads: usize) -> Segmenter {
    let params = SlicParams::builder(60)
        .iterations(4)
        .threads(threads)
        .build();
    Segmenter::sslic_ppa(params, 2)
}

/// Streams every scene through one warm session, returning per-frame
/// labels and reports.
fn run_stream(
    threads: usize,
    plan: Option<&FaultPlan>,
    policy: Option<&RecoveryPolicy>,
) -> Vec<(Plane<u32>, FrameReport)> {
    let seg = segmenter(threads);
    let mut session = seg.session(W, H);
    let faults = plan.map(EngineFaults::new);
    let mut out = Vec::with_capacity(FRAMES);
    for scene in &scenes() {
        let mut opts = RunOptions::new();
        if let Some(f) = &faults {
            opts = opts.with_faults(f);
        }
        if let Some(p) = policy {
            opts = opts.with_recovery(p);
        }
        let report = session.run(SegmentRequest::Rgb(&scene.rgb), &opts);
        out.push((session.labels().clone(), report));
    }
    out
}

fn reference() -> &'static Vec<(Plane<u32>, FrameReport)> {
    static REF: OnceLock<Vec<(Plane<u32>, FrameReport)>> = OnceLock::new();
    REF.get_or_init(|| run_stream(1, None, None))
}

/// First seed whose plan recovers to fault-free labels on every frame.
fn healing_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let reference = reference();
        let policy = RecoveryPolicy::new(RETRIES);
        'seeds: for seed in 0..SEED_SEARCH_LIMIT {
            let plan = sigma_plan(seed);
            let seg = segmenter(1);
            let mut session = seg.session(W, H);
            let faults = EngineFaults::new(&plan);
            for (i, scene) in scenes().iter().enumerate() {
                let report = session.run(
                    SegmentRequest::Rgb(&scene.rgb),
                    &RunOptions::new()
                        .with_faults(&faults)
                        .with_recovery(&policy),
                );
                // Every frame must actually be healed: corruption struck,
                // a guard tripped, and the retry reproduced the clean run
                // bit-for-bit — labels AND centers. The checksum clause
                // rejects seeds whose salted retry stream draws an
                // in-range (guard-invisible) flip that survives to the
                // final center table.
                if report.recovery().outcome != RecoveryOutcome::Recovered
                    || session.labels().as_slice() != reference[i].0.as_slice()
                    || report.recovery().center_checksum
                        != reference[i].1.recovery().center_checksum
                {
                    continue 'seeds;
                }
            }
            return seed;
        }
        panic!("no healing seed below {SEED_SEARCH_LIMIT}: guard/retry path is broken");
    })
}

#[test]
fn recovery_off_degrades_recovery_on_restores_fault_free_labels() {
    let seed = healing_seed();
    let plan = sigma_plan(seed);
    let reference = reference();

    // Without a policy the corrupted frames are flagged, not healed.
    let degraded = run_stream(1, Some(&plan), None);
    for (i, (labels, report)) in degraded.iter().enumerate() {
        assert_eq!(
            report.status(),
            SegmentationStatus::Degraded,
            "frame {i}: guard firings without a policy must degrade"
        );
        assert_eq!(report.recovery().outcome, RecoveryOutcome::Failed);
        assert_eq!(report.recovery().retries, 0, "no policy, no retries");
        assert!(report.recovery().guards_fired > 0);
        assert_ne!(
            labels.as_slice(),
            reference[i].0.as_slice(),
            "frame {i}: the corruption must actually perturb the labels"
        );
    }

    // With the policy every frame heals back to the fault-free stream.
    let policy = RecoveryPolicy::new(RETRIES);
    let healed = run_stream(1, Some(&plan), Some(&policy));
    for (i, (labels, report)) in healed.iter().enumerate() {
        assert_eq!(report.status(), SegmentationStatus::Recovered, "frame {i}");
        assert_eq!(report.recovery().outcome, RecoveryOutcome::Recovered);
        assert!(report.recovery().retries >= 1, "frame {i} must retry");
        assert!(report.recovery().guards_fired > 0, "frame {i}");
        assert_eq!(
            labels.as_slice(),
            reference[i].0.as_slice(),
            "frame {i}: healed labels must equal the fault-free run"
        );
        assert_eq!(
            report.recovery().center_checksum,
            reference[i].1.recovery().center_checksum,
            "frame {i}: healed center table must equal the fault-free run"
        );
    }
}

#[test]
fn self_healing_is_bit_identical_across_thread_counts() {
    let seed = healing_seed();
    let plan = sigma_plan(seed);
    let policy = RecoveryPolicy::new(RETRIES);
    let baseline = run_stream(1, Some(&plan), Some(&policy));
    for threads in [2usize, 8] {
        let other = run_stream(threads, Some(&plan), Some(&policy));
        for (i, ((labels_a, rep_a), (labels_b, rep_b))) in
            baseline.iter().zip(other.iter()).enumerate()
        {
            assert_eq!(
                labels_a.as_slice(),
                labels_b.as_slice(),
                "frame {i} labels differ at {threads} threads"
            );
            assert_eq!(
                rep_a.recovery(),
                rep_b.recovery(),
                "frame {i} recovery report differs at {threads} threads"
            );
            assert_eq!(rep_a.status(), rep_b.status(), "frame {i}");
            assert_eq!(rep_a.iterations_run(), rep_b.iterations_run(), "frame {i}");
        }
    }
}

#[test]
fn retry_budget_exhaustion_fails_frame_but_restores_checkpoint() {
    // A rate high enough that clean retry draws are hopeless: the ladder
    // must walk Rollback → ColdRestart → FailFrame deterministically and
    // still leave the session serviceable for the following frames.
    let plan = FaultPlan::new(9).with(FaultSite::SigmaRegister, FaultKind::SingleBitFlip, 50_000);
    let policy = RecoveryPolicy::new(RETRIES);
    let runs = run_stream(1, Some(&plan), Some(&policy));
    let mut saw_failed = false;
    for (i, (_, report)) in runs.iter().enumerate() {
        let rec = report.recovery();
        match rec.outcome {
            RecoveryOutcome::Failed => {
                saw_failed = true;
                assert_eq!(report.status(), SegmentationStatus::Degraded, "frame {i}");
                assert_eq!(rec.retries, RETRIES, "budget must be fully spent");
            }
            RecoveryOutcome::Recovered => assert!(rec.retries >= 1, "frame {i}"),
            RecoveryOutcome::Clean => panic!("frame {i}: 5% per word cannot draw clean"),
        }
    }
    assert!(
        saw_failed,
        "at 50_000 ppm at least one frame must exhaust the retry budget"
    );
}
