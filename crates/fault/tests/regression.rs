//! Bit-identity regression: supplying no fault plan (or an empty one) must
//! leave the engine's output bit-identical to the unhooked path, pinned by
//! a label-map checksum on a fixed synthetic scene.

use sslic_color::hw::HwColorConverter;
use sslic_core::{
    DistanceMode, RunOptions, SegmentRequest, SegmentationStatus, Segmenter, SlicParams,
};
use sslic_fault::{corrupt_color_lut, EngineFaults, FaultPlan};
use sslic_image::Plane;
use sslic_image::synthetic::SyntheticImage;

/// FNV-1a over the label words: stable, order-sensitive, dependency-free.
fn label_checksum(labels: &Plane<u32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &l in labels.as_slice() {
        h ^= l as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pinned checksum of the quantized-mode segmentation of the fixed scene
/// below. Any change to the fault-free datapath shows up here.
const PINNED_QUANTIZED_CHECKSUM: u64 = 0x8a1b_9b35_ba38_48cc;

fn fixed_scene() -> SyntheticImage {
    SyntheticImage::builder(64, 48).seed(2024).regions(5).build()
}

fn quantized_segmenter() -> Segmenter {
    let params = SlicParams::builder(60).iterations(5).build();
    Segmenter::sslic_ppa(params, 2).with_distance_mode(DistanceMode::quantized(8))
}

#[test]
fn fault_free_labels_match_the_pinned_checksum() {
    let seg = quantized_segmenter().run(
        SegmentRequest::Rgb(&fixed_scene().rgb),
        &RunOptions::new(),
    );
    assert_eq!(
        label_checksum(seg.labels()),
        PINNED_QUANTIZED_CHECKSUM,
        "fault-free quantized output drifted from the pinned labels"
    );
}

#[test]
fn empty_plan_is_bit_identical_to_the_unhooked_path() {
    let scene = fixed_scene();
    let segmenter = quantized_segmenter();
    let plan = FaultPlan::new(123);

    let clean = segmenter.run(SegmentRequest::Rgb(&scene.rgb), &RunOptions::new());

    let mut conv = HwColorConverter::paper_default();
    assert_eq!(corrupt_color_lut(&plan, &mut conv), 0);
    let lab8 = conv.convert_image(&scene.rgb);
    let faults = EngineFaults::new(&plan);
    let hooked = segmenter.run(
        SegmentRequest::Lab8(&lab8),
        &RunOptions::new().with_faults(&faults),
    );

    assert_eq!(clean.labels().as_slice(), hooked.labels().as_slice());
    assert_eq!(label_checksum(hooked.labels()), PINNED_QUANTIZED_CHECKSUM);
    assert_eq!(hooked.status(), SegmentationStatus::Ok);
    assert_eq!(hooked.invariant_repairs(), 0);
    assert_eq!(faults.injected_words(), 0);
}

#[test]
fn direct_and_faultless_hooked_apis_agree_in_float_mode_too() {
    let scene = fixed_scene();
    let params = SlicParams::builder(60).iterations(5).build();
    let segmenter = Segmenter::sslic_ppa(params, 2);
    let clean = segmenter.run(SegmentRequest::Rgb(&scene.rgb), &RunOptions::new());
    let plan = FaultPlan::new(0);
    let faults = EngineFaults::new(&plan);
    let hooked = segmenter.run(
        SegmentRequest::Rgb(&scene.rgb),
        &RunOptions::new().with_faults(&faults),
    );
    assert_eq!(clean.labels().as_slice(), hooked.labels().as_slice());
}
