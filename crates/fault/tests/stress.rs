//! Graceful-degradation stress: over a thousand seeded faulted runs
//! through the engine and the hardware model (built with overflow checks
//! in the test profiles) must all terminate with fully assigned, in-range
//! label maps — no hangs, no panics, no invalid output.

use sslic_core::{DistanceMode, RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_fault::{
    corrupt_color_lut, EngineFaults, FaultKind, FaultPlan, FaultSite, HwFaults,
};
use sslic_hw::accel::{Accelerator, AcceleratorConfig};
use sslic_hw::scratchpad::Protection;
use sslic_image::synthetic::SyntheticImage;
use sslic_image::Plane;

fn assert_valid_labels(labels: &Plane<u32>, k: usize, ctx: &str) {
    assert!(labels.len() > 0, "{ctx}: empty label map");
    for (i, &l) in labels.as_slice().iter().enumerate() {
        assert!(
            (l as usize) < k,
            "{ctx}: label {l} at {i} out of range 0..{k}"
        );
    }
}

/// A plan mixing every fault kind at an aggressive, seed-varied rate.
fn stress_plan(seed: u64) -> FaultPlan {
    let rate = 1_000 + (seed % 7) as u32 * 9_000;
    FaultPlan::new(seed)
        .with(FaultSite::ColorLut, FaultKind::SingleBitFlip, rate)
        .with(FaultSite::PixelFeature, FaultKind::SingleBitFlip, rate)
        .with(FaultSite::SigmaRegister, FaultKind::SingleBitFlip, rate / 2)
        .with(
            FaultSite::SigmaRegister,
            FaultKind::StuckAt {
                bit: (seed % 32) as u32,
                value: seed % 2 == 0,
            },
            rate / 2,
        )
        .with(FaultSite::ScratchpadWord, FaultKind::MultiBitFlip { bits: 2 }, rate)
        .with(FaultSite::DramBurst, FaultKind::Burst { span: 8 }, rate / 4)
}

#[test]
fn six_hundred_faulted_engine_runs_all_terminate_valid() {
    let scene = SyntheticImage::builder(32, 24).seed(77).regions(4).build();
    let params = SlicParams::builder(12).iterations(3).build();
    let segmenter =
        Segmenter::sslic_ppa(params, 2).with_distance_mode(DistanceMode::quantized(8));
    for seed in 0..600u64 {
        let plan = stress_plan(seed);
        let mut conv = sslic_color::hw::HwColorConverter::paper_default();
        corrupt_color_lut(&plan, &mut conv);
        let lab8 = conv.convert_image(&scene.rgb);
        let faults = EngineFaults::new(&plan);
        let seg = segmenter.run(
            SegmentRequest::Lab8(&lab8),
            &RunOptions::new().with_faults(&faults),
        );
        assert_valid_labels(
            seg.labels(),
            seg.cluster_count(),
            &format!("engine seed {seed}"),
        );
    }
}

#[test]
fn four_hundred_faulted_hw_runs_all_terminate_valid() {
    let scene = SyntheticImage::builder(32, 24).seed(78).regions(4).build();
    let schemes = [
        Protection::Unprotected,
        Protection::Parity,
        Protection::Secded,
    ];
    let mut cfg = AcceleratorConfig::new(12);
    cfg.iterations = 3;
    for seed in 0..400u64 {
        let protection = schemes[(seed % 3) as usize];
        cfg.protection = protection;
        let accel = Accelerator::new(cfg);
        let plan = stress_plan(seed.wrapping_add(10_000));
        let mut faults = HwFaults::new(&plan, protection);
        let run = accel.process_with_faults(&scene.rgb, &mut faults);
        assert_valid_labels(
            &run.labels,
            run.centers.len(),
            &format!("hw seed {seed} {}", protection.name()),
        );
    }
}

#[test]
fn saturated_fault_rates_still_terminate() {
    // Every word corrupted on every access: quality is gone, but the
    // output must still be a valid label map.
    let scene = SyntheticImage::builder(24, 18).seed(9).regions(3).build();
    let plan = FaultPlan::uniform(4, FaultKind::SingleBitFlip, 1_000_000);
    let params = SlicParams::builder(8).iterations(2).build();
    let segmenter =
        Segmenter::sslic_ppa(params, 2).with_distance_mode(DistanceMode::quantized(8));
    let mut conv = sslic_color::hw::HwColorConverter::paper_default();
    corrupt_color_lut(&plan, &mut conv);
    let lab8 = conv.convert_image(&scene.rgb);
    let faults = EngineFaults::new(&plan);
    let seg = segmenter.run(
        SegmentRequest::Lab8(&lab8),
        &RunOptions::new().with_faults(&faults),
    );
    assert_valid_labels(seg.labels(), seg.cluster_count(), "saturated engine");

    let mut cfg = AcceleratorConfig::new(8);
    cfg.iterations = 2;
    let accel = Accelerator::new(cfg);
    let mut hw_faults = HwFaults::new(&plan, Protection::Unprotected);
    let run = accel.process_with_faults(&scene.rgb, &mut hw_faults);
    assert_valid_labels(&run.labels, run.centers.len(), "saturated hw");
}
