//! Thread-count invariance under active fault injection: corruption is a
//! stateless address hash and the engine's hooks fire only at serial
//! synchronization points, so a faulted run must stay bit-identical for
//! every thread count — pinned by checksums on a fixed scene. Runs under
//! the workspace's overflow-checked test profile.

use sslic_core::{DistanceMode, RunOptions, SegmentRequest, Segmenter, SlicParams};
use sslic_fault::{EngineFaults, FaultKind, FaultPlan, FaultSite};
use sslic_image::synthetic::SyntheticImage;
use sslic_image::Plane;

const THREADS: [usize; 4] = [1, 2, 3, 8];

/// FNV-1a over the label words (shared with the regression suite).
fn label_checksum(labels: &Plane<u32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &l in labels.as_slice() {
        h ^= l as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fixed_scene() -> SyntheticImage {
    SyntheticImage::builder(64, 48).seed(2024).regions(5).build()
}

/// An aggressive plan hitting both engine fault sites.
fn active_plan() -> FaultPlan {
    FaultPlan::new(4242)
        .with(FaultSite::PixelFeature, FaultKind::SingleBitFlip, 8_000)
        .with(FaultSite::SigmaRegister, FaultKind::SingleBitFlip, 1_000)
}

fn faulted_checksum(threads: usize, cpa: bool) -> (u64, u64) {
    let params = SlicParams::builder(60)
        .iterations(5)
        .threads(threads)
        .build();
    let seg = if cpa {
        Segmenter::sslic_cpa(params, 2)
    } else {
        Segmenter::sslic_ppa(params, 2)
    };
    let seg = seg.with_distance_mode(DistanceMode::quantized(8));
    let plan = active_plan();
    let faults = EngineFaults::new(&plan);
    let out = seg.run(
        SegmentRequest::Rgb(&fixed_scene().rgb),
        &RunOptions::new().with_faults(&faults),
    );
    (label_checksum(out.labels()), faults.injected_words())
}

const PINNED_FAULTED_PPA: u64 = 0xb07d_2607_bd02_fd5e;
const PINNED_FAULTED_CPA: u64 = 0x5421_7005_f627_af3b;

#[test]
fn faulted_ppa_is_pinned_for_every_thread_count() {
    let mut words = None;
    for t in THREADS {
        let (sum, injected) = faulted_checksum(t, false);
        assert_eq!(
            sum, PINNED_FAULTED_PPA,
            "faulted PPA at {t} threads drifted: got {sum:#018x}"
        );
        assert!(injected > 0, "the plan must actually corrupt something");
        match words {
            None => words = Some(injected),
            Some(expect) => assert_eq!(injected, expect, "injection count at {t} threads"),
        }
    }
}

#[test]
fn faulted_cpa_is_pinned_for_every_thread_count() {
    for t in THREADS {
        let (sum, injected) = faulted_checksum(t, true);
        assert_eq!(
            sum, PINNED_FAULTED_CPA,
            "faulted CPA at {t} threads drifted: got {sum:#018x}"
        );
        assert!(injected > 0, "the plan must actually corrupt something");
    }
}

#[test]
fn faulted_and_clean_runs_differ() {
    // Guard against the pins accidentally pinning a no-op plan.
    let params = SlicParams::builder(60).iterations(5).build();
    let seg = Segmenter::sslic_ppa(params, 2).with_distance_mode(DistanceMode::quantized(8));
    let clean = seg.run(SegmentRequest::Rgb(&fixed_scene().rgb), &RunOptions::new());
    assert_ne!(label_checksum(clean.labels()), PINNED_FAULTED_PPA);
}

#[test]
fn faulted_session_frames_match_the_one_shot_pins() {
    // The streaming session shares the one-shot execution engine, so an
    // actively faulted frame must land on the same pinned checksums — at
    // any thread count, and on a reused session (frame > 0) just as on a
    // fresh one.
    use sslic_image::Plane as P;
    let scene = fixed_scene();
    for (cpa, pinned) in [(false, PINNED_FAULTED_PPA), (true, PINNED_FAULTED_CPA)] {
        for t in [1usize, 2, 8] {
            let params = SlicParams::builder(60)
                .iterations(5)
                .threads(t)
                .build();
            let seg = if cpa {
                Segmenter::sslic_cpa(params, 2)
            } else {
                Segmenter::sslic_ppa(params, 2)
            };
            let seg = seg.with_distance_mode(DistanceMode::quantized(8));
            let plan = active_plan();
            let faults = EngineFaults::new(&plan);
            let mut session = seg.session(64, 48);
            let mut out = P::filled(64, 48, 0u32);
            for frame in 0..2 {
                session.run_into(
                    SegmentRequest::Rgb(&scene.rgb),
                    &RunOptions::new().with_faults(&faults),
                    &mut out,
                );
                let sum = label_checksum(&out);
                assert_eq!(
                    sum, pinned,
                    "faulted session frame {frame} (cpa={cpa}, {t} threads) \
                     drifted: got {sum:#018x}"
                );
            }
        }
    }
}
