//! Adapters wiring a [`FaultPlan`] into the injection hooks of the engine
//! (`sslic-core`), the color converter (`sslic-color`), and the hardware
//! model (`sslic-hw`).
//!
//! Float-typed victims (the engine's f32 center registers) are corrupted
//! through their IEEE-754 bit patterns; everything else is corrupted as
//! raw integer words. All corruption decisions route through
//! [`crate::inject::effect_at`], so the adapters inherit its determinism
//! and order-independence.

use std::cell::Cell;

use sslic_color::hw::HwColorConverter;
use sslic_color::Lab8Image;
use sslic_core::{Cluster, StepFaults};
use sslic_hw::faults::{FaultedByte, FaultedLabel, MemFaults};
use sslic_hw::scratchpad::Protection;
use sslic_obs::{LogicalClock, Recorder, Value};

use crate::inject::effect_at;
use crate::plan::{FaultPlan, FaultSite};
use crate::protect::{filter_word, MemOutcome, ProtectionStats};

/// Bit width of a gamma-LUT entry at the paper's 12 fraction bits (values
/// span `0 ..= 4096`).
const GAMMA_LUT_BITS: u32 = 13;
/// Center registers are corrupted across the full f32 bit pattern.
const CENTER_FIELD_BITS: u32 = 32;
/// Channel-memory words are one 8-bit code.
const CHANNEL_WORD_BITS: u32 = 8;
/// Index-memory words are two bytes per label.
const INDEX_WORD_BITS: u32 = 16;

/// Engine-side fault adapter: implements
/// [`sslic_core::StepFaults`] over a plan's
/// [`FaultSite::PixelFeature`] and [`FaultSite::SigmaRegister`] entries.
#[derive(Debug)]
pub struct EngineFaults<'a> {
    plan: &'a FaultPlan,
    /// Words actually corrupted so far (pixel bytes + center fields).
    /// Interior-mutable because the [`StepFaults`] hooks take `&self`
    /// (the engine shares the hook object by shared reference).
    injected_words: Cell<u64>,
    /// Current recovery attempt of the running frame, folded into the
    /// center-corruption address space so a retried attempt draws a fresh
    /// (still deterministic) decision stream instead of re-corrupting
    /// identically. Attempt 0 leaves addresses untouched, keeping
    /// recovery-free runs bit-identical to this adapter's history.
    attempt: Cell<u32>,
    recorder: Option<&'a Recorder>,
}

impl<'a> EngineFaults<'a> {
    /// Creates the adapter over `plan`.
    pub fn new(plan: &'a FaultPlan) -> Self {
        EngineFaults {
            plan,
            injected_words: Cell::new(0),
            attempt: Cell::new(0),
            recorder: None,
        }
    }

    /// Attaches an observability recorder: each injection pass that
    /// corrupts at least one word emits a `fault.inject.*` instant, and
    /// the corrupted-word total accumulates in the
    /// `fault.injected_words` metric counter.
    pub fn with_recorder(mut self, recorder: &'a Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Words actually corrupted so far (pixel bytes + center fields).
    pub fn injected_words(&self) -> u64 {
        self.injected_words.get()
    }
}

impl StepFaults for EngineFaults<'_> {
    fn begin_attempt(&self, attempt: u32) {
        self.attempt.set(attempt);
    }

    fn corrupt_lab8(&self, lab8: &mut Lab8Image) {
        if self.plan.is_empty() {
            return;
        }
        let mut corrupted = 0u64;
        let planes = [&mut lab8.l, &mut lab8.a, &mut lab8.b];
        for (channel, plane) in planes.into_iter().enumerate() {
            for (i, byte) in plane.as_mut_slice().iter_mut().enumerate() {
                let addr = ((channel as u64) << 40) | i as u64;
                let eff = effect_at(self.plan, FaultSite::PixelFeature, addr, CHANNEL_WORD_BITS);
                if eff.is_clean() {
                    continue;
                }
                let was = *byte;
                *byte = (eff.apply(was as u64) & 0xFF) as u8;
                if *byte != was {
                    corrupted += 1;
                }
            }
        }
        self.injected_words
            .set(self.injected_words.get() + corrupted);
        if corrupted > 0 {
            if let Some(rec) = self.recorder {
                rec.instant(
                    "fault.inject.lab8",
                    LogicalClock::ZERO,
                    vec![("corrupted_words", Value::U64(corrupted))],
                );
                rec.counter_add("fault.injected_words", corrupted);
            }
        }
    }

    fn corrupt_centers(&self, step: u32, clusters: &mut [Cluster]) {
        if self.plan.is_empty() {
            return;
        }
        let mut corrupted = 0u64;
        // Attempt salt: retries address a disjoint slice of the decision
        // stream (bits 48+ are unused by the step/cluster/field encoding),
        // so a rolled-back attempt is not doomed to the identical
        // corruption. Attempt 0 contributes no salt.
        let salt = u64::from(self.attempt.get()) << 48;
        for (k, cluster) in clusters.iter_mut().enumerate() {
            let fields: [&mut f32; 5] = [
                &mut cluster.l,
                &mut cluster.a,
                &mut cluster.b,
                &mut cluster.x,
                &mut cluster.y,
            ];
            for (f, field) in fields.into_iter().enumerate() {
                let addr = salt | ((step as u64) << 40) | ((k as u64) << 3) | f as u64;
                let eff = effect_at(self.plan, FaultSite::SigmaRegister, addr, CENTER_FIELD_BITS);
                if eff.is_clean() {
                    continue;
                }
                let was = field.to_bits();
                let now = (eff.apply(was as u64) & 0xFFFF_FFFF) as u32;
                if now != was {
                    *field = f32::from_bits(now);
                    corrupted += 1;
                }
            }
        }
        self.injected_words
            .set(self.injected_words.get() + corrupted);
        if corrupted > 0 {
            if let Some(rec) = self.recorder {
                rec.instant(
                    "fault.inject.centers",
                    LogicalClock::step(step),
                    vec![("corrupted_fields", Value::U64(corrupted))],
                );
                rec.counter_add("fault.injected_words", corrupted);
            }
        }
    }
}

/// Applies a plan's [`FaultSite::ColorLut`] entries to a converter's
/// gamma LUT, returning the number of entries corrupted. The corrupted
/// converter then feeds faulty codes into every subsequent conversion —
/// pair with [`sslic_core::Segmenter::run`] over a
/// [`sslic_core::SegmentRequest::Lab8`] to push the result through the
/// engine.
pub fn corrupt_color_lut(plan: &FaultPlan, conv: &mut HwColorConverter) -> u64 {
    let mut corrupted = 0u64;
    for code in 0..=255u16 {
        let code = (code & 0xFF) as u8;
        let eff = effect_at(plan, FaultSite::ColorLut, code as u64, GAMMA_LUT_BITS);
        if eff.is_clean() {
            continue;
        }
        let entry = conv.gamma_entry(code);
        // Entries are non-negative and fit the 13-bit field by
        // construction of the paper-default table.
        let old = (entry as i64 as u64) & 0x1FFF;
        let new = eff.apply(old) & 0x1FFF;
        if new != old {
            conv.corrupt_gamma_entry(code, (old ^ new) as i32);
            corrupted += 1;
        }
    }
    corrupted
}

/// Hardware-side fault adapter: implements
/// [`sslic_hw::faults::MemFaults`] over a plan's
/// [`FaultSite::ScratchpadWord`] and [`FaultSite::DramBurst`] entries,
/// filtering every read through a [`Protection`] scheme and tallying
/// outcomes.
#[derive(Debug)]
pub struct HwFaults<'a> {
    plan: &'a FaultPlan,
    protection: Protection,
    /// Outcome tallies across all hooked reads.
    pub stats: ProtectionStats,
    recorder: Option<&'a Recorder>,
}

impl<'a> HwFaults<'a> {
    /// Creates the adapter over `plan` with `protection` on every
    /// scratchpad word.
    pub fn new(plan: &'a FaultPlan, protection: Protection) -> Self {
        HwFaults {
            plan,
            protection,
            stats: ProtectionStats::default(),
            recorder: None,
        }
    }

    /// Attaches an observability recorder: every non-clean read outcome
    /// bumps a `fault.hw.*` metric counter (`silent`, `corrected`,
    /// `detected_retries`). Per-word instants are deliberately not
    /// emitted — heavy plans would produce millions of events.
    pub fn with_recorder(mut self, recorder: &'a Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The protection scheme in force.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    fn record(&mut self, outcome: MemOutcome) {
        self.stats.record(outcome);
        if let Some(rec) = self.recorder {
            match outcome {
                MemOutcome::Clean => {}
                MemOutcome::Silent => rec.counter_add("fault.hw.silent", 1),
                MemOutcome::Corrected => rec.counter_add("fault.hw.corrected", 1),
                MemOutcome::DetectedRetry => rec.counter_add("fault.hw.detected_retries", 1),
                MemOutcome::Undetected => rec.counter_add("fault.hw.undetected", 1),
            }
        }
    }
}

impl MemFaults for HwFaults<'_> {
    fn channel_read(&mut self, step: u32, channel: u8, addr: u64, value: u8) -> FaultedByte {
        let a = ((step as u64) << 44) | ((channel as u64) << 40) | addr;
        let eff = effect_at(self.plan, FaultSite::ScratchpadWord, a, CHANNEL_WORD_BITS)
            .merged(effect_at(self.plan, FaultSite::DramBurst, a, CHANNEL_WORD_BITS));
        let (v, outcome) = filter_word(self.protection, value as u64, &eff);
        self.record(outcome);
        FaultedByte {
            value: (v & 0xFF) as u8,
            retried: outcome == MemOutcome::DetectedRetry,
        }
    }

    fn index_read(&mut self, addr: u64, label: u32) -> FaultedLabel {
        // The index memory shares the scratchpad site under its own
        // channel namespace (3 = index).
        let a = (3u64 << 40) | addr;
        let eff = effect_at(self.plan, FaultSite::ScratchpadWord, a, INDEX_WORD_BITS)
            .merged(effect_at(self.plan, FaultSite::DramBurst, a, INDEX_WORD_BITS));
        let (v, outcome) = filter_word(self.protection, label as u64, &eff);
        self.record(outcome);
        FaultedLabel {
            value: (v & 0xFFFF) as u32,
            retried: outcome == MemOutcome::DetectedRetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;
    use sslic_image::synthetic::SyntheticImage;

    #[test]
    fn empty_plan_adapters_are_no_ops() {
        let plan = FaultPlan::new(1);
        let img = SyntheticImage::builder(16, 12).seed(0).regions(3).build();
        let mut lab8 = HwColorConverter::paper_default().convert_image(&img.rgb);
        let before = lab8.clone();
        let ef = EngineFaults::new(&plan);
        ef.corrupt_lab8(&mut lab8);
        assert_eq!(lab8.l.as_slice(), before.l.as_slice());
        assert_eq!(ef.injected_words(), 0);

        let mut conv = HwColorConverter::paper_default();
        assert_eq!(corrupt_color_lut(&plan, &mut conv), 0);

        let mut hf = HwFaults::new(&plan, Protection::Unprotected);
        let r = hf.channel_read(0, 0, 5, 0x42);
        assert_eq!((r.value, r.retried), (0x42, false));
        assert_eq!(hf.stats.corrupted_reads(), 0);
    }

    #[test]
    fn pixel_feature_corruption_is_deterministic() {
        let plan = FaultPlan::new(77).with(
            FaultSite::PixelFeature,
            FaultKind::SingleBitFlip,
            30_000,
        );
        let img = SyntheticImage::builder(32, 24).seed(1).regions(4).build();
        let clean = HwColorConverter::paper_default().convert_image(&img.rgb);
        let mut a = clean.clone();
        let mut b = clean.clone();
        EngineFaults::new(&plan).corrupt_lab8(&mut a);
        EngineFaults::new(&plan).corrupt_lab8(&mut b);
        assert_eq!(a.l.as_slice(), b.l.as_slice());
        assert_eq!(a.a.as_slice(), b.a.as_slice());
        assert_ne!(a.l.as_slice(), clean.l.as_slice(), "something must flip");
    }

    #[test]
    fn color_lut_corruption_changes_conversions_and_is_reversible() {
        let plan = FaultPlan::new(5).with(FaultSite::ColorLut, FaultKind::SingleBitFlip, 200_000);
        let mut conv = HwColorConverter::paper_default();
        let n = corrupt_color_lut(&plan, &mut conv);
        assert!(n > 0, "at 20 % per entry some of 256 entries corrupt");
        let reference = HwColorConverter::paper_default();
        let differs = (0..=255u8).any(|c| conv.gamma_entry(c) != reference.gamma_entry(c));
        assert!(differs);
        // Same plan again XORs the same masks back in: full restore.
        let n2 = corrupt_color_lut(&plan, &mut conv);
        assert_eq!(n, n2);
        for c in 0..=255u8 {
            assert_eq!(conv.gamma_entry(c), reference.gamma_entry(c));
        }
    }

    #[test]
    fn traced_injection_emits_events_and_metric_counters() {
        let plan = FaultPlan::new(77).with(
            FaultSite::PixelFeature,
            FaultKind::SingleBitFlip,
            30_000,
        );
        let img = SyntheticImage::builder(32, 24).seed(1).regions(4).build();
        let mut lab8 = HwColorConverter::paper_default().convert_image(&img.rgb);
        let rec = Recorder::deterministic();
        let ef = EngineFaults::new(&plan).with_recorder(&rec);
        ef.corrupt_lab8(&mut lab8);
        assert!(ef.injected_words() > 0);
        let events = rec.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "fault.inject.lab8")
                .count(),
            1
        );
        assert_eq!(
            events[0].attr_u64("corrupted_words"),
            ef.injected_words(),
            "instant carries the corrupted-word count"
        );
        assert_eq!(
            rec.metrics().counter("fault.injected_words"),
            ef.injected_words()
        );

        let hw_plan = FaultPlan::new(9).with(
            FaultSite::ScratchpadWord,
            FaultKind::SingleBitFlip,
            300_000,
        );
        let rec2 = Recorder::deterministic();
        let mut hf = HwFaults::new(&hw_plan, Protection::Parity).with_recorder(&rec2);
        for addr in 0..2048u64 {
            let _ = hf.channel_read(0, 0, addr, 0x5A);
        }
        assert!(hf.stats.detected_retries > 0);
        assert_eq!(
            rec2.metrics().counter("fault.hw.detected_retries"),
            hf.stats.detected_retries
        );
    }

    #[test]
    fn hw_adapter_retries_under_parity_and_corrects_under_secded() {
        let plan = FaultPlan::new(9).with(
            FaultSite::ScratchpadWord,
            FaultKind::SingleBitFlip,
            300_000,
        );
        let mut parity = HwFaults::new(&plan, Protection::Parity);
        let mut secded = HwFaults::new(&plan, Protection::Secded);
        let mut raw = HwFaults::new(&plan, Protection::Unprotected);
        for addr in 0..4096u64 {
            let p = parity.channel_read(0, 1, addr, 0x5A);
            let s = secded.channel_read(0, 1, addr, 0x5A);
            let r = raw.channel_read(0, 1, addr, 0x5A);
            // Single-bit flips: parity restores via retry, secded corrects
            // in place, unprotected passes the corruption.
            assert_eq!(p.value, 0x5A);
            assert_eq!(s.value, 0x5A);
            assert!(!s.retried);
            if r.value != 0x5A {
                assert!(p.retried || parity.stats.detected_retries > 0);
            }
        }
        assert!(raw.stats.silent > 0);
        assert_eq!(parity.stats.detected_retries, raw.stats.silent);
        assert_eq!(secded.stats.corrected, raw.stats.silent);
        assert_eq!(parity.stats.corrupted_reads(), 0);
        assert_eq!(secded.stats.corrupted_reads(), 0);
    }
}
