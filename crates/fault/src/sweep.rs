//! The fault sweep: segmentation quality as a function of fault rate and
//! protection scheme, on both the software engine and the functional
//! hardware model.
//!
//! Everything here is deterministic: the synthetic scenes, the fault
//! plans, and the injection itself all derive from [`SweepConfig::seed`],
//! so two runs of [`run_sweep`] with the same config produce identical
//! [`SweepResult`]s (and, through [`crate::report`], byte-identical
//! reports).

use sslic_core::{RecoveryPolicy, RunOptions, SegmentRequest, SegmentationStatus, Segmenter};
use sslic_hw::accel::{Accelerator, AcceleratorConfig};
use sslic_hw::scratchpad::Protection;
use sslic_image::synthetic::SyntheticImage;
use sslic_metrics::{boundary_recall, undersegmentation_error};

use sslic_color::hw::HwColorConverter;
use sslic_core::DistanceMode;

use crate::hooks::{corrupt_color_lut, EngineFaults, HwFaults};
use crate::plan::{FaultKind, FaultPlan, FaultSite};
use crate::protect::ProtectionStats;

/// Boundary-recall tolerance (pixels) used for all sweep points.
const BR_TOLERANCE: usize = 2;

/// Geometry, workload, and axis definition of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Master seed: drives the synthetic scene and every fault plan.
    pub seed: u64,
    /// Scene width in pixels.
    pub width: usize,
    /// Scene height in pixels.
    pub height: usize,
    /// Ground-truth region count of the synthetic scene.
    pub regions: usize,
    /// Target superpixel count `K`.
    pub superpixels: usize,
    /// Center-update steps.
    pub iterations: u32,
    /// S-SLIC subset count.
    pub subsets: u32,
    /// Fault-rate axis, in parts per million per addressable word.
    pub rates_ppm: Vec<u32>,
    /// Protection-scheme axis for the hardware model.
    pub protections: Vec<Protection>,
}

impl SweepConfig {
    /// A seconds-scale smoke configuration (used by CI).
    pub fn smoke(seed: u64) -> Self {
        SweepConfig {
            seed,
            width: 64,
            height: 48,
            regions: 5,
            superpixels: 60,
            iterations: 4,
            subsets: 2,
            rates_ppm: vec![0, 200, 2_000, 20_000],
            protections: vec![
                Protection::Unprotected,
                Protection::Parity,
                Protection::Secded,
            ],
        }
    }

    /// A denser configuration for offline characterization.
    pub fn full(seed: u64) -> Self {
        SweepConfig {
            width: 160,
            height: 120,
            regions: 8,
            superpixels: 150,
            iterations: 6,
            rates_ppm: vec![0, 50, 200, 1_000, 5_000, 20_000, 100_000],
            ..SweepConfig::smoke(seed)
        }
    }

    /// The fault plan exercised at one rate point. The per-site rates are
    /// scaled so the large sites (pixel words) do not completely drown the
    /// small ones (sigma registers, burst groups) at equal `rate_ppm`.
    pub fn plan_at(&self, rate_ppm: u32) -> FaultPlan {
        FaultPlan::new(self.seed)
            .with(FaultSite::ColorLut, FaultKind::SingleBitFlip, rate_ppm)
            .with(FaultSite::PixelFeature, FaultKind::SingleBitFlip, rate_ppm)
            .with(
                FaultSite::SigmaRegister,
                FaultKind::SingleBitFlip,
                rate_ppm / 8,
            )
            .with(FaultSite::ScratchpadWord, FaultKind::SingleBitFlip, rate_ppm)
            .with(
                FaultSite::ScratchpadWord,
                FaultKind::MultiBitFlip { bits: 2 },
                rate_ppm / 4,
            )
            .with(
                FaultSite::DramBurst,
                FaultKind::Burst { span: 8 },
                rate_ppm / 8,
            )
    }
}

/// One hardware-model sweep point: a `(fault rate, protection)` pair.
#[derive(Debug, Clone)]
pub struct HwPoint {
    /// Fault rate of this point, parts per million.
    pub rate_ppm: u32,
    /// Protection scheme of this point.
    pub protection: Protection,
    /// Undersegmentation error against the synthetic ground truth.
    pub undersegmentation_error: f64,
    /// Boundary recall against the synthetic ground truth.
    pub boundary_recall: f64,
    /// Protected-read outcome tallies.
    pub stats: ProtectionStats,
    /// DRAM retry bursts charged for detected errors.
    pub retry_bursts: u64,
    /// Out-of-range labels repaired at readout.
    pub label_repairs: u64,
    /// Total scratchpad energy (µJ), including protection and retry
    /// overheads.
    pub sram_energy_uj: f64,
}

/// One engine sweep point (protection-independent: the engine models the
/// raw algorithmic datapath).
#[derive(Debug, Clone)]
pub struct EnginePoint {
    /// Fault rate of this point, parts per million.
    pub rate_ppm: u32,
    /// Undersegmentation error against the synthetic ground truth.
    pub undersegmentation_error: f64,
    /// Boundary recall against the synthetic ground truth.
    pub boundary_recall: f64,
    /// Whether the engine flagged the run as degraded.
    pub degraded: bool,
    /// Invariant repairs (center clamps + label-range fixes) performed.
    pub repairs: u64,
    /// Gamma-LUT entries corrupted before conversion.
    pub lut_entries_corrupted: u64,
    /// Pixel bytes and center fields corrupted during iteration.
    pub injected_words: u64,
}

/// Retry budget of the sweep's recovered-quality curve.
pub const SWEEP_RECOVERY_RETRIES: u32 = 2;

/// One recovery-enabled engine sweep point: the same plan and workload as
/// the matching [`EnginePoint`], re-run under a
/// [`RecoveryPolicy`] so the curves compare
/// recovery-off against recovery-on quality.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// Fault rate of this point, parts per million.
    pub rate_ppm: u32,
    /// Undersegmentation error against the synthetic ground truth.
    pub undersegmentation_error: f64,
    /// Boundary recall against the synthetic ground truth.
    pub boundary_recall: f64,
    /// Recovery outcome (`clean`, `recovered`, or `failed`).
    pub outcome: String,
    /// Invariant-guard firings summed over every attempt.
    pub guards_fired: u64,
    /// Frame re-runs taken by the policy.
    pub retries: u64,
    /// Cold-restart escalations among the retries.
    pub escalations: u64,
}

/// The full result of one sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The configuration that produced it.
    pub config: SweepConfig,
    /// Hardware-model points, in `rates_ppm` × `protections` order.
    pub hw: Vec<HwPoint>,
    /// Engine points, in `rates_ppm` order.
    pub engine: Vec<EnginePoint>,
    /// Recovery-enabled engine points, in `rates_ppm` order.
    pub recovered: Vec<RecoveryPoint>,
}

/// Runs the sweep described by `config`.
pub fn run_sweep(config: &SweepConfig) -> SweepResult {
    let scene = SyntheticImage::builder(config.width, config.height)
        .seed(config.seed)
        .regions(config.regions)
        .build();

    let mut hw = Vec::new();
    for &rate in &config.rates_ppm {
        let plan = config.plan_at(rate);
        for &protection in &config.protections {
            let mut cfg = AcceleratorConfig::new(config.superpixels);
            cfg.iterations = config.iterations;
            cfg.subsets = config.subsets;
            cfg.protection = protection;
            let accel = Accelerator::new(cfg);
            let mut faults = HwFaults::new(&plan, protection);
            let run = accel.process_with_faults(&scene.rgb, &mut faults);
            hw.push(HwPoint {
                rate_ppm: rate,
                protection,
                undersegmentation_error: undersegmentation_error(
                    &run.labels,
                    &scene.ground_truth,
                ),
                boundary_recall: boundary_recall(&run.labels, &scene.ground_truth, BR_TOLERANCE),
                stats: faults.stats,
                retry_bursts: run.retry_bursts,
                label_repairs: run.label_repairs,
                sram_energy_uj: run.scratchpads.energy_uj(),
            });
        }
    }

    let params = sslic_core::SlicParams::builder(config.superpixels)
        .iterations(config.iterations)
        .build();
    let segmenter = Segmenter::sslic_ppa(params, config.subsets)
        .with_distance_mode(DistanceMode::quantized(8));
    let mut engine = Vec::new();
    for &rate in &config.rates_ppm {
        let plan = config.plan_at(rate);
        let mut conv = HwColorConverter::paper_default();
        let lut_entries_corrupted = corrupt_color_lut(&plan, &mut conv);
        let lab8 = conv.convert_image(&scene.rgb);
        let faults = EngineFaults::new(&plan);
        let seg = segmenter.run(
            SegmentRequest::Lab8(&lab8),
            &RunOptions::new().with_faults(&faults),
        );
        engine.push(EnginePoint {
            rate_ppm: rate,
            undersegmentation_error: undersegmentation_error(seg.labels(), &scene.ground_truth),
            boundary_recall: boundary_recall(seg.labels(), &scene.ground_truth, BR_TOLERANCE),
            degraded: seg.status() == SegmentationStatus::Degraded,
            repairs: seg.invariant_repairs(),
            lut_entries_corrupted,
            injected_words: faults.injected_words(),
        });
    }

    // The recovered-quality curve: identical workload and plans, but the
    // engine runs under the bounded retry policy, so the USE/BR deltas
    // against `engine` isolate what self-healing buys at each rate.
    let policy = RecoveryPolicy::new(SWEEP_RECOVERY_RETRIES);
    let mut recovered = Vec::new();
    for &rate in &config.rates_ppm {
        let plan = config.plan_at(rate);
        let mut conv = HwColorConverter::paper_default();
        corrupt_color_lut(&plan, &mut conv);
        let lab8 = conv.convert_image(&scene.rgb);
        let faults = EngineFaults::new(&plan);
        let seg = segmenter.run(
            SegmentRequest::Lab8(&lab8),
            &RunOptions::new().with_faults(&faults).with_recovery(&policy),
        );
        let rec = seg.recovery();
        recovered.push(RecoveryPoint {
            rate_ppm: rate,
            undersegmentation_error: undersegmentation_error(seg.labels(), &scene.ground_truth),
            boundary_recall: boundary_recall(seg.labels(), &scene.ground_truth, BR_TOLERANCE),
            outcome: rec.outcome.as_str().to_string(),
            guards_fired: rec.guards_fired,
            retries: u64::from(rec.retries),
            escalations: u64::from(rec.escalations),
        });
    }

    SweepResult {
        config: config.clone(),
        hw,
        engine,
        recovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_the_full_grid() {
        let cfg = SweepConfig::smoke(3);
        let result = run_sweep(&cfg);
        assert_eq!(result.hw.len(), cfg.rates_ppm.len() * cfg.protections.len());
        assert_eq!(result.engine.len(), cfg.rates_ppm.len());
        assert_eq!(result.recovered.len(), cfg.rates_ppm.len());
        for p in &result.hw {
            assert!(p.undersegmentation_error.is_finite());
            assert!((0.0..=1.0).contains(&p.boundary_recall));
        }
    }

    #[test]
    fn zero_rate_points_are_fault_free() {
        let mut cfg = SweepConfig::smoke(11);
        cfg.rates_ppm = vec![0];
        let result = run_sweep(&cfg);
        for p in &result.hw {
            assert_eq!(p.stats.corrupted_reads(), 0);
            assert_eq!(p.retry_bursts, 0);
            assert_eq!(p.label_repairs, 0);
        }
        assert!(!result.engine[0].degraded);
        assert_eq!(result.engine[0].injected_words, 0);
        assert_eq!(result.engine[0].lut_entries_corrupted, 0);
        let r = &result.recovered[0];
        assert_eq!(r.outcome, "clean");
        assert_eq!((r.guards_fired, r.retries, r.escalations), (0, 0, 0));
    }

    #[test]
    fn stronger_protection_never_passes_more_corruption() {
        let mut cfg = SweepConfig::smoke(7);
        cfg.rates_ppm = vec![20_000];
        let result = run_sweep(&cfg);
        let by_scheme = |p: Protection| {
            result
                .hw
                .iter()
                .find(|pt| pt.protection == p)
                .map(|pt| pt.stats.corrupted_reads())
                .unwrap_or(u64::MAX)
        };
        let raw = by_scheme(Protection::Unprotected);
        let parity = by_scheme(Protection::Parity);
        let secded = by_scheme(Protection::Secded);
        assert!(raw >= parity, "unprotected {raw} < parity {parity}");
        assert!(parity >= secded, "parity {parity} < secded {secded}");
    }
}
