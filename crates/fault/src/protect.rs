//! Protection-scheme semantics: what a parity or SECDED memory does with a
//! corrupted word at read time.
//!
//! The code-word geometry and its area/energy overheads live in
//! [`sslic_hw::scratchpad::Protection`]; this module models the *outcome*
//! of a read through each scheme. Detection is modeled end to end: a
//! detected error re-fetches the word over the (assumed protected) DRAM
//! path, so retries and corrections restore the clean value, while escapes
//! return the corrupted one.

use sslic_hw::scratchpad::Protection;

use crate::inject::FaultEffect;

/// The outcome of one protected memory read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOutcome {
    /// No corruption hit this word.
    Clean,
    /// Corruption passed through an unprotected memory unnoticed.
    Silent,
    /// The scheme detected the error; the word was re-fetched from DRAM
    /// (costing one retry burst) and the clean value restored.
    DetectedRetry,
    /// SECDED corrected a single-bit error in place.
    Corrected,
    /// Corruption defeated the scheme (even flip count under parity,
    /// triple-or-more under SECDED) and escaped as valid-looking data.
    Undetected,
}

impl MemOutcome {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MemOutcome::Clean => "clean",
            MemOutcome::Silent => "silent",
            MemOutcome::DetectedRetry => "detected_retry",
            MemOutcome::Corrected => "corrected",
            MemOutcome::Undetected => "undetected",
        }
    }
}

/// Tallies of protected-read outcomes across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtectionStats {
    /// Total hooked reads.
    pub reads: u64,
    /// Corruption through an unprotected memory.
    pub silent: u64,
    /// Detected errors (each charged one DRAM retry burst).
    pub detected_retries: u64,
    /// SECDED in-place corrections.
    pub corrected: u64,
    /// Corruption that defeated the scheme.
    pub undetected: u64,
}

impl ProtectionStats {
    /// Records one read outcome.
    pub fn record(&mut self, outcome: MemOutcome) {
        self.reads += 1;
        match outcome {
            MemOutcome::Clean => {}
            MemOutcome::Silent => self.silent += 1,
            MemOutcome::DetectedRetry => self.detected_retries += 1,
            MemOutcome::Corrected => self.corrected += 1,
            MemOutcome::Undetected => self.undetected += 1,
        }
    }

    /// Reads that delivered corrupted data to the datapath.
    pub fn corrupted_reads(&self) -> u64 {
        self.silent + self.undetected
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &ProtectionStats) {
        self.reads += other.reads;
        self.silent += other.silent;
        self.detected_retries += other.detected_retries;
        self.corrected += other.corrected;
        self.undetected += other.undetected;
    }
}

/// Filters one read of `value` (corrupted by `effect`) through
/// `protection`, returning the value the datapath consumes and the
/// outcome. The decision key is the *realized* flip count — a stuck-at
/// bit already at its stuck level corrupts nothing and reads clean.
pub fn filter_word(
    protection: Protection,
    value: u64,
    effect: &FaultEffect,
) -> (u64, MemOutcome) {
    let corrupted = effect.apply(value);
    let flips = (corrupted ^ value).count_ones();
    if flips == 0 {
        return (value, MemOutcome::Clean);
    }
    match protection {
        Protection::Unprotected => (corrupted, MemOutcome::Silent),
        Protection::Parity => {
            if flips % 2 == 1 {
                (value, MemOutcome::DetectedRetry)
            } else {
                (corrupted, MemOutcome::Undetected)
            }
        }
        Protection::Secded => match flips {
            1 => (value, MemOutcome::Corrected),
            2 => (value, MemOutcome::DetectedRetry),
            _ => (corrupted, MemOutcome::Undetected),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flip(bits: u64) -> FaultEffect {
        FaultEffect {
            xor: bits,
            or: 0,
            and_not: 0,
        }
    }

    #[test]
    fn clean_effect_reads_clean_under_every_scheme() {
        for p in [Protection::Unprotected, Protection::Parity, Protection::Secded] {
            assert_eq!(
                filter_word(p, 0xA5, &FaultEffect::CLEAN),
                (0xA5, MemOutcome::Clean)
            );
        }
    }

    #[test]
    fn unprotected_passes_everything_silently() {
        let (v, o) = filter_word(Protection::Unprotected, 0xA5, &flip(0b11));
        assert_eq!(v, 0xA5 ^ 0b11);
        assert_eq!(o, MemOutcome::Silent);
    }

    #[test]
    fn parity_detects_odd_and_misses_even() {
        let (v, o) = filter_word(Protection::Parity, 0xA5, &flip(0b1));
        assert_eq!((v, o), (0xA5, MemOutcome::DetectedRetry));
        let (v, o) = filter_word(Protection::Parity, 0xA5, &flip(0b10101));
        assert_eq!((v, o), (0xA5, MemOutcome::DetectedRetry));
        let (v, o) = filter_word(Protection::Parity, 0xA5, &flip(0b11));
        assert_eq!((v, o), (0xA5 ^ 0b11, MemOutcome::Undetected));
    }

    #[test]
    fn secded_corrects_one_detects_two_misses_three() {
        let (v, o) = filter_word(Protection::Secded, 0x5A, &flip(0b100));
        assert_eq!((v, o), (0x5A, MemOutcome::Corrected));
        let (v, o) = filter_word(Protection::Secded, 0x5A, &flip(0b110));
        assert_eq!((v, o), (0x5A, MemOutcome::DetectedRetry));
        let (v, o) = filter_word(Protection::Secded, 0x5A, &flip(0b111));
        assert_eq!((v, o), (0x5A ^ 0b111, MemOutcome::Undetected));
    }

    #[test]
    fn stuck_bit_at_its_level_is_clean() {
        let stuck_high = FaultEffect {
            xor: 0,
            or: 0b1000,
            and_not: 0,
        };
        // Bit already one: no realized flip under any scheme.
        for p in [Protection::Unprotected, Protection::Parity, Protection::Secded] {
            assert_eq!(
                filter_word(p, 0b1000, &stuck_high),
                (0b1000, MemOutcome::Clean)
            );
        }
        // Bit zero: realizes one flip.
        let (_, o) = filter_word(Protection::Secded, 0, &stuck_high);
        assert_eq!(o, MemOutcome::Corrected);
    }

    #[test]
    fn corruption_strictly_weakens_with_stronger_schemes() {
        // Deterministic sweep over the physically dominant upsets (one- and
        // two-bit masks): the set of masks that deliver corrupted data
        // shrinks strictly — unprotected (all 36) ⊃ parity (the 28
        // doubles) ⊃ secded (none). Triple-and-wider upsets can defeat
        // SECDED, but the injectors produce at most two flips per word.
        let mut counts = [0u64; 3];
        for mask in 1u64..256 {
            if mask.count_ones() > 2 {
                continue;
            }
            let eff = flip(mask);
            for (i, p) in [Protection::Unprotected, Protection::Parity, Protection::Secded]
                .into_iter()
                .enumerate()
            {
                let (_, o) = filter_word(p, 0x3C, &eff);
                if matches!(o, MemOutcome::Silent | MemOutcome::Undetected) {
                    counts[i] += 1;
                }
            }
        }
        assert!(counts[0] > counts[1], "parity beats unprotected: {counts:?}");
        assert!(counts[1] > counts[2], "secded beats parity: {counts:?}");
    }

    #[test]
    fn stats_tally_and_merge() {
        let mut a = ProtectionStats::default();
        a.record(MemOutcome::Clean);
        a.record(MemOutcome::Silent);
        a.record(MemOutcome::DetectedRetry);
        let mut b = ProtectionStats::default();
        b.record(MemOutcome::Corrected);
        b.record(MemOutcome::Undetected);
        a.merge(&b);
        assert_eq!(a.reads, 5);
        assert_eq!(a.corrupted_reads(), 2);
        assert_eq!(a.detected_retries, 1);
        assert_eq!(a.corrected, 1);
    }
}
