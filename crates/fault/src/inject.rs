//! The stateless injection core: plan × site × address → bit-level effect.
//!
//! Determinism contract: [`effect_at`] is a pure function of
//! `(plan.seed(), entry index, site, address)`. Queries are independent —
//! no generator state is shared between addresses — so injection results
//! do not depend on evaluation order, and replaying the same plan over the
//! same address stream reproduces the same corruption bit for bit.
//!
//! This module is part of the lint-enforced integer datapath: effects are
//! computed and applied purely on integer words (float-typed victims are
//! corrupted through their IEEE-754 bit patterns by the adapter layer in
//! [`crate::hooks`]).

use sslic_image::prng::SplitMix64;

use crate::plan::{FaultKind, FaultPlan, FaultSite};

/// Salt separating site streams in the decision hash.
const SITE_MIX: u64 = 0x9e37_79b9_7f4a_7c15;
/// Salt separating address streams.
const ADDR_MIX: u64 = 0xbf58_476d_1ce4_e5b9;
/// Salt separating plan-entry streams (two entries on the same site draw
/// independent faults).
const ENTRY_MIX: u64 = 0x94d0_49bb_1331_11eb;
/// Salt separating the per-word lanes of one burst group.
const WORD_MIX: u64 = 0xd6e8_feb8_6659_fd93;

/// A composed bit-level corruption: OR-in stuck-high bits, clear
/// stuck-low bits, then XOR transient flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEffect {
    /// Bits flipped by transient upsets.
    pub xor: u64,
    /// Bits stuck at one.
    pub or: u64,
    /// Bits stuck at zero.
    pub and_not: u64,
}

impl FaultEffect {
    /// The identity effect.
    pub const CLEAN: FaultEffect = FaultEffect {
        xor: 0,
        or: 0,
        and_not: 0,
    };

    /// True when applying the effect cannot change any value.
    pub fn is_clean(&self) -> bool {
        self.xor == 0 && self.or == 0 && self.and_not == 0
    }

    /// Applies the effect to a word: stuck-at levels override the stored
    /// data, then transient flips toggle on top.
    pub fn apply(&self, value: u64) -> u64 {
        ((value | self.or) & !self.and_not) ^ self.xor
    }

    /// Number of bits the effect actually changes in `value` (a stuck-at
    /// bit already at its stuck level realizes no flip).
    pub fn realized_flips(&self, value: u64) -> u32 {
        (self.apply(value) ^ value).count_ones()
    }

    /// Composes two effects (both applied to the same word).
    pub fn merged(self, other: FaultEffect) -> FaultEffect {
        FaultEffect {
            xor: self.xor ^ other.xor,
            or: self.or | other.or,
            and_not: self.and_not | other.and_not,
        }
    }
}

/// The decision stream for one `(seed, site, key, entry)` coordinate.
fn decision_stream(seed: u64, site: FaultSite, key: u64, entry_salt: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(
        seed ^ site.tag().wrapping_mul(SITE_MIX) ^ key.wrapping_mul(ADDR_MIX) ^ entry_salt,
    )
}

/// One Bernoulli draw at `rate_ppm` parts per million.
fn triggered(rng: &mut SplitMix64, rate_ppm: u32) -> bool {
    if rate_ppm >= 1_000_000 {
        return true;
    }
    rng.next_u64() < (rate_ppm as u64).wrapping_mul(u64::MAX / 1_000_000)
}

/// Computes the composed corruption the plan inflicts on the
/// `width_bits`-wide word at `addr` of `site`. Returns
/// [`FaultEffect::CLEAN`] (and does no allocation) when nothing triggers;
/// an empty plan therefore leaves every word untouched.
pub fn effect_at(plan: &FaultPlan, site: FaultSite, addr: u64, width_bits: u32) -> FaultEffect {
    let width = width_bits.clamp(1, 64) as u64;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut eff = FaultEffect::CLEAN;
    for (i, entry) in plan.entries().iter().enumerate() {
        if entry.site != site || entry.rate_ppm == 0 {
            continue;
        }
        let entry_salt = (i as u64).wrapping_mul(ENTRY_MIX);
        match entry.kind {
            FaultKind::SingleBitFlip => {
                let mut rng = decision_stream(plan.seed(), site, addr, entry_salt);
                if triggered(&mut rng, entry.rate_ppm) {
                    eff.xor ^= 1u64 << rng.below(width);
                }
            }
            FaultKind::MultiBitFlip { bits } => {
                let mut rng = decision_stream(plan.seed(), site, addr, entry_salt);
                if triggered(&mut rng, entry.rate_ppm) {
                    for _ in 0..bits.max(1) {
                        eff.xor ^= 1u64 << rng.below(width);
                    }
                }
            }
            FaultKind::StuckAt { bit, value } => {
                let mut rng = decision_stream(plan.seed(), site, addr, entry_salt);
                if triggered(&mut rng, entry.rate_ppm) && (bit as u64) < width {
                    if value {
                        eff.or |= 1u64 << bit;
                    } else {
                        eff.and_not |= 1u64 << bit;
                    }
                }
            }
            FaultKind::Burst { span } => {
                // One decision per aligned group; on trigger every word in
                // the group gets its own lane-derived flip, so querying the
                // words in any order reproduces the same burst.
                let span = span.max(1) as u64;
                let group = addr / span;
                let mut rng = decision_stream(plan.seed(), site, group, entry_salt);
                if triggered(&mut rng, entry.rate_ppm) {
                    let lane = addr % span;
                    let mut word = SplitMix64::seed_from_u64(
                        rng.next_u64() ^ lane.wrapping_mul(WORD_MIX),
                    );
                    eff.xor ^= 1u64 << word.below(width);
                }
            }
        }
    }
    eff.xor &= mask;
    eff.or &= mask;
    eff.and_not &= mask;
    eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultPlan, FaultSite};

    fn flip_plan(seed: u64, rate: u32) -> FaultPlan {
        FaultPlan::new(seed).with(FaultSite::ScratchpadWord, FaultKind::SingleBitFlip, rate)
    }

    #[test]
    fn empty_plan_is_always_clean() {
        let plan = FaultPlan::new(9);
        for addr in 0..10_000u64 {
            assert!(effect_at(&plan, FaultSite::PixelFeature, addr, 8).is_clean());
        }
    }

    #[test]
    fn effects_are_deterministic_and_order_independent() {
        let plan = flip_plan(42, 50_000);
        let forward: Vec<_> = (0..2000u64)
            .map(|a| effect_at(&plan, FaultSite::ScratchpadWord, a, 8))
            .collect();
        let backward: Vec<_> = (0..2000u64)
            .rev()
            .map(|a| effect_at(&plan, FaultSite::ScratchpadWord, a, 8))
            .collect();
        for (a, f) in forward.iter().enumerate() {
            assert_eq!(*f, backward[1999 - a]);
        }
    }

    #[test]
    fn trigger_rate_tracks_rate_ppm() {
        let plan = flip_plan(7, 100_000); // 10 %
        let hits = (0..50_000u64)
            .filter(|&a| !effect_at(&plan, FaultSite::ScratchpadWord, a, 8).is_clean())
            .count();
        let frac = hits as f64 / 50_000.0;
        assert!((0.08..0.12).contains(&frac), "hit fraction {frac}");
    }

    #[test]
    fn rate_one_million_triggers_everywhere() {
        let plan = flip_plan(1, 1_000_000);
        for addr in 0..256u64 {
            assert!(!effect_at(&plan, FaultSite::ScratchpadWord, addr, 8).is_clean());
        }
    }

    #[test]
    fn sites_draw_independent_faults() {
        let plan = FaultPlan::uniform(5, FaultKind::SingleBitFlip, 200_000);
        let a: Vec<_> = (0..2000u64)
            .map(|i| effect_at(&plan, FaultSite::PixelFeature, i, 8))
            .collect();
        let b: Vec<_> = (0..2000u64)
            .map(|i| effect_at(&plan, FaultSite::SigmaRegister, i, 8))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn effects_respect_word_width() {
        let plan = FaultPlan::new(3)
            .with(FaultSite::ColorLut, FaultKind::SingleBitFlip, 1_000_000)
            .with(FaultSite::ColorLut, FaultKind::StuckAt { bit: 60, value: true }, 1_000_000);
        for addr in 0..512u64 {
            let eff = effect_at(&plan, FaultSite::ColorLut, addr, 13);
            assert_eq!(eff.xor & !0x1FFF, 0);
            assert_eq!(eff.or, 0, "stuck bit beyond width is dropped");
        }
    }

    #[test]
    fn stuck_at_levels_behave_as_stuck_levels() {
        let eff = FaultEffect {
            xor: 0,
            or: 0b0001,
            and_not: 0b1000,
        };
        assert_eq!(eff.apply(0b1010), 0b0011);
        assert_eq!(eff.apply(0b0001), 0b0001);
        assert_eq!(eff.realized_flips(0b0001), 0, "already at stuck levels");
    }

    #[test]
    fn burst_corrupts_whole_aligned_groups() {
        let plan = FaultPlan::new(11).with(
            FaultSite::DramBurst,
            FaultKind::Burst { span: 8 },
            40_000,
        );
        // Within any span-8 group, all lanes agree on triggered-ness.
        for group in 0..2000u64 {
            let states: Vec<bool> = (0..8u64)
                .map(|lane| {
                    effect_at(&plan, FaultSite::DramBurst, group * 8 + lane, 8).is_clean()
                })
                .collect();
            assert!(
                states.iter().all(|&s| s == states[0]),
                "group {group} mixes clean and corrupted lanes"
            );
        }
        // And some group must have triggered at this rate.
        let any = (0..2000u64)
            .any(|g| !effect_at(&plan, FaultSite::DramBurst, g * 8, 8).is_clean());
        assert!(any);
    }

    #[test]
    fn multi_bit_flip_realizes_up_to_n_bits() {
        let plan = FaultPlan::new(2).with(
            FaultSite::ScratchpadWord,
            FaultKind::MultiBitFlip { bits: 3 },
            1_000_000,
        );
        let mut seen_multi = false;
        for addr in 0..512u64 {
            let eff = effect_at(&plan, FaultSite::ScratchpadWord, addr, 8);
            let flips = eff.realized_flips(0);
            assert!(flips <= 3);
            if flips > 1 {
                seen_multi = true;
            }
        }
        assert!(seen_multi, "3 draws over 8 bits must sometimes realize >1 flip");
    }

    #[test]
    fn merged_composes_both_effects() {
        let a = FaultEffect {
            xor: 0b01,
            or: 0,
            and_not: 0b100,
        };
        let b = FaultEffect {
            xor: 0b10,
            or: 0b1000,
            and_not: 0,
        };
        let m = a.merged(b);
        assert_eq!(m.apply(0b0100), 0b1011);
    }
}
