//! Deterministic JSON and markdown rendering of a [`SweepResult`].
//!
//! The renderers are hand-rolled (the workspace carries no serialization
//! dependency) and emit no timestamps, durations, or host information, so
//! the same sweep always serializes to byte-identical reports — CI diffs
//! two independent runs to prove it.

use crate::sweep::{EnginePoint, HwPoint, RecoveryPoint, SweepConfig, SweepResult};

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_rates(rates: &[u32]) -> String {
    let items: Vec<String> = rates.iter().map(|r| r.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn json_config(c: &SweepConfig) -> String {
    let protections: Vec<String> = c
        .protections
        .iter()
        .map(|p| format!("\"{}\"", p.name()))
        .collect();
    format!(
        concat!(
            "{{\"seed\": {}, \"width\": {}, \"height\": {}, \"regions\": {}, ",
            "\"superpixels\": {}, \"iterations\": {}, \"subsets\": {}, ",
            "\"rates_ppm\": {}, \"protections\": [{}]}}"
        ),
        c.seed,
        c.width,
        c.height,
        c.regions,
        c.superpixels,
        c.iterations,
        c.subsets,
        json_rates(&c.rates_ppm),
        protections.join(", "),
    )
}

fn json_hw_point(p: &HwPoint) -> String {
    format!(
        concat!(
            "{{\"rate_ppm\": {}, \"protection\": \"{}\", ",
            "\"undersegmentation_error\": {}, \"boundary_recall\": {}, ",
            "\"reads\": {}, \"silent\": {}, \"detected_retries\": {}, ",
            "\"corrected\": {}, \"undetected\": {}, \"corrupted_reads\": {}, ",
            "\"retry_bursts\": {}, \"label_repairs\": {}, \"sram_energy_uj\": {}}}"
        ),
        p.rate_ppm,
        p.protection.name(),
        fmt_f64(p.undersegmentation_error),
        fmt_f64(p.boundary_recall),
        p.stats.reads,
        p.stats.silent,
        p.stats.detected_retries,
        p.stats.corrected,
        p.stats.undetected,
        p.stats.corrupted_reads(),
        p.retry_bursts,
        p.label_repairs,
        fmt_f64(p.sram_energy_uj),
    )
}

fn json_engine_point(p: &EnginePoint) -> String {
    format!(
        concat!(
            "{{\"rate_ppm\": {}, \"undersegmentation_error\": {}, ",
            "\"boundary_recall\": {}, \"degraded\": {}, \"repairs\": {}, ",
            "\"lut_entries_corrupted\": {}, \"injected_words\": {}}}"
        ),
        p.rate_ppm,
        fmt_f64(p.undersegmentation_error),
        fmt_f64(p.boundary_recall),
        p.degraded,
        p.repairs,
        p.lut_entries_corrupted,
        p.injected_words,
    )
}

fn json_recovery_point(p: &RecoveryPoint) -> String {
    format!(
        concat!(
            "{{\"rate_ppm\": {}, \"undersegmentation_error\": {}, ",
            "\"boundary_recall\": {}, \"outcome\": \"{}\", \"guards_fired\": {}, ",
            "\"retries\": {}, \"escalations\": {}}}"
        ),
        p.rate_ppm,
        fmt_f64(p.undersegmentation_error),
        fmt_f64(p.boundary_recall),
        p.outcome,
        p.guards_fired,
        p.retries,
        p.escalations,
    )
}

/// Renders the sweep as a deterministic JSON document.
pub fn to_json(result: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"config\": {},\n", json_config(&result.config)));
    out.push_str("  \"hw\": [\n");
    for (i, p) in result.hw.iter().enumerate() {
        let sep = if i + 1 < result.hw.len() { "," } else { "" };
        out.push_str(&format!("    {}{sep}\n", json_hw_point(p)));
    }
    out.push_str("  ],\n");
    out.push_str("  \"engine\": [\n");
    for (i, p) in result.engine.iter().enumerate() {
        let sep = if i + 1 < result.engine.len() { "," } else { "" };
        out.push_str(&format!("    {}{sep}\n", json_engine_point(p)));
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovered\": [\n");
    for (i, p) in result.recovered.iter().enumerate() {
        let sep = if i + 1 < result.recovered.len() { "," } else { "" };
        out.push_str(&format!("    {}{sep}\n", json_recovery_point(p)));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Renders the sweep as a markdown report with quality-vs-fault-rate
/// tables.
pub fn to_markdown(result: &SweepResult) -> String {
    let c = &result.config;
    let mut out = String::new();
    out.push_str("# Fault sweep\n\n");
    out.push_str(&format!(
        "Scene: {}×{} synthetic, {} regions, seed {}. Engine/accelerator: \
         K = {}, {} iterations, {} subsets.\n\n",
        c.width, c.height, c.regions, c.seed, c.superpixels, c.iterations, c.subsets,
    ));

    out.push_str("## Hardware model (scratchpad + DRAM faults)\n\n");
    out.push_str(
        "| rate (ppm) | protection | USE | BR | corrupted reads | retries | \
         label repairs | SRAM energy (µJ) |\n",
    );
    out.push_str("|---:|---|---:|---:|---:|---:|---:|---:|\n");
    for p in &result.hw {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            p.rate_ppm,
            p.protection.name(),
            fmt_f64(p.undersegmentation_error),
            fmt_f64(p.boundary_recall),
            p.stats.corrupted_reads(),
            p.retry_bursts,
            p.label_repairs,
            fmt_f64(p.sram_energy_uj),
        ));
    }

    out.push_str("\n## Engine (LUT + pixel-feature + center faults)\n\n");
    out.push_str("| rate (ppm) | USE | BR | status | repairs | LUT entries hit | words hit |\n");
    out.push_str("|---:|---:|---:|---|---:|---:|---:|\n");
    for p in &result.engine {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            p.rate_ppm,
            fmt_f64(p.undersegmentation_error),
            fmt_f64(p.boundary_recall),
            if p.degraded { "degraded" } else { "ok" },
            p.repairs,
            p.lut_entries_corrupted,
            p.injected_words,
        ));
    }

    out.push_str(&format!(
        "\n## Engine with self-healing (retry budget {})\n\n",
        crate::sweep::SWEEP_RECOVERY_RETRIES
    ));
    out.push_str("| rate (ppm) | USE | BR | outcome | guards fired | retries | escalations |\n");
    out.push_str("|---:|---:|---:|---|---:|---:|---:|\n");
    for p in &result.recovered {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            p.rate_ppm,
            fmt_f64(p.undersegmentation_error),
            fmt_f64(p.boundary_recall),
            p.outcome,
            p.guards_fired,
            p.retries,
            p.escalations,
        ));
    }

    out.push_str(
        "\nProtection semantics: parity detects odd-bit corruption and retries \
         from DRAM; SECDED corrects single-bit and detects double-bit errors. \
         Retries charge one DRAM burst plus two extra scratchpad accesses; \
         check bits widen scratchpad words (and so area and energy) per \
         `Protection::check_bits`.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};

    fn tiny_result() -> crate::sweep::SweepResult {
        let mut cfg = SweepConfig::smoke(5);
        cfg.rates_ppm = vec![0, 2_000];
        run_sweep(&cfg)
    }

    #[test]
    fn json_is_deterministic_and_structurally_sane() {
        let r = tiny_result();
        let a = to_json(&r);
        let b = to_json(&r);
        assert_eq!(a, b);
        assert!(a.starts_with("{\n"));
        assert!(a.ends_with("}\n"));
        assert_eq!(
            a.matches("\"rate_ppm\"").count(),
            r.hw.len() + r.engine.len() + r.recovered.len()
        );
        // Balanced braces: a cheap well-formedness check without a parser.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn markdown_contains_every_point() {
        let r = tiny_result();
        let md = to_markdown(&r);
        assert!(md.contains("# Fault sweep"));
        for p in &r.hw {
            assert!(md.contains(p.protection.name()));
        }
        assert!(md.contains("| 2000 |"));
        assert!(md.contains("degraded") || md.contains("ok"));
    }
}
