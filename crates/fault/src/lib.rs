//! # sslic-fault
//!
//! Deterministic fault injection, graceful-degradation evaluation, and
//! protected-memory (parity/ECC) modeling for the S-SLIC reproduction.
//!
//! The crate is organized as four layers:
//!
//! - [`plan`] — *what to inject*: [`FaultPlan`] names the fault sites
//!   (color LUT, pixel features, sigma registers, scratchpad words, DRAM
//!   bursts), the corruption kinds (single/multi bit flips, stuck-at bits,
//!   burst corruption), and per-word trigger rates.
//! - [`inject`] — *the decision core*: [`inject::effect_at`] maps
//!   `(plan, site, address)` to a bit-level [`FaultEffect`] by a stateless
//!   seeded hash, so injection is reproducible and order-independent.
//! - [`protect`] — *what the memory does about it*: [`protect::filter_word`]
//!   models parity (detect + retry) and SECDED ECC (correct) semantics over
//!   a corrupted read.
//! - [`hooks`] — *wiring*: adapters implementing the engine's
//!   [`sslic_core::StepFaults`] and the hardware model's
//!   [`sslic_hw::faults::MemFaults`] hook traits from a plan.
//!
//! [`sweep`] and [`report`] drive quality-vs-fault-rate experiments and
//! render them as JSON/markdown; the `fault_sweep` binary in the bench
//! crate is a thin CLI over them.
//!
//! ## Determinism contract
//!
//! Everything downstream of a [`FaultPlan`] is a pure function of the plan
//! (seed + entries) and the addresses queried. Running the same plan over
//! the same workload twice yields bit-identical corruption, label maps, and
//! reports. Supplying no plan (or an empty one) is guaranteed bit-identical
//! to the unhooked code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hooks;
pub mod inject;
pub mod plan;
pub mod protect;
pub mod report;
pub mod sweep;

pub use hooks::{corrupt_color_lut, EngineFaults, HwFaults};
pub use inject::{effect_at, FaultEffect};
pub use plan::{FaultKind, FaultPlan, FaultSite, PlanEntry};
pub use protect::{filter_word, MemOutcome, ProtectionStats};
pub use report::{to_json, to_markdown};
pub use sweep::{
    run_sweep, EnginePoint, HwPoint, RecoveryPoint, SweepConfig, SweepResult,
    SWEEP_RECOVERY_RETRIES,
};
