//! Fault plans: deterministic, addressable descriptions of *where* (which
//! named state elements), *how* (which corruption pattern), and *how
//! often* (a per-word trigger rate) soft errors strike.
//!
//! A [`FaultPlan`] is pure data — it holds no generator state. Every
//! injection decision is a stateless hash of `(plan seed, site, address)`
//! (see [`crate::inject::effect_at`]), so the same plan produces the same
//! corruption regardless of the order, grouping, or repetition of queries.

/// A named class of state-holding elements the fault model can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Entries of the color-conversion gamma LUT (`sslic-color`); the
    /// address is the 8-bit input code.
    ColorLut,
    /// Quantized 8-bit pixel features in the engine's working image
    /// (`sslic-core`); the address is `channel << 40 | pixel_index`.
    PixelFeature,
    /// The engine's cluster/sigma accumulator registers; the address is
    /// `step << 40 | cluster << 3 | field`.
    SigmaRegister,
    /// Scratchpad words of the hardware model (`sslic-hw`); the address is
    /// `step << 44 | memory << 40 | word`.
    ScratchpadWord,
    /// DRAM burst payloads feeding the scratchpads; addressed like
    /// [`FaultSite::ScratchpadWord`] but grouped by burst span.
    DramBurst,
}

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::ColorLut,
        FaultSite::PixelFeature,
        FaultSite::SigmaRegister,
        FaultSite::ScratchpadWord,
        FaultSite::DramBurst,
    ];

    /// Stable per-site salt folded into the decision hash so the same
    /// address at different sites draws independent faults.
    pub fn tag(self) -> u64 {
        match self {
            FaultSite::ColorLut => 1,
            FaultSite::PixelFeature => 2,
            FaultSite::SigmaRegister => 3,
            FaultSite::ScratchpadWord => 4,
            FaultSite::DramBurst => 5,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ColorLut => "color_lut",
            FaultSite::PixelFeature => "pixel_feature",
            FaultSite::SigmaRegister => "sigma_register",
            FaultSite::ScratchpadWord => "scratchpad_word",
            FaultSite::DramBurst => "dram_burst",
        }
    }
}

/// The corruption pattern applied when a fault triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One uniformly chosen bit of the word flips.
    SingleBitFlip,
    /// Up to `bits` uniformly chosen bits flip (draws may coincide, so
    /// the realized flip count can be lower — matching the physical
    /// multi-cell-upset model where overlapping strikes cancel).
    MultiBitFlip {
        /// Number of flip draws per triggered word.
        bits: u32,
    },
    /// Bit `bit` reads as `value` regardless of the stored data (a
    /// hard/latent defect rather than a transient upset).
    StuckAt {
        /// Affected bit position (faults on positions outside the word
        /// width are dropped).
        bit: u32,
        /// The stuck level.
        value: bool,
    },
    /// A whole aligned group of `span` consecutive words is corrupted
    /// together (one bit flip per word) — the burst-corruption signature
    /// of a failed DRAM transfer.
    Burst {
        /// Words per burst group (clamped to at least 1).
        span: u32,
    },
}

impl FaultKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SingleBitFlip => "single_bit_flip",
            FaultKind::MultiBitFlip { .. } => "multi_bit_flip",
            FaultKind::StuckAt { .. } => "stuck_at",
            FaultKind::Burst { .. } => "burst",
        }
    }
}

/// One line of a fault plan: strike `site` with `kind` at `rate_ppm`
/// parts-per-million per addressable word (per burst group for
/// [`FaultKind::Burst`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEntry {
    /// Which state elements are exposed.
    pub site: FaultSite,
    /// The corruption pattern on trigger.
    pub kind: FaultKind,
    /// Trigger probability in parts per million (values of 1 000 000 and
    /// above trigger on every address).
    pub rate_ppm: u32,
}

/// A deterministic fault-injection plan: a seed plus any number of
/// [`PlanEntry`] lines. An empty plan injects nothing, and every injection
/// hook is bit-identical to its unhooked counterpart under an empty plan.
///
/// # Example
///
/// ```
/// use sslic_fault::{FaultKind, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::new(7)
///     .with(FaultSite::PixelFeature, FaultKind::SingleBitFlip, 500)
///     .with(FaultSite::DramBurst, FaultKind::Burst { span: 8 }, 50);
/// assert_eq!(plan.seed(), 7);
/// assert_eq!(plan.entries().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<PlanEntry>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            entries: Vec::new(),
        }
    }

    /// Adds one entry.
    pub fn with(mut self, site: FaultSite, kind: FaultKind, rate_ppm: u32) -> Self {
        self.entries.push(PlanEntry {
            site,
            kind,
            rate_ppm,
        });
        self
    }

    /// A plan striking every site with the same kind and rate.
    pub fn uniform(seed: u64, kind: FaultKind, rate_ppm: u32) -> Self {
        let mut plan = FaultPlan::new(seed);
        for site in FaultSite::ALL {
            plan = plan.with(site, kind, rate_ppm);
        }
        plan
    }

    /// The decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan lines.
    pub fn entries(&self) -> &[PlanEntry] {
        &self.entries
    }

    /// True when the plan can never inject (no entries with a nonzero
    /// rate).
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.rate_ppm == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_tags_are_distinct() {
        for (i, a) in FaultSite::ALL.iter().enumerate() {
            for b in &FaultSite::ALL[i + 1..] {
                assert_ne!(a.tag(), b.tag(), "{} vs {}", a.name(), b.name());
            }
        }
    }

    #[test]
    fn uniform_covers_every_site() {
        let plan = FaultPlan::uniform(3, FaultKind::SingleBitFlip, 100);
        assert_eq!(plan.entries().len(), FaultSite::ALL.len());
        assert!(!plan.is_empty());
    }

    #[test]
    fn zero_rate_plans_are_empty() {
        assert!(FaultPlan::new(1).is_empty());
        assert!(FaultPlan::new(1)
            .with(FaultSite::ColorLut, FaultKind::SingleBitFlip, 0)
            .is_empty());
    }
}
