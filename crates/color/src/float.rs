//! Exact floating-point RGB → CIELAB conversion (paper §2, Eqs. 1–4).
//!
//! This is the reference the hardware LUT path is validated against and the
//! datapath used by the "64-bit floating point" end of the §6.1 bit-width
//! exploration.

use sslic_image::{Rgb, RgbImage};

use crate::LabImage;

/// sRGB → linear-light RGB matrix to CIE XYZ (D65 white), the matrix `M`
/// of Eq. 2.
pub const RGB_TO_XYZ: [[f64; 3]; 3] = [
    [0.412_456_4, 0.357_576_1, 0.180_437_5],
    [0.212_672_9, 0.715_152_2, 0.072_175_0],
    [0.019_333_9, 0.119_192_0, 0.950_304_1],
];

/// D65 reference white `[X_r, Y_r, Z_r]` of Eq. 4.
pub const REFERENCE_WHITE: [f64; 3] = [0.950_47, 1.0, 1.088_83];

/// CIELAB linear-region threshold (`0.008856` in Eq. 4).
pub const LAB_EPSILON: f64 = 0.008856;

/// CIELAB linear-region slope (`903.3` in Eq. 4).
pub const LAB_KAPPA: f64 = 903.3;

/// Inverse sRGB gamma (Eq. 1): maps a gamma-encoded component in `[0, 1]`
/// to linear light.
///
/// The paper's Eq. 1 writes `(x+0.05)/1.055`; the sRGB standard constant is
/// `0.055`, which is what we (and the SLIC reference code) use.
#[inline]
pub fn srgb_to_linear(x: f64) -> f64 {
    if x <= 0.04045 {
        x / 12.92
    } else {
        ((x + 0.055) / 1.055).powf(2.4)
    }
}

/// Linear-light RGB → CIE XYZ (Eq. 2).
#[inline]
pub fn linear_rgb_to_xyz([r, g, b]: [f64; 3]) -> [f64; 3] {
    let mut out = [0.0; 3];
    for (o, row) in out.iter_mut().zip(RGB_TO_XYZ.iter()) {
        *o = row[0] * r + row[1] * g + row[2] * b;
    }
    out
}

/// The CIELAB companding function `f(W)` of Eq. 4.
#[inline]
pub fn lab_f(t: f64) -> f64 {
    if t > LAB_EPSILON {
        t.cbrt()
    } else {
        (LAB_KAPPA * t + 16.0) / 116.0
    }
}

/// CIE XYZ → CIELAB (Eqs. 3–4).
///
/// Note the paper's Eq. 3 typo: `b = 200·(f_Y − f_X)` should be
/// `b = 200·(f_Y − f_Z)` (the standard definition, implemented here).
#[inline]
pub fn xyz_to_lab([x, y, z]: [f64; 3]) -> [f64; 3] {
    let fx = lab_f(x / REFERENCE_WHITE[0]);
    let fy = lab_f(y / REFERENCE_WHITE[1]);
    let fz = lab_f(z / REFERENCE_WHITE[2]);
    [
        116.0 * fy - 16.0,
        500.0 * (fx - fy),
        200.0 * (fy - fz),
    ]
}

/// Full pipeline for one 8-bit sRGB pixel: gamma → matrix → LAB.
///
/// Returns `[L, a, b]` with `L ∈ [0, 100]` and `a, b` roughly in
/// `[-128, 127]`.
#[inline]
pub fn rgb8_to_lab(px: Rgb) -> [f64; 3] {
    let lin = [
        srgb_to_linear(px.r as f64 / 255.0),
        srgb_to_linear(px.g as f64 / 255.0),
        srgb_to_linear(px.b as f64 / 255.0),
    ];
    xyz_to_lab(linear_rgb_to_xyz(lin))
}

/// Inverse sRGB gamma's inverse: linear light back to gamma-encoded.
#[inline]
pub fn linear_to_srgb(x: f64) -> f64 {
    if x <= 0.04045 / 12.92 {
        x * 12.92
    } else {
        1.055 * x.powf(1.0 / 2.4) - 0.055
    }
}

/// CIE XYZ → linear-light RGB (inverse of Eq. 2; the inverse matrix of
/// [`RGB_TO_XYZ`]).
#[inline]
pub fn xyz_to_linear_rgb([x, y, z]: [f64; 3]) -> [f64; 3] {
    // Inverse of the sRGB D65 matrix.
    const INV: [[f64; 3]; 3] = [
        [3.240_454_2, -1.537_138_5, -0.498_531_4],
        [-0.969_266_0, 1.876_010_8, 0.041_556_0],
        [0.055_643_4, -0.204_025_9, 1.057_225_2],
    ];
    let mut out = [0.0; 3];
    for (o, row) in out.iter_mut().zip(INV.iter()) {
        *o = row[0] * x + row[1] * y + row[2] * z;
    }
    out
}

/// CIELAB → CIE XYZ (inverse of Eqs. 3–4).
#[inline]
pub fn lab_to_xyz([l, a, b]: [f64; 3]) -> [f64; 3] {
    let fy = (l + 16.0) / 116.0;
    let fx = fy + a / 500.0;
    let fz = fy - b / 200.0;
    let finv = |f: f64| {
        let f3 = f * f * f;
        if f3 > LAB_EPSILON {
            f3
        } else {
            (116.0 * f - 16.0) / LAB_KAPPA
        }
    };
    [
        finv(fx) * REFERENCE_WHITE[0],
        finv(fy) * REFERENCE_WHITE[1],
        finv(fz) * REFERENCE_WHITE[2],
    ]
}

/// Full inverse pipeline: CIELAB back to an 8-bit sRGB pixel (clamped to
/// the displayable gamut) — used to visualize Lab-space processing.
#[inline]
pub fn lab_to_rgb8(lab: [f64; 3]) -> Rgb {
    let lin = xyz_to_linear_rgb(lab_to_xyz(lab));
    let to8 = |v: f64| (linear_to_srgb(v.clamp(0.0, 1.0)) * 255.0).round() as u8;
    Rgb::new(to8(lin[0]), to8(lin[1]), to8(lin[2]))
}

/// Converts a whole image to planar `f32` CIELAB.
pub fn convert_image(img: &RgbImage) -> LabImage {
    let mut out = LabImage::from_fn(img.width(), img.height(), |_, _| [0.0; 3]);
    convert_image_into(img, &mut out);
    out
}

/// Converts a whole image into a caller-owned planar `f32` CIELAB image
/// (no allocation); per-pixel values are identical to [`convert_image`].
///
/// # Panics
///
/// Panics if `out` differs in geometry from `img`.
pub fn convert_image_into(img: &RgbImage, out: &mut LabImage) {
    assert!(
        out.width() == img.width() && out.height() == img.height(),
        "convert_image_into requires matching image geometry"
    );
    for y in 0..img.height() {
        for x in 0..img.width() {
            let [l, a, b] = rgb8_to_lab(img.pixel(x, y));
            out.l[(x, y)] = l as f32;
            out.a[(x, y)] = a as f32;
            out.b[(x, y)] = b as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_maps_to_lab_origin() {
        let [l, a, b] = rgb8_to_lab(Rgb::new(0, 0, 0));
        assert!(l.abs() < 1e-9);
        assert!(a.abs() < 1e-9);
        assert!(b.abs() < 1e-9);
    }

    #[test]
    fn white_maps_to_l100_neutral() {
        let [l, a, b] = rgb8_to_lab(Rgb::new(255, 255, 255));
        assert!((l - 100.0).abs() < 0.01, "L={l}");
        assert!(a.abs() < 0.01, "a={a}");
        assert!(b.abs() < 0.01, "b={b}");
    }

    #[test]
    fn greys_are_neutral() {
        for v in [32u8, 128, 200] {
            let [_, a, b] = rgb8_to_lab(Rgb::new(v, v, v));
            assert!(a.abs() < 0.01 && b.abs() < 0.01, "grey {v} not neutral");
        }
    }

    #[test]
    fn primary_hue_signs() {
        let [_, a_r, b_r] = rgb8_to_lab(Rgb::new(255, 0, 0));
        assert!(a_r > 50.0, "red has strongly positive a*");
        let [_, a_g, _] = rgb8_to_lab(Rgb::new(0, 255, 0));
        assert!(a_g < -50.0, "green has strongly negative a*");
        let [_, _, b_b] = rgb8_to_lab(Rgb::new(0, 0, 255));
        assert!(b_b < -50.0, "blue has strongly negative b*");
        assert!(b_r > 0.0, "red has positive b*");
    }

    #[test]
    fn known_reference_value_mid_grey() {
        // sRGB (119,119,119) ≈ L*50 neutral grey (standard colorimetry).
        let [l, a, b] = rgb8_to_lab(Rgb::new(119, 119, 119));
        assert!((l - 50.0).abs() < 0.5, "L={l}");
        assert!(a.abs() < 0.01 && b.abs() < 0.01);
    }

    #[test]
    fn gamma_is_continuous_at_threshold() {
        let below = srgb_to_linear(0.04045);
        let above = srgb_to_linear(0.040451);
        assert!((below - above).abs() < 1e-5);
    }

    #[test]
    fn lab_f_is_continuous_at_epsilon() {
        let below = lab_f(LAB_EPSILON - 1e-9);
        let above = lab_f(LAB_EPSILON + 1e-9);
        assert!((below - above).abs() < 1e-4);
    }

    #[test]
    fn l_is_monotone_in_grey_level() {
        let mut last = -1.0;
        for v in 0..=255u8 {
            let [l, _, _] = rgb8_to_lab(Rgb::new(v, v, v));
            assert!(l >= last, "L must be monotone in grey level");
            last = l;
        }
    }

    #[test]
    fn lab_range_is_bounded_over_rgb_cube() {
        // Sample the cube corners + edges: L in [0,100], a,b in [-128,127].
        for &r in &[0u8, 128, 255] {
            for &g in &[0u8, 128, 255] {
                for &b in &[0u8, 128, 255] {
                    let [l, a, bb] = rgb8_to_lab(Rgb::new(r, g, b));
                    assert!((0.0..=100.001).contains(&l));
                    assert!((-128.0..=127.0).contains(&a), "a={a}");
                    assert!((-128.0..=127.0).contains(&bb), "b={bb}");
                }
            }
        }
    }

    #[test]
    fn rgb_lab_round_trip_is_near_lossless() {
        for &r in &[0u8, 17, 99, 180, 255] {
            for &g in &[0u8, 64, 200] {
                for &b in &[31u8, 128, 250] {
                    let px = Rgb::new(r, g, b);
                    let back = lab_to_rgb8(rgb8_to_lab(px));
                    assert!(
                        (back.r as i16 - r as i16).abs() <= 1
                            && (back.g as i16 - g as i16).abs() <= 1
                            && (back.b as i16 - b as i16).abs() <= 1,
                        "{px:?} -> {back:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_gamut_lab_clamps_instead_of_wrapping() {
        // A wildly saturated Lab value must clamp to a displayable color.
        let px = lab_to_rgb8([50.0, 200.0, -200.0]);
        assert_eq!(px.g, 0, "a* >> 0 kills green");
        assert_eq!(px.b, 255, "b* << 0 saturates blue");
    }

    #[test]
    fn matrix_inverse_is_consistent() {
        let lin = [0.2, 0.5, 0.8];
        let back = xyz_to_linear_rgb(linear_rgb_to_xyz(lin));
        for i in 0..3 {
            assert!((back[i] - lin[i]).abs() < 1e-4, "channel {i}");
        }
    }

    #[test]
    fn convert_image_matches_per_pixel_path() {
        let img = RgbImage::from_fn(8, 4, |x, y| {
            Rgb::new((x * 30) as u8, (y * 60) as u8, 90)
        });
        let lab = convert_image(&img);
        let [l, a, b] = rgb8_to_lab(img.pixel(3, 2));
        assert!((lab.l[(3, 2)] - l as f32).abs() < 1e-4);
        assert!((lab.a[(3, 2)] - a as f32).abs() < 1e-4);
        assert!((lab.b[(3, 2)] - b as f32).abs() < 1e-4);
    }
}
