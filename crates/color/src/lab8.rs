//! The accelerator's 8-bit CIELAB channel encoding.
//!
//! The channel scratchpads store one byte per pixel per channel (paper
//! §4.3), so real-valued CIELAB must be packed into bytes. We use the
//! conventional 8-bit Lab encoding (the same one OpenCV uses):
//!
//! ```text
//! l8 = round(L * 255 / 100)     L ∈ [0, 100]
//! a8 = round(a) + 128           a ∈ [-128, 127]
//! b8 = round(b) + 128           b ∈ [-128, 127]
//! ```
//!
//! All encoders saturate rather than wrap.

/// Encodes a real `[L, a, b]` triple into scratchpad bytes.
///
/// # Example
///
/// ```
/// use sslic_color::lab8;
///
/// assert_eq!(lab8::encode([0.0, 0.0, 0.0]), [0, 128, 128]);
/// assert_eq!(lab8::encode([100.0, 0.0, 0.0]), [255, 128, 128]);
/// assert_eq!(lab8::encode([200.0, 500.0, -500.0]), [255, 255, 0]); // saturates
/// ```
#[inline]
pub fn encode([l, a, b]: [f64; 3]) -> [u8; 3] {
    [
        (l * 255.0 / 100.0).round().clamp(0.0, 255.0) as u8,
        (a.round() + 128.0).clamp(0.0, 255.0) as u8,
        (b.round() + 128.0).clamp(0.0, 255.0) as u8,
    ]
}

/// Decodes scratchpad bytes back to real `[L, a, b]`.
#[inline]
pub fn decode([l8, a8, b8]: [u8; 3]) -> [f64; 3] {
    [
        l8 as f64 * 100.0 / 255.0,
        a8 as f64 - 128.0,
        b8 as f64 - 128.0,
    ]
}

/// Worst-case absolute decoding error per channel introduced by the 8-bit
/// encoding: `[L, a, b]` units.
pub const MAX_QUANTIZATION_ERROR: [f64; 3] = [100.0 / 255.0 / 2.0, 0.5, 0.5];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn origin_encodes_to_midpoint() {
        assert_eq!(encode([0.0, 0.0, 0.0]), [0, 128, 128]);
    }

    #[test]
    fn extremes_saturate() {
        assert_eq!(encode([150.0, 300.0, -300.0]), [255, 255, 0]);
        assert_eq!(encode([-10.0, -300.0, 300.0]), [0, 0, 255]);
    }

    #[test]
    fn decode_inverts_encode_within_half_lsb() {
        for (l, a, b) in [(50.0, 10.0, -10.0), (99.0, -127.0, 126.0), (0.4, 0.4, -0.4)] {
            let [dl, da, db] = decode(encode([l, a, b]));
            assert!((dl - l).abs() <= MAX_QUANTIZATION_ERROR[0] + 1e-9);
            assert!((da - a).abs() <= MAX_QUANTIZATION_ERROR[1] + 1e-9);
            assert!((db - b).abs() <= MAX_QUANTIZATION_ERROR[2] + 1e-9);
        }
    }

    proptest! {
        #[test]
        fn round_trip_error_bounded(
            l in 0.0f64..100.0,
            a in -128.0f64..127.0,
            b in -128.0f64..127.0,
        ) {
            let [dl, da, db] = decode(encode([l, a, b]));
            prop_assert!((dl - l).abs() <= MAX_QUANTIZATION_ERROR[0] + 1e-9);
            prop_assert!((da - a).abs() <= MAX_QUANTIZATION_ERROR[1] + 1e-9);
            prop_assert!((db - b).abs() <= MAX_QUANTIZATION_ERROR[2] + 1e-9);
        }

        #[test]
        fn encode_is_monotone_in_l(l1 in 0.0f64..100.0, l2 in 0.0f64..100.0) {
            let e1 = encode([l1, 0.0, 0.0])[0];
            let e2 = encode([l2, 0.0, 0.0])[0];
            if l1 <= l2 {
                prop_assert!(e1 <= e2);
            }
        }
    }
}
