//! The accelerator's LUT-based fixed-point color-conversion datapath.
//!
//! The hardware replaces both power functions of the RGB→CIELAB pipeline
//! with tables (paper §6.1):
//!
//! * the inverse sRGB gamma of Eq. 1 becomes a **256-entry LUT** indexed by
//!   the 8-bit channel code, exact at its output precision;
//! * the cube root of Eq. 4 becomes an **8-segment piecewise-linear LUT**;
//!   the linear region below `0.008856` is computed directly (it is already
//!   a multiply-add);
//! * the 3×3 matrix of Eq. 2 is evaluated in fixed point with the
//!   reference-white division folded into the coefficients.
//!
//! The datapath width at each stage is configurable through
//! [`HwColorConfig`] so the bit-width exploration of §6.1 can sweep it.

use sslic_fixed::{Lut256, PwlLut};
use sslic_image::{Rgb, RgbImage};

use crate::float::{LAB_EPSILON, LAB_KAPPA, REFERENCE_WHITE, RGB_TO_XYZ};
use crate::{lab8, Lab8Image};

/// Precision configuration of the hardware color-conversion unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwColorConfig {
    /// Fraction bits of the gamma LUT output (linear-light codes). Paper
    /// default: 12.
    pub gamma_frac_bits: u8,
    /// Fraction bits of the fixed-point matrix coefficients. Paper
    /// default: 12.
    pub matrix_frac_bits: u8,
    /// Number of PWL segments for the cube root. Paper default: 8.
    pub pwl_segments: usize,
    /// Fraction bits the PWL output is rounded to. Paper default: 12.
    pub pwl_frac_bits: u8,
}

impl Default for HwColorConfig {
    fn default() -> Self {
        HwColorConfig {
            gamma_frac_bits: 12,
            matrix_frac_bits: 12,
            pwl_segments: 8,
            pwl_frac_bits: 12,
        }
    }
}

/// The LUT/fixed-point RGB→CIELAB converter of the S-SLIC accelerator.
///
/// # Example
///
/// ```
/// use sslic_color::hw::HwColorConverter;
/// use sslic_image::Rgb;
///
/// let conv = HwColorConverter::paper_default();
/// let [l8, a8, b8] = conv.convert(Rgb::new(255, 255, 255));
/// assert_eq!(l8, 255);            // white → L* = 100
/// assert!((a8 as i16 - 128).abs() <= 1);
/// assert!((b8 as i16 - 128).abs() <= 1);
/// ```
#[derive(Debug, Clone)]
pub struct HwColorConverter {
    gamma: Lut256,
    /// Matrix coefficients with `1/white` folded in, at `matrix_frac_bits`.
    matrix: [[i64; 3]; 3],
    pwl: PwlLut,
    config: HwColorConfig,
}

impl HwColorConverter {
    /// Builds the converter with the paper's configuration (256-entry gamma
    /// LUT, 8-segment PWL cube root, 12-bit intermediate precision).
    pub fn paper_default() -> Self {
        Self::new(HwColorConfig::default())
    }

    /// Builds the converter tables for an arbitrary precision configuration.
    ///
    /// # Panics
    ///
    /// Panics if `pwl_segments == 0` or any bit width exceeds 24.
    pub fn new(config: HwColorConfig) -> Self {
        assert!(config.pwl_segments > 0, "at least one PWL segment");
        assert!(
            config.gamma_frac_bits <= 24
                && config.matrix_frac_bits <= 24
                && config.pwl_frac_bits <= 24,
            "bit widths above 24 are not hardware-plausible here"
        );
        let gscale = (1i64 << config.gamma_frac_bits) as f64;
        let gamma = Lut256::from_fn(|code| {
            let x = code as f64 / 255.0;
            (crate::float::srgb_to_linear(x) * gscale).round() as i32
        });
        let mscale = (1i64 << config.matrix_frac_bits) as f64;
        let mut matrix = [[0i64; 3]; 3];
        for (r, row) in matrix.iter_mut().enumerate() {
            for (c, m) in row.iter_mut().enumerate() {
                *m = (RGB_TO_XYZ[r][c] / REFERENCE_WHITE[r] * mscale).round() as i64;
            }
        }
        let pwl = PwlLut::from_fn_geometric(config.pwl_segments, LAB_EPSILON, 1.0, |t| t.cbrt());
        HwColorConverter {
            gamma,
            matrix,
            pwl,
            config,
        }
    }

    /// The converter's precision configuration.
    pub fn config(&self) -> HwColorConfig {
        self.config
    }

    /// Reads one gamma-LUT entry (linear-light code at
    /// [`HwColorConfig::gamma_frac_bits`] fraction bits) — used by tests and
    /// by the fault model to compute realized corruption masks.
    pub fn gamma_entry(&self, code: u8) -> i32 {
        self.gamma.lookup(code)
    }

    /// XORs `xor_mask` into one gamma-LUT entry, modeling a soft error in
    /// the conversion unit's table storage (the `ColorLut` fault site of
    /// `sslic-fault`). Subsequent [`Self::convert`] calls read the corrupted
    /// entry; a second call with the same mask restores it.
    pub fn corrupt_gamma_entry(&mut self, code: u8, xor_mask: i32) {
        self.gamma.corrupt(code, xor_mask);
    }

    /// Converts one 8-bit sRGB pixel to encoded 8-bit CIELAB
    /// (see [`crate::lab8`]).
    pub fn convert(&self, px: Rgb) -> [u8; 3] {
        // Stage 1: gamma LUT (three ROM reads).
        let lin = [
            self.gamma.lookup(px.r) as i64,
            self.gamma.lookup(px.g) as i64,
            self.gamma.lookup(px.b) as i64,
        ];
        // Stage 2: fixed-point matrix with folded white division. The
        // product has gamma_frac + matrix_frac fraction bits; shift back to
        // gamma_frac with rounding.
        let shift = self.config.matrix_frac_bits as u32;
        let half = 1i64 << (shift - 1).min(62);
        let gmax = 1i64 << self.config.gamma_frac_bits;
        let mut t = [0f64; 3];
        for (row, tr) in t.iter_mut().enumerate() {
            let acc: i64 = (0..3).map(|c| self.matrix[row][c] * lin[c]).sum();
            let scaled = ((acc + half) >> shift).clamp(0, gmax);
            *tr = scaled as f64 / gmax as f64;
        }
        // Stage 3: companding via PWL (or the exact linear branch), rounded
        // to the PWL output precision.
        let pscale = (1i64 << self.config.pwl_frac_bits) as f64;
        let f = t.map(|ti| {
            let v = if ti > LAB_EPSILON {
                self.pwl.eval(ti)
            } else {
                (LAB_KAPPA * ti + 16.0) / 116.0
            };
            (v * pscale).round() / pscale
        });
        // Stage 4: the three linear combinations and the 8-bit encode.
        lab8::encode([
            116.0 * f[1] - 16.0,
            500.0 * (f[0] - f[1]),
            200.0 * (f[1] - f[2]),
        ])
    }

    /// Converts a whole image into the scratchpad's planar 8-bit CIELAB
    /// layout, exactly what the accelerator's color-conversion pass writes
    /// back to channel memories 1–3 (paper §4.3).
    pub fn convert_image(&self, img: &RgbImage) -> Lab8Image {
        let mut out = Lab8Image::from_fn(img.width(), img.height(), |_, _| [0; 3]);
        self.convert_image_into(img, &mut out);
        out
    }

    /// Converts a whole image into a caller-owned planar 8-bit CIELAB
    /// image (no allocation); per-pixel codes are identical to
    /// [`HwColorConverter::convert_image`]. This is the streaming-session
    /// entry point: the session reuses one `Lab8Image` across frames.
    ///
    /// Pixels move through the datapath in groups of four, stage-major —
    /// every pixel of a group finishes the gamma LUT before any enters
    /// the matrix, mirroring the accelerator's four-lane conversion unit
    /// and letting the compiler keep each stage's tables/coefficients
    /// hot. The per-pixel arithmetic inside each stage is exactly
    /// [`HwColorConverter::convert`]'s, so the output codes are
    /// bit-identical to the one-pixel path (pinned by test).
    ///
    /// # Panics
    ///
    /// Panics if `out` differs in geometry from `img`.
    pub fn convert_image_into(&self, img: &RgbImage, out: &mut Lab8Image) {
        assert!(
            out.width() == img.width() && out.height() == img.height(),
            "convert_image_into requires matching image geometry"
        );
        let shift = self.config.matrix_frac_bits as u32;
        let half = 1i64 << (shift - 1).min(62);
        let gmax = 1i64 << self.config.gamma_frac_bits;
        let pscale = (1i64 << self.config.pwl_frac_bits) as f64;
        for y in 0..img.height() {
            let mut x = 0;
            while x < img.width() {
                let n = (img.width() - x).min(4);
                // Stage 1: gamma LUT — 3 ROM reads per lane.
                let mut lin = [[0i64; 3]; 4];
                for (j, l) in lin[..n].iter_mut().enumerate() {
                    let px = img.pixel(x + j, y);
                    *l = [
                        self.gamma.lookup(px.r) as i64,
                        self.gamma.lookup(px.g) as i64,
                        self.gamma.lookup(px.b) as i64,
                    ];
                }
                // Stage 2: fixed-point matrix with folded white division,
                // shifted back to gamma_frac with rounding (per lane, same
                // expression as `convert`).
                let mut t = [[0f64; 3]; 4];
                for (j, tj) in t[..n].iter_mut().enumerate() {
                    for (row, tr) in tj.iter_mut().enumerate() {
                        let acc: i64 = (0..3).map(|c| self.matrix[row][c] * lin[j][c]).sum();
                        let scaled = ((acc + half) >> shift).clamp(0, gmax);
                        *tr = scaled as f64 / gmax as f64;
                    }
                }
                // Stage 3: PWL companding (or the exact linear branch),
                // rounded to the PWL output precision.
                let mut f = [[0f64; 3]; 4];
                for (j, fj) in f[..n].iter_mut().enumerate() {
                    *fj = t[j].map(|ti| {
                        let v = if ti > LAB_EPSILON {
                            self.pwl.eval(ti)
                        } else {
                            (LAB_KAPPA * ti + 16.0) / 116.0
                        };
                        (v * pscale).round() / pscale
                    });
                }
                // Stage 4: the three linear combinations, 8-bit encode,
                // planar write-back.
                for (j, fj) in f[..n].iter().enumerate() {
                    let [l, a, b] = lab8::encode([
                        116.0 * fj[1] - 16.0,
                        500.0 * (fj[0] - fj[1]),
                        200.0 * (fj[1] - fj[2]),
                    ]);
                    out.l[(x + j, y)] = l;
                    out.a[(x + j, y)] = a;
                    out.b[(x + j, y)] = b;
                }
                x += n;
            }
        }
    }

    /// Maximum per-channel absolute deviation (in 8-bit code units) from
    /// the float reference over a deterministic sample of the RGB cube —
    /// the validation the paper runs before committing to the LUT design.
    pub fn max_code_error_vs_float(&self, stride: u8) -> [u8; 3] {
        let stride = stride.max(1);
        let mut max = [0u8; 3];
        let mut v = 0u16;
        while v <= 255 {
            let mut g = 0u16;
            while g <= 255 {
                let mut b = 0u16;
                while b <= 255 {
                    let px = Rgb::new(v as u8, g as u8, b as u8);
                    let hwc = self.convert(px);
                    let refc = lab8::encode(crate::float::rgb8_to_lab(px));
                    for i in 0..3 {
                        let d = (hwc[i] as i16 - refc[i] as i16).unsigned_abs() as u8;
                        if d > max[i] {
                            max[i] = d;
                        }
                    }
                    b += stride as u16;
                }
                g += stride as u16;
            }
            v += stride as u16;
        }
        max
    }
}

/// Free-function form of [`HwColorConverter::convert_image_into`]: runs the
/// accelerator's LUT conversion of `img` into the caller-owned `out`
/// planes without allocating. Streaming callers build the converter once
/// (its LUTs are the only allocation) and reuse `out` across frames.
///
/// # Panics
///
/// Panics if `out` differs in geometry from `img`.
pub fn rgb_to_lab8_into(converter: &HwColorConverter, img: &RgbImage, out: &mut Lab8Image) {
    converter.convert_image_into(img, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convert_image_into_matches_convert_image_bit_for_bit() {
        let img = RgbImage::from_fn(7, 5, |x, y| {
            Rgb::new((x * 31) as u8, (y * 47) as u8, ((x + y) * 13) as u8)
        });
        let conv = HwColorConverter::paper_default();
        let fresh = conv.convert_image(&img);
        let mut reused = Lab8Image::from_fn(7, 5, |_, _| [1; 3]);
        rgb_to_lab8_into(&conv, &img, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn batched_image_conversion_matches_scalar_convert_exactly() {
        // The four-lane stage-major loop must reproduce the one-pixel
        // datapath code-for-code, including the partial group at a width
        // that is not a multiple of four and at non-default precisions.
        for config in [
            HwColorConfig::default(),
            HwColorConfig {
                gamma_frac_bits: 7,
                matrix_frac_bits: 9,
                pwl_segments: 3,
                pwl_frac_bits: 6,
            },
        ] {
            let conv = HwColorConverter::new(config);
            let img = RgbImage::from_fn(11, 6, |x, y| {
                Rgb::new(
                    (x * 23 + y * 5) as u8,
                    (y * 41 + x) as u8,
                    ((x * y) * 17 + 3) as u8,
                )
            });
            let lab = conv.convert_image(&img);
            for y in 0..img.height() {
                for x in 0..img.width() {
                    assert_eq!(
                        lab.pixel(x, y),
                        conv.convert(img.pixel(x, y)),
                        "batched path diverged at ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn black_and_white_are_exact() {
        let conv = HwColorConverter::paper_default();
        let black = conv.convert(Rgb::new(0, 0, 0));
        assert_eq!(black[0], 0);
        assert!((black[1] as i16 - 128).abs() <= 1);
        assert!((black[2] as i16 - 128).abs() <= 1);
        let white = conv.convert(Rgb::new(255, 255, 255));
        assert_eq!(white[0], 255);
    }

    #[test]
    fn tracks_float_reference_within_a_few_lsbs() {
        // The 8-segment PWL cube root has ≈0.009 max error; a* = 500(fx−fy)
        // amplifies it to at most ~±7 codes in the worst (dark, saturated)
        // corner of the cube. L* (116× then ×2.55 encode) stays within
        // ~3 codes. These bounds
        // are what make the paper's "only 0.003 larger USE at 8-bit" hold:
        // SLIC compares relative distances, so a few correlated LSBs of
        // channel error rarely flip a 9:1 minimum decision.
        let conv = HwColorConverter::paper_default();
        let err = conv.max_code_error_vs_float(15);
        assert!(err[0] <= 3, "L error {} too large", err[0]);
        assert!(err[1] <= 7, "a error {} too large", err[1]);
        assert!(err[2] <= 7, "b error {} too large", err[2]);
    }

    #[test]
    fn coarser_precision_increases_error() {
        let fine = HwColorConverter::paper_default();
        let coarse = HwColorConverter::new(HwColorConfig {
            gamma_frac_bits: 5,
            matrix_frac_bits: 5,
            pwl_segments: 2,
            pwl_frac_bits: 5,
        });
        let ef = fine.max_code_error_vs_float(25);
        let ec = coarse.max_code_error_vs_float(25);
        assert!(
            ec.iter().sum::<u8>() > ef.iter().sum::<u8>(),
            "coarse {ec:?} should be worse than fine {ef:?}"
        );
    }

    #[test]
    fn grey_axis_is_neutral_in_hw_path() {
        let conv = HwColorConverter::paper_default();
        for v in [16u8, 64, 128, 192, 240] {
            let [_, a, b] = conv.convert(Rgb::new(v, v, v));
            assert!((a as i16 - 128).abs() <= 1, "grey {v}: a={a}");
            assert!((b as i16 - 128).abs() <= 1, "grey {v}: b={b}");
        }
    }

    #[test]
    fn l_channel_monotone_on_grey_axis() {
        let conv = HwColorConverter::paper_default();
        let mut last = 0u8;
        for v in 0..=255u8 {
            let [l, _, _] = conv.convert(Rgb::new(v, v, v));
            assert!(l >= last, "hw L must be monotone on greys");
            last = l;
        }
    }

    #[test]
    fn convert_image_is_planar_and_matches_per_pixel() {
        let conv = HwColorConverter::paper_default();
        let img = RgbImage::from_fn(4, 3, |x, y| Rgb::new((x * 60) as u8, (y * 80) as u8, 128));
        let lab = conv.convert_image(&img);
        assert_eq!(lab.pixel(2, 1), conv.convert(img.pixel(2, 1)));
    }

    #[test]
    #[should_panic(expected = "PWL segment")]
    fn zero_segments_panics() {
        let _ = HwColorConverter::new(HwColorConfig {
            pwl_segments: 0,
            ..HwColorConfig::default()
        });
    }
}
