//! RGB → CIELAB color conversion: the exact floating-point reference path
//! (paper Eqs. 1–4) and the accelerator's LUT-based 8-bit fixed-point path.
//!
//! Color conversion is the first stage of both SLIC and the S-SLIC
//! accelerator. The paper's hardware replaces the two power functions with
//! LUTs (§6.1): a 256-entry table for the sRGB gamma in the RGB→XYZ step
//! and an 8-segment piecewise-linear approximation of the cube root in the
//! XYZ→LAB step. Both paths are implemented here:
//!
//! * [`float`] — `f64` reference implementation of Eqs. 1–4.
//! * [`lab8`] — the 8-bit CIELAB encoding stored in the accelerator's
//!   channel scratchpads (`L·255/100`, `a+128`, `b+128`).
//! * [`hw`] — [`hw::HwColorConverter`], the LUT/fixed-point datapath model.
//! * [`LabImage`] / [`Lab8Image`] — planar CIELAB images at `f32` and `u8`.
//!
//! ## Paper errata handled here
//!
//! The paper's Eq. 1 writes the sRGB gamma as `[(x+0.05)/1.055]^2.4`; the
//! sRGB standard (and the SLIC reference code) uses `0.055`. Eq. 3 writes
//! `b = 200·(f_Y − f_X)`; CIELAB defines `b = 200·(f_Y − f_Z)`. We implement
//! the standard forms and note the typos in `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use sslic_color::{float, hw::HwColorConverter};
//! use sslic_image::Rgb;
//!
//! let px = Rgb::new(200, 60, 60);
//! let [l, a, b] = float::rgb8_to_lab(px);
//! assert!(l > 0.0 && a > 0.0); // a red pixel has positive a*
//!
//! let conv = HwColorConverter::paper_default();
//! let [l8, a8, b8] = conv.convert(px);
//! // The hardware path tracks the float path to within a few 8-bit LSBs.
//! let [fl, fa, fb] = sslic_color::lab8::encode([l, a, b]);
//! assert!((l8 as i16 - fl as i16).abs() <= 2);
//! assert!((a8 as i16 - fa as i16).abs() <= 7);
//! assert!((b8 as i16 - fb as i16).abs() <= 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod float;
pub mod hw;
pub mod lab8;

mod images;

pub use hw::rgb_to_lab8_into;
pub use images::{Lab8Image, LabImage};
