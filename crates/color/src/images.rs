use sslic_image::Plane;

/// A planar `f32` CIELAB image: the working representation of the software
/// SLIC paths.
#[derive(Debug, Clone, PartialEq)]
pub struct LabImage {
    /// Lightness channel, `L* ∈ [0, 100]`.
    pub l: Plane<f32>,
    /// Green–red opponent channel.
    pub a: Plane<f32>,
    /// Blue–yellow opponent channel.
    pub b: Plane<f32>,
}

impl LabImage {
    /// Builds an image by evaluating `f(x, y) -> [L, a, b]` at every pixel.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [f32; 3],
    ) -> Self {
        let mut l = Plane::filled(width, height, 0.0f32);
        let mut a = Plane::filled(width, height, 0.0f32);
        let mut b = Plane::filled(width, height, 0.0f32);
        for y in 0..height {
            for x in 0..width {
                let [lv, av, bv] = f(x, y);
                l[(x, y)] = lv;
                a[(x, y)] = av;
                b[(x, y)] = bv;
            }
        }
        LabImage { l, a, b }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.l.width()
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.l.height()
    }

    /// Total pixels.
    pub fn pixel_count(&self) -> usize {
        self.l.len()
    }

    /// The `[L, a, b]` triple at `(x, y)`.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [f32; 3] {
        [self.l[(x, y)], self.a[(x, y)], self.b[(x, y)]]
    }

    /// Copies all three channels of `src` into this image in place (no
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics if the two images differ in geometry.
    pub fn copy_from(&mut self, src: &LabImage) {
        self.l.copy_from(&src.l);
        self.a.copy_from(&src.a);
        self.b.copy_from(&src.b);
    }
}

/// A planar 8-bit CIELAB image in the accelerator's scratchpad encoding
/// (see [`crate::lab8`]): `L` scaled to 0–255, `a`/`b` offset by +128.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lab8Image {
    /// Encoded lightness channel.
    pub l: Plane<u8>,
    /// Encoded green–red channel.
    pub a: Plane<u8>,
    /// Encoded blue–yellow channel.
    pub b: Plane<u8>,
}

impl Lab8Image {
    /// Builds an image by evaluating `f(x, y) -> [l8, a8, b8]` per pixel.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [u8; 3],
    ) -> Self {
        let mut l = Plane::filled(width, height, 0u8);
        let mut a = Plane::filled(width, height, 0u8);
        let mut b = Plane::filled(width, height, 0u8);
        for y in 0..height {
            for x in 0..width {
                let [lv, av, bv] = f(x, y);
                l[(x, y)] = lv;
                a[(x, y)] = av;
                b[(x, y)] = bv;
            }
        }
        Lab8Image { l, a, b }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.l.width()
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.l.height()
    }

    /// Total pixels.
    pub fn pixel_count(&self) -> usize {
        self.l.len()
    }

    /// The encoded `[l8, a8, b8]` triple at `(x, y)`.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        [self.l[(x, y)], self.a[(x, y)], self.b[(x, y)]]
    }

    /// Decodes the whole image to `f32` CIELAB (inverse of the scratchpad
    /// encoding, up to quantization).
    pub fn decode(&self) -> LabImage {
        let mut out = LabImage::from_fn(self.width(), self.height(), |_, _| [0.0; 3]);
        self.decode_into(&mut out);
        out
    }

    /// Decodes the whole image into a caller-owned `f32` CIELAB image
    /// (no allocation); per-pixel values are identical to
    /// [`Lab8Image::decode`].
    ///
    /// # Panics
    ///
    /// Panics if `out` differs in geometry.
    pub fn decode_into(&self, out: &mut LabImage) {
        assert!(
            out.width() == self.width() && out.height() == self.height(),
            "decode_into requires matching image geometry"
        );
        for y in 0..self.height() {
            for x in 0..self.width() {
                let [l, a, b] = crate::lab8::decode(self.pixel(x, y));
                out.l[(x, y)] = l as f32;
                out.a[(x, y)] = a as f32;
                out.b[(x, y)] = b as f32;
            }
        }
    }

    /// Copies all three channels of `src` into this image in place (no
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics if the two images differ in geometry.
    pub fn copy_from(&mut self, src: &Lab8Image) {
        self.l.copy_from(&src.l);
        self.a.copy_from(&src.a);
        self.b.copy_from(&src.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_image_from_fn_and_pixel() {
        let img = LabImage::from_fn(3, 2, |x, y| [x as f32, y as f32, 7.0]);
        assert_eq!(img.pixel(2, 1), [2.0, 1.0, 7.0]);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.pixel_count(), 6);
    }

    #[test]
    fn decode_into_matches_decode_bit_for_bit() {
        let img = Lab8Image::from_fn(5, 4, |x, y| [(x * 37) as u8, (y * 61) as u8, 200]);
        let fresh = img.decode();
        let mut reused = LabImage::from_fn(5, 4, |_, _| [9.0; 3]);
        img.decode_into(&mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn copy_from_replicates_all_channels() {
        let src = Lab8Image::from_fn(3, 3, |x, y| [x as u8, y as u8, 77]);
        let mut dst = Lab8Image::from_fn(3, 3, |_, _| [0; 3]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let labsrc = src.decode();
        let mut labdst = LabImage::from_fn(3, 3, |_, _| [0.0; 3]);
        labdst.copy_from(&labsrc);
        assert_eq!(labdst, labsrc);
    }

    #[test]
    fn lab8_image_round_trips_through_decode() {
        let img = Lab8Image::from_fn(2, 2, |x, y| [(x * 100) as u8, (y * 100 + 28) as u8, 128]);
        let dec = img.decode();
        // b = 128 encodes b* = 0
        assert_eq!(dec.b[(0, 0)], 0.0);
        assert_eq!(dec.width(), 2);
    }
}
