use sslic_image::Plane;

/// A planar `f32` CIELAB image: the working representation of the software
/// SLIC paths.
#[derive(Debug, Clone, PartialEq)]
pub struct LabImage {
    /// Lightness channel, `L* ∈ [0, 100]`.
    pub l: Plane<f32>,
    /// Green–red opponent channel.
    pub a: Plane<f32>,
    /// Blue–yellow opponent channel.
    pub b: Plane<f32>,
}

impl LabImage {
    /// Builds an image by evaluating `f(x, y) -> [L, a, b]` at every pixel.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [f32; 3],
    ) -> Self {
        let mut l = Plane::filled(width, height, 0.0f32);
        let mut a = Plane::filled(width, height, 0.0f32);
        let mut b = Plane::filled(width, height, 0.0f32);
        for y in 0..height {
            for x in 0..width {
                let [lv, av, bv] = f(x, y);
                l[(x, y)] = lv;
                a[(x, y)] = av;
                b[(x, y)] = bv;
            }
        }
        LabImage { l, a, b }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.l.width()
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.l.height()
    }

    /// Total pixels.
    pub fn pixel_count(&self) -> usize {
        self.l.len()
    }

    /// The `[L, a, b]` triple at `(x, y)`.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [f32; 3] {
        [self.l[(x, y)], self.a[(x, y)], self.b[(x, y)]]
    }
}

/// A planar 8-bit CIELAB image in the accelerator's scratchpad encoding
/// (see [`crate::lab8`]): `L` scaled to 0–255, `a`/`b` offset by +128.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lab8Image {
    /// Encoded lightness channel.
    pub l: Plane<u8>,
    /// Encoded green–red channel.
    pub a: Plane<u8>,
    /// Encoded blue–yellow channel.
    pub b: Plane<u8>,
}

impl Lab8Image {
    /// Builds an image by evaluating `f(x, y) -> [l8, a8, b8]` per pixel.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [u8; 3],
    ) -> Self {
        let mut l = Plane::filled(width, height, 0u8);
        let mut a = Plane::filled(width, height, 0u8);
        let mut b = Plane::filled(width, height, 0u8);
        for y in 0..height {
            for x in 0..width {
                let [lv, av, bv] = f(x, y);
                l[(x, y)] = lv;
                a[(x, y)] = av;
                b[(x, y)] = bv;
            }
        }
        Lab8Image { l, a, b }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.l.width()
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.l.height()
    }

    /// Total pixels.
    pub fn pixel_count(&self) -> usize {
        self.l.len()
    }

    /// The encoded `[l8, a8, b8]` triple at `(x, y)`.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        [self.l[(x, y)], self.a[(x, y)], self.b[(x, y)]]
    }

    /// Decodes the whole image to `f32` CIELAB (inverse of the scratchpad
    /// encoding, up to quantization).
    pub fn decode(&self) -> LabImage {
        LabImage::from_fn(self.width(), self.height(), |x, y| {
            let [l, a, b] = crate::lab8::decode(self.pixel(x, y));
            [l as f32, a as f32, b as f32]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_image_from_fn_and_pixel() {
        let img = LabImage::from_fn(3, 2, |x, y| [x as f32, y as f32, 7.0]);
        assert_eq!(img.pixel(2, 1), [2.0, 1.0, 7.0]);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.pixel_count(), 6);
    }

    #[test]
    fn lab8_image_round_trips_through_decode() {
        let img = Lab8Image::from_fn(2, 2, |x, y| [(x * 100) as u8, (y * 100 + 28) as u8, 128]);
        let dec = img.decode();
        // b = 128 encodes b* = 0
        assert_eq!(dec.b[(0, 0)], 0.0);
        assert_eq!(dec.width(), 2);
    }
}
