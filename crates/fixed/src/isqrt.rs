//! Integer square root — the operation a fully integer distance datapath
//! uses to turn `D²` into the `D` the paper's 8-bit distance registers
//! hold ("Each unit … returns the 8-bit distance", §4.3).
//!
//! Hardware implements this as a non-restoring shift/subtract circuit: one
//! result bit per stage, ~bit-width stages deep. [`isqrt`] mirrors that
//! algorithm exactly, so its per-call "cycle count" equals the pipeline
//! depth a synthesized unit would have.

/// Floor of the square root of `v`, computed with the hardware's
/// non-restoring bit-by-bit method (no floating point anywhere).
///
/// # Example
///
/// ```
/// use sslic_fixed::isqrt;
///
/// assert_eq!(isqrt(0), 0);
/// assert_eq!(isqrt(16), 4);
/// assert_eq!(isqrt(17), 4);
/// assert_eq!(isqrt(u64::MAX), u32::MAX as u64);
/// ```
pub fn isqrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut result = 0u64;
    // Highest power-of-4 bit at or below v.
    let mut bit = 1u64 << ((63 - v.leading_zeros()) & !1);
    let mut rem = v;
    while bit != 0 {
        if rem >= result + bit {
            rem -= result + bit;
            result = (result >> 1) + bit;
        } else {
            result >>= 1;
        }
        bit >>= 2;
    }
    result
}

/// Rounded (nearest) integer square root: `round(sqrt(v))`, still in pure
/// integer arithmetic — what a datapath with a half-LSB rounding stage
/// produces.
pub fn isqrt_rounded(v: u64) -> u64 {
    let floor = isqrt(v);
    // Round up iff v lies above the midpoint (floor + ½)² = floor² +
    // floor + ¼, i.e. (for integers) iff v − floor² > floor. `floor²`
    // cannot overflow since floor ≤ 2³²−1.
    let diff = v - floor * floor;
    if diff > floor {
        floor + 1
    } else {
        floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_squares() {
        for i in 0u64..2000 {
            assert_eq!(isqrt(i * i), i);
            assert_eq!(isqrt_rounded(i * i), i);
        }
    }

    #[test]
    fn floor_behaviour_between_squares() {
        assert_eq!(isqrt(8), 2);
        assert_eq!(isqrt(9), 3);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(24), 4);
    }

    #[test]
    fn rounding_behaviour() {
        // 6.5² = 42.25: 42 rounds down to 6, 43 rounds up to 7.
        assert_eq!(isqrt_rounded(42), 6);
        assert_eq!(isqrt_rounded(43), 7);
        // 2.5² = 6.25: 6 → 2, 7 → 3.
        assert_eq!(isqrt_rounded(6), 2);
        assert_eq!(isqrt_rounded(7), 3);
    }

    #[test]
    fn extremes() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(2), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(u64::MAX), u32::MAX as u64);
        assert_eq!(isqrt_rounded(u64::MAX), u32::MAX as u64 + 1);
    }

    proptest! {
        #[test]
        fn floor_invariant(v in prop::num::u64::ANY) {
            let r = isqrt(v);
            prop_assert!(r * r <= v);
            // (r+1)² > v, guarding against overflow.
            let r1 = r + 1;
            prop_assert!(r1.checked_mul(r1).map(|sq| sq > v).unwrap_or(true));
        }

        #[test]
        fn matches_float_sqrt_for_moderate_values(v in 0u64..(1 << 52)) {
            // f64 sqrt is exact for inputs below 2^52.
            prop_assert_eq!(isqrt(v), (v as f64).sqrt().floor() as u64);
        }

        #[test]
        fn rounded_is_floor_or_floor_plus_one(v in prop::num::u64::ANY) {
            let f = isqrt(v);
            let r = isqrt_rounded(v);
            prop_assert!(r == f || r == f + 1);
        }

        #[test]
        fn monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            if a <= b {
                prop_assert!(isqrt(a) <= isqrt(b));
            }
        }
    }
}
