use crate::QFormat;

/// A fixed-point value: a raw integer code plus its [`QFormat`].
///
/// Arithmetic follows hardware semantics: results saturate at the format
/// bounds instead of wrapping, and multiplication rescales the double-width
/// product back into the operand format with round-to-nearest (matching a
/// datapath that keeps a wide accumulator and truncates on writeback).
///
/// Operands of different formats are a modeling bug, so mixed-format
/// arithmetic panics rather than silently realigning.
///
/// # Example
///
/// ```
/// use sslic_fixed::{Fx, QFormat};
///
/// let q = QFormat::new(6, 8);
/// let x = Fx::from_f64(3.5, q);
/// let y = Fx::from_f64(-1.25, q);
/// assert_eq!((x * y).to_f64(), -4.375);
/// assert_eq!((x - y).to_f64(), 4.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fx {
    raw: i64,
    format: QFormat,
}

impl Fx {
    /// Quantizes a real value into `format` (saturating).
    pub fn from_f64(value: f64, format: QFormat) -> Self {
        Fx {
            raw: format.quantize(value),
            format,
        }
    }

    /// Wraps a raw code, saturating it into `format`'s range.
    pub fn from_raw(raw: i64, format: QFormat) -> Self {
        Fx {
            raw: format.saturate_raw(raw),
            format,
        }
    }

    /// Zero in the given format.
    pub fn zero(format: QFormat) -> Self {
        Fx { raw: 0, format }
    }

    /// The real value this code represents.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.format.dequantize(self.raw)
    }

    /// The raw integer code.
    #[inline]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The value's format.
    #[inline]
    pub fn format(self) -> QFormat {
        self.format
    }

    /// Saturating absolute value.
    pub fn abs(self) -> Self {
        Fx::from_raw(self.raw.saturating_abs(), self.format)
    }

    /// Saturating squared value in the same format (wide product, rescaled).
    pub fn squared(self) -> Self {
        self * self
    }

    fn assert_same_format(self, other: Fx, op: &str) {
        assert!(
            self.format == other.format,
            "mixed fixed-point formats in {op}: {} vs {}",
            self.format,
            other.format
        );
    }
}

impl std::ops::Add for Fx {
    type Output = Fx;

    fn add(self, rhs: Fx) -> Fx {
        self.assert_same_format(rhs, "add");
        Fx::from_raw(self.raw.saturating_add(rhs.raw), self.format)
    }
}

impl std::ops::Sub for Fx {
    type Output = Fx;

    fn sub(self, rhs: Fx) -> Fx {
        self.assert_same_format(rhs, "sub");
        Fx::from_raw(self.raw.saturating_sub(rhs.raw), self.format)
    }
}

impl std::ops::Mul for Fx {
    type Output = Fx;

    fn mul(self, rhs: Fx) -> Fx {
        self.assert_same_format(rhs, "mul");
        // Wide product has 2n fraction bits; rescale to n with rounding.
        let wide = (self.raw as i128) * (rhs.raw as i128);
        let shift = self.format.frac_bits() as u32;
        let half = if shift > 0 { 1i128 << (shift - 1) } else { 0 };
        let rounded = if wide >= 0 {
            (wide + half) >> shift
        } else {
            -((-wide + half) >> shift)
        };
        let clamped = rounded.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        Fx::from_raw(clamped, self.format)
    }
}

impl std::ops::Div for Fx {
    type Output = Fx;

    /// Saturating fixed-point division with round-to-nearest (the
    /// operand is pre-scaled by `2^frac` so the quotient keeps the
    /// format).
    ///
    /// # Panics
    ///
    /// Panics on division by (fixed-point) zero.
    fn div(self, rhs: Fx) -> Fx {
        self.assert_same_format(rhs, "div");
        assert!(rhs.raw != 0, "fixed-point division by zero");
        let shift = self.format.frac_bits() as u32;
        let num = (self.raw as i128) << shift;
        let den = rhs.raw as i128;
        // Round to nearest, half away from zero.
        let quot = if (num >= 0) == (den > 0) {
            (num + den / 2) / den
        } else {
            (num - den / 2) / den
        };
        let clamped = quot.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        Fx::from_raw(clamped, self.format)
    }
}

impl std::ops::Neg for Fx {
    type Output = Fx;

    fn neg(self) -> Fx {
        Fx::from_raw(self.raw.saturating_neg(), self.format)
    }
}

impl PartialOrd for Fx {
    fn partial_cmp(&self, other: &Fx) -> Option<std::cmp::Ordering> {
        if self.format == other.format {
            Some(self.raw.cmp(&other.raw))
        } else {
            None
        }
    }
}

impl std::fmt::Display for Fx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QFormat {
        QFormat::new(6, 8)
    }

    #[test]
    fn exact_values_round_trip() {
        let x = Fx::from_f64(2.5, q());
        assert_eq!(x.to_f64(), 2.5);
        assert_eq!(x.raw(), 2 * 256 + 128);
    }

    #[test]
    fn add_sub_are_exact_within_range() {
        let a = Fx::from_f64(1.25, q());
        let b = Fx::from_f64(0.5, q());
        assert_eq!((a + b).to_f64(), 1.75);
        assert_eq!((a - b).to_f64(), 0.75);
    }

    #[test]
    fn add_saturates_at_max() {
        let m = Fx::from_f64(q().max_value(), q());
        assert_eq!((m + m).to_f64(), q().max_value());
    }

    #[test]
    fn sub_saturates_at_min() {
        let m = Fx::from_f64(q().min_value(), q());
        let one = Fx::from_f64(1.0, q());
        assert_eq!((m - one).to_f64(), q().min_value());
    }

    #[test]
    fn mul_rescales_product() {
        let a = Fx::from_f64(1.5, q());
        let b = Fx::from_f64(2.0, q());
        assert_eq!((a * b).to_f64(), 3.0);
    }

    #[test]
    fn mul_of_negatives() {
        let a = Fx::from_f64(-1.5, q());
        let b = Fx::from_f64(2.0, q());
        assert_eq!((a * b).to_f64(), -3.0);
        assert_eq!((a * a).to_f64(), 2.25);
    }

    #[test]
    fn mul_saturates() {
        let a = Fx::from_f64(60.0, q());
        assert_eq!((a * a).to_f64(), q().max_value());
    }

    #[test]
    fn div_is_exact_on_representable_quotients() {
        let a = Fx::from_f64(3.0, q());
        let b = Fx::from_f64(2.0, q());
        assert_eq!((a / b).to_f64(), 1.5);
        let c = Fx::from_f64(-4.5, q());
        assert_eq!((c / b).to_f64(), -2.25);
        assert_eq!((c / -b).to_f64(), 2.25);
    }

    #[test]
    fn div_rounds_to_nearest() {
        let q2 = QFormat::new(6, 2); // resolution 0.25
        let a = Fx::from_f64(1.0, q2);
        let b = Fx::from_f64(3.0, q2);
        // 1/3 = 0.333… → nearest representable 0.25 (codes: 4<<2=16 /12 = 1.33 → 1)
        assert_eq!((a / b).to_f64(), 0.25);
    }

    #[test]
    fn div_saturates_on_overflow() {
        let big = Fx::from_f64(60.0, q());
        let tiny = Fx::from_raw(1, q()); // smallest positive code
        assert_eq!((big / tiny).to_f64(), q().max_value());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let a = Fx::from_f64(1.0, q());
        let _ = a / Fx::zero(q());
    }

    #[test]
    fn neg_and_abs() {
        let a = Fx::from_f64(-3.25, q());
        assert_eq!((-a).to_f64(), 3.25);
        assert_eq!(a.abs().to_f64(), 3.25);
    }

    #[test]
    fn ordering_within_format() {
        let a = Fx::from_f64(1.0, q());
        let b = Fx::from_f64(2.0, q());
        assert!(a < b);
        assert!(b > a);
    }

    #[test]
    fn mixed_format_comparison_is_none() {
        let a = Fx::from_f64(1.0, QFormat::new(4, 4));
        let b = Fx::from_f64(1.0, QFormat::new(6, 8));
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    #[should_panic(expected = "mixed fixed-point formats")]
    fn mixed_format_add_panics() {
        let a = Fx::from_f64(1.0, QFormat::new(4, 4));
        let b = Fx::from_f64(1.0, QFormat::new(6, 8));
        let _ = a + b;
    }

    #[test]
    fn display_shows_value_and_format() {
        let a = Fx::from_f64(1.5, QFormat::new(4, 4));
        assert_eq!(a.to_string(), "1.5 (Q4.4)");
    }
}
