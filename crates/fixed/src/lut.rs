/// A 256-entry indexed look-up table mapping a `u8` input code directly to a
/// precomputed output.
///
/// This is the structure the accelerator's color-conversion unit uses for
/// the sRGB gamma power function (paper §6.1: "We adopt a 256-entry LUT for
/// the power function used in the 8-bit RGB to XYZ conversion"). Because the
/// input is exactly 8 bits, the table is *exact* at the chosen output
/// precision — no interpolation hardware is required.
///
/// # Example
///
/// ```
/// use sslic_fixed::Lut256;
///
/// // A LUT that squares its normalized input, in Q0.15 output codes.
/// let lut = Lut256::from_fn(|code| {
///     let x = code as f64 / 255.0;
///     (x * x * 32767.0).round() as i32
/// });
/// assert_eq!(lut.lookup(0), 0);
/// assert_eq!(lut.lookup(255), 32767);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lut256 {
    table: Vec<i32>,
}

impl Lut256 {
    /// Builds the table by evaluating `f` at every input code 0–255.
    pub fn from_fn(f: impl FnMut(u8) -> i32) -> Self {
        Lut256 {
            table: (0..=255u8).map(f).collect(),
        }
    }

    /// Looks up the output for input code `code`. Constant time, like the
    /// hardware ROM read.
    #[inline]
    pub fn lookup(&self, code: u8) -> i32 {
        self.table[code as usize]
    }

    /// The full table contents (for inspection and hardware export).
    pub fn as_table(&self) -> &[i32] {
        &self.table
    }

    /// XORs `xor_mask` into the entry for input `code` — the fault-injection
    /// hook `sslic-fault` uses to model soft errors in the LUT ROM/SRAM
    /// cells. A second call with the same mask restores the entry.
    pub fn corrupt(&mut self, code: u8, xor_mask: i32) {
        self.table[code as usize] ^= xor_mask;
    }

    /// Number of entries (always 256).
    pub fn len(&self) -> usize {
        256
    }

    /// Always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A piecewise-linear LUT: linear segments between explicit knots over
/// `[lo, hi]`.
///
/// This models the accelerator's "8 component piecewise linear LUT
/// approximation of the power function used in the XYZ to LAB conversion"
/// (paper §6.1). Two knot placements are provided:
///
/// * [`PwlLut::from_fn`] — uniform knots (simple address decode);
/// * [`PwlLut::from_fn_geometric`] — geometrically spaced knots, the right
///   choice for power functions whose curvature concentrates near zero
///   (7× lower error for the CIELAB cube root at 8 segments).
///
/// Inputs outside the domain are clamped to the nearest end. Segment lookup
/// is a binary search over at most a handful of knots, standing in for the
/// hardware's priority encoder.
///
/// # Example
///
/// ```
/// use sslic_fixed::PwlLut;
///
/// let cbrt = PwlLut::from_fn_geometric(8, 0.008856, 1.0, |t| t.cbrt());
/// let err = cbrt.max_abs_error(|t| t.cbrt(), 10_000);
/// assert!(err < 0.01, "8 geometric segments approximate cbrt well: err={err}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PwlLut {
    knots: Vec<f64>,
    values: Vec<f64>,
}

impl PwlLut {
    /// Builds a `segments`-piece interpolant of `f` with uniform knots over
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or `lo >= hi`.
    pub fn from_fn(segments: usize, lo: f64, hi: f64, f: impl FnMut(f64) -> f64) -> Self {
        assert!(segments > 0, "at least one segment required");
        assert!(lo < hi, "lo must be below hi");
        let knots: Vec<f64> = (0..=segments)
            .map(|i| lo + (hi - lo) * i as f64 / segments as f64)
            .collect();
        Self::from_knots(knots, f)
    }

    /// Builds a `segments`-piece interpolant of `f` with geometrically
    /// spaced knots over `[lo, hi]`, concentrating resolution near `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`, `lo >= hi`, or `lo <= 0` (geometric
    /// spacing needs a positive lower bound).
    pub fn from_fn_geometric(
        segments: usize,
        lo: f64,
        hi: f64,
        f: impl FnMut(f64) -> f64,
    ) -> Self {
        assert!(segments > 0, "at least one segment required");
        assert!(lo < hi, "lo must be below hi");
        assert!(lo > 0.0, "geometric knots require lo > 0");
        let ratio = hi / lo;
        let knots: Vec<f64> = (0..=segments)
            .map(|i| lo * ratio.powf(i as f64 / segments as f64))
            .collect();
        Self::from_knots(knots, f)
    }

    fn from_knots(knots: Vec<f64>, mut f: impl FnMut(f64) -> f64) -> Self {
        let values = knots.iter().map(|&x| f(x)).collect();
        PwlLut { knots, values }
    }

    /// Number of linear segments.
    pub fn segment_count(&self) -> usize {
        self.knots.len() - 1
    }

    /// Domain lower bound.
    pub fn lo(&self) -> f64 {
        self.knots.first().copied().unwrap_or(0.0)
    }

    /// Domain upper bound. Builders guarantee at least two knots; an empty
    /// table degenerates to the same bound as [`Self::lo`].
    pub fn hi(&self) -> f64 {
        self.knots.last().copied().unwrap_or(self.lo())
    }

    /// Evaluates the approximation at `x` (clamped into the domain).
    ///
    /// In hardware this is a priority encode, one table read, one subtract,
    /// one multiply, and one add — the operation count the energy model
    /// charges for it.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(self.lo(), self.hi());
        // Find the segment whose [knot[i], knot[i+1]] contains x.
        let idx = match self.knots.binary_search_by(|k| k.total_cmp(&x)) {
            Ok(i) => i.min(self.segment_count() - 1),
            Err(i) => i.saturating_sub(1).min(self.segment_count() - 1),
        };
        let (x0, x1) = (self.knots[idx], self.knots[idx + 1]);
        let (y0, y1) = (self.values[idx], self.values[idx + 1]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Maximum absolute error against the reference `f`, sampled at
    /// `samples` uniformly spaced points.
    pub fn max_abs_error(&self, mut f: impl FnMut(f64) -> f64, samples: usize) -> f64 {
        let (lo, hi) = (self.lo(), self.hi());
        let mut max = 0.0f64;
        for i in 0..samples {
            let x = lo + (hi - lo) * i as f64 / (samples - 1).max(1) as f64;
            let err = (self.eval(x) - f(x)).abs();
            if err > max {
                max = err;
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lut256_is_exact_at_knots() {
        let lut = Lut256::from_fn(|c| (c as i32) * 3);
        for c in [0u8, 1, 100, 255] {
            assert_eq!(lut.lookup(c), c as i32 * 3);
        }
        assert_eq!(lut.len(), 256);
        assert!(!lut.is_empty());
    }

    #[test]
    fn pwl_is_exact_on_linear_functions() {
        let lut = PwlLut::from_fn(4, 0.0, 10.0, |x| 2.0 * x + 1.0);
        for i in 0..100 {
            let x = i as f64 / 10.0;
            assert!((lut.eval(x) - (2.0 * x + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn pwl_interpolates_at_segment_knots_exactly() {
        let lut = PwlLut::from_fn(8, 0.0, 1.0, |x| x.cbrt());
        for i in 0..=8 {
            let x = i as f64 / 8.0;
            assert!((lut.eval(x) - x.cbrt()).abs() < 1e-12, "knot {i}");
        }
    }

    #[test]
    fn pwl_clamps_out_of_domain_inputs() {
        let lut = PwlLut::from_fn(4, 1.0, 2.0, |x| x);
        assert_eq!(lut.eval(0.0), 1.0);
        assert_eq!(lut.eval(5.0), 2.0);
    }

    #[test]
    fn more_segments_reduce_error() {
        let f = |x: f64| x.cbrt();
        let e2 = PwlLut::from_fn(2, 0.01, 1.0, f).max_abs_error(f, 5000);
        let e8 = PwlLut::from_fn(8, 0.01, 1.0, f).max_abs_error(f, 5000);
        let e32 = PwlLut::from_fn(32, 0.01, 1.0, f).max_abs_error(f, 5000);
        assert!(e8 < e2);
        assert!(e32 < e8);
    }

    #[test]
    fn geometric_knots_beat_uniform_for_cbrt() {
        let f = |x: f64| x.cbrt();
        let uni = PwlLut::from_fn(8, 0.008856, 1.0, f).max_abs_error(f, 20_000);
        let geo = PwlLut::from_fn_geometric(8, 0.008856, 1.0, f).max_abs_error(f, 20_000);
        assert!(geo < uni / 3.0, "geo={geo} uni={uni}");
    }

    #[test]
    fn paper_8_segment_cbrt_error_is_small() {
        // The accelerator's XYZ→LAB PWL approximation must be accurate
        // enough not to perturb 8-bit L,a,b outputs by more than a couple
        // of LSBs: with geometric knots the error stays below 0.01 in f,
        // i.e. ~1.2 L units worst case, concentrated at the dark end.
        let f = |x: f64| x.cbrt();
        let lut = PwlLut::from_fn_geometric(8, 0.008856, 1.0, f);
        assert!(lut.max_abs_error(f, 20_000) < 0.01);
    }

    #[test]
    #[should_panic(expected = "segment")]
    fn zero_segments_panics() {
        let _ = PwlLut::from_fn(0, 0.0, 1.0, |x| x);
    }

    #[test]
    #[should_panic(expected = "lo > 0")]
    fn geometric_with_zero_lo_panics() {
        let _ = PwlLut::from_fn_geometric(8, 0.0, 1.0, |x| x);
    }

    #[test]
    fn eval_at_exact_knot_positions() {
        let lut = PwlLut::from_fn_geometric(8, 0.01, 1.0, |x| x.cbrt());
        // Binary search Ok() branch: evaluate exactly at knots.
        for i in 0..=8 {
            let x = 0.01f64 * (100.0f64).powf(i as f64 / 8.0);
            assert!((lut.eval(x) - x.cbrt()).abs() < 1e-9, "knot {i}");
        }
    }

    proptest! {
        #[test]
        fn pwl_eval_between_sampled_extremes(x in 0.0f64..1.0) {
            // For a monotone function the PWL interpolant stays within the
            // function's range over the domain.
            let lut = PwlLut::from_fn(8, 0.0, 1.0, |t| t.sqrt());
            let y = lut.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn pwl_monotone_for_monotone_input(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let lut = PwlLut::from_fn(8, 0.0, 1.0, |t| t.cbrt());
            if a <= b {
                prop_assert!(lut.eval(a) <= lut.eval(b) + 1e-12);
            }
        }

        #[test]
        fn geometric_pwl_error_bounded(x in 0.008856f64..1.0) {
            let lut = PwlLut::from_fn_geometric(8, 0.008856, 1.0, |t| t.cbrt());
            prop_assert!((lut.eval(x) - x.cbrt()).abs() < 0.01);
        }
    }
}
