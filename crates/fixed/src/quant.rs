/// A uniform quantizer mapping a real interval `[lo, hi]` onto `2^bits`
/// integer codes.
///
/// This models the accelerator's reduced-precision datapath for the paper's
/// §6.1 bit-width exploration: the color-distance output "returns the 8-bit
/// distance", i.e. real distances are represented by one of 256 codes and
/// the 9:1 minimum compares codes, not reals. Sweeping `bits` from 12 down
/// to 4 reproduces the accuracy-vs-precision study.
///
/// Values outside `[lo, hi]` saturate to the extreme codes.
///
/// # Example
///
/// ```
/// use sslic_fixed::Quantizer;
///
/// let q = Quantizer::new(8, 0.0, 255.0);
/// assert_eq!(q.encode(0.0), 0);
/// assert_eq!(q.encode(255.0), 255);
/// assert_eq!(q.encode(300.0), 255); // saturates
/// let mid = q.encode(127.5);
/// assert!((q.decode(mid) - 127.5).abs() <= q.step());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u8,
    lo: f64,
    hi: f64,
    step: f64,
}

impl Quantizer {
    /// Creates a `bits`-wide quantizer over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 32, or if `lo >= hi`.
    pub fn new(bits: u8, lo: f64, hi: f64) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        assert!(lo < hi, "lo must be below hi");
        let levels = (1u64 << bits) - 1;
        Quantizer {
            bits,
            lo,
            hi,
            step: (hi - lo) / levels as f64,
        }
    }

    /// Bit width of the code space.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Quantization step between adjacent codes.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Largest code, `2^bits − 1`.
    #[inline]
    pub fn max_code(&self) -> u32 {
        (((1u64 << self.bits) - 1) & 0xffff_ffff) as u32
    }

    /// Maps a real value to its code (round-to-nearest, saturating).
    #[inline]
    pub fn encode(&self, value: f64) -> u32 {
        if value.is_nan() {
            return 0;
        }
        let idx = ((value - self.lo) / self.step).round();
        if idx <= 0.0 {
            0
        } else if idx >= self.max_code() as f64 {
            self.max_code()
        } else {
            idx as u32
        }
    }

    /// Maps a code back to the center of its quantization cell.
    #[inline]
    pub fn decode(&self, code: u32) -> f64 {
        self.lo + code.min(self.max_code()) as f64 * self.step
    }

    /// Quantize-dequantize in one step: the value the datapath actually
    /// "sees" at this precision.
    #[inline]
    pub fn apply(&self, value: f64) -> f64 {
        self.decode(self.encode(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_bit_quantizer_has_two_levels() {
        let q = Quantizer::new(1, 0.0, 1.0);
        assert_eq!(q.max_code(), 1);
        assert_eq!(q.encode(0.2), 0);
        assert_eq!(q.encode(0.8), 1);
    }

    #[test]
    fn endpoints_map_to_extreme_codes() {
        let q = Quantizer::new(8, -10.0, 10.0);
        assert_eq!(q.encode(-10.0), 0);
        assert_eq!(q.encode(10.0), 255);
        assert_eq!(q.decode(0), -10.0);
        assert_eq!(q.decode(255), 10.0);
    }

    #[test]
    fn nan_encodes_to_zero() {
        let q = Quantizer::new(8, 0.0, 1.0);
        assert_eq!(q.encode(f64::NAN), 0);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn zero_bits_panics() {
        let _ = Quantizer::new(0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn inverted_range_panics() {
        let _ = Quantizer::new(8, 1.0, 0.0);
    }

    #[test]
    fn higher_bits_strictly_reduce_step() {
        let q8 = Quantizer::new(8, 0.0, 255.0);
        let q12 = Quantizer::new(12, 0.0, 255.0);
        assert!(q12.step() < q8.step());
    }

    proptest! {
        #[test]
        fn round_trip_error_bounded_by_half_step(v in -50.0f64..50.0, bits in 2u8..16) {
            let q = Quantizer::new(bits, -50.0, 50.0);
            let err = (q.apply(v) - v).abs();
            prop_assert!(err <= q.step() / 2.0 + 1e-9, "err={err} step={}", q.step());
        }

        #[test]
        fn encode_is_monotone(a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let q = Quantizer::new(8, 0.0, 100.0);
            if a <= b {
                prop_assert!(q.encode(a) <= q.encode(b));
            } else {
                prop_assert!(q.encode(a) >= q.encode(b));
            }
        }

        #[test]
        fn out_of_range_saturates(v in prop::num::f64::NORMAL) {
            let q = Quantizer::new(8, 0.0, 1.0);
            let c = q.encode(v);
            prop_assert!(c <= q.max_code());
        }

        #[test]
        fn apply_is_idempotent(v in -10.0f64..10.0, bits in 2u8..12) {
            let q = Quantizer::new(bits, -10.0, 10.0);
            let once = q.apply(v);
            prop_assert_eq!(q.apply(once), once);
        }
    }
}
