/// A signed fixed-point format `Qm.n`: one sign bit, `m` integer bits, and
/// `n` fraction bits (ARM-style Q notation).
///
/// The representable range is `[-2^m, 2^m - 2^-n]` with a resolution of
/// `2^-n`. Formats are value types and cheap to copy; every [`crate::Fx`]
/// carries its format so mixed-format arithmetic can be detected.
///
/// # Example
///
/// ```
/// use sslic_fixed::QFormat;
///
/// let q = QFormat::new(7, 0); // classic signed 8-bit integer
/// assert_eq!(q.total_bits(), 8);
/// assert_eq!(q.max_value(), 127.0);
/// assert_eq!(q.min_value(), -128.0);
/// assert_eq!(q.resolution(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    int_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Creates a `Q(int_bits).(frac_bits)` format.
    ///
    /// # Panics
    ///
    /// Panics if `int_bits + frac_bits` exceeds 62 (raw values are stored
    /// in `i64` and products need headroom).
    pub fn new(int_bits: u8, frac_bits: u8) -> Self {
        assert!(
            (int_bits as u32 + frac_bits as u32) <= 62,
            "QFormat wider than 62 bits is unsupported"
        );
        QFormat {
            int_bits,
            frac_bits,
        }
    }

    /// The accelerator's 8-bit unsigned-channel format viewed as signed
    /// `Q8.0` (values 0–255 fit losslessly).
    pub fn channel8() -> Self {
        QFormat::new(8, 0)
    }

    /// Number of integer bits `m`.
    #[inline]
    pub fn int_bits(&self) -> u8 {
        self.int_bits
    }

    /// Number of fraction bits `n`.
    #[inline]
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Total storage width including the sign bit.
    #[inline]
    pub fn total_bits(&self) -> u32 {
        1 + self.int_bits as u32 + self.frac_bits as u32
    }

    /// Largest representable value, `2^m − 2^−n`.
    #[inline]
    pub fn max_value(&self) -> f64 {
        (self.max_raw() as f64) * self.resolution()
    }

    /// Smallest representable value, `−2^m`.
    #[inline]
    pub fn min_value(&self) -> f64 {
        (self.min_raw() as f64) * self.resolution()
    }

    /// Quantization step, `2^−n`.
    #[inline]
    pub fn resolution(&self) -> f64 {
        1.0 / (1i64 << self.frac_bits) as f64
    }

    /// Largest raw (integer) code.
    #[inline]
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.int_bits as u32 + self.frac_bits as u32)) - 1
    }

    /// Smallest raw (integer) code.
    #[inline]
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.int_bits as u32 + self.frac_bits as u32))
    }

    /// Converts a real value to the nearest raw code, saturating at the
    /// format bounds (round half away from zero, like a hardware rounder).
    #[inline]
    pub fn quantize(&self, value: f64) -> i64 {
        if value.is_nan() {
            return 0;
        }
        let scaled = value * (1i64 << self.frac_bits) as f64;
        let rounded = scaled.round();
        if rounded >= self.max_raw() as f64 {
            self.max_raw()
        } else if rounded <= self.min_raw() as f64 {
            self.min_raw()
        } else {
            rounded as i64
        }
    }

    /// Converts a raw code back to a real value.
    #[inline]
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 * self.resolution()
    }

    /// Clamps a raw code into the representable range (hardware saturation
    /// after arithmetic).
    #[inline]
    pub fn saturate_raw(&self, raw: i64) -> i64 {
        raw.clamp(self.min_raw(), self.max_raw())
    }
}

impl std::fmt::Display for QFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q7_0_is_i8() {
        let q = QFormat::new(7, 0);
        assert_eq!(q.max_raw(), 127);
        assert_eq!(q.min_raw(), -128);
        assert_eq!(q.quantize(1000.0), 127);
        assert_eq!(q.quantize(-1000.0), -128);
    }

    #[test]
    fn resolution_scales_with_frac_bits() {
        assert_eq!(QFormat::new(0, 8).resolution(), 1.0 / 256.0);
        assert_eq!(QFormat::new(3, 0).resolution(), 1.0);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let q = QFormat::new(4, 2); // resolution 0.25
        assert_eq!(q.dequantize(q.quantize(1.1)), 1.0);
        assert_eq!(q.dequantize(q.quantize(1.13)), 1.25);
        assert_eq!(q.dequantize(q.quantize(-1.1)), -1.0);
    }

    #[test]
    fn quantize_handles_nan() {
        let q = QFormat::new(4, 4);
        assert_eq!(q.quantize(f64::NAN), 0);
    }

    #[test]
    fn round_trip_error_bounded_by_half_lsb() {
        let q = QFormat::new(6, 6);
        for i in 0..1000 {
            let v = -60.0 + i as f64 * 0.123;
            let back = q.dequantize(q.quantize(v));
            assert!(
                (back - v).abs() <= q.resolution() / 2.0 + 1e-12,
                "v={v} back={back}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn overly_wide_format_panics() {
        let _ = QFormat::new(40, 40);
    }

    #[test]
    fn display_uses_q_notation() {
        assert_eq!(QFormat::new(4, 4).to_string(), "Q4.4");
    }

    #[test]
    fn channel8_covers_byte_range() {
        let q = QFormat::channel8();
        assert_eq!(q.quantize(255.0), 255);
        assert_eq!(q.dequantize(255), 255.0);
    }

    #[test]
    fn saturate_raw_clamps() {
        let q = QFormat::new(3, 0);
        assert_eq!(q.saturate_raw(100), 7);
        assert_eq!(q.saturate_raw(-100), -8);
        assert_eq!(q.saturate_raw(5), 5);
    }
}
