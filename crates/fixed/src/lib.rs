//! Hardware-style fixed-point arithmetic, quantizers, and LUT builders.
//!
//! The S-SLIC accelerator uses an 8-bit fixed-point datapath (paper §6.1)
//! and LUT-based function approximation in its color-conversion unit: a
//! 256-entry LUT for the sRGB gamma power function and an 8-segment
//! piecewise-linear approximation of the CIELAB cube root. This crate
//! provides the numeric substrate those models are built on:
//!
//! * [`QFormat`] / [`Fx`] — signed fixed-point values in a `Qm.n` format
//!   with saturating hardware semantics.
//! * [`Quantizer`] — a uniform quantizer over an arbitrary real range at a
//!   configurable bit width, used by the §6.1 bit-width exploration.
//! * [`Lut256`] — an indexed table LUT (the gamma LUT).
//! * [`PwlLut`] — a piecewise-linear LUT with uniform segments (the cube
//!   root LUT).
//!
//! # Example
//!
//! ```
//! use sslic_fixed::{QFormat, Fx};
//!
//! let q = QFormat::new(4, 4); // Q4.4: 1 sign + 4 integer + 4 fraction bits
//! let a = Fx::from_f64(1.5, q);
//! let b = Fx::from_f64(2.25, q);
//! assert_eq!((a + b).to_f64(), 3.75);
//! // Saturation instead of wrap-around, as real datapaths are built:
//! let big = Fx::from_f64(100.0, q);
//! assert_eq!(big.to_f64(), q.max_value());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod fx;
mod isqrt;
mod lut;
mod quant;

pub use format::QFormat;
pub use fx::Fx;
pub use isqrt::{isqrt, isqrt_rounded};
pub use lut::{Lut256, PwlLut};
pub use quant::Quantizer;
