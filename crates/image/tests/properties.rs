//! Property-based contracts of the image substrate.

use proptest::prelude::*;

use sslic_image::filter::{box_blur, gaussian_blur, resize_bilinear};
use sslic_image::{ppm, Plane, Rgb, RgbImage};

fn arb_image(max_dim: usize) -> impl Strategy<Value = RgbImage> {
    (1..max_dim, 1..max_dim, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut state = seed | 1;
        RgbImage::from_fn(w, h, move |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Rgb::new(state as u8, (state >> 8) as u8, (state >> 16) as u8)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ppm_round_trip_any_image(img in arb_image(24)) {
        let mut buf = Vec::new();
        ppm::write_ppm(&mut buf, &img).expect("in-memory write");
        let back = ppm::read_ppm(buf.as_slice()).expect("in-memory read");
        prop_assert_eq!(back, img);
    }

    #[test]
    fn pgm16_round_trip_any_label_map(
        w in 1usize..24,
        h in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let labels = Plane::from_fn(w, h, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            (state % 60_000) as u32
        });
        let mut buf = Vec::new();
        ppm::write_pgm16(&mut buf, &labels).expect("write");
        let back = ppm::read_pgm16(buf.as_slice()).expect("read");
        prop_assert_eq!(back, labels);
    }

    #[test]
    fn planes_round_trip_any_image(img in arb_image(24)) {
        let (r, g, b) = img.to_planes();
        let back = RgbImage::from_planes(&r, &g, &b).expect("same geometry");
        prop_assert_eq!(back, img);
    }

    #[test]
    fn blurs_preserve_geometry_and_range(img in arb_image(20)) {
        let boxed = box_blur(&img);
        let gauss = gaussian_blur(&img, 1.0);
        prop_assert_eq!(boxed.width(), img.width());
        prop_assert_eq!(gauss.height(), img.height());
        // Blur output stays within the min/max of the input per channel
        // (convex combination of samples, up to rounding).
        let bounds = |im: &RgbImage| {
            let mut lo = [255u8; 3];
            let mut hi = [0u8; 3];
            for px in im.as_raw().chunks_exact(3) {
                for c in 0..3 {
                    lo[c] = lo[c].min(px[c]);
                    hi[c] = hi[c].max(px[c]);
                }
            }
            (lo, hi)
        };
        let (ilo, ihi) = bounds(&img);
        let (blo, bhi) = bounds(&boxed);
        for c in 0..3 {
            prop_assert!(blo[c] >= ilo[c]);
            prop_assert!(bhi[c] <= ihi[c]);
        }
    }

    #[test]
    fn resize_preserves_flat_images(
        fill in any::<(u8, u8, u8)>(),
        w in 1usize..16,
        h in 1usize..16,
        nw in 1usize..24,
        nh in 1usize..24,
    ) {
        let img = RgbImage::filled(w, h, Rgb::new(fill.0, fill.1, fill.2));
        let out = resize_bilinear(&img, nw, nh);
        prop_assert_eq!(out.width(), nw);
        prop_assert!(out.as_raw().chunks_exact(3).all(|p| p == [fill.0, fill.1, fill.2]));
    }

    #[test]
    fn boundary_overlay_only_recolors_boundary_pixels(img in arb_image(16)) {
        let labels = Plane::from_fn(img.width(), img.height(), |x, y| {
            ((x / 3) + 7 * (y / 3)) as u32
        });
        let marker = Rgb::new(255, 0, 255);
        let out = sslic_image::draw::overlay_boundaries(&img, &labels, marker);
        for y in 0..img.height() {
            for x in 0..img.width() {
                let l = labels[(x, y)];
                let boundary = (x + 1 < img.width() && labels[(x + 1, y)] != l)
                    || (y + 1 < img.height() && labels[(x, y + 1)] != l);
                if !boundary {
                    prop_assert_eq!(out.pixel(x, y), img.pixel(x, y));
                }
            }
        }
    }
}
