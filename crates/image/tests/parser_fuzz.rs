//! Adversarial Netpbm parser hardening: a deterministic SplitMix64-driven
//! fuzz corpus plus directed edge cases. Every reader must hold two
//! properties on arbitrary bytes:
//!
//! 1. never panic (runs under the workspace's overflow-checked test
//!    profile, so any unchecked size arithmetic would abort here), and
//! 2. any `Ok` result satisfies the readers' documented invariants
//!    (non-degenerate dimensions under the pixel cap, buffers sized
//!    exactly to the header).
//!
//! The corpus is a pure function of the seeds below — failures reproduce
//! bit-for-bit.

use sslic_image::ppm::{read_pgm, read_pgm16, read_ppm, write_pgm16, write_ppm, MAX_PIXELS};
use sslic_image::prng::SplitMix64;
use sslic_image::{ImageError, Plane, Rgb, RgbImage};

/// Seeds of valid files the mutator starts from.
fn seed_corpus() -> Vec<Vec<u8>> {
    let mut corpus = Vec::new();

    let img = RgbImage::from_fn(13, 7, |x, y| Rgb::new(x as u8, y as u8, (x * y) as u8));
    let mut ppm = Vec::new();
    write_ppm(&mut ppm, &img).unwrap();
    corpus.push(ppm);

    let labels = Plane::from_fn(9, 5, |x, y| (x * 301 + y) as u32);
    let mut pgm16 = Vec::new();
    write_pgm16(&mut pgm16, &labels).unwrap();
    corpus.push(pgm16);

    corpus.push(b"P3\n3 2\n255\n0 1 2 3 4 5 6 7 8 9 10 11\n".to_vec());
    corpus.push(b"P5\n# comment\n4 4\n255\n0123456789abcdef".to_vec());
    corpus
}

/// One deterministic mutation of `base` driven by `rng`.
fn mutate(base: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.below(6) {
        // Truncate anywhere, including mid-header.
        0 => {
            let at = rng.below(bytes.len() as u64 + 1) as usize;
            bytes.truncate(at);
        }
        // Flip random bytes (headers become garbage numbers or magics).
        1 => {
            for _ in 0..=rng.below(8) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= (rng.next_u64() & 0xFF) as u8;
            }
        }
        // Embed NUL bytes — classic C-string parser trap.
        2 => {
            for _ in 0..=rng.below(4) {
                let i = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.insert(i, 0);
            }
        }
        // Splice a hostile header onto real pixel data.
        3 => {
            let headers: [&[u8]; 6] = [
                b"P6\n0 0\n255\n",
                b"P6\n1 1\n0\n",
                b"P5\n999999999999999999999 4\n255\n",
                b"P5\n2 2\n65536\n",
                b"P6\n16384 8192\n255\n",
                b"P3\n2 2\n255\n",
            ];
            let h = headers[rng.below(headers.len() as u64) as usize];
            let keep = rng.below(bytes.len() as u64 + 1) as usize;
            let mut spliced = h.to_vec();
            spliced.extend_from_slice(&bytes[..keep]);
            bytes = spliced;
        }
        // Duplicate a random slice (repeated header fields, long runs).
        4 => {
            if !bytes.is_empty() {
                let a = rng.below(bytes.len() as u64) as usize;
                let b = a + rng.below((bytes.len() - a) as u64 + 1) as usize;
                let slice = bytes[a..b].to_vec();
                let at = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.splice(at..at, slice);
            }
        }
        // Whitespace storms inside the header.
        _ => {
            for _ in 0..=rng.below(6) {
                let i = rng.below(bytes.len() as u64 + 1) as usize;
                let ws = [b' ', b'\n', b'\t', b'\r', b'#'];
                bytes.insert(i, ws[rng.below(ws.len() as u64) as usize]);
            }
        }
    }
    bytes
}

/// Every parse either fails with a typed error or yields a structurally
/// valid image.
fn check_all_readers(bytes: &[u8]) {
    if let Ok(img) = read_ppm(bytes) {
        assert!(img.width() > 0 && img.height() > 0);
        assert!(img.width() * img.height() <= MAX_PIXELS);
        assert_eq!(img.as_raw().len(), img.width() * img.height() * 3);
    }
    if let Ok(p) = read_pgm(bytes) {
        assert!(p.width() > 0 && p.height() > 0);
        assert_eq!(p.as_slice().len(), p.width() * p.height());
    }
    if let Ok(p) = read_pgm16(bytes) {
        assert!(p.width() > 0 && p.height() > 0);
        assert_eq!(p.as_slice().len(), p.width() * p.height());
        assert!(p.iter().all(|&v| v <= u16::MAX as u32));
    }
}

#[test]
fn fuzzed_inputs_never_panic_and_ok_results_are_sound() {
    let corpus = seed_corpus();
    let mut rng = SplitMix64::seed_from_u64(0x5EED_F00D);
    for round in 0..2_000u32 {
        let base = &corpus[rng.below(corpus.len() as u64) as usize];
        let mut bytes = mutate(base, &mut rng);
        // Occasionally stack a second mutation for deeper damage.
        if round % 3 == 0 {
            bytes = mutate(&bytes, &mut rng);
        }
        check_all_readers(&bytes);
    }
}

#[test]
fn maxval_zero_is_rejected_by_every_reader() {
    // Regression: maxval 0 used to pass the readers' `<= 255` checks and
    // silently mis-parse (samples have no defined scale at maxval 0).
    let mut ppm = b"P6\n2 1\n0\n".to_vec();
    ppm.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
    assert!(matches!(read_ppm(ppm.as_slice()), Err(ImageError::Format(_))));

    let mut pgm = b"P5\n2 1\n0\n".to_vec();
    pgm.extend_from_slice(&[1, 2]);
    assert!(matches!(read_pgm(pgm.as_slice()), Err(ImageError::Format(_))));

    let p3 = b"P3\n1 1\n0\n0 0 0\n".to_vec();
    assert!(matches!(read_ppm(p3.as_slice()), Err(ImageError::Format(_))));
}

#[test]
fn maxval_above_16_bits_is_rejected_by_pgm16() {
    // Regression: read_pgm16 only rejected maxval <= 255, so a 20-bit
    // maxval header was accepted even though no Netpbm sample is wider
    // than 16 bits.
    let mut buf = b"P5\n1 1\n1048575\n".to_vec();
    buf.extend_from_slice(&[0xAB, 0xCD]);
    assert!(matches!(
        read_pgm16(buf.as_slice()),
        Err(ImageError::Format(_))
    ));
}

#[test]
fn boundary_maxvals_still_parse() {
    // maxval 1 (bilevel-in-PGM) and 65535 are both legal per the spec.
    let mut pgm = b"P5\n2 1\n1\n".to_vec();
    pgm.extend_from_slice(&[0, 1]);
    assert_eq!(read_pgm(pgm.as_slice()).unwrap().as_slice(), &[0, 1]);

    let mut pgm16 = b"P5\n1 1\n65535\n".to_vec();
    pgm16.extend_from_slice(&[0x01, 0x02]);
    assert_eq!(read_pgm16(pgm16.as_slice()).unwrap().as_slice(), &[0x0102]);
}

#[test]
fn embedded_nul_in_header_is_a_clean_error() {
    let buf = b"P6\n2\0 1\n255\n\x01\x02\x03\x04\x05\x06".to_vec();
    assert!(matches!(read_ppm(buf.as_slice()), Err(ImageError::Format(_))));
}
