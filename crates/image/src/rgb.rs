use crate::{ImageError, Plane};

/// An 8-bit RGB triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red, 0–255.
    pub r: u8,
    /// Green, 0–255.
    pub g: u8,
    /// Blue, 0–255.
    pub b: u8,
}

impl Rgb {
    /// Creates a pixel from its components.
    #[inline]
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Returns the components as an array `[r, g, b]`.
    #[inline]
    pub const fn to_array(self) -> [u8; 3] {
        [self.r, self.g, self.b]
    }
}

impl From<[u8; 3]> for Rgb {
    fn from([r, g, b]: [u8; 3]) -> Self {
        Rgb { r, g, b }
    }
}

impl From<Rgb> for [u8; 3] {
    fn from(p: Rgb) -> Self {
        p.to_array()
    }
}

/// An interleaved 8-bit RGB image stored in raster-scan order, exactly the
/// layout the accelerator's DMA reads from external memory ("single-byte RGB
/// values per pixel are stored contiguously", paper §4.3).
///
/// # Example
///
/// ```
/// use sslic_image::{Rgb, RgbImage};
///
/// let mut img = RgbImage::filled(8, 8, Rgb::new(0, 0, 0));
/// img.set(3, 4, Rgb::new(255, 0, 0));
/// assert_eq!(img.pixel(3, 4).r, 255);
/// let (r, g, b) = img.to_planes();
/// assert_eq!(r[(3, 4)], 255);
/// assert_eq!(g[(3, 4)], 0);
/// assert_eq!(b[(3, 4)], 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl RgbImage {
    /// Creates an image of `width × height` pixels, all set to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn filled(width: usize, height: usize, fill: Rgb) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let mut data = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            data.extend_from_slice(&fill.to_array());
        }
        RgbImage {
            width,
            height,
            data,
        }
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> Rgb) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let mut data = Vec::with_capacity(width * height * 3);
        for y in 0..height {
            for x in 0..width {
                data.extend_from_slice(&f(x, y).to_array());
            }
        }
        RgbImage {
            width,
            height,
            data,
        }
    }

    /// Wraps an interleaved `r g b r g b …` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::Dimension`] if `data.len() != width * height * 3`
    /// or either dimension is zero.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 || data.len() != width * height * 3 {
            return Err(ImageError::Dimension {
                expected: width * height * 3,
                actual: data.len(),
            });
        }
        Ok(RgbImage {
            width,
            height,
            data,
        })
    }

    /// Reassembles an image from three planes (inverse of [`to_planes`]).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::Dimension`] if the planes disagree on geometry.
    ///
    /// [`to_planes`]: RgbImage::to_planes
    pub fn from_planes(r: &Plane<u8>, g: &Plane<u8>, b: &Plane<u8>) -> Result<Self, ImageError> {
        if r.width() != g.width()
            || r.width() != b.width()
            || r.height() != g.height()
            || r.height() != b.height()
        {
            return Err(ImageError::Dimension {
                expected: r.len(),
                actual: g.len().min(b.len()),
            });
        }
        let mut data = Vec::with_capacity(r.len() * 3);
        for ((&rv, &gv), &bv) in r.iter().zip(g.iter()).zip(b.iter()) {
            data.push(rv);
            data.push(gv);
            data.push(bv);
        }
        Ok(RgbImage {
            width: r.width(),
            height: r.height(),
            data,
        })
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels (`N` in the paper).
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> Rgb {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = (y * self.width + x) * 3;
        Rgb::new(self.data[i], self.data[i + 1], self.data[i + 2])
    }

    /// Overwrites the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, p: Rgb) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = (y * self.width + x) * 3;
        self.data[i] = p.r;
        self.data[i + 1] = p.g;
        self.data[i + 2] = p.b;
    }

    /// Raw interleaved bytes in raster-scan order.
    #[inline]
    pub fn as_raw(&self) -> &[u8] {
        &self.data
    }

    /// Splits the image into three single-channel planes, the layout the
    /// accelerator loads into its channel scratchpads.
    pub fn to_planes(&self) -> (Plane<u8>, Plane<u8>, Plane<u8>) {
        let n = self.pixel_count();
        let mut r = Vec::with_capacity(n);
        let mut g = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for px in self.data.chunks_exact(3) {
            r.push(px[0]);
            g.push(px[1]);
            b.push(px[2]);
        }
        // `data.len() == 3 * width * height` is an RgbImage construction
        // invariant, so the per-channel vecs always fit the plane geometry.
        let plane = |v: Vec<u8>| {
            Plane::from_vec(self.width, self.height, v)
                .unwrap_or_else(|_| Plane::filled(self.width, self.height, 0))
        };
        (plane(r), plane(g), plane(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_array_round_trip() {
        let p = Rgb::new(1, 2, 3);
        let a: [u8; 3] = p.into();
        assert_eq!(Rgb::from(a), p);
    }

    #[test]
    fn filled_uniform() {
        let img = RgbImage::filled(3, 2, Rgb::new(9, 8, 7));
        assert_eq!(img.pixel(2, 1), Rgb::new(9, 8, 7));
        assert_eq!(img.as_raw().len(), 18);
    }

    #[test]
    fn from_raw_validates() {
        assert!(RgbImage::from_raw(2, 2, vec![0; 11]).is_err());
        assert!(RgbImage::from_raw(2, 2, vec![0; 12]).is_ok());
    }

    #[test]
    fn planes_round_trip() {
        let img = RgbImage::from_fn(5, 4, |x, y| {
            Rgb::new(x as u8, y as u8, (x * y) as u8)
        });
        let (r, g, b) = img.to_planes();
        let back = RgbImage::from_planes(&r, &g, &b).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn from_planes_rejects_mismatched_geometry() {
        let a = Plane::filled(3, 3, 0u8);
        let b = Plane::filled(3, 4, 0u8);
        assert!(RgbImage::from_planes(&a, &a, &b).is_err());
    }

    #[test]
    fn set_and_get() {
        let mut img = RgbImage::filled(4, 4, Rgb::default());
        img.set(0, 3, Rgb::new(10, 20, 30));
        assert_eq!(img.pixel(0, 3), Rgb::new(10, 20, 30));
        assert_eq!(img.pixel(0, 2), Rgb::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_out_of_bounds_panics() {
        let img = RgbImage::filled(2, 2, Rgb::default());
        let _ = img.pixel(2, 0);
    }

    #[test]
    fn raster_scan_order_matches_paper_dma_layout() {
        // "single-byte RGB values per pixel are stored contiguously"
        let img = RgbImage::from_fn(2, 1, |x, _| Rgb::new(x as u8, 100 + x as u8, 200 + x as u8));
        assert_eq!(img.as_raw(), &[0, 100, 200, 1, 101, 201]);
    }
}
