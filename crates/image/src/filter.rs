//! Separable image filters: box and Gaussian smoothing and Sobel edges.
//!
//! Camera pipelines denoise before segmentation; these filters let the
//! examples and benches prepare realistic inputs, and Sobel provides an
//! alternative gradient operator to compare against SLIC's simple
//! difference gradient.

use crate::{Plane, Rgb, RgbImage};

/// One 3×3 box-blur pass with replicate borders, per channel.
pub fn box_blur(img: &RgbImage) -> RgbImage {
    let (r, g, b) = img.to_planes();
    RgbImage::from_planes(&box_blur_plane(&r), &box_blur_plane(&g), &box_blur_plane(&b))
        .unwrap_or_else(|_| img.clone())
}

/// One 3×3 box-blur pass on a single plane.
pub fn box_blur_plane(p: &Plane<u8>) -> Plane<u8> {
    Plane::from_fn(p.width(), p.height(), |x, y| {
        let mut sum = 0u32;
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                sum += p.get_clamped(x as isize + dx, y as isize + dy) as u32;
            }
        }
        (sum / 9) as u8
    })
}

/// Separable Gaussian blur with standard deviation `sigma` (kernel radius
/// `ceil(3σ)`), replicate borders.
///
/// # Panics
///
/// Panics if `sigma` is not positive and finite.
pub fn gaussian_blur(img: &RgbImage, sigma: f32) -> RgbImage {
    assert!(
        sigma > 0.0 && sigma.is_finite(),
        "sigma must be positive and finite"
    );
    let kernel = gaussian_kernel(sigma);
    let (r, g, b) = img.to_planes();
    let blur = |p: &Plane<u8>| -> Plane<u8> {
        let pf = p.map(|v| v as f32);
        let h = convolve_rows(&pf, &kernel);
        let hv = convolve_cols(&h, &kernel);
        hv.map(|v| v.round().clamp(0.0, 255.0) as u8)
    };
    RgbImage::from_planes(&blur(&r), &blur(&g), &blur(&b)).unwrap_or_else(|_| img.clone())
}

fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    let radius = (3.0 * sigma).ceil() as isize;
    let mut k: Vec<f32> = (-radius..=radius)
        .map(|i| (-(i as f32).powi(2) / (2.0 * sigma * sigma)).exp())
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

fn convolve_rows(p: &Plane<f32>, kernel: &[f32]) -> Plane<f32> {
    let radius = (kernel.len() / 2) as isize;
    Plane::from_fn(p.width(), p.height(), |x, y| {
        kernel
            .iter()
            .enumerate()
            .map(|(i, &w)| w * p.get_clamped(x as isize + i as isize - radius, y as isize))
            .sum()
    })
}

fn convolve_cols(p: &Plane<f32>, kernel: &[f32]) -> Plane<f32> {
    let radius = (kernel.len() / 2) as isize;
    Plane::from_fn(p.width(), p.height(), |x, y| {
        kernel
            .iter()
            .enumerate()
            .map(|(i, &w)| w * p.get_clamped(x as isize, y as isize + i as isize - radius))
            .sum()
    })
}

/// Sobel gradient magnitude of a single plane (replicate borders),
/// returned as `f32` (unnormalized).
pub fn sobel_magnitude(p: &Plane<u8>) -> Plane<f32> {
    Plane::from_fn(p.width(), p.height(), |x, y| {
        let at = |dx: isize, dy: isize| p.get_clamped(x as isize + dx, y as isize + dy) as f32;
        let gx = (at(1, -1) + 2.0 * at(1, 0) + at(1, 1))
            - (at(-1, -1) + 2.0 * at(-1, 0) + at(-1, 1));
        let gy = (at(-1, 1) + 2.0 * at(0, 1) + at(1, 1))
            - (at(-1, -1) + 2.0 * at(0, -1) + at(1, -1));
        (gx * gx + gy * gy).sqrt()
    })
}

/// Bilinear resize to `new_width × new_height`.
///
/// # Panics
///
/// Panics if either target dimension is zero.
pub fn resize_bilinear(img: &RgbImage, new_width: usize, new_height: usize) -> RgbImage {
    assert!(
        new_width > 0 && new_height > 0,
        "target dimensions must be nonzero"
    );
    let sx = img.width() as f32 / new_width as f32;
    let sy = img.height() as f32 / new_height as f32;
    RgbImage::from_fn(new_width, new_height, |x, y| {
        // Sample at the pixel center of the target grid.
        let fx = ((x as f32 + 0.5) * sx - 0.5).max(0.0);
        let fy = ((y as f32 + 0.5) * sy - 0.5).max(0.0);
        let x0 = (fx as usize).min(img.width() - 1);
        let y0 = (fy as usize).min(img.height() - 1);
        let x1 = (x0 + 1).min(img.width() - 1);
        let y1 = (y0 + 1).min(img.height() - 1);
        let (tx, ty) = (fx - x0 as f32, fy - y0 as f32);
        let lerp = |a: u8, b: u8, t: f32| a as f32 + (b as f32 - a as f32) * t;
        let sample = |c: fn(Rgb) -> u8| {
            let top = lerp(c(img.pixel(x0, y0)), c(img.pixel(x1, y0)), tx);
            let bot = lerp(c(img.pixel(x0, y1)), c(img.pixel(x1, y1)), tx);
            (top + (bot - top) * ty).round().clamp(0.0, 255.0) as u8
        };
        Rgb::new(sample(|p| p.r), sample(|p| p.g), sample(|p| p.b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image() -> RgbImage {
        RgbImage::from_fn(16, 16, |x, _| Rgb::new((x * 16) as u8, 0, 0))
    }

    #[test]
    fn box_blur_preserves_flat_images() {
        let img = RgbImage::filled(8, 8, Rgb::new(100, 50, 25));
        assert_eq!(box_blur(&img), img);
    }

    #[test]
    fn gaussian_blur_preserves_flat_images() {
        let img = RgbImage::filled(8, 8, Rgb::new(100, 50, 25));
        let out = gaussian_blur(&img, 1.5);
        for y in 0..8 {
            for x in 0..8 {
                let p = out.pixel(x, y);
                assert!((p.r as i16 - 100).abs() <= 1, "flat stays flat");
            }
        }
    }

    #[test]
    fn gaussian_blur_reduces_contrast_of_edges() {
        let img = RgbImage::from_fn(16, 4, |x, _| {
            if x < 8 {
                Rgb::new(0, 0, 0)
            } else {
                Rgb::new(255, 255, 255)
            }
        });
        let out = gaussian_blur(&img, 2.0);
        // Near-edge values move toward the middle.
        assert!(out.pixel(7, 2).r > 30);
        assert!(out.pixel(8, 2).r < 225);
        // Far from the edge, values are preserved.
        assert!(out.pixel(0, 2).r < 10);
        assert!(out.pixel(15, 2).r > 245);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn gaussian_rejects_nonpositive_sigma() {
        let _ = gaussian_blur(&gradient_image(), 0.0);
    }

    #[test]
    fn sobel_peaks_on_edges_and_vanishes_on_flats() {
        let p = Plane::from_fn(16, 8, |x, _| if x < 8 { 0u8 } else { 200 });
        let g = sobel_magnitude(&p);
        assert_eq!(g[(2, 4)], 0.0);
        assert!(g[(7, 4)] > 100.0);
        assert!(g[(8, 4)] > 100.0);
        assert_eq!(g[(14, 4)], 0.0);
    }

    #[test]
    fn resize_identity_is_lossless() {
        let img = gradient_image();
        assert_eq!(resize_bilinear(&img, 16, 16), img);
    }

    #[test]
    fn downscale_preserves_mean_roughly() {
        let img = gradient_image();
        let small = resize_bilinear(&img, 4, 4);
        let mean = |im: &RgbImage| {
            im.as_raw().iter().step_by(3).map(|&v| v as f64).sum::<f64>()
                / im.pixel_count() as f64
        };
        assert!((mean(&img) - mean(&small)).abs() < 12.0);
    }

    #[test]
    fn upscale_produces_smooth_interpolation() {
        let img = RgbImage::from_fn(2, 1, |x, _| Rgb::new((x * 200) as u8, 0, 0));
        let big = resize_bilinear(&img, 8, 1);
        // Monotone ramp between the two source pixels.
        let row: Vec<u8> = (0..8).map(|x| big.pixel(x, 0).r).collect();
        assert!(row.windows(2).all(|w| w[0] <= w[1]), "{row:?}");
        assert_eq!(row[0], 0);
        assert_eq!(row[7], 200);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn resize_rejects_zero_dimensions() {
        let _ = resize_bilinear(&gradient_image(), 0, 4);
    }
}
